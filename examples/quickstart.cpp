// Quickstart: predict information diffusion with the DL model.
//
// You observed the density of influenced users (percent of each distance
// group that voted/liked/shared) at distances 1..6 from the source during
// the FIRST hour of a story's life.  The DL model turns that single
// profile into a forecast of the whole spatio-temporal diffusion process.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/dl_model.h"
#include "core/properties.h"

int main() {
  using namespace dlm;

  // Hour-1 densities at friendship-hop distances 1..6 (percent).
  const std::vector<double> observed_hour1 = {1.9, 0.8, 1.1, 0.6, 0.4, 0.3};

  // The paper's parameters for hop-distance experiments: d = 0.01, K = 25,
  // r(t) = 1.4 e^{-1.5 (t-1)} + 0.25, domain x in [1, 6].
  const core::dl_parameters params = core::dl_parameters::paper_hops(6.0);

  // Build phi by clamped cubic spline and solve the PDE to t = 12 h.
  const core::dl_model model(params, observed_hour1, /*t0=*/1.0,
                             /*t_max=*/12.0);

  std::printf("DL model: %s\n\n", params.describe().c_str());
  std::printf("Predicted density (percent) by distance and hour:\n");
  std::printf("%6s", "t");
  for (int x = 1; x <= 6; ++x) std::printf("%9s%d", "d=", x);
  std::printf("\n");
  for (int t = 1; t <= 12; ++t) {
    std::printf("%6d", t);
    for (double v : model.predict_profile(t)) std::printf("%10.2f", v);
    std::printf("\n");
  }

  // The theoretical guarantees of Section II.C, checked numerically.
  const core::bounds_report bounds =
      core::check_bounds(model.solution(), params.k);
  const core::monotonicity_report mono =
      core::check_monotonicity(model.solution());
  const double margin = core::lower_solution_margin(model.phi(), params);

  std::printf("\nProperties (paper Section II.C):\n");
  std::printf("  unique property   : 0 <= I <= K?  %s  (min %.4f, max %.4f)\n",
              bounds.within ? "yes" : "NO", bounds.min_value,
              bounds.max_value);
  std::printf("  increasing in t   : %s  (worst increment %.2e)\n",
              mono.non_decreasing ? "yes" : "NO", mono.worst_increment);
  std::printf("  lower-solution margin of phi: %.4f (>= 0 required)\n",
              margin);
  return 0;
}
