// Model comparison on ORGANIC cascade data.
//
// The calibrated generator behind the benches matches the paper's curves
// by construction; this example instead runs the *mechanistic* cascade
// simulator (follower spreading + front-page random arrivals, nothing
// fitted) and asks which model explains the organic data best:
//
//   * DL (reaction-diffusion, this paper)
//   * per-distance logistic (temporal-only ablation, d = 0)
//   * heat equation (diffusion-only ablation, r = 0)
//   * SI epidemic on the explicit graph (link-driven related work)
//
// Build & run:  ./build/examples/model_comparison

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/accuracy.h"
#include "core/dl_model.h"
#include "digg/simulator.h"
#include "graph/generators.h"
#include "models/heat_model.h"
#include "models/per_distance_logistic.h"
#include "models/si_epidemic.h"
#include "social/density.h"

int main() {
  using namespace dlm;

  num::rng rand(777);
  graph::digg_graph_params gp;
  gp.users = 12000;
  gp.attach = 6;
  const graph::digraph followers = graph::digg_follower_graph(gp, rand);

  // Pick a well-followed initiator and run the organic cascade.
  graph::node_id initiator = 0;
  for (graph::node_id v = 0; v < followers.node_count(); ++v) {
    if (followers.in_degree(v) > followers.in_degree(initiator)) initiator = v;
  }
  digg::cascade_params cp;
  cp.horizon_hours = 12;
  const std::vector<social::vote> votes =
      digg::simulate_cascade(followers, initiator, 0, 0, cp, rand);
  std::printf("organic cascade: %zu votes in %d hours from initiator %u "
              "(%zu followers)\n\n",
              votes.size(), cp.horizon_hours, initiator,
              followers.in_degree(initiator));

  social::social_network_builder builder(followers, 1);
  for (const auto& v : votes) builder.add_vote(v.user, v.story, v.time);
  const social::social_network net = builder.build();
  const social::distance_partition hops =
      social::partition_by_hops(net, initiator, 6);
  const int max_d = std::min(6, hops.max_distance());
  const social::density_field field(net, 0, hops, cp.horizon_hours);

  std::vector<double> hour1;
  std::vector<int> distances;
  for (int x = 1; x <= max_d; ++x) {
    distances.push_back(x);
    hour1.push_back(field.at(x, 1));
  }

  const core::dl_parameters params = core::dl_parameters::paper_hops(max_d);
  const core::dl_model dl(params, hour1, 1.0, cp.horizon_hours);

  const core::growth_rate rate = params.r;
  const models::per_distance_logistic logistic(
      hour1, 1.0, params.k, [rate](double t) { return rate(t); });

  core::initial_condition phi(hour1);
  const std::vector<double> phi_samples =
      phi.sample(1.0, static_cast<double>(max_d), 101);

  // SI epidemic on the graph itself (one step per hour).
  models::si_params sip;
  sip.beta = 0.01;
  sip.steps = cp.horizon_hours;
  num::rng si_rand(31);
  const models::si_trace si = models::run_si(followers, initiator, sip, si_rand);
  const auto si_density = models::si_density_by_distance(si, hops, sip.steps);

  // Score every model on hours 2..12 (mean prediction accuracy).
  double acc_dl = 0.0, acc_log = 0.0, acc_heat = 0.0, acc_si = 0.0;
  std::size_t cells = 0;
  for (int t = 2; t <= cp.horizon_hours; ++t) {
    const std::vector<double> dl_profile = dl.predict_profile(t);
    const std::vector<double> log_profile = logistic.predict(t);
    const std::vector<double> heat_profile = models::heat_neumann_series(
        phi_samples, 1.0, static_cast<double>(max_d), params.d,
        static_cast<double>(t - 1));
    for (int x = 1; x <= max_d; ++x) {
      const double actual = field.at(x, t);
      if (actual <= 0.0) continue;
      const auto i = static_cast<std::size_t>(x - 1);
      const auto heat_idx = static_cast<std::size_t>(
          std::lround(static_cast<double>(x - 1) /
                      static_cast<double>(max_d - 1) * 100.0));
      acc_dl += core::prediction_accuracy(dl_profile[i], actual);
      acc_log += core::prediction_accuracy(log_profile[i], actual);
      acc_heat += core::prediction_accuracy(heat_profile[heat_idx], actual);
      acc_si += core::prediction_accuracy(
          si_density[i][static_cast<std::size_t>(t - 1)], actual);
      ++cells;
    }
  }
  const auto n = static_cast<double>(cells);
  std::printf("mean prediction accuracy on hours 2..%d (%zu cells):\n",
              cp.horizon_hours, cells);
  std::printf("  %-28s %6.2f%%\n", "DL (reaction-diffusion)",
              100.0 * acc_dl / n);
  std::printf("  %-28s %6.2f%%\n", "per-distance logistic (d=0)",
              100.0 * acc_log / n);
  std::printf("  %-28s %6.2f%%\n", "heat / diffusion-only (r=0)",
              100.0 * acc_heat / n);
  std::printf("  %-28s %6.2f%%\n", "SI epidemic on the graph",
              100.0 * acc_si / n);
  std::printf("\n(DL and the logistic baseline use the paper's untuned "
              "parameters;\n fitting them to the pilot window improves both "
              "— see bench/ablation_growth_rate)\n");
  return 0;
}
