// Model comparison on ORGANIC cascade data — ported to the batch engine.
//
// The calibrated generator behind the benches matches the paper's curves
// by construction; this example instead runs the *mechanistic* cascade
// simulator (follower spreading + front-page random arrivals, nothing
// fitted) and asks which model explains the organic data best.  One
// declarative sweep replaces the hand-rolled per-model loops: every
// registered model family (DL under all four schemes × two grid
// resolutions × five growth rates — the "calibrate" spec that fits
// (d, K, a, b, c) on the early window, plus the paper-§V spatial axis: a
// fixed separable r(x, t) = m(x)·r(t) and "calibrate-spatial", which
// fits the per-hop multipliers — plus the heat, logistic, per-distance
// logistic and SI baselines) runs on the same slice through
// engine::run_sweep, first single-threaded and then on the full pool to
// show the determinism + speedup contract.  A shared solve cache then
// replays the whole sweep warm: zero additional PDE solves, byte-identical
// CSV.
//
// With --cache-file the solve cache persists across runs (load on start,
// save on exit — see engine/cache_io.h): the second invocation's "cold"
// pass is served from the previous process's solves.
//
// Build & run:  ./build/examples/model_comparison [--cache-file dlm.cache]
//
// Batch mode (for scripting and sharded execution — see docs/sharding.md):
//
//   model_comparison --csv out.csv [--shard i/N] [--cache-file f]
//
// runs the sweep once (no demo passes), writes the CSV to the file (or
// stdout when --shard is given without --csv) and exits.  With --shard
// only that shard's scenarios run — rows keep their global sweep
// indices, so N shard CSVs recombine through `dl_shard --merge` into
// the exact bytes of the unsharded CSV.

#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "digg/simulator.h"
#include "engine/cache_io.h"
#include "engine/model_registry.h"
#include "engine/scenario_runner.h"
#include "engine/shard.h"
#include "engine/solve_cache.h"
#include "graph/generators.h"

int main(int argc, char** argv) {
  using namespace dlm;

  std::string cache_file;
  std::string csv_path;
  engine::shard_spec shard;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--cache-file" && i + 1 < argc) {
      cache_file = argv[++i];
    } else if (arg == "--csv" && i + 1 < argc) {
      csv_path = argv[++i];
    } else if (arg == "--shard" && i + 1 < argc) {
      try {
        shard = engine::parse_shard_spec(argv[++i]);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--cache-file <path>] [--csv <path>] "
                   "[--shard <i>/<N>[:policy]]\n",
                   argv[0]);
      return 2;
    }
  }
  const bool batch = !shard.is_all() || !csv_path.empty();

  num::rng rand(777);
  graph::digg_graph_params gp;
  gp.users = 12000;
  gp.attach = 6;
  graph::digraph followers = graph::digg_follower_graph(gp, rand);

  // Pick a well-followed initiator and run the organic cascade.
  graph::node_id initiator = 0;
  for (graph::node_id v = 0; v < followers.node_count(); ++v) {
    if (followers.in_degree(v) > followers.in_degree(initiator)) initiator = v;
  }
  digg::cascade_params cp;
  cp.horizon_hours = 12;
  const std::vector<social::vote> votes =
      digg::simulate_cascade(followers, initiator, 0, 0, cp, rand);
  if (!batch)
    std::printf("organic cascade: %zu votes in %d hours from initiator %u "
                "(%zu followers)\n\n",
                votes.size(), cp.horizon_hours, initiator,
                followers.in_degree(initiator));

  const engine::scenario_context ctx = engine::scenario_context::from_cascade(
      std::move(followers), initiator, votes, cp.horizon_hours);

  // One declarative sweep over every model family: DL expands over all
  // four schemes × grids × rates (the "calibrate" spec fits the paper's
  // untuned parameters to the first half of the window before solving;
  // the spatial specs exercise the §V r(x, t) axis — "calibrate-spatial"
  // fits one rate multiplier per distance group on the same window);
  // baselines collapse the axes they ignore — a calibrate spec collapses
  // to "preset" for models that cannot calibrate, a spatial spec to its
  // temporal base for models without a spatial-rate axis.
  engine::sweep_spec spec;
  spec.models = engine::default_registry().names();
  spec.schemes = {core::dl_scheme::ftcs, core::dl_scheme::strang_cn,
                  core::dl_scheme::implicit_newton, core::dl_scheme::mol_rk4};
  spec.grid = {20, 40};
  spec.rates = {"preset", "constant:0.5", "spatial:preset|1.2,1,0.8,0.65",
                "calibrate", "calibrate-spatial"};
  // The core::domain axis rides along: non-line domains expand only
  // under strang_cn, so the sweep covers the 2-D ADI sheet and the
  // coupled communities without multiplying every scheme.
  spec.domains = {"line", "grid2d:1,4", "comm:3|mix=0.05"};
  spec.t_end = cp.horizon_hours;

  const std::vector<engine::scenario> scenarios =
      engine::expand_sweep(spec, ctx);
  if (!batch)
    std::printf("sweep: %zu scenarios over %zu model families\n\n",
                scenarios.size(), spec.models.size());

  // ------------------------------------------------------- batch mode
  // One deterministic pass, CSV out, exit status honest: an unwritable
  // --cache-file or a failed flush is a nonzero exit, not a lost save.
  if (batch) {
    engine::runner_options options;
    options.threads = 0;
    options.calibration.coarse_steps = 3;
    options.shard = shard;
    std::optional<engine::persistent_cache> batch_persist;
    if (!cache_file.empty()) {
      batch_persist.emplace(cache_file);
      if (!batch_persist->write_error().empty()) return 1;  // on stderr
      options.cache = &batch_persist->cache();
    }
    const engine::sweep_result result =
        engine::run_sweep(ctx, scenarios, options);
    const std::string csv = result.table.to_csv();
    if (csv_path.empty()) {
      std::fwrite(csv.data(), 1, csv.size(), stdout);
    } else {
      std::ofstream out(csv_path, std::ios::binary | std::ios::trunc);
      out.write(csv.data(), static_cast<std::streamsize>(csv.size()));
      out.flush();
      if (!out) {
        std::fprintf(stderr, "%s: cannot write '%s'\n", argv[0],
                     csv_path.c_str());
        return 1;
      }
    }
    std::fprintf(stderr, "shard %s: %zu of %zu scenarios -> %s\n",
                 shard.label().c_str(), result.table.size(),
                 scenarios.size(),
                 csv_path.empty() ? "stdout" : csv_path.c_str());
    if (batch_persist) {
      try {
        batch_persist->flush();
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s: cache flush failed: %s\n", argv[0],
                     e.what());
        return 1;
      }
    }
    return 0;
  }

  engine::runner_options serial;
  serial.threads = 1;
  serial.calibration.coarse_steps = 3;  // 3^5 lattice points per fit
  const engine::sweep_result one = engine::run_sweep(ctx, scenarios, serial);

  engine::runner_options parallel = serial;  // hardware_concurrency
  parallel.threads = 0;
  const engine::sweep_result many =
      engine::run_sweep(ctx, scenarios, parallel);

  std::printf("%s\n", many.table.to_text().c_str());

  const engine::result_row& best = many.table.best();
  std::printf("best: %s on %s (scheme %s, rate %s -> %s) — %.2f%% over %zu "
              "cells\n",
              best.model.c_str(), best.slice.c_str(), best.scheme.c_str(),
              best.rate.c_str(), best.resolved_rate.c_str(),
              100.0 * best.accuracy, best.cells);

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("\nwall time: %.1f ms with 1 thread, %.1f ms with %u threads "
              "(%.2fx speedup)\n",
              one.wall_ms, many.wall_ms, hw,
              many.wall_ms > 0.0 ? one.wall_ms / many.wall_ms : 0.0);
  std::printf("deterministic: result CSV identical across thread counts: %s\n",
              one.table.to_csv() == many.table.to_csv() ? "yes" : "NO");

  // Same sweep again through a shared solve cache: the cold pass fills
  // it, the warm pass must hit for every trace and every calibration
  // probe — zero additional PDE solves — and still reproduce the CSV
  // byte for byte.  With --cache-file the cache outlives the process:
  // loaded here, saved when `persist` goes out of scope, so a rerun's
  // cold pass hits instead of solving.
  std::optional<engine::persistent_cache> persist;
  engine::solve_cache local_cache;
  engine::solve_cache* cache_ptr = &local_cache;
  if (!cache_file.empty()) {
    persist.emplace(cache_file);
    if (!persist->write_error().empty()) return 1;  // reported on stderr
    cache_ptr = &persist->cache();
    const engine::cache_load_result& load = persist->startup_load();
    if (load.loaded)
      std::printf("\ncache file: loaded %zu traces + %zu values from %s\n",
                  load.traces, load.values, cache_file.c_str());
    else if (load.file_missing)
      std::printf("\ncache file: %s missing, starting cold\n",
                  cache_file.c_str());
    else
      std::printf("\ncache file: rejected %s (%s), starting cold\n",
                  cache_file.c_str(), load.error.c_str());
  }
  engine::solve_cache& cache = *cache_ptr;
  engine::runner_options cached = parallel;
  cached.cache = &cache;
  const engine::sweep_result cold = engine::run_sweep(ctx, scenarios, cached);
  const engine::cache_stats after_cold = cache.stats();
  const engine::sweep_result warm = engine::run_sweep(ctx, scenarios, cached);
  const engine::cache_stats after_warm = cache.stats();
  std::printf("\nsolve cache: cold run %.1f ms (%zu misses), warm run %.1f ms "
              "(%zu new misses, %zu hits)\n",
              cold.wall_ms, after_cold.misses, warm.wall_ms,
              after_warm.misses - after_cold.misses,
              after_warm.hits - after_cold.hits);
  std::printf("warm CSV identical to cold: %s\n",
              warm.table.to_csv() == cold.table.to_csv() ? "yes" : "NO");
  if (persist)
    std::printf("saving %zu cache entries to %s\n", cache.size(),
                cache_file.c_str());

  // Domain axis demo (core::domain): the same DL scenario solved on the
  // 1-D line, on a 2-D distance × interest sheet (Peaceman–Rachford
  // ADI) and as three mixed communities.  Non-line domains run only
  // under strang_cn, and their canonical labels show up in the CSV's
  // `domain` column and in the solve-cache keys — line rows keep the
  // historical spelling, so this sweep shares cache entries with the
  // big one above.
  engine::sweep_spec domain_spec;
  domain_spec.models = {"dl"};
  domain_spec.schemes = {core::dl_scheme::strang_cn};
  domain_spec.grid = {20};
  domain_spec.rates = {"preset"};
  domain_spec.domains = {"line", "grid2d:1,4", "comm:3|mix=0.05"};
  domain_spec.t_end = cp.horizon_hours;
  const engine::sweep_result domains =
      engine::run_sweep(ctx, engine::expand_sweep(domain_spec, ctx), cached);
  std::printf("\ndomain sweep (line vs 2-D ADI sheet vs coupled "
              "communities):\n%s\n",
              domains.table.to_text().c_str());

  if (persist) {
    // Flush explicitly so an I/O failure is a nonzero exit instead of a
    // best-effort destructor message.
    try {
      persist->flush();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: cache flush failed: %s\n", argv[0], e.what());
      return 1;
    }
  }
  return 0;
}
