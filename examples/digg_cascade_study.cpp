// End-to-end study on a synthetic Digg-2009-like dataset.
//
// Replays the paper's §III evaluation: generate the dataset (follower
// graph + background corpus + the four flagship stories), characterize
// the temporal/spatial diffusion patterns, then validate the DL model's
// 6-hour forecasts under both distance metrics.
//
// Build & run:  ./build/examples/digg_cascade_study

#include <cstdio>
#include <iostream>

#include "eval/experiments.h"
#include "eval/table.h"

int main() {
  using namespace dlm;

  // Reduced scale so the example runs in a few seconds; the bench binaries
  // use the default (larger) scenario.
  digg::scenario_config config = digg::test_scale_scenario();
  std::printf("generating synthetic Digg dataset: %zu users, %zu background "
              "stories, seed %llu...\n",
              config.graph.users, config.background_stories,
              static_cast<unsigned long long>(config.seed));
  const eval::experiment_context ctx = eval::experiment_context::make(config);

  const auto& net = ctx.data.network;
  std::printf("dataset: %zu users, %zu stories, %zu votes\n\n",
              net.user_count(), net.story_count(), net.vote_count());

  eval::text_table stories({"story", "votes", "initiator", "followers",
                            "reachable hops"});
  for (std::size_t s = 0; s < ctx.data.flagship_ids.size(); ++s) {
    const auto info = net.info(ctx.data.flagship_ids[s]);
    const auto& hops = ctx.data.hop_partitions[s];
    std::size_t reachable = 0;
    for (std::size_t x = 1; x < hops.sizes.size(); ++x)
      reachable += hops.sizes[x];
    stories.add_row({ctx.data.config.stories[s].name,
                     eval::text_table::count(info ? info->vote_count : 0),
                     std::to_string(ctx.data.initiators[s]),
                     eval::text_table::count(
                         net.followers().in_degree(ctx.data.initiators[s])),
                     eval::text_table::count(reachable)});
  }
  std::cout << stories << "\n";

  // Temporal/spatial characterization (paper Fig. 2 and Fig. 3 style).
  const eval::fig2_result fig2 = eval::run_fig2(ctx);
  eval::print_fig2(std::cout, fig2);

  const eval::density_series_result s1_hops = eval::run_density_series(
      ctx, 0, social::distance_metric::friendship_hops);
  eval::print_density_series(std::cout, s1_hops,
                             "Density series (story s1, hops)");

  // DL validation, both metrics (paper Fig. 7 + Tables I/II).
  const eval::prediction_experiment hops_pred = eval::run_prediction(
      ctx, 0, social::distance_metric::friendship_hops, /*max_distance=*/6);
  eval::print_fig7(std::cout, hops_pred);
  eval::print_accuracy_table(std::cout, hops_pred, eval::paper_table1(),
                             "Table I reproduction");

  const eval::prediction_experiment int_pred = eval::run_prediction(
      ctx, 0, social::distance_metric::shared_interests, /*max_distance=*/5);
  eval::print_accuracy_table(std::cout, int_pred, eval::paper_table2(),
                             "Table II reproduction");
  return 0;
}
