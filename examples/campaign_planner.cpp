// Campaign planning with the DL model.
//
// A practical use the paper's introduction motivates: you are about to
// seed a message and want to know, BEFORE committing, how influence will
// spread from each candidate source.  Strategy: run a 1-hour pilot from
// each candidate (here: simulated with the mechanistic cascade engine),
// feed the observed hour-1 densities to the DL model, and compare the
// forecast coverage at 24 hours.
//
// Build & run:  ./build/examples/campaign_planner

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/dl_model.h"
#include "digg/simulator.h"
#include "graph/generators.h"
#include "social/density.h"
#include "social/network.h"

namespace {

struct candidate_forecast {
  dlm::social::user_id source;
  std::size_t followers;
  double forecast_coverage_24h;  // group-size weighted density, percent
  double forecast_influenced;    // expected influenced users at 24 h
};

}  // namespace

int main() {
  using namespace dlm;

  // The audience graph (shared by all candidate sources).
  num::rng rand(4242);
  graph::digg_graph_params gp;
  gp.users = 8000;
  gp.attach = 5;
  const graph::digraph followers = graph::digg_follower_graph(gp, rand);

  // Candidate sources: a celebrity account, a mid-tier account, a fresh
  // account (ranked by follower count).
  std::vector<std::pair<std::size_t, graph::node_id>> ranked;
  for (graph::node_id v = 0; v < followers.node_count(); ++v)
    ranked.emplace_back(followers.in_degree(v), v);
  std::sort(ranked.rbegin(), ranked.rend());
  const std::vector<social::user_id> candidates = {
      ranked[5].second, ranked[200].second, ranked[4000].second};

  std::printf("campaign planner: %zu-user audience, 3 candidate sources\n\n",
              followers.node_count());

  std::vector<candidate_forecast> forecasts;
  for (social::user_id source : candidates) {
    // 1-hour pilot: mechanistic cascade, observed for exactly one hour.
    // An engaging creative: strong per-exposure conversion, fast responses.
    digg::cascade_params pilot;
    pilot.horizon_hours = 1;
    pilot.promote_threshold = 20;
    pilot.p_follow = 0.08;
    pilot.response_rate = 2.5;
    num::rng pilot_rand(1000 + source);
    const std::vector<social::vote> votes =
        digg::simulate_cascade(followers, source, 0, 0, pilot, pilot_rand);

    social::social_network_builder builder(followers, 1);
    for (const auto& v : votes) builder.add_vote(v.user, v.story, v.time);
    const social::social_network pilot_net = builder.build();

    const social::distance_partition hops =
        social::partition_by_hops(pilot_net, source, /*max_hops=*/6);
    const int max_d = std::min(6, hops.max_distance());
    if (max_d < 2) continue;
    const social::density_field field(pilot_net, 0, hops, /*horizon=*/1);

    std::vector<double> hour1;
    double signal = 0.0;
    for (int x = 1; x <= max_d; ++x) {
      hour1.push_back(field.at(x, 1));
      signal += hour1.back();
    }
    if (signal <= 0.0) {
      // Pilot produced no early votes beyond the initiator: the DL model
      // (like the paper's) needs a non-zero hour-1 profile.
      forecasts.push_back({source, followers.in_degree(source), 0.0, 0.0});
      continue;
    }

    // Forecast with the DL model (paper hop parameters, domain [1,max_d]).
    const core::dl_parameters params = core::dl_parameters::paper_hops(max_d);
    const core::dl_model model(params, hour1, 1.0, 24.0);
    const std::vector<double> profile24 = model.predict_profile(24.0);

    // Coverage forecast: group-size-weighted mean density, and the
    // absolute expected headcount (the decision metric — coverage alone
    // flatters sources with small reachable sets).
    double weighted = 0.0;
    double total = 0.0;
    for (int x = 1; x <= max_d; ++x) {
      const auto size = static_cast<double>(field.group_size(x));
      weighted += profile24[static_cast<std::size_t>(x - 1)] * size;
      total += size;
    }
    forecasts.push_back({source, followers.in_degree(source),
                         total > 0.0 ? weighted / total : 0.0,
                         weighted / 100.0});
  }

  std::printf("%12s %12s %25s %22s\n", "source", "followers",
              "forecast coverage @24h", "forecast influenced");
  for (const auto& f : forecasts)
    std::printf("%12u %12zu %24.2f%% %22.0f\n", f.source, f.followers,
                f.forecast_coverage_24h, f.forecast_influenced);

  const auto best = std::max_element(
      forecasts.begin(), forecasts.end(), [](const auto& a, const auto& b) {
        return a.forecast_influenced < b.forecast_influenced;
      });
  if (best != forecasts.end())
    std::printf("\nrecommended source: %u (forecast %.0f users influenced by "
                "hour 24, %.2f%% of its reachable audience)\n",
                best->source, best->forecast_influenced,
                best->forecast_coverage_24h);
  return 0;
}
