// Heap-allocation counter for the perf benches.
//
// Including this header in a (single-TU) bench binary replaces the global
// allocation functions with counting wrappers, so a benchmark can report
// allocs/op next to ns/op — the "zero steady-state allocations" claim of
// the solver hot path is asserted by a counter column, not by eyeballing.
// The counter is sampled around the timed loop (allocations_now()), so
// framework setup noise outside the loop is excluded by construction.
//
// Include it in exactly one translation unit per binary: it *defines*
// the replaceable operator new/delete family.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

namespace dlm::bench {

inline std::atomic<std::uint64_t> g_allocations{0};

/// Total heap allocations (operator new family) since process start.
inline std::uint64_t allocations_now() {
  return g_allocations.load(std::memory_order_relaxed);
}

inline void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

inline void* counted_aligned_alloc(std::size_t size, std::size_t alignment) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, alignment, size != 0 ? size : alignment) != 0)
    throw std::bad_alloc();
  return p;
}

}  // namespace dlm::bench

void* operator new(std::size_t size) { return dlm::bench::counted_alloc(size); }
void* operator new[](std::size_t size) {
  return dlm::bench::counted_alloc(size);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  dlm::bench::g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size != 0 ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  dlm::bench::g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size != 0 ? size : 1);
}
void* operator new(std::size_t size, std::align_val_t al) {
  return dlm::bench::counted_aligned_alloc(size,
                                           static_cast<std::size_t>(al));
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return dlm::bench::counted_aligned_alloc(size,
                                           static_cast<std::size_t>(al));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
