// Regenerates paper Figure 2: distribution of the initiators' direct and
// indirect followers over friendship-hop distance for stories s1–s4.
// Paper shape: hop 3 holds >40% of reachable users for every story; the
// population beyond hop 5 collapses.

#include <iostream>

#include "eval/experiments.h"

int main() {
  const dlm::eval::experiment_context ctx =
      dlm::eval::experiment_context::make();
  dlm::eval::print_fig2(std::cout, dlm::eval::run_fig2(ctx));
  return 0;
}
