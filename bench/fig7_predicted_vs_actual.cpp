// Regenerates paper Figure 7(a, b): DL-model predictions vs actual
// densities for story s1 at t = 1..6 under both distance metrics.
// Parameters follow §III.C exactly: (a) d=0.01, K=25,
// r(t)=1.4e^{−1.5(t−1)}+0.25; (b) d=0.05, K=60, r(t)=1.6e^{−(t−1)}+0.1;
// φ is constructed from the hour-1 data by clamped cubic spline.
// Paper shape: predictions closely track the actual surfaces, except the
// interest-metric distance-5 group where the model overpredicts.

#include <iostream>

#include "eval/experiments.h"

int main() {
  using namespace dlm::eval;
  const experiment_context ctx = experiment_context::make();

  const prediction_experiment hops = run_prediction(
      ctx, 0, dlm::social::distance_metric::friendship_hops, 6);
  std::cout << "--- Figure 7(a)\n";
  print_fig7(std::cout, hops);

  const prediction_experiment interests = run_prediction(
      ctx, 0, dlm::social::distance_metric::shared_interests, 5);
  std::cout << "--- Figure 7(b)\n";
  print_fig7(std::cout, interests);
  return 0;
}
