// Ablation: what does the diffusion term buy?
// Full DL model vs per-distance logistic (d = 0, temporal-only — the kind
// of model prior work used) vs heat equation (r = 0, diffusion-only) on
// story s1's 6-hour prediction task.

#include <iostream>

#include "eval/ablations.h"

int main() {
  const dlm::eval::experiment_context ctx =
      dlm::eval::experiment_context::make();
  const dlm::eval::diffusion_ablation_result result =
      dlm::eval::run_diffusion_ablation(
          ctx, 0, dlm::social::distance_metric::friendship_hops, 6);
  dlm::eval::print_diffusion_ablation(std::cout, result);
  return 0;
}
