// Regenerates paper Table I: DL prediction accuracy for story s1 with
// friendship hops as distance — per-distance (1..6) accuracy at t = 2..6
// plus averages.  Paper values: distance-1 average 98.27%, overall 92.81%,
// "average prediction accuracy over all distances during the first 6 hours
// is 92.08%" (abstract).  Shape to reproduce: distance 1 is the best row,
// everything stays high, distance 2 degrades with t.

#include <iostream>

#include "eval/experiments.h"
#include "eval/table.h"

int main() {
  using namespace dlm::eval;
  const experiment_context ctx = experiment_context::make();
  const prediction_experiment result = run_prediction(
      ctx, 0, dlm::social::distance_metric::friendship_hops, 6);
  print_accuracy_table(std::cout, result, paper_table1(),
                       "Table I (paper overall: 92.81%)");

  // The abstract's headline claim.
  std::cout << "abstract claim: average accuracy over all distances during "
               "the first 6 hours\n  paper: 92.08%   measured: "
            << text_table::pct(result.accuracy.overall_average(), 2) << "\n";
  return 0;
}
