// Ablation: grid resolution — ported to the batch engine.  A very fine
// Strang-CN solve of the paper's s1 parameters provides the reference
// surface; the sweep then refines Δx (points per unit) × Δt against it,
// demonstrating convergence and justifying the default 20 points/unit,
// dt = 0.02.  No dataset needed: the reference surface is itself the
// engine "slice".

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/dl_model.h"
#include "engine/scenario_runner.h"

int main() {
  using namespace dlm;

  // s1 hour-1 densities at hop distances 1..6 (paper Fig. 7 setup).
  const std::vector<double> hour1{1.9, 0.8, 1.1, 0.6, 0.4, 0.3};
  const core::dl_parameters params = core::dl_parameters::paper_hops(6.0);
  const int horizon = 6;

  // Reference: Strang-CN at 160 points/unit, dt = 0.0025.
  core::dl_solver_options fine;
  fine.points_per_unit = 160;
  fine.dt = 0.0025;
  const core::dl_model reference(params, hour1, 1.0, horizon, fine);
  std::vector<std::vector<double>> surface(hour1.size());
  for (std::size_t i = 0; i < hour1.size(); ++i) {
    surface[i].push_back(hour1[i]);
    for (int t = 2; t <= horizon; ++t)
      surface[i].push_back(reference.predict(static_cast<int>(i) + 1, t));
  }

  const engine::scenario_context ctx = engine::scenario_context::from_surface(
      "s1-reference", social::distance_metric::friendship_hops,
      std::move(surface), params);

  engine::sweep_spec spec;
  spec.models = {"dl"};
  spec.grid = {5, 10, 20, 40, 80};
  spec.dts = {0.08, 0.02, 0.005};
  spec.t_end = horizon;

  engine::runner_options options;
  options.keep_traces = true;
  const engine::sweep_result result = engine::run_sweep(ctx, spec, options);

  std::printf("Grid-resolution ablation — Strang-CN vs fine reference "
              "(160 pts/unit, dt = 0.0025)\n\n"
              "%-8s %-8s %-14s %-10s %s\n", "pts/u", "dt",
              "max|dev| @t=6", "accuracy", "ms");
  for (std::size_t i = 0; i < result.table.size(); ++i) {
    const engine::result_row& row = result.table.row(i);
    const engine::model_trace& trace = result.traces[i];
    double deviation = 0.0;
    const std::size_t last = trace.times.size() - 1;
    for (std::size_t x = 0; x < trace.distances.size(); ++x) {
      const double ref = ctx.slice(0).actual_at(trace.distances[x], horizon);
      deviation = std::max(deviation,
                           std::abs(trace.predicted[x][last] - ref));
    }
    std::printf("%-8zu %-8g %-14.3e %-10.4f %.2f\n", row.points_per_unit,
                row.dt, deviation, row.accuracy, row.wall_ms);
  }
  std::printf("\n(deviation shrinks with refinement in both axes; the "
              "default 20/0.02 sits\n at ~1e-2 percent-density deviation — "
              "far below the data noise floor)\n");
  return 0;
}
