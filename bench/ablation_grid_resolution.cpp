// Ablation: grid resolution.  Δx/Δt refinement sweep of the Strang-CN
// solver on the paper's s1 parameters, measuring the deviation at integer
// distances (t = 6) from a very fine reference — demonstrates convergence
// and justifies the default 20 points/unit, dt = 0.02.

#include <iostream>

#include "eval/ablations.h"

int main() {
  dlm::eval::print_resolution_ablation(std::cout,
                                       dlm::eval::run_resolution_ablation());
  return 0;
}
