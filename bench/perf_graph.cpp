// Performance micro-benchmarks: graph generation, BFS hop partitioning,
// and interest-distance computation on Digg-scale inputs.

#include <benchmark/benchmark.h>

#include "graph/bfs.h"
#include "graph/generators.h"
#include "numerics/rng.h"
#include "social/interest.h"
#include "social/network.h"

namespace {

using namespace dlm;

void bm_digg_graph_generation(benchmark::State& state) {
  const auto users = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    num::rng rand(1);
    graph::digg_graph_params params;
    params.users = users;
    const graph::digraph g = graph::digg_follower_graph(params, rand);
    benchmark::DoNotOptimize(g.edge_count());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(users));
}
BENCHMARK(bm_digg_graph_generation)->Arg(10000)->Arg(40000);

void bm_bfs_partition(benchmark::State& state) {
  const auto users = static_cast<std::size_t>(state.range(0));
  num::rng rand(2);
  graph::digg_graph_params params;
  params.users = users;
  const graph::digraph g = graph::digg_follower_graph(params, rand);
  for (auto _ : state) {
    const auto dist =
        graph::bfs_distances(g, 12, graph::bfs_direction::predecessors);
    benchmark::DoNotOptimize(dist.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.edge_count()));
}
BENCHMARK(bm_bfs_partition)->Arg(10000)->Arg(40000);

void bm_jaccard_distances(benchmark::State& state) {
  // Vote histories for 5k users over 100 stories.
  const std::size_t users = 5000;
  num::rng rand(3);
  social::social_network_builder builder(graph::digraph(users), 100);
  for (social::user_id u = 0; u < users; ++u) {
    const std::size_t history = 3 + rand.index(12);
    for (std::size_t k = 0; k < history; ++k) {
      builder.add_vote(u, static_cast<social::story_id>(rand.index(100)),
                       1000 + k);
    }
  }
  const social::social_network net = builder.build();
  for (auto _ : state) {
    const std::vector<double> dist = social::interest_distances_from(net, 0);
    benchmark::DoNotOptimize(dist.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(users));
}
BENCHMARK(bm_jaccard_distances);

}  // namespace
