// Regenerates paper Figure 6: the growth-rate function
// r(t) = 1.4·e^{−1.5(t−1)} + 0.25 (Eq. 7) used for the friendship-hop
// prediction experiment.  Paper shape: r decreases from 1.65 at t = 1
// towards the 0.25 floor.

#include <iostream>

#include "eval/experiments.h"

int main() {
  dlm::eval::print_fig6(std::cout, dlm::eval::run_fig6());
  return 0;
}
