// Performance micro-benchmarks: dataset synthesis and the mechanistic
// cascade engine.

#include <benchmark/benchmark.h>

#include "digg/simulator.h"

namespace {

using namespace dlm;

void bm_make_dataset(benchmark::State& state) {
  digg::scenario_config cfg = digg::test_scale_scenario();
  cfg.graph.users = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const digg::digg_dataset data = digg::make_dataset(cfg);
    benchmark::DoNotOptimize(data.network.vote_count());
  }
}
BENCHMARK(bm_make_dataset)->Arg(6000)->Arg(20000)->Unit(benchmark::kMillisecond);

void bm_mechanistic_cascade(benchmark::State& state) {
  num::rng graph_rng(7);
  graph::digg_graph_params gp;
  gp.users = static_cast<std::size_t>(state.range(0));
  const graph::digraph g = graph::digg_follower_graph(gp, graph_rng);
  graph::node_id init = 0;
  for (graph::node_id v = 0; v < g.node_count(); ++v) {
    if (g.in_degree(v) > g.in_degree(init)) init = v;
  }
  std::uint64_t seed = 100;
  for (auto _ : state) {
    num::rng rand(seed++);
    const auto votes =
        digg::simulate_cascade(g, init, 0, 0, digg::cascade_params{}, rand);
    benchmark::DoNotOptimize(votes.size());
  }
}
BENCHMARK(bm_mechanistic_cascade)
    ->Arg(10000)
    ->Arg(40000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
