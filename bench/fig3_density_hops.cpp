// Regenerates paper Figure 3(a–d): density of influenced users over 50
// hours at friendship-hop distances 1..5 for the four representative
// stories.  Paper shape: densities grow monotonically and stabilize; s1
// saturates by ~10 h while less popular stories take 20–30 h; s1 shows the
// hop-3 > hop-2 inversion (evidence for the random/front-page channel).

#include <iostream>

#include "eval/experiments.h"

int main() {
  using namespace dlm::eval;
  const experiment_context ctx = experiment_context::make();
  const char* panels[] = {"Figure 3(a)", "Figure 3(b)", "Figure 3(c)",
                          "Figure 3(d)"};
  for (std::size_t s = 0; s < 4; ++s) {
    const density_series_result result = run_density_series(
        ctx, s, dlm::social::distance_metric::friendship_hops);
    print_density_series(std::cout, result, panels[s]);
  }
  const density_series_result s1 = run_density_series(
      ctx, 0, dlm::social::distance_metric::friendship_hops);
  std::cout << "s1 inversion check (paper: hop 3 denser than hop 2): "
            << (s1.density[2].back() > s1.density[1].back() ? "PRESENT"
                                                            : "ABSENT")
            << "\n";
  return 0;
}
