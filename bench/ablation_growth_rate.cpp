// Ablation: growth-rate family.  Paper's decaying exponential (Eq. 7)
// vs constant rates vs rates calibrated by least squares on the t ≤ 4
// window — temporal r(t) and the §V spatio-temporal r(x, t) = m(x)·r(t),
// fixed and fitted — all evaluated on story s1's t = 2..6 prediction
// task, with fit-window SSE reported for the calibrated rows.

#include <iostream>

#include "eval/ablations.h"

int main() {
  const dlm::eval::experiment_context ctx =
      dlm::eval::experiment_context::make();
  dlm::eval::print_growth_ablation(std::cout,
                                   dlm::eval::run_growth_ablation(ctx, 0));
  return 0;
}
