// Performance micro-benchmarks: DL solver schemes, spline construction,
// and the tridiagonal kernel.
//
// Every solver benchmark reports two counters next to ns/op:
//
//  * allocs_per_solve — heap allocations per whole solve (counting
//    allocator, bench/alloc_counter.h).  With a reused dl_workspace this
//    is the handful of unavoidable per-solve allocations: sampling φ,
//    the times/trace buffers that leave with the dl_solution, and the
//    solution object itself.
//  * allocs_per_step — the marginal allocations of adding a time step,
//    measured by differencing two warm solves that differ only in step
//    count.  The hot-path contract is that this is exactly 0 for every
//    scheme (steady-state stepping never touches the heap).
//
// The bench CI workflow runs this binary with --benchmark_out to emit
// BENCH_solver.json; the counters land in each benchmark's JSON record,
// seeding the perf trajectory (op/grid/scheme are encoded in the names,
// e.g. "bm_strang/20" = strang-cn at 20 points per unit).

#include <benchmark/benchmark.h>

#include <cmath>

#include "alloc_counter.h"
#include "core/dl_batch_workspace.h"
#include "core/dl_model.h"
#include "core/dl_solver.h"
#include "core/dl_workspace.h"
#include "numerics/cubic_spline.h"
#include "numerics/tridiagonal.h"

namespace {

using namespace dlm;

const std::vector<double> observed{1.9, 0.8, 1.1, 0.6, 0.4, 0.3};

core::dl_solver_options options_for(core::dl_scheme scheme,
                                    std::size_t points_per_unit) {
  core::dl_solver_options opts;
  opts.scheme = scheme;
  opts.points_per_unit = points_per_unit;
  opts.dt = scheme == core::dl_scheme::ftcs ? 0.005 : 0.02;
  return opts;
}

/// Marginal allocations per extra time step: two warm solves over the
/// same window and recording grid, one with half the step size.  Any
/// per-step allocation would show up multiplied by the extra steps.
double allocs_per_step(const core::dl_parameters& params,
                       const core::initial_condition& phi,
                       core::dl_solver_options opts) {
  core::dl_workspace ws;
  core::solve_request request{
      .params = &params, .phi = &phi, .options = opts, .workspace = &ws};
  (void)solve_dl(request);  // warm the workspace
  const std::uint64_t before = bench::allocations_now();
  (void)solve_dl(request);
  const std::uint64_t base = bench::allocations_now() - before;
  const double steps_base = std::ceil(5.0 / opts.dt);
  request.options.dt *= 0.5;  // same window + records, twice the steps
  (void)solve_dl(request);
  const std::uint64_t before_fine = bench::allocations_now();
  (void)solve_dl(request);
  const std::uint64_t fine = bench::allocations_now() - before_fine;
  // Signed: a stray one-off allocation (libc lazy init, arena growth)
  // during either measurement must not wrap the counter.
  return static_cast<double>(static_cast<std::int64_t>(fine) -
                             static_cast<std::int64_t>(base)) /
         steps_base;
}

void bm_solve_scheme(benchmark::State& state, core::dl_scheme scheme) {
  const core::dl_parameters params = core::dl_parameters::paper_hops(6.0);
  const core::initial_condition phi(observed);
  const core::dl_solver_options opts =
      options_for(scheme, static_cast<std::size_t>(state.range(0)));
  const double per_step = allocs_per_step(params, phi, opts);
  const core::solve_request request{
      .params = &params, .phi = &phi, .options = opts};
  const std::uint64_t before = bench::allocations_now();
  for (auto _ : state) {
    const core::dl_solution sol = solve_dl(request);
    benchmark::DoNotOptimize(sol.states().back().data());
  }
  state.counters["allocs_per_solve"] = benchmark::Counter(
      static_cast<double>(bench::allocations_now() - before),
      benchmark::Counter::kAvgIterations);
  state.counters["allocs_per_step"] = per_step;
}

void bm_ftcs(benchmark::State& s) { bm_solve_scheme(s, core::dl_scheme::ftcs); }
void bm_strang(benchmark::State& s) {
  bm_solve_scheme(s, core::dl_scheme::strang_cn);
}
void bm_newton(benchmark::State& s) {
  bm_solve_scheme(s, core::dl_scheme::implicit_newton);
}
void bm_rk4(benchmark::State& s) {
  bm_solve_scheme(s, core::dl_scheme::mol_rk4);
}

BENCHMARK(bm_ftcs)->Arg(20)->Arg(80);
BENCHMARK(bm_strang)->Arg(20)->Arg(80)->Arg(320);
BENCHMARK(bm_newton)->Arg(20)->Arg(80);
BENCHMARK(bm_rk4)->Arg(20)->Arg(80);

// Batched lockstep Strang–CN: Arg(width) independent scenarios (same
// grid/dt, per-lane d) advanced over one SoA batch workspace.
// items_processed counts scenarios, so the report's items/sec column is
// scenarios/sec directly — width 1 is the scalar baseline (a group of
// one takes the scalar path inside solve_dl), and the batched-throughput
// claim is items/sec at width >= 4 vs width 1.
void bm_batched_strang_cn(benchmark::State& state) {
  const auto width = static_cast<std::size_t>(state.range(0));
  const core::dl_solver_options opts =
      options_for(core::dl_scheme::strang_cn, 20);
  std::vector<core::dl_parameters> params;
  params.reserve(width);
  for (std::size_t l = 0; l < width; ++l) {
    params.push_back(core::dl_parameters::paper_hops(6.0));
    params.back().d *= 1.0 + 0.15 * static_cast<double>(l);
  }
  const core::initial_condition phi(observed);
  std::vector<core::solve_request> requests;
  requests.reserve(width);
  for (std::size_t l = 0; l < width; ++l)
    requests.push_back({.params = &params[l], .phi = &phi, .options = opts});
  core::dl_batch_workspace ws;
  for (auto _ : state) {
    const std::vector<core::dl_solution> sols = core::solve_dl(requests, ws);
    benchmark::DoNotOptimize(sols.back().states().back().data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(width));
}
BENCHMARK(bm_batched_strang_cn)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// 2-D ADI sheet solve (core::domain::grid): Arg is points_per_unit on
// the distance axis; the interest axis spans [1, 5] at the same
// resolution, so Arg(20) steps an 80×121-node sheet.  The per-step
// contract matches the 1-D schemes: after the workspace warms, a
// steady-state ADI step (two tridiagonal passes + fused reaction
// half-steps) allocates nothing.
void bm_adi_2d_step(benchmark::State& state) {
  core::dl_parameters params = core::dl_parameters::paper_hops(6.0);
  params.dom = core::domain::grid(1.0, 5.0);
  const core::initial_condition phi(observed);
  core::dl_solver_options opts =
      options_for(core::dl_scheme::strang_cn,
                  static_cast<std::size_t>(state.range(0)));
  const double per_step = allocs_per_step(params, phi, opts);
  const core::solve_request request{
      .params = &params, .phi = &phi, .options = opts};
  const std::uint64_t before = bench::allocations_now();
  for (auto _ : state) {
    const core::dl_solution sol = solve_dl(request);
    benchmark::DoNotOptimize(sol.states().back().data());
  }
  state.counters["allocs_per_solve"] = benchmark::Counter(
      static_cast<double>(bench::allocations_now() - before),
      benchmark::Counter::kAvgIterations);
  state.counters["allocs_per_step"] = per_step;
}
BENCHMARK(bm_adi_2d_step)->Arg(20)->Arg(40);

// Coupled-community sweep (core::domain::coupled): Arg is the community
// count K, mixing every pair at a uniform rate.  items_processed counts
// community-lines stepped, so items/sec reads as 1-D-equivalent solves
// per second; the counters pin the same zero-allocation step contract.
void bm_coupled_communities(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  core::dl_parameters params = core::dl_parameters::paper_hops(6.0);
  params.dom = core::domain::coupled(k, 0.05);
  for (std::size_t c = 0; c < k; ++c)
    params.dom.scales.push_back(1.0 / static_cast<double>(c + 1));
  const core::initial_condition phi(observed);
  const core::dl_solver_options opts =
      options_for(core::dl_scheme::strang_cn, 20);
  const double per_step = allocs_per_step(params, phi, opts);
  const core::solve_request request{
      .params = &params, .phi = &phi, .options = opts};
  const std::uint64_t before = bench::allocations_now();
  for (auto _ : state) {
    const core::dl_solution sol = solve_dl(request);
    benchmark::DoNotOptimize(sol.states().back().data());
  }
  state.counters["allocs_per_solve"] = benchmark::Counter(
      static_cast<double>(bench::allocations_now() - before),
      benchmark::Counter::kAvgIterations);
  state.counters["allocs_per_step"] = per_step;
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(k));
}
BENCHMARK(bm_coupled_communities)->Arg(2)->Arg(4)->Arg(8);

void bm_spline_build(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<double>(i);
    y[i] = std::sin(0.1 * static_cast<double>(i));
  }
  for (auto _ : state) {
    const num::cubic_spline s = num::cubic_spline::flat_ends(x, y);
    benchmark::DoNotOptimize(s(0.5 * static_cast<double>(n)));
  }
}
BENCHMARK(bm_spline_build)->Arg(8)->Arg(64)->Arg(512);

num::tridiagonal_matrix laplacian_like(std::size_t n) {
  num::tridiagonal_matrix a(n);
  for (std::size_t i = 0; i < n; ++i) {
    a.diag[i] = 4.0;
    if (i + 1 < n) a.upper[i] = -1.0;
    if (i > 0) a.lower[i - 1] = -1.0;
  }
  return a;
}

void bm_tridiagonal_solve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const num::tridiagonal_matrix a = laplacian_like(n);
  std::vector<double> rhs(n, 1.0), scratch;
  for (auto _ : state) {
    std::vector<double> x = rhs;
    num::solve_tridiagonal_in_place(a, x, scratch);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(bm_tridiagonal_solve)->Arg(101)->Arg(1001)->Arg(10001);

// The cached-elimination solve the Strang–CN scheme runs every step:
// the coefficient sweep is amortized into factor(), so each solve is
// the rhs forward sweep + back substitution only.
void bm_tridiagonal_factored_solve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const num::tridiagonal_matrix a = laplacian_like(n);
  num::tridiagonal_factorization f;
  f.factor(a);
  std::vector<double> rhs(n, 1.0), x(n);
  for (auto _ : state) {
    x = rhs;  // capacity reused: the copy stays off the heap
    f.solve_in_place(x);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(bm_tridiagonal_factored_solve)->Arg(101)->Arg(1001)->Arg(10001);

}  // namespace
