// Performance micro-benchmarks: DL solver schemes, spline construction,
// and the tridiagonal kernel.

#include <benchmark/benchmark.h>

#include <cmath>

#include "core/dl_model.h"
#include "core/dl_solver.h"
#include "numerics/cubic_spline.h"
#include "numerics/tridiagonal.h"

namespace {

using namespace dlm;

const std::vector<double> observed{1.9, 0.8, 1.1, 0.6, 0.4, 0.3};

void bm_solve_scheme(benchmark::State& state, core::dl_scheme scheme) {
  const core::dl_parameters params = core::dl_parameters::paper_hops(6.0);
  const core::initial_condition phi(observed);
  core::dl_solver_options opts;
  opts.scheme = scheme;
  opts.points_per_unit = static_cast<std::size_t>(state.range(0));
  opts.dt = scheme == core::dl_scheme::ftcs ? 0.005 : 0.02;
  for (auto _ : state) {
    const core::dl_solution sol = solve_dl(params, phi, 1.0, 6.0, opts);
    benchmark::DoNotOptimize(sol.states().back().data());
  }
}

void bm_ftcs(benchmark::State& s) { bm_solve_scheme(s, core::dl_scheme::ftcs); }
void bm_strang(benchmark::State& s) {
  bm_solve_scheme(s, core::dl_scheme::strang_cn);
}
void bm_newton(benchmark::State& s) {
  bm_solve_scheme(s, core::dl_scheme::implicit_newton);
}
void bm_rk4(benchmark::State& s) {
  bm_solve_scheme(s, core::dl_scheme::mol_rk4);
}

BENCHMARK(bm_ftcs)->Arg(20)->Arg(80);
BENCHMARK(bm_strang)->Arg(20)->Arg(80)->Arg(320);
BENCHMARK(bm_newton)->Arg(20)->Arg(80);
BENCHMARK(bm_rk4)->Arg(20)->Arg(80);

void bm_spline_build(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<double>(i);
    y[i] = std::sin(0.1 * static_cast<double>(i));
  }
  for (auto _ : state) {
    const num::cubic_spline s = num::cubic_spline::flat_ends(x, y);
    benchmark::DoNotOptimize(s(0.5 * static_cast<double>(n)));
  }
}
BENCHMARK(bm_spline_build)->Arg(8)->Arg(64)->Arg(512);

void bm_tridiagonal_solve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  num::tridiagonal_matrix a(n);
  for (std::size_t i = 0; i < n; ++i) {
    a.diag[i] = 4.0;
    if (i + 1 < n) a.upper[i] = -1.0;
    if (i > 0) a.lower[i - 1] = -1.0;
  }
  std::vector<double> rhs(n, 1.0), scratch;
  for (auto _ : state) {
    std::vector<double> x = rhs;
    num::solve_tridiagonal_in_place(a, x, scratch);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(bm_tridiagonal_solve)->Arg(101)->Arg(1001)->Arg(10001);

}  // namespace
