// Regenerates paper Figure 4: story s1's density-vs-distance profile, one
// curve per hour t = 1..50.  Paper shape: curves rise with t while the
// hour-over-hour increments shrink — the observation motivating the
// decaying growth-rate function r(t) of Eq. 7.

#include <iostream>

#include "eval/experiments.h"

int main() {
  const dlm::eval::experiment_context ctx =
      dlm::eval::experiment_context::make();
  dlm::eval::print_fig4(std::cout, dlm::eval::run_fig4(ctx));
  return 0;
}
