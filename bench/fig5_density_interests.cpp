// Regenerates paper Figure 5(a–d): density of influenced users over 50
// hours with shared-interest distance (5 groups) for the four stories.
// Paper shape: density decreases monotonically with interest distance for
// every story — interest is a good distance metric.

#include <iostream>

#include "eval/experiments.h"

int main() {
  using namespace dlm::eval;
  const experiment_context ctx = experiment_context::make();
  const char* panels[] = {"Figure 5(a)", "Figure 5(b)", "Figure 5(c)",
                          "Figure 5(d)"};
  bool all_monotone = true;
  for (std::size_t s = 0; s < 4; ++s) {
    const density_series_result result = run_density_series(
        ctx, s, dlm::social::distance_metric::shared_interests);
    print_density_series(std::cout, result, panels[s]);
    for (std::size_t i = 1; i < result.density.size(); ++i) {
      if (result.density[i - 1].back() < result.density[i].back())
        all_monotone = false;
    }
  }
  std::cout << "monotone-decreasing-in-distance check (paper: holds for all "
               "four stories): "
            << (all_monotone ? "HOLDS" : "VIOLATED") << "\n";
  return 0;
}
