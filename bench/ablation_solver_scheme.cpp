// Ablation: numerical scheme choice (FTCS vs Strang-CN vs implicit Newton
// vs method-of-lines RK4) on the same s1 prediction task — accuracy,
// deviation from a fine reference solution, and wall time per solve.

#include <iostream>

#include "eval/ablations.h"

int main() {
  const dlm::eval::experiment_context ctx =
      dlm::eval::experiment_context::make();
  dlm::eval::print_scheme_ablation(std::cout,
                                   dlm::eval::run_scheme_ablation(ctx, 0));
  return 0;
}
