// Ablation: numerical scheme choice (FTCS vs Strang-CN vs implicit Newton
// vs method-of-lines RK4) on the s1 prediction task — ported to the batch
// engine: one sweep over model "dl" × all four schemes on the s1/hops and
// s1/interests slices of the calibrated dataset, scored and timed by
// engine::run_sweep.

#include <cstdio>

#include "digg/simulator.h"
#include "engine/scenario_runner.h"

int main() {
  using namespace dlm;

  std::printf("building calibrated dataset...\n");
  const engine::scenario_context ctx = engine::scenario_context::from_dataset(
      digg::make_dataset(digg::scenario_config{}));

  engine::sweep_spec spec;
  spec.models = {"dl"};
  spec.slices = {0, 1};  // s1/hops, s1/interests
  spec.schemes = {core::dl_scheme::ftcs, core::dl_scheme::strang_cn,
                  core::dl_scheme::implicit_newton, core::dl_scheme::mol_rk4};

  const engine::sweep_result result = engine::run_sweep(ctx, spec);

  std::printf("\nScheme ablation — DL model, paper parameters, t = 2..6\n"
              "(all four schemes must agree on the smooth paper regime;\n"
              " they differ in cost and stability margin)\n\n%s\n",
              result.table.to_text().c_str());
  const engine::result_row& best = result.table.best();
  std::printf("best scheme: %s on %s (%.2f%%), sweep wall time %.1f ms\n",
              best.scheme.c_str(), best.slice.c_str(), 100.0 * best.accuracy,
              result.wall_ms);
  return 0;
}
