// Extension (paper §V future work): growth rate as a function of BOTH
// distance and time.
//
// The paper closes Table II with: "the actual density of influenced users
// at distance 5 drops faster ... This scenario tells us that the model can
// be refined by choosing a function of both distance and time for growth
// rate r, which we will explore as future work."
//
// This bench implements that refinement: per-distance rate multipliers
// m(x) are recovered from a short observation window (t ≤ 3), the
// generalized solver runs with r(x,t) = m(x)·r_paper(t), and the Table II
// experiment is repeated.  Expected outcome: the distance-5 row recovers
// from ~40% to a level comparable with the other rows while rows 1–4 stay
// high.

#include <algorithm>
#include <iostream>

#include "core/dl_model.h"
#include "core/dl_variable.h"
#include "eval/experiments.h"
#include "eval/table.h"

int main() {
  using namespace dlm;
  using eval::text_table;

  const eval::experiment_context ctx = eval::experiment_context::make();
  const social::density_field field =
      ctx.density(0, social::distance_metric::shared_interests);
  const int upper = std::min(5, field.max_distance());

  // Observation window: hours 1..3 (the "initial spreading phase").
  std::vector<double> initial, at_t3;
  for (int x = 1; x <= upper; ++x) {
    initial.push_back(field.at(x, 1));
    at_t3.push_back(field.at(x, 3));
  }

  const core::dl_parameters paper = core::dl_parameters::paper_interest(upper);

  // Baseline: the paper's constant-in-x model.
  const core::dl_model baseline(paper, initial, 1.0, 6.0);

  // Refinement: r(x, t) = m(x) · r_paper(t), m fitted on t <= 3.
  const std::vector<double> multipliers = core::fit_rate_profile(
      initial, at_t3, paper.r.base(), paper.k, 1.0, 3.0);
  core::dl_variable_parameters refined =
      core::dl_variable_parameters::from_constant(paper);
  refined.r = core::scaled_rate_field(multipliers, paper.r.base(), paper.x_min);
  const core::initial_condition phi(initial);
  const core::dl_solution refined_sol =
      core::solve_dl_variable(refined, phi, 1.0, 6.0);

  std::cout << "Extension — r(x,t) refinement of the interest-metric model\n"
            << "(paper Section V future work; fitted on the t<=3 window)\n\n"
            << "fitted per-distance rate multipliers m(x): ";
  for (double m : multipliers) std::cout << text_table::num(m, 3) << " ";
  std::cout << "\n\n";

  text_table table({"distance", "baseline r(t) accuracy",
                    "refined r(x,t) accuracy"});
  double base_total = 0.0, refined_total = 0.0;
  double base_row5 = 0.0, refined_row5 = 0.0;
  for (int x = 1; x <= upper; ++x) {
    double base_acc = 0.0, ref_acc = 0.0;
    for (int t = 4; t <= 6; ++t) {  // held-out hours (fit used t <= 3)
      const double actual = field.at(x, t);
      base_acc += core::prediction_accuracy(baseline.predict(x, t), actual);
      ref_acc += core::prediction_accuracy(
          refined_sol.at(static_cast<double>(x), t), actual);
    }
    base_acc /= 3.0;
    ref_acc /= 3.0;
    base_total += base_acc;
    refined_total += ref_acc;
    if (x == upper) {
      base_row5 = base_acc;
      refined_row5 = ref_acc;
    }
    table.add_row({std::to_string(x), text_table::pct(base_acc, 2),
                   text_table::pct(ref_acc, 2)});
  }
  table.add_row({"overall",
                 text_table::pct(base_total / upper, 2),
                 text_table::pct(refined_total / upper, 2)});
  std::cout << table;

  std::cout << "\ndistance-5 anomaly (held-out t=4..6): baseline "
            << text_table::pct(base_row5, 2) << " -> refined "
            << text_table::pct(refined_row5, 2)
            << (refined_row5 > base_row5 + 0.1 ? "  (RECOVERED)" : "")
            << "\n";
  return 0;
}
