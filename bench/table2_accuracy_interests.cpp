// Regenerates paper Table II: DL prediction accuracy for story s1 with
// shared interests as distance — per-group (1..5) accuracy at t = 2..6
// plus averages.  Paper shape: groups 1–4 all above 91% on average while
// group 5 collapses to 39.84% (the model overpredicts; the actual density
// of the most-distant interest group grows anomalously slowly), declining
// monotonically from 66% at t=2 to 26% at t=6.

#include <iostream>

#include "eval/experiments.h"
#include "eval/table.h"

int main() {
  using namespace dlm::eval;
  const experiment_context ctx = experiment_context::make();
  const prediction_experiment result = run_prediction(
      ctx, 0, dlm::social::distance_metric::shared_interests, 5);
  print_accuracy_table(std::cout, result, paper_table2(), "Table II");

  const std::vector<double> rows = result.accuracy.row_averages();
  std::cout << "distance-5 anomaly check (paper: worst row by far, 39.84%):\n"
            << "  measured distance-5 average: "
            << text_table::pct(rows.back(), 2) << ", best other row: "
            << text_table::pct(
                   *std::max_element(rows.begin(), rows.end() - 1), 2)
            << "\n";
  return 0;
}
