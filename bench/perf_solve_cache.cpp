// Cold-vs-warm solve-cache timing on an engine calibration sweep.
//
// The cache is keyed on canonical scenario identity (see
// engine/solve_cache.h): a cold sweep pays every PDE solve — dominated by
// the calibration lattice + Nelder–Mead probes — while a warm repeat of
// the identical sweep must serve everything from the cache.  The spread
// between the two is the headline number of the caching PR.  The spatial
// pair repeats the measurement on the r(x, t) axis (a concrete separable
// field + the "calibrate-spatial" per-hop-multiplier fit).  The
// warm-from-disk bench extends the pair across a process boundary: load
// the saved cache file into a fresh cache, re-run, zero solves — with
// the file size (cache_file_bytes) and the bare save/load costs
// reported alongside.  The journal bench prices the WAL tax of the
// crash-safety PR: journal_ns_per_entry and wal_bytes per appended
// trace record.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>

#include <unistd.h>

#include "alloc_counter.h"
#include "core/dl_model.h"
#include "engine/cache_io.h"
#include "engine/cache_journal.h"
#include "engine/scenario_runner.h"
#include "engine/solve_cache.h"

namespace {

using namespace dlm;

/// Attaches the heap-allocation count of the timed loop as an
/// allocs-per-sweep counter (see bench/alloc_counter.h); the workflow's
/// --benchmark_out JSON picks it up as a column.
class alloc_scope {
 public:
  explicit alloc_scope(benchmark::State& state)
      : state_(state), before_(bench::allocations_now()) {}
  ~alloc_scope() {
    state_.counters["allocs_per_sweep"] = benchmark::Counter(
        static_cast<double>(bench::allocations_now() - before_),
        benchmark::Counter::kAvgIterations);
  }

 private:
  benchmark::State& state_;
  std::uint64_t before_;
};

engine::scenario_context make_context() {
  core::dl_parameters truth = core::dl_parameters::paper_hops(6.0);
  truth.d = 0.06;
  truth.k = 22.0;
  const std::vector<double> initial{1.9, 0.8, 1.1, 0.6, 0.4, 0.3};
  const core::dl_model model(truth, initial, 1.0, 6.0);
  std::vector<std::vector<double>> surface(initial.size());
  for (std::size_t i = 0; i < initial.size(); ++i) {
    surface[i].push_back(initial[i]);
    for (int t = 2; t <= 6; ++t)
      surface[i].push_back(model.predict(static_cast<int>(i) + 1, t));
  }
  return engine::scenario_context::from_surface(
      "bench", social::distance_metric::friendship_hops, std::move(surface),
      core::dl_parameters::paper_hops(6.0));
}

engine::sweep_spec make_spec() {
  engine::sweep_spec spec;
  spec.models = {"dl"};
  spec.grid = {10, 20};
  spec.rates = {"preset", "constant:0.5", "calibrate-fixed:3"};
  spec.t_end = 6.0;
  return spec;
}

void BM_calibration_sweep_cold(benchmark::State& state) {
  const engine::scenario_context ctx = make_context();
  const engine::sweep_spec spec = make_spec();
  const alloc_scope allocs(state);
  for (auto _ : state) {
    engine::solve_cache cache;  // fresh: every solve runs
    engine::runner_options options;
    options.cache = &cache;
    benchmark::DoNotOptimize(engine::run_sweep(ctx, spec, options));
  }
}
BENCHMARK(BM_calibration_sweep_cold)->Unit(benchmark::kMillisecond);

void BM_calibration_sweep_warm(benchmark::State& state) {
  const engine::scenario_context ctx = make_context();
  const engine::sweep_spec spec = make_spec();
  engine::solve_cache cache;
  engine::runner_options options;
  options.cache = &cache;
  (void)engine::run_sweep(ctx, spec, options);  // warm it up once
  const alloc_scope allocs(state);
  for (auto _ : state)
    benchmark::DoNotOptimize(engine::run_sweep(ctx, spec, options));
}
BENCHMARK(BM_calibration_sweep_warm)->Unit(benchmark::kMillisecond);

engine::sweep_spec make_spatial_spec() {
  // The §V spatial-rate axis: a concrete separable field plus the
  // per-hop-multiplier fit family ("calibrate-spatial" probes carry 6
  // extra optimizer dimensions, so its cache pressure is the worst case).
  engine::sweep_spec spec;
  spec.models = {"dl"};
  spec.rates = {"spatial:preset|1.3,1,0.75,0.6,0.5,0.45",
                "calibrate-spatial:3"};
  spec.t_end = 6.0;
  return spec;
}

void BM_spatial_sweep_cold(benchmark::State& state) {
  const engine::scenario_context ctx = make_context();
  const engine::sweep_spec spec = make_spatial_spec();
  const alloc_scope allocs(state);
  for (auto _ : state) {
    engine::solve_cache cache;  // fresh: every solve runs
    engine::runner_options options;
    options.cache = &cache;
    benchmark::DoNotOptimize(engine::run_sweep(ctx, spec, options));
  }
}
BENCHMARK(BM_spatial_sweep_cold)->Unit(benchmark::kMillisecond);

void BM_spatial_sweep_warm(benchmark::State& state) {
  const engine::scenario_context ctx = make_context();
  const engine::sweep_spec spec = make_spatial_spec();
  engine::solve_cache cache;
  engine::runner_options options;
  options.cache = &cache;
  (void)engine::run_sweep(ctx, spec, options);  // warm it up once
  const alloc_scope allocs(state);
  for (auto _ : state)
    benchmark::DoNotOptimize(engine::run_sweep(ctx, spec, options));
}
BENCHMARK(BM_spatial_sweep_warm)->Unit(benchmark::kMillisecond);

void BM_calibration_sweep_warm_from_disk(benchmark::State& state) {
  // The persistence PR's headline: the same warm sweep, but the warmth
  // crossed a process boundary.  Each iteration loads the saved cache
  // file into a fresh cache — exactly what a second process pays — and
  // re-runs the sweep, which must be pure lookups.  The file size rides
  // along as a counter, so BENCH_solve_cache.json tracks format bloat.
  const engine::scenario_context ctx = make_context();
  const engine::sweep_spec spec = make_spec();
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() /
      ("dlm_perf_cache_" + std::to_string(::getpid()) + ".bin");
  {
    engine::solve_cache cache;
    engine::runner_options options;
    options.cache = &cache;
    (void)engine::run_sweep(ctx, spec, options);  // one cold run, saved
    engine::save_cache(cache, path);
  }
  state.counters["cache_file_bytes"] = benchmark::Counter(
      static_cast<double>(std::filesystem::file_size(path)));
  const alloc_scope allocs(state);
  for (auto _ : state) {
    engine::solve_cache cache;  // fresh, as in a new process
    if (!engine::load_cache(cache, path).loaded)
      state.SkipWithError("cache file failed to load");
    engine::runner_options options;
    options.cache = &cache;
    benchmark::DoNotOptimize(engine::run_sweep(ctx, spec, options));
    if (cache.stats().misses != 0)
      state.SkipWithError("warm-from-disk sweep performed a solve");
  }
  std::filesystem::remove(path);
}
BENCHMARK(BM_calibration_sweep_warm_from_disk)->Unit(benchmark::kMillisecond);

void BM_cache_save(benchmark::State& state) {
  // Serialization cost alone (the shutdown flush of dl_serve).
  const engine::scenario_context ctx = make_context();
  engine::solve_cache cache;
  engine::runner_options options;
  options.cache = &cache;
  (void)engine::run_sweep(ctx, make_spec(), options);
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() /
      ("dlm_perf_cache_save_" + std::to_string(::getpid()) + ".bin");
  const alloc_scope allocs(state);
  for (auto _ : state) engine::save_cache(cache, path);
  state.counters["cache_file_bytes"] = benchmark::Counter(
      static_cast<double>(std::filesystem::file_size(path)));
  std::filesystem::remove(path);
}
BENCHMARK(BM_cache_save)->Unit(benchmark::kMillisecond);

void BM_cache_load(benchmark::State& state) {
  // Deserialization + checksum cost alone (the startup load).
  const engine::scenario_context ctx = make_context();
  std::string bytes;
  {
    engine::solve_cache cache;
    engine::runner_options options;
    options.cache = &cache;
    (void)engine::run_sweep(ctx, make_spec(), options);
    bytes = engine::serialize_cache(cache);
  }
  const alloc_scope allocs(state);
  for (auto _ : state) {
    engine::solve_cache cache;
    if (!engine::deserialize_cache(cache, bytes).loaded)
      state.SkipWithError("cache bytes failed to load");
    benchmark::DoNotOptimize(cache);
  }
}
BENCHMARK(BM_cache_load)->Unit(benchmark::kMillisecond);

void BM_journal_append(benchmark::State& state) {
  // The WAL tax: per-insert cost of journaling a realistic trace record
  // (engine/cache_journal.h), reported as journal_ns_per_entry so the
  // sweep-throughput budget can be checked against it, plus wal_bytes —
  // the on-disk growth per entry — so compaction cadence stays honest.
  engine::model_trace trace;
  trace.distances = {1, 2, 3, 4, 5, 6};
  trace.times = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  trace.predicted.assign(trace.distances.size(),
                         std::vector<double>(trace.times.size(), 0.25));
  trace.effective_dt = 0.01;
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() /
      ("dlm_perf_journal_" + std::to_string(::getpid()) + ".wal");
  std::filesystem::remove(path);
  std::size_t appended = 0;
  std::uint64_t wal_bytes = 0;
  const alloc_scope allocs(state);
  {
    engine::cache_journal journal(path);
    for (auto _ : state) {
      journal.append_trace("bench/journal/" + std::to_string(appended++),
                           trace);
      if (!journal.write_error().empty())
        state.SkipWithError("journal append failed");
    }
    wal_bytes = journal.bytes();
  }
  // kIsIterationInvariantRate computes value * iterations / elapsed;
  // inverted with value 1e-9 that is elapsed_ns / iterations.
  state.counters["journal_ns_per_entry"] = benchmark::Counter(
      1e-9, benchmark::Counter::kIsIterationInvariantRate |
                benchmark::Counter::kInvert);
  state.counters["wal_bytes"] =
      benchmark::Counter(static_cast<double>(wal_bytes));
  std::filesystem::remove(path);
}
BENCHMARK(BM_journal_append);

void BM_calibration_sweep_uncached(benchmark::State& state) {
  // Baseline without any cache, for the no-regression comparison on the
  // plain path.
  const engine::scenario_context ctx = make_context();
  const engine::sweep_spec spec = make_spec();
  const alloc_scope allocs(state);
  for (auto _ : state)
    benchmark::DoNotOptimize(engine::run_sweep(ctx, spec, {}));
}
BENCHMARK(BM_calibration_sweep_uncached)->Unit(benchmark::kMillisecond);

}  // namespace
