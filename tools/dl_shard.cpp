// Sharded sweep driver — fork/exec N worker processes over one
// deterministic sweep and merge their outputs byte-identically.
//
// The engine's scenario expansion is a deterministic indexed list and
// engine::shard_chunks partitions it batch-chunk-aligned (see
// engine/shard.h), so each worker process runs a disjoint slice of the
// sweep with global scenario numbering intact.  This driver re-execs
// itself as the workers, waits for them, and recombines:
//
//   * shard CSVs   → engine::merge_tables → one CSV, byte-identical to
//                    the unsharded run's;
//   * shard caches → engine::merge_cache_files → one cache file,
//                    byte-identical to the unsharded run's.
//
// Modes:
//
//   dl_shard --shards N [--policy contiguous|strided]
//            [--sweep bench|comparison] [--csv out.csv] [--text out.txt]
//            [--cache-file out.cache] [--threads T] [--batch-width W]
//            [--timeout S] [--retries R] [--backoff MS] [--allow-partial]
//            [--manifest out.json] [--journal] [--fault PLAN]
//       run the sweep as N local worker processes and merge.  Workers
//       run under engine::supervise: a crashed worker's diagnostic
//       names the signal and shard, a hung worker is killed after
//       --timeout seconds, failures retry up to --retries times with
//       exponential backoff.  By default any finally-failed worker
//       aborts the run (and its siblings); with --allow-partial the
//       completed shards still merge — each surviving row byte-
//       identical to the unsharded run's — and a JSON manifest records
//       per-worker outcomes plus the missing sweep indices.  --journal
//       write-ahead-journals each worker's cache ("<cache>.wal", see
//       engine/cache_journal.h); --fault injects deterministic
//       failures (engine/fault.h grammar) for tests and drills.
//
//   dl_shard --worker i/N[:policy] --csv out.csv [--sweep ...]
//            [--cache-file f] [--threads T] [--batch-width W]
//            [--socket /path/dlm.sock]
//       run one shard (the driver spawns these; also usable by hand —
//       e.g. one per machine).  With --socket the shard's scenarios
//       execute against a resident dl_serve server over the wire
//       protocol instead of solving locally (engine::run_shard_remote).
//
//   dl_shard --merge out.csv in0.csv in1.csv ...
//   dl_shard --merge-cache out.cache in0.cache in1.cache ...
//       recombine shard outputs produced elsewhere (other machines,
//       earlier runs).
//
//   dl_shard --bench [--bench-out BENCH_shard.json]
//            [--bench-shards 1,2,4,8] [--bench-rates R]
//       scaling report: scenarios/sec at each process count (workers
//       pinned to 1 thread each), merge cost separately, and the
//       byte-identity check against the 1-process run.  Honest by
//       construction: the JSON records hardware_concurrency, so a
//       single-core box showing ~1× is the expected reading there.
//
// Sweeps: "bench" is a self-contained DL surface (the dl_serve test
// surface) × one scheme × 3 grids × R constant rates — pure solver
// throughput.  "comparison" is examples/model_comparison's organic-
// cascade sweep (every model family × schemes × grids × rates ×
// domains, calibration included) — the full-diversity workload CI
// byte-diffs against `model_comparison --shard`.

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/dl_model.h"
#include "digg/simulator.h"
#include "engine/cache_io.h"
#include "engine/fault.h"
#include "engine/format.h"
#include "engine/scenario_runner.h"
#include "engine/shard.h"
#include "engine/supervisor.h"
#include "graph/generators.h"

namespace {

using namespace dlm;
using clock_type = std::chrono::steady_clock;

double elapsed_ms(clock_type::time_point start) {
  return std::chrono::duration<double, std::milli>(clock_type::now() - start)
      .count();
}

// ------------------------------------------------------------------ CLI

const char* kUsage =
    "usage: dl_shard --shards N [--policy contiguous|strided]\n"
    "                [--sweep bench|comparison] [--csv out.csv]\n"
    "                [--text out.txt] [--cache-file out.cache]\n"
    "                [--threads T] [--batch-width W] [--timeout S]\n"
    "                [--retries R] [--backoff MS] [--allow-partial]\n"
    "                [--manifest out.json] [--journal] [--fault PLAN]\n"
    "       dl_shard --worker <i>/<N>[:policy] --csv out.csv\n"
    "                [--sweep ...] [--cache-file f] [--threads T]\n"
    "                [--batch-width W] [--socket /path/dlm.sock]\n"
    "                [--journal] [--fault PLAN]\n"
    "       dl_shard --merge out.csv in0.csv in1.csv ...\n"
    "       dl_shard --merge-cache out.cache in0.cache in1.cache ...\n"
    "       dl_shard --bench [--bench-out BENCH_shard.json]\n"
    "                [--bench-shards 1,2,4,8] [--bench-rates R]\n";

/// CLI rejection in the spec-grammar style: the reason and the 1-based
/// argv position of the offending argument, then the usage block.
int bad_cli(const std::string& reason, int position) {
  std::fprintf(stderr, "dl_shard: %s at position %d in command line\n\n%s",
               reason.c_str(), position, kUsage);
  return 2;
}

struct cli_options {
  // driver
  std::size_t shards = 0;
  engine::shard_policy policy = engine::shard_policy::contiguous;
  // worker
  std::optional<engine::shard_spec> worker;
  std::string socket_path;
  // shared
  std::string sweep = "bench";
  std::string csv_path;
  std::string text_path;
  std::string cache_path;
  std::size_t threads = 0;
  std::size_t batch_width = 0;
  // failure domain (driver: supervision; worker: fault arming + journal)
  double timeout_sec = 0.0;
  std::size_t retries = 0;
  double backoff_ms = 100.0;
  bool allow_partial = false;
  std::string manifest_path;  ///< default: "<csv>.manifest.json"
  bool journal = false;
  std::string fault_spec;
  // merge CLIs: out followed by inputs, argv positions kept for errors
  bool merge_tables_mode = false;
  bool merge_cache_mode = false;
  std::vector<std::pair<std::string, int>> merge_files;
  // bench
  bool bench = false;
  std::string bench_out = "BENCH_shard.json";
  std::vector<std::size_t> bench_shards = {1, 2, 4, 8};
  std::size_t bench_rates = 128;
};

// ----------------------------------------------------------- the sweeps

struct sweep_setup {
  engine::scenario_context context;
  engine::sweep_spec spec;
  fit::calibration_options calibration;
};

/// The dl_serve --test-surface slice: a surface generated by the DL
/// model itself, so calibrate specs recover the generating parameters.
engine::scenario_context make_test_surface() {
  core::dl_parameters truth = core::dl_parameters::paper_hops(6.0);
  truth.d = 0.06;
  truth.k = 22.0;
  const std::vector<double> initial{1.9, 0.8, 1.1, 0.6, 0.4, 0.3};
  const core::dl_model model(truth, initial, 1.0, 6.0);
  std::vector<std::vector<double>> surface(initial.size());
  for (std::size_t i = 0; i < initial.size(); ++i) {
    surface[i].push_back(initial[i]);
    for (int t = 2; t <= 6; ++t)
      surface[i].push_back(model.predict(static_cast<int>(i) + 1, t));
  }
  return engine::scenario_context::from_surface(
      "bench", social::distance_metric::friendship_hops, std::move(surface),
      core::dl_parameters::paper_hops(6.0));
}

/// Pure-throughput sweep for the scaling bench: one slice, one scheme,
/// 3 grid resolutions × `rate_count` distinct constant rates (distinct
/// cache keys, so no accidental dedup).
sweep_setup make_bench_sweep(std::size_t rate_count) {
  sweep_setup setup;
  setup.context = make_test_surface();
  setup.spec.models = {"dl"};
  setup.spec.schemes = {core::dl_scheme::strang_cn};
  setup.spec.grid = {80, 160, 320};
  setup.spec.dts = {0.02};
  setup.spec.rates.clear();
  for (std::size_t k = 0; k < rate_count; ++k)
    setup.spec.rates.push_back(
        "constant:" + engine::format_full_precision(
                          0.05 + 0.0025 * static_cast<double>(k)));
  return setup;
}

/// examples/model_comparison's organic-cascade sweep, verbatim — the
/// driver must expand the identical scenario list for its shard CSVs to
/// merge byte-identically with that binary's `--shard` outputs.
sweep_setup make_comparison_sweep() {
  num::rng rand(777);
  graph::digg_graph_params gp;
  gp.users = 12000;
  gp.attach = 6;
  graph::digraph followers = graph::digg_follower_graph(gp, rand);
  graph::node_id initiator = 0;
  for (graph::node_id v = 0; v < followers.node_count(); ++v) {
    if (followers.in_degree(v) > followers.in_degree(initiator)) initiator = v;
  }
  digg::cascade_params cp;
  cp.horizon_hours = 12;
  const std::vector<social::vote> votes =
      digg::simulate_cascade(followers, initiator, 0, 0, cp, rand);

  sweep_setup setup;
  setup.context = engine::scenario_context::from_cascade(
      std::move(followers), initiator, votes, cp.horizon_hours);
  setup.spec.models = engine::default_registry().names();
  setup.spec.schemes = {core::dl_scheme::ftcs, core::dl_scheme::strang_cn,
                        core::dl_scheme::implicit_newton,
                        core::dl_scheme::mol_rk4};
  setup.spec.grid = {20, 40};
  setup.spec.rates = {"preset", "constant:0.5",
                      "spatial:preset|1.2,1,0.8,0.65", "calibrate",
                      "calibrate-spatial"};
  setup.spec.domains = {"line", "grid2d:1,4", "comm:3|mix=0.05"};
  setup.spec.t_end = cp.horizon_hours;
  setup.calibration.coarse_steps = 3;
  return setup;
}

sweep_setup make_sweep(const std::string& name, std::size_t bench_rates) {
  if (name == "bench") return make_bench_sweep(bench_rates);
  if (name == "comparison") return make_comparison_sweep();
  throw std::invalid_argument("unknown sweep '" + name +
                              "' (bench, comparison)");
}

// ------------------------------------------------------------- file I/O

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw std::runtime_error("cannot open '" + path.string() + "'");
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::filesystem::path& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out)
    throw std::runtime_error("cannot open '" + path.string() +
                             "' for writing");
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out)
    throw std::runtime_error("write to '" + path.string() + "' failed");
}

// ----------------------------------------------------- process spawning

/// The path this binary was launched from, for re-exec'ing workers.
std::string self_executable(const char* argv0) {
  char buffer[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (n > 0) {
    buffer[n] = '\0';
    return buffer;
  }
  return argv0;
}

/// Minimal JSON string escaping for the partial-run manifest (worker
/// diagnostics carry signal names and quoted paths).
std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ------------------------------------------------------------- the merge

engine::result_table merge_csv_files(
    const std::vector<std::filesystem::path>& inputs) {
  std::vector<engine::result_table> tables;
  tables.reserve(inputs.size());
  for (const std::filesystem::path& path : inputs)
    tables.push_back(engine::result_table::from_csv(read_file(path)));
  return engine::merge_tables(tables);
}

struct merged_cache_report {
  engine::cache_merge_result merge;
  std::uintmax_t file_bytes = 0;
  std::size_t entries = 0;
};

merged_cache_report merge_cache_files_to(
    const std::filesystem::path& out,
    const std::vector<std::filesystem::path>& inputs) {
  engine::solve_cache merged;
  merged_cache_report report;
  report.merge = engine::merge_cache_files(merged, inputs);
  engine::save_cache(merged, out);
  report.file_bytes = std::filesystem::file_size(out);
  report.entries = merged.size();
  return report;
}

// ---------------------------------------------------------- worker mode

int run_worker(const cli_options& opt) {
  const sweep_setup setup = make_sweep(opt.sweep, opt.bench_rates);
  const std::vector<engine::scenario> scenarios =
      engine::expand_sweep(setup.spec, setup.context);

  // Injected faults arm against this shard's index and the attempt
  // number the supervisor exported (1 when run by hand).
  engine::fault_plan fault;
  if (!opt.fault_spec.empty())
    fault = engine::parse_fault_plan(opt.fault_spec);
  const std::size_t attempt = engine::worker_attempt_from_env();

  engine::result_table table;
  std::optional<engine::persistent_cache> persist;
  if (!opt.socket_path.empty()) {
    // Remote execution: this shard's scenarios run on a resident
    // dl_serve server; only scoring happens here.  The server owns the
    // warm cache, so --cache-file does not apply.
    const std::vector<std::size_t> owned = engine::shard_scenarios(
        scenarios, *opt.worker, engine::default_registry(), opt.batch_width);
    table = engine::run_shard_remote(setup.context, scenarios, owned,
                                     opt.socket_path);
  } else {
    engine::runner_options options;
    options.threads = opt.threads;
    options.batch_width = opt.batch_width;
    options.shard = *opt.worker;
    options.calibration = setup.calibration;
    options.on_chunk_start =
        engine::make_fault_hook(fault, opt.worker->index, attempt);
    if (!opt.cache_path.empty()) {
      engine::journal_options jopt;
      jopt.enabled = opt.journal;
      jopt.torn_write_record = fault.torn_write_record(attempt);
      persist.emplace(opt.cache_path, 0, jopt);
      if (!persist->write_error().empty()) return 1;  // already on stderr
      options.cache = &persist->cache();
    }
    table = engine::run_sweep(setup.context, scenarios, options).table;
  }

  write_file(opt.csv_path, table.to_csv());
  std::printf("worker %s: %zu of %zu scenarios -> %s\n",
              opt.worker->label().c_str(), table.size(), scenarios.size(),
              opt.csv_path.c_str());
  if (persist) {
    // Explicit flush so an I/O failure surfaces as a nonzero exit, not
    // a destructor's best-effort stderr line.
    try {
      persist->flush();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "dl_shard: cache flush failed: %s\n", e.what());
      return 1;
    }
    // A latched journal error (real I/O trouble or an injected
    // torn-write) also fails the worker — the snapshot flushed above,
    // but the crash-safety contract did not hold this run.
    if (persist->journal() != nullptr &&
        !persist->journal()->write_error().empty()) {
      std::fprintf(stderr, "dl_shard: journal error: %s\n",
                   persist->journal()->write_error().c_str());
      return 1;
    }
  }
  return 0;
}

// ---------------------------------------------------------- driver mode

struct shard_run_report {
  double sweep_ms = 0.0;
  double merge_ms = 0.0;
  std::string merged_csv;
  merged_cache_report cache;
  std::size_t scenarios = 0;
  /// Per-worker supervision outcomes, in shard order.
  engine::supervision_report workers;
  /// Sweep indices missing from the merge (always empty unless
  /// allow_partial let a run with failed workers through).
  std::vector<std::size_t> missing;
};

/// Runs `shards` supervised workers over `opt`'s sweep, merges their
/// CSVs (and caches when opt.cache_path is set) and removes the
/// per-worker temp files.  Without allow_partial, any finally-failed
/// worker throws (its diagnostic naming the signal/timeout and shard);
/// with it, the completed shards merge and `missing` lists the gap.
shard_run_report run_sharded(const cli_options& opt, const std::string& exe,
                             std::size_t shards, std::size_t scenario_count) {
  shard_run_report report;
  report.scenarios = scenario_count;

  std::vector<std::filesystem::path> csvs;
  std::vector<std::filesystem::path> caches;
  std::vector<engine::worker_command> commands;
  for (std::size_t i = 0; i < shards; ++i) {
    std::string worker_spec =
        std::to_string(i) + "/" + std::to_string(shards);
    if (opt.policy == engine::shard_policy::strided) worker_spec += ":strided";
    const std::string csv = opt.csv_path + ".shard" + std::to_string(i);
    csvs.push_back(csv);
    std::vector<std::string> args{"--worker",    worker_spec,
                                  "--sweep",     opt.sweep,
                                  "--csv",       csv,
                                  "--threads",   std::to_string(opt.threads),
                                  "--bench-rates",
                                  std::to_string(opt.bench_rates)};
    if (opt.batch_width != 0) {
      args.push_back("--batch-width");
      args.push_back(std::to_string(opt.batch_width));
    }
    if (!opt.cache_path.empty()) {
      const std::string cache =
          opt.cache_path + ".shard" + std::to_string(i);
      caches.push_back(cache);
      args.push_back("--cache-file");
      args.push_back(cache);
      if (opt.journal) args.push_back("--journal");
    }
    if (!opt.fault_spec.empty()) {
      args.push_back("--fault");
      args.push_back(opt.fault_spec);
    }
    engine::worker_command command;
    command.exe = exe;
    command.args = std::move(args);
    command.label = "worker " + worker_spec;
    commands.push_back(std::move(command));
  }

  engine::supervisor_options sup;
  sup.timeout_sec = opt.timeout_sec;
  sup.max_retries = opt.retries;
  sup.backoff_initial_ms = opt.backoff_ms;
  sup.fail_fast = !opt.allow_partial;
  const clock_type::time_point sweep_start = clock_type::now();
  report.workers = engine::supervise(commands, sup);
  report.sweep_ms = elapsed_ms(sweep_start);

  const auto cleanup = [&] {
    std::error_code ec;
    for (const std::filesystem::path& path : csvs)
      std::filesystem::remove(path, ec);
    for (const std::filesystem::path& path : caches) {
      std::filesystem::remove(path, ec);
      std::filesystem::remove(engine::cache_journal_path(path), ec);
    }
  };

  if (!report.workers.all_succeeded() && !opt.allow_partial) {
    cleanup();
    std::string what;
    for (const engine::worker_outcome& o : report.workers.failures()) {
      if (!what.empty()) what += "; ";
      what += o.label + ": " + o.diagnostic;
    }
    throw std::runtime_error(what);
  }

  // Merge what completed.  On full success this is the historical
  // exact-partition merge (a gap there is corruption and still throws);
  // a partial run merges the surviving shards and records the gap.
  const clock_type::time_point merge_start = clock_type::now();
  std::vector<std::filesystem::path> good_csvs;
  std::vector<std::filesystem::path> good_caches;
  for (std::size_t i = 0; i < shards; ++i) {
    if (!report.workers.outcomes[i].succeeded) continue;
    good_csvs.push_back(csvs[i]);
    if (!caches.empty()) good_caches.push_back(caches[i]);
  }
  if (report.workers.all_succeeded()) {
    report.merged_csv = merge_csv_files(good_csvs).to_csv();
  } else {
    std::vector<engine::result_table> tables;
    tables.reserve(good_csvs.size());
    for (const std::filesystem::path& path : good_csvs)
      tables.push_back(engine::result_table::from_csv(read_file(path)));
    engine::partial_merge partial =
        engine::merge_tables_partial(tables, scenario_count);
    report.merged_csv = partial.table.to_csv();
    report.missing = std::move(partial.missing);
  }
  if (!good_caches.empty())
    report.cache = merge_cache_files_to(opt.cache_path, good_caches);
  report.merge_ms = elapsed_ms(merge_start);

  cleanup();
  return report;
}

/// The machine-readable outcome record of an --allow-partial run: which
/// workers finished (with attempts and diagnostics) and exactly which
/// global sweep indices are missing from the merged CSV.  Documented in
/// docs/robustness.md; CI parses it after an injected worker crash.
std::string render_manifest(const cli_options& opt,
                            const shard_run_report& report,
                            std::size_t shards) {
  std::string json = "{\n";
  json += "  \"sweep\": \"" + json_escape(opt.sweep) + "\",\n";
  json += "  \"scenarios\": " + std::to_string(report.scenarios) + ",\n";
  json += "  \"shards\": " + std::to_string(shards) + ",\n";
  json += std::string("  \"policy\": \"") +
          (opt.policy == engine::shard_policy::strided ? "strided"
                                                       : "contiguous") +
          "\",\n";
  json += "  \"workers\": [\n";
  for (std::size_t i = 0; i < report.workers.outcomes.size(); ++i) {
    const engine::worker_outcome& o = report.workers.outcomes[i];
    json += "    {\"shard\": " + std::to_string(i) +
            ", \"succeeded\": " + (o.succeeded ? "true" : "false") +
            ", \"attempts\": " + std::to_string(o.attempts) +
            ", \"timed_out\": " + (o.timed_out ? "true" : "false") +
            ", \"diagnostic\": \"" + json_escape(o.diagnostic) + "\"}";
    json += i + 1 < report.workers.outcomes.size() ? ",\n" : "\n";
  }
  json += "  ],\n";
  json += "  \"missing_indices\": [";
  for (std::size_t k = 0; k < report.missing.size(); ++k) {
    if (k > 0) json += ", ";
    json += std::to_string(report.missing[k]);
  }
  json += "]\n}\n";
  return json;
}

int run_driver(const cli_options& opt, const std::string& exe) {
  const sweep_setup setup = make_sweep(opt.sweep, opt.bench_rates);
  const std::size_t scenario_count =
      engine::expand_sweep(setup.spec, setup.context).size();

  const shard_run_report report =
      run_sharded(opt, exe, opt.shards, scenario_count);
  write_file(opt.csv_path, report.merged_csv);
  if (!opt.text_path.empty())
    write_file(opt.text_path,
               engine::result_table::from_csv(report.merged_csv).to_text());
  if (opt.allow_partial) {
    const std::string manifest = opt.manifest_path.empty()
                                     ? opt.csv_path + ".manifest.json"
                                     : opt.manifest_path;
    write_file(manifest, render_manifest(opt, report, opt.shards));
    std::printf("  manifest -> %s\n", manifest.c_str());
  }
  if (!report.missing.empty())
    std::printf("  PARTIAL: %zu of %zu scenarios missing (%zu worker(s) "
                "failed); completed rows are byte-identical to the "
                "unsharded run's\n",
                report.missing.size(), scenario_count,
                report.workers.failures().size());

  std::printf("sweep '%s': %zu scenarios over %zu shard processes\n",
              opt.sweep.c_str(), scenario_count, opt.shards);
  std::printf("  sweep %.1f ms (%.1f scenarios/sec), merge %.1f ms\n",
              report.sweep_ms,
              report.sweep_ms > 0.0
                  ? 1000.0 * static_cast<double>(scenario_count) /
                        report.sweep_ms
                  : 0.0,
              report.merge_ms);
  std::printf("  merged CSV -> %s\n", opt.csv_path.c_str());
  if (!opt.cache_path.empty())
    std::printf("  merged cache -> %s (%zu entries, %ju bytes, "
                "%zu traces + %zu values adopted, %zu duplicates, "
                "%zu conflicts)\n",
                opt.cache_path.c_str(), report.cache.entries,
                static_cast<std::uintmax_t>(report.cache.file_bytes),
                report.cache.merge.merged_traces,
                report.cache.merge.merged_values,
                report.cache.merge.duplicates, report.cache.merge.conflicts);
  return 0;
}

// ----------------------------------------------------------- bench mode

int run_bench(const cli_options& opt, const std::string& exe) {
  const sweep_setup setup = make_sweep("bench", opt.bench_rates);
  const std::size_t scenario_count =
      engine::expand_sweep(setup.spec, setup.context).size();

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("dl_shard_bench_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);

  struct bench_run {
    std::size_t shards = 0;
    shard_run_report report;
    bool csv_identical = true;
  };
  std::vector<bench_run> runs;
  std::string reference_csv;
  for (const std::size_t n : opt.bench_shards) {
    cli_options worker_opt = opt;
    worker_opt.sweep = "bench";
    worker_opt.threads = 1;  // scale across processes, not threads
    worker_opt.csv_path = (dir / ("n" + std::to_string(n) + ".csv")).string();
    worker_opt.cache_path =
        (dir / ("n" + std::to_string(n) + ".cache")).string();
    bench_run run;
    run.shards = n;
    run.report = run_sharded(worker_opt, exe, n, scenario_count);
    if (reference_csv.empty())
      reference_csv = run.report.merged_csv;
    else
      run.csv_identical = run.report.merged_csv == reference_csv;
    std::printf("bench: %zu shard(s): sweep %.1f ms, merge %.1f ms, "
                "%.1f scenarios/sec, cache %ju bytes%s\n",
                n, run.report.sweep_ms, run.report.merge_ms,
                run.report.sweep_ms > 0.0
                    ? 1000.0 * static_cast<double>(scenario_count) /
                          run.report.sweep_ms
                    : 0.0,
                static_cast<std::uintmax_t>(run.report.cache.file_bytes),
                run.csv_identical ? "" : "  [CSV MISMATCH]");
    runs.push_back(std::move(run));
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  // The JSON report.  hardware_concurrency is recorded because the
  // scenarios/sec curve is only meaningful relative to it: N worker
  // processes on fewer than N cores cannot and should not show N×.
  std::string json = "{\n";
  json += "  \"name\": \"dl_shard_scaling\",\n";
  json += "  \"sweep\": \"bench\",\n";
  json += "  \"scenarios\": " + std::to_string(scenario_count) + ",\n";
  json += "  \"hardware_concurrency\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  json += "  \"worker_threads_each\": 1,\n";
  json += "  \"runs\": [\n";
  for (std::size_t r = 0; r < runs.size(); ++r) {
    const bench_run& run = runs[r];
    const double sps = run.report.sweep_ms > 0.0
                           ? 1000.0 * static_cast<double>(scenario_count) /
                                 run.report.sweep_ms
                           : 0.0;
    json += "    {\"shards\": " + std::to_string(run.shards) +
            ", \"sweep_ms\": " + engine::format_full_precision(
                                     run.report.sweep_ms) +
            ", \"merge_ms\": " + engine::format_full_precision(
                                     run.report.merge_ms) +
            ", \"scenarios_per_sec\": " + engine::format_full_precision(sps) +
            ", \"cache_merge_bytes\": " +
            std::to_string(run.report.cache.file_bytes) +
            ", \"merged_cache_entries\": " +
            std::to_string(run.report.cache.entries) +
            ", \"merge_conflicts\": " +
            std::to_string(run.report.cache.merge.conflicts) +
            ", \"csv_identical_to_unsharded\": " +
            (run.csv_identical ? "true" : "false") + "}";
    json += r + 1 < runs.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  write_file(opt.bench_out, json);
  std::printf("wrote %s\n", opt.bench_out.c_str());
  return 0;
}

// ----------------------------------------------------------- merge CLIs

int run_merge_tables(const cli_options& opt) {
  const auto& files = opt.merge_files;
  std::vector<engine::result_table> tables;
  for (std::size_t i = 1; i < files.size(); ++i) {
    std::string bytes;
    try {
      bytes = read_file(files[i].first);
    } catch (const std::exception& e) {
      return bad_cli(e.what(), files[i].second);
    }
    try {
      tables.push_back(engine::result_table::from_csv(bytes));
    } catch (const std::exception& e) {
      return bad_cli("'" + files[i].first + "': " + e.what(),
                     files[i].second);
    }
  }
  const engine::result_table merged = engine::merge_tables(tables);
  write_file(files[0].first, merged.to_csv());
  std::printf("merged %zu shard CSVs (%zu rows) -> %s\n", tables.size(),
              merged.size(), files[0].first.c_str());
  return 0;
}

int run_merge_cache(const cli_options& opt) {
  const auto& files = opt.merge_files;
  std::vector<std::filesystem::path> inputs;
  for (std::size_t i = 1; i < files.size(); ++i) {
    if (!std::filesystem::exists(files[i].first))
      return bad_cli("cannot open '" + files[i].first + "'",
                     files[i].second);
    inputs.push_back(files[i].first);
  }
  const merged_cache_report report =
      merge_cache_files_to(files[0].first, inputs);
  std::printf("merged %zu shard caches -> %s (%zu entries, %ju bytes, "
              "%zu traces + %zu values adopted, %zu duplicates, "
              "%zu conflicts)\n",
              inputs.size(), files[0].first.c_str(), report.entries,
              static_cast<std::uintmax_t>(report.file_bytes),
              report.merge.merged_traces, report.merge.merged_values,
              report.merge.duplicates, report.merge.conflicts);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  cli_options opt;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::exit(bad_cli(std::string(what) + " needs a value", i));
      }
      return argv[++i];
    };
    try {
      if (arg == "--shards") {
        opt.shards = std::stoul(next("--shards"));
        if (opt.shards == 0)
          return bad_cli("--shards must be positive", i);
      } else if (arg == "--policy") {
        const std::string value = next("--policy");
        if (value == "contiguous") {
          opt.policy = engine::shard_policy::contiguous;
        } else if (value == "strided") {
          opt.policy = engine::shard_policy::strided;
        } else {
          return bad_cli("unknown policy '" + value + "'", i);
        }
      } else if (arg == "--worker") {
        opt.worker = engine::parse_shard_spec(next("--worker"));
      } else if (arg == "--sweep") {
        opt.sweep = next("--sweep");
      } else if (arg == "--csv") {
        opt.csv_path = next("--csv");
      } else if (arg == "--text") {
        opt.text_path = next("--text");
      } else if (arg == "--cache-file") {
        opt.cache_path = next("--cache-file");
      } else if (arg == "--threads") {
        opt.threads = std::stoul(next("--threads"));
      } else if (arg == "--batch-width") {
        opt.batch_width = std::stoul(next("--batch-width"));
      } else if (arg == "--socket") {
        opt.socket_path = next("--socket");
      } else if (arg == "--timeout") {
        opt.timeout_sec = std::stod(next("--timeout"));
        if (opt.timeout_sec < 0)
          return bad_cli("--timeout must be non-negative", i);
      } else if (arg == "--retries") {
        opt.retries = std::stoul(next("--retries"));
      } else if (arg == "--backoff") {
        opt.backoff_ms = std::stod(next("--backoff"));
        if (opt.backoff_ms < 0)
          return bad_cli("--backoff must be non-negative", i);
      } else if (arg == "--allow-partial") {
        opt.allow_partial = true;
      } else if (arg == "--manifest") {
        opt.manifest_path = next("--manifest");
      } else if (arg == "--journal") {
        opt.journal = true;
      } else if (arg == "--fault") {
        // Parsed here so a bad plan is rejected at the command line
        // (with the grammar), not inside a worker.
        opt.fault_spec = next("--fault");
        (void)engine::parse_fault_plan(opt.fault_spec);
      } else if (arg == "--bench") {
        opt.bench = true;
      } else if (arg == "--bench-out") {
        opt.bench_out = next("--bench-out");
      } else if (arg == "--bench-rates") {
        opt.bench_rates = std::stoul(next("--bench-rates"));
        if (opt.bench_rates == 0)
          return bad_cli("--bench-rates must be positive", i);
      } else if (arg == "--bench-shards") {
        opt.bench_shards.clear();
        for (const std::string& piece :
             engine::split_keep_empty(next("--bench-shards"), ',')) {
          const std::size_t n = std::stoul(piece);
          if (n == 0) return bad_cli("shard count must be positive", i);
          opt.bench_shards.push_back(n);
        }
      } else if (arg == "--merge" || arg == "--merge-cache") {
        // Everything after is "out in0 in1 ..." — collected with argv
        // positions so a bad file is named by where it sits.
        (arg == "--merge" ? opt.merge_tables_mode : opt.merge_cache_mode) =
            true;
        for (++i; i < argc; ++i) opt.merge_files.emplace_back(argv[i], i);
        if (opt.merge_files.size() < 2)
          return bad_cli(arg + " needs an output and at least one input",
                         argc - 1);
      } else {
        return bad_cli("unknown argument '" + arg + "'", i);
      }
    } catch (const std::exception& e) {
      // std::stoul / parse_shard_spec rejections, positioned at the value.
      return bad_cli(e.what(), i);
    }
  }

  const int modes = (opt.shards > 0 ? 1 : 0) + (opt.worker ? 1 : 0) +
                    (opt.merge_tables_mode ? 1 : 0) +
                    (opt.merge_cache_mode ? 1 : 0) + (opt.bench ? 1 : 0);
  if (modes != 1)
    return bad_cli(
        "exactly one of --shards, --worker, --merge, --merge-cache, "
        "--bench is required",
        argc > 1 ? 1 : 0);

  try {
    if (opt.merge_tables_mode) return run_merge_tables(opt);
    if (opt.merge_cache_mode) return run_merge_cache(opt);
    const std::string exe = self_executable(argv[0]);
    if (opt.bench) return run_bench(opt, exe);
    if (opt.worker) {
      if (opt.csv_path.empty())
        return bad_cli("--worker requires --csv", 1);
      return run_worker(opt);
    }
    if (opt.csv_path.empty()) opt.csv_path = "dl_shard.csv";
    return run_driver(opt, exe);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dl_shard: %s\n", e.what());
    return 1;
  }
}
