// Time-series rendering: labeled rows plus ASCII sparklines.
//
// The paper's figures are line charts; in a terminal we print each line as
// a labeled row of sampled values followed by a sparkline so the *shape*
// (growth, saturation, orderings, crossovers) is visible at a glance.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace dlm::eval {

/// Eight-level ASCII sparkline of `values` scaled to [min, max] of the
/// data (or to [0, `scale_max`] when scale_max > 0).
[[nodiscard]] std::string sparkline(std::span<const double> values,
                                    double scale_max = 0.0);

/// One labeled series.
struct labeled_series {
  std::string label;
  std::vector<double> values;
};

/// Prints a figure-like block: title, per-series sparkline + sampled
/// values at the column positions in `sample_at` (indices into values).
void print_series_chart(std::ostream& out, const std::string& title,
                        std::span<const labeled_series> series,
                        std::span<const std::size_t> sample_at,
                        const std::string& x_label = "hour");

}  // namespace dlm::eval
