#include "eval/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace dlm::eval {

text_table::text_table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty())
    throw std::invalid_argument("text_table: need at least one column");
}

void text_table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("text_table: cell count mismatch");
  rows_.push_back(std::move(cells));
}

std::string text_table::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }

  std::ostringstream out;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      if (c + 1 < row.size()) out << "  ";
    }
    out << "\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c], '-');
    if (c + 1 < headers_.size()) out << "  ";
  }
  out << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::ostream& operator<<(std::ostream& out, const text_table& t) {
  return out << t.str();
}

std::string text_table::pct(double fraction, int decimals) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(decimals) << fraction * 100.0 << "%";
  return out.str();
}

std::string text_table::num(double value, int decimals) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(decimals) << value;
  return out.str();
}

std::string text_table::count(std::size_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  out.append(digits, 0, lead);
  for (std::size_t i = lead; i < digits.size(); i += 3) {
    out += ',';
    out.append(digits, i, 3);
  }
  return out;
}

}  // namespace dlm::eval
