// Experiment runners: one per paper figure/table (DESIGN.md §2).
//
// Bench binaries stay thin — they build an `experiment_context` (the
// synthetic June-2009 dataset) and call the matching run_/print_ pair.
// Paper reference values are embedded so each bench prints paper-vs-
// measured side by side, which EXPERIMENTS.md records.
#pragma once

#include <array>
#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/accuracy.h"
#include "core/dl_parameters.h"
#include "digg/simulator.h"
#include "social/density.h"
#include "social/distance.h"

namespace dlm::eval {

/// Shared dataset context, built once per bench process.
struct experiment_context {
  digg::digg_dataset data;

  /// Density field of flagship story `story_index` under `metric`
  /// (horizon = scenario horizon).
  [[nodiscard]] social::density_field density(
      std::size_t story_index, social::distance_metric metric) const;

  /// Builds the dataset for `config` (defaults to the standard scenario).
  [[nodiscard]] static experiment_context make(
      const digg::scenario_config& config = digg::scenario_config{});
};

// ---------------------------------------------------------------- Fig. 2
/// Distribution of users over friendship-hop distance per story.
struct fig2_result {
  std::vector<std::string> story_names;
  /// fraction[story][k]: share of reachable users at hop k+1 (k < 10).
  std::vector<std::vector<double>> fraction;
};
[[nodiscard]] fig2_result run_fig2(const experiment_context& ctx);
void print_fig2(std::ostream& out, const fig2_result& result);

// ------------------------------------------------------- Fig. 3 / Fig. 5
/// Density over 50 hours at distances 1..max for one story and metric.
struct density_series_result {
  std::string story_name;
  social::distance_metric metric = social::distance_metric::friendship_hops;
  std::vector<int> distances;
  /// density[i][h]: density of distances[i] at hour h+1.
  std::vector<std::vector<double>> density;
  /// First hour at which the top-distance series is within 5% of its final
  /// value — the paper's "stable after about N hours" observation.
  [[nodiscard]] int saturation_hour() const;
};
[[nodiscard]] density_series_result run_density_series(
    const experiment_context& ctx, std::size_t story_index,
    social::distance_metric metric, int max_distance = 5);
void print_density_series(std::ostream& out, const density_series_result& r,
                          const std::string& figure_name);

// ---------------------------------------------------------------- Fig. 4
/// s1 density-vs-distance profiles, one per hour.
struct fig4_result {
  std::vector<int> distances;
  /// profile[h][i]: density at distances[i], hour h+1.
  std::vector<std::vector<double>> profile;
  /// Largest hour-over-hour increment at distance 1 per hour (shows the
  /// shrinking increments that motivate a decaying r(t)).
  [[nodiscard]] std::vector<double> increments_at_distance1() const;
};
[[nodiscard]] fig4_result run_fig4(const experiment_context& ctx);
void print_fig4(std::ostream& out, const fig4_result& result);

// ---------------------------------------------------------------- Fig. 6
/// The paper's growth-rate function sampled over [1, 6].
struct fig6_result {
  std::vector<double> times;
  std::vector<double> rate;
};
[[nodiscard]] fig6_result run_fig6();
void print_fig6(std::ostream& out, const fig6_result& result);

// ------------------------------------------- Fig. 7 / Table I / Table II
/// Full prediction experiment: DL model built from the hour-1 profile,
/// evaluated against the actual surface at t = 2..6.
struct prediction_experiment {
  std::string story_name;
  social::distance_metric metric = social::distance_metric::friendship_hops;
  core::dl_parameters params;
  std::vector<int> distances;
  std::vector<double> times;  ///< includes t = 1 (the initial profile)
  /// actual/predicted[i][j]: density at distances[i], times[j].
  std::vector<std::vector<double>> actual;
  std::vector<std::vector<double>> predicted;
  /// Accuracy over times[1..] (t = 2..6), paper Eq. 8 convention.
  core::accuracy_table accuracy;
};
[[nodiscard]] prediction_experiment run_prediction(
    const experiment_context& ctx, std::size_t story_index,
    social::distance_metric metric, int max_distance, int t_max = 6);
void print_fig7(std::ostream& out, const prediction_experiment& result);

/// Paper Table I (hops) and Table II (interests) reference accuracies for
/// story s1, laid out as {distance, average, t2, t3, t4, t5, t6} percent.
using paper_accuracy_row = std::array<double, 7>;
[[nodiscard]] const std::vector<paper_accuracy_row>& paper_table1();
[[nodiscard]] const std::vector<paper_accuracy_row>& paper_table2();

/// Prints measured accuracy beside the paper's reference rows.
void print_accuracy_table(std::ostream& out, const prediction_experiment& r,
                          const std::vector<paper_accuracy_row>& reference,
                          const std::string& table_name);

}  // namespace dlm::eval
