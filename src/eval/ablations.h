// Ablation experiment runners (DESIGN.md §2, non-paper benches).
//
// Each ablation isolates one design choice of the DL model or its solver:
// the diffusion term, the r(t) family, the numerical scheme, and the grid
// resolution.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/dl_solver.h"
#include "eval/experiments.h"

namespace dlm::eval {

// -------------------------------------------------- diffusion-term ablation
/// DL vs temporal-only (per-distance logistic, d = 0) vs diffusion-only
/// (heat equation, r = 0) on one story's prediction task.
struct diffusion_ablation_result {
  std::vector<int> distances;
  /// Per-distance average accuracy (t = 2..6) of each model.
  std::vector<double> dl_accuracy;
  std::vector<double> logistic_accuracy;
  std::vector<double> heat_accuracy;
  double dl_overall = 0.0;
  double logistic_overall = 0.0;
  double heat_overall = 0.0;
};
[[nodiscard]] diffusion_ablation_result run_diffusion_ablation(
    const experiment_context& ctx, std::size_t story_index,
    social::distance_metric metric, int max_distance);
void print_diffusion_ablation(std::ostream& out,
                              const diffusion_ablation_result& r);

// ----------------------------------------------------- solver-scheme ablation
/// Same prediction task solved with every scheme.
struct scheme_ablation_row {
  core::dl_scheme scheme = core::dl_scheme::strang_cn;
  double overall_accuracy = 0.0;
  /// Max |deviation| from the finest MOL-RK4 reference at t = 6.
  double deviation_vs_reference = 0.0;
  double solve_ms = 0.0;
};
[[nodiscard]] std::vector<scheme_ablation_row> run_scheme_ablation(
    const experiment_context& ctx, std::size_t story_index);
void print_scheme_ablation(std::ostream& out,
                           const std::vector<scheme_ablation_row>& rows);

// ------------------------------------------------------ growth-rate ablation
/// Paper decaying r(t) vs constant rates vs least-squares-calibrated
/// rates — temporal ("calibrate:4") and spatio-temporal
/// ("calibrate-spatial:4": per-hop multipliers m(x)·r(t), paper §V) —
/// one engine sweep over the `rates` axis.  Calibrated rows carry the
/// fit-window SSE so r(x, t) vs r(t) is directly comparable.
struct growth_ablation_row {
  std::string label;
  double overall_accuracy = 0.0;
  bool fitted = false;   ///< true for the calibrate rows
  double fit_sse = 0.0;  ///< fit-window SSE (calibrate rows only)
};
[[nodiscard]] std::vector<growth_ablation_row> run_growth_ablation(
    const experiment_context& ctx, std::size_t story_index);
void print_growth_ablation(std::ostream& out,
                           const std::vector<growth_ablation_row>& rows);

// -------------------------------------------------- grid-resolution ablation
/// Solution convergence under Δx, Δt refinement (no dataset needed).
struct resolution_row {
  std::size_t points_per_unit = 0;
  double dt = 0.0;
  /// Max |difference| at integer distances, t = 6, vs the finest level.
  double deviation = 0.0;
  double solve_ms = 0.0;
};
[[nodiscard]] std::vector<resolution_row> run_resolution_ablation();
void print_resolution_ablation(std::ostream& out,
                               const std::vector<resolution_row>& rows);

}  // namespace dlm::eval
