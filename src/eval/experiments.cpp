#include "eval/experiments.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

#include "core/dl_model.h"
#include "eval/series.h"
#include "eval/table.h"

namespace dlm::eval {
namespace {

const social::distance_partition& partition_for(
    const digg::digg_dataset& data, std::size_t story_index,
    social::distance_metric metric) {
  if (story_index >= data.flagship_ids.size())
    throw std::out_of_range("experiments: bad flagship story index");
  return metric == social::distance_metric::friendship_hops
             ? data.hop_partitions[story_index]
             : data.interest_partitions[story_index];
}

}  // namespace

social::density_field experiment_context::density(
    std::size_t story_index, social::distance_metric metric) const {
  const auto& partition = partition_for(data, story_index, metric);
  return social::density_field(data.network, data.flagship_ids[story_index],
                               partition, data.config.horizon_hours);
}

experiment_context experiment_context::make(
    const digg::scenario_config& config) {
  return experiment_context{digg::make_dataset(config)};
}

// ---------------------------------------------------------------- Fig. 2

fig2_result run_fig2(const experiment_context& ctx) {
  fig2_result result;
  for (std::size_t s = 0; s < ctx.data.flagship_ids.size(); ++s) {
    result.story_names.push_back(ctx.data.config.stories[s].name);
    const auto fractions = ctx.data.hop_partitions[s].group_fractions();
    std::vector<double> row(10, 0.0);
    for (std::size_t k = 1; k < fractions.size() && k <= 10; ++k)
      row[k - 1] = fractions[k];
    result.fraction.push_back(std::move(row));
  }
  return result;
}

void print_fig2(std::ostream& out, const fig2_result& result) {
  out << "Figure 2 — distribution of users by friendship-hop distance\n"
      << "(paper: hop 3 holds >40% of reachable users for all stories;\n"
      << " population collapses beyond hop 5)\n\n";
  std::vector<std::string> headers{"distance"};
  for (const auto& name : result.story_names) headers.push_back(name);
  text_table table(std::move(headers));
  for (std::size_t k = 0; k < 10; ++k) {
    std::vector<std::string> row{std::to_string(k + 1)};
    for (const auto& story : result.fraction)
      row.push_back(text_table::pct(story[k], 1));
    table.add_row(std::move(row));
  }
  out << table << "\n";
}

// ------------------------------------------------------- Fig. 3 / Fig. 5

int density_series_result::saturation_hour() const {
  if (density.empty()) return 0;
  // Track the distance-1 series (the paper's top line).
  const std::vector<double>& top = density.front();
  const double final_value = top.back();
  if (final_value <= 0.0) return 0;
  for (std::size_t h = 0; h < top.size(); ++h) {
    if (top[h] >= 0.95 * final_value) return static_cast<int>(h + 1);
  }
  return static_cast<int>(top.size());
}

density_series_result run_density_series(const experiment_context& ctx,
                                         std::size_t story_index,
                                         social::distance_metric metric,
                                         int max_distance) {
  const social::density_field field = ctx.density(story_index, metric);
  density_series_result result;
  result.story_name = ctx.data.config.stories[story_index].name;
  result.metric = metric;
  const int upper = std::min(max_distance, field.max_distance());
  for (int x = 1; x <= upper; ++x) {
    result.distances.push_back(x);
    result.density.push_back(field.series_at_distance(x));
  }
  return result;
}

void print_density_series(std::ostream& out, const density_series_result& r,
                          const std::string& figure_name) {
  out << figure_name << " — density of influenced users over "
      << (r.density.empty() ? 0 : r.density.front().size()) << " hours, story "
      << r.story_name << ", distance metric: " << social::to_string(r.metric)
      << "\n";
  std::vector<labeled_series> series;
  for (std::size_t i = 0; i < r.density.size(); ++i)
    series.push_back({"d=" + std::to_string(r.distances[i]), r.density[i]});
  const std::size_t samples[] = {0, 4, 9, 19, 29, 49};
  print_series_chart(out, "", series, samples);
  out << "  distance-1 series within 5% of its final value by hour "
      << r.saturation_hour() << "\n\n";
}

// ---------------------------------------------------------------- Fig. 4

fig4_result run_fig4(const experiment_context& ctx) {
  const social::density_field field =
      ctx.density(0, social::distance_metric::friendship_hops);
  fig4_result result;
  const int upper = std::min(5, field.max_distance());
  for (int x = 1; x <= upper; ++x) result.distances.push_back(x);
  for (int t = 1; t <= field.hours(); ++t) {
    std::vector<double> profile;
    profile.reserve(result.distances.size());
    for (int x : result.distances)
      profile.push_back(field.at(x, t));
    result.profile.push_back(std::move(profile));
  }
  return result;
}

std::vector<double> fig4_result::increments_at_distance1() const {
  std::vector<double> inc;
  for (std::size_t h = 1; h < profile.size(); ++h)
    inc.push_back(profile[h][0] - profile[h - 1][0]);
  return inc;
}

void print_fig4(std::ostream& out, const fig4_result& result) {
  out << "Figure 4 — story s1 density vs distance, one row per hour\n"
      << "(paper: densities increase with t; hour-over-hour increments "
         "shrink,\n motivating a decreasing growth rate r(t))\n\n";
  std::vector<std::string> headers{"hour"};
  for (int x : result.distances) headers.push_back("d=" + std::to_string(x));
  text_table table(std::move(headers));
  for (std::size_t h = 0; h < result.profile.size(); ++h) {
    if ((h + 1) % 5 != 0 && h != 0) continue;  // print hours 1,5,10,...
    std::vector<std::string> row{std::to_string(h + 1)};
    for (double v : result.profile[h]) row.push_back(text_table::num(v, 2));
    table.add_row(std::move(row));
  }
  out << table;

  const std::vector<double> inc = result.increments_at_distance1();
  std::size_t shrinking = 0;
  for (std::size_t h = 1; h < inc.size(); ++h) {
    if (inc[h] <= inc[h - 1] + 1e-9) ++shrinking;
  }
  out << "\n  hour-over-hour increments at distance 1 shrink in "
      << shrinking << "/" << (inc.empty() ? 0 : inc.size() - 1)
      << " consecutive hour pairs\n\n";
}

// ---------------------------------------------------------------- Fig. 6

fig6_result run_fig6() {
  fig6_result result;
  const core::growth_rate r = core::growth_rate::paper_hops();
  for (double t = 1.0; t <= 5.0 + 1e-9; t += 0.25) {
    result.times.push_back(t);
    result.rate.push_back(r(t));
  }
  return result;
}

void print_fig6(std::ostream& out, const fig6_result& result) {
  out << "Figure 6 — growth rate r(t) = 1.4*exp(-1.5 (t-1)) + 0.25 "
         "(paper Eq. 7)\n\n";
  text_table table({"t", "r(t)"});
  for (std::size_t i = 0; i < result.times.size(); ++i)
    table.add_row({text_table::num(result.times[i], 2),
                   text_table::num(result.rate[i], 4)});
  out << table;
  out << "\n  r(1) = " << text_table::num(result.rate.front(), 3)
      << ", r(5) = " << text_table::num(result.rate.back(), 3)
      << " (decreasing, floor 0.25)\n\n";
}

// ------------------------------------------- Fig. 7 / Table I / Table II

prediction_experiment run_prediction(const experiment_context& ctx,
                                     std::size_t story_index,
                                     social::distance_metric metric,
                                     int max_distance, int t_max) {
  const social::density_field field = ctx.density(story_index, metric);
  const int upper = std::min(max_distance, field.max_distance());
  if (upper < 2)
    throw std::runtime_error("run_prediction: need at least 2 distances");

  prediction_experiment result;
  result.story_name = ctx.data.config.stories[story_index].name;
  result.metric = metric;
  result.params = metric == social::distance_metric::friendship_hops
                      ? core::dl_parameters::paper_hops(upper)
                      : core::dl_parameters::paper_interest(upper);

  for (int x = 1; x <= upper; ++x) result.distances.push_back(x);
  for (int t = 1; t <= t_max; ++t)
    result.times.push_back(static_cast<double>(t));

  // Actual surface.
  result.actual.resize(result.distances.size());
  for (std::size_t i = 0; i < result.distances.size(); ++i) {
    for (int t = 1; t <= t_max; ++t)
      result.actual[i].push_back(field.at(result.distances[i], t));
  }

  // DL model from the hour-1 profile.
  std::vector<double> initial;
  initial.reserve(result.distances.size());
  for (std::size_t i = 0; i < result.distances.size(); ++i)
    initial.push_back(result.actual[i][0]);
  const core::dl_model model(result.params, initial, /*t0=*/1.0,
                             /*t_max=*/static_cast<double>(t_max));

  result.predicted.resize(result.distances.size());
  for (std::size_t i = 0; i < result.distances.size(); ++i) {
    result.predicted[i].push_back(initial[i]);  // t = 1 is the input
  }
  for (int t = 2; t <= t_max; ++t) {
    const std::vector<double> profile =
        model.predict_profile(static_cast<double>(t));
    for (std::size_t i = 0; i < result.distances.size(); ++i)
      result.predicted[i].push_back(profile[i]);
  }

  // Accuracy over t = 2..t_max.
  std::vector<double> eval_times(result.times.begin() + 1, result.times.end());
  std::vector<std::vector<double>> pred_eval(result.distances.size());
  std::vector<std::vector<double>> act_eval(result.distances.size());
  for (std::size_t i = 0; i < result.distances.size(); ++i) {
    pred_eval[i].assign(result.predicted[i].begin() + 1,
                        result.predicted[i].end());
    act_eval[i].assign(result.actual[i].begin() + 1, result.actual[i].end());
  }
  result.accuracy = core::make_accuracy_table(result.distances, eval_times,
                                              pred_eval, act_eval);
  return result;
}

void print_fig7(std::ostream& out, const prediction_experiment& r) {
  out << "Figure 7 — predicted vs actual density, story " << r.story_name
      << ", metric: " << social::to_string(r.metric) << "\n"
      << "model: " << r.params.describe() << "\n\n";
  std::vector<std::string> headers{"t"};
  for (int x : r.distances) {
    headers.push_back("actual d=" + std::to_string(x));
    headers.push_back("pred d=" + std::to_string(x));
  }
  text_table table(std::move(headers));
  for (std::size_t j = 0; j < r.times.size(); ++j) {
    std::vector<std::string> row{text_table::num(r.times[j], 0)};
    for (std::size_t i = 0; i < r.distances.size(); ++i) {
      row.push_back(text_table::num(r.actual[i][j], 2));
      row.push_back(text_table::num(r.predicted[i][j], 2));
    }
    table.add_row(std::move(row));
  }
  out << table << "\n";
}

const std::vector<paper_accuracy_row>& paper_table1() {
  static const std::vector<paper_accuracy_row> rows = {
      {1, 98.27, 97.47, 97.74, 97.48, 99.55, 99.09},
      {2, 86.99, 93.59, 96.63, 87.16, 80.80, 76.78},
      {3, 90.28, 83.23, 87.98, 90.99, 93.35, 95.94},
      {4, 92.98, 86.75, 91.39, 99.00, 95.68, 92.06},
      {5, 93.77, 89.05, 91.61, 97.79, 97.92, 92.49},
      {6, 94.56, 90.03, 89.48, 96.04, 97.57, 99.67},
  };
  return rows;
}

const std::vector<paper_accuracy_row>& paper_table2() {
  static const std::vector<paper_accuracy_row> rows = {
      {1, 97.21, 98.74, 96.75, 92.70, 97.91, 99.97},
      {2, 93.67, 86.58, 93.99, 96.11, 96.14, 95.52},
      {3, 93.11, 87.71, 92.86, 96.14, 95.39, 93.44},
      {4, 91.64, 87.18, 91.38, 93.23, 93.63, 92.75},
      {5, 39.84, 66.26, 44.43, 33.91, 28.68, 25.92},
  };
  return rows;
}

void print_accuracy_table(std::ostream& out, const prediction_experiment& r,
                          const std::vector<paper_accuracy_row>& reference,
                          const std::string& table_name) {
  out << table_name << " — prediction accuracy, story " << r.story_name
      << ", metric: " << social::to_string(r.metric) << "\n"
      << "(measured on the synthetic dataset; paper values in "
         "parentheses)\n\n";

  text_table table({"distance", "average", "t=2", "t=3", "t=4", "t=5", "t=6"});
  const std::vector<double> row_avg = r.accuracy.row_averages();
  for (std::size_t i = 0; i < r.accuracy.distances.size(); ++i) {
    const paper_accuracy_row* paper = nullptr;
    for (const auto& row : reference) {
      if (static_cast<int>(row[0]) == r.accuracy.distances[i]) paper = &row;
    }
    std::vector<std::string> cells;
    cells.push_back(std::to_string(r.accuracy.distances[i]));
    const auto fmt = [&](double measured, double paper_pct) {
      return text_table::pct(measured, 2) + " (" +
             text_table::num(paper_pct, 2) + "%)";
    };
    cells.push_back(fmt(row_avg[i], paper ? (*paper)[1] : 0.0));
    for (std::size_t j = 0; j < r.accuracy.times.size() && j < 5; ++j)
      cells.push_back(fmt(r.accuracy.cells[i][j], paper ? (*paper)[j + 2] : 0.0));
    table.add_row(std::move(cells));
  }
  out << table;
  out << "\n  overall average accuracy: "
      << text_table::pct(r.accuracy.overall_average(), 2) << "\n\n";
}

}  // namespace dlm::eval
