#include "eval/series.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace dlm::eval {

std::string sparkline(std::span<const double> values, double scale_max) {
  static constexpr char levels[] = {' ', '.', ':', '-', '=', '+', '*', '#'};
  constexpr int n_levels = 8;
  if (values.empty()) return {};
  double lo = 0.0;
  double hi = scale_max;
  if (scale_max <= 0.0) {
    hi = *std::max_element(values.begin(), values.end());
  }
  if (hi <= lo) hi = lo + 1.0;
  std::string out;
  out.reserve(values.size());
  for (double v : values) {
    const double norm = std::clamp((v - lo) / (hi - lo), 0.0, 1.0);
    const int idx = std::min(static_cast<int>(norm * n_levels), n_levels - 1);
    out += levels[idx];
  }
  return out;
}

void print_series_chart(std::ostream& out, const std::string& title,
                        std::span<const labeled_series> series,
                        std::span<const std::size_t> sample_at,
                        const std::string& x_label) {
  out << title << "\n";
  std::size_t label_width = x_label.size();
  for (const labeled_series& s : series)
    label_width = std::max(label_width, s.label.size());

  // Global scale so line ordering is visible across series.
  double hi = 0.0;
  for (const labeled_series& s : series) {
    for (double v : s.values) hi = std::max(hi, v);
  }

  // Header: sampled columns.
  out << "  " << std::left << std::setw(static_cast<int>(label_width))
      << x_label << "  ";
  for (std::size_t idx : sample_at) out << std::setw(8) << idx + 1;
  out << "  shape\n";

  for (const labeled_series& s : series) {
    out << "  " << std::left << std::setw(static_cast<int>(label_width))
        << s.label << "  ";
    for (std::size_t idx : sample_at) {
      std::ostringstream cell;
      if (idx < s.values.size())
        cell << std::fixed << std::setprecision(2) << s.values[idx];
      else
        cell << "-";
      out << std::setw(8) << cell.str();
    }
    out << "  |" << sparkline(s.values, hi) << "|\n";
  }
  out << "\n";
}

}  // namespace dlm::eval
