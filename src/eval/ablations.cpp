#include "eval/ablations.h"

#include <cmath>
#include <ostream>

#include "core/accuracy.h"
#include "core/dl_model.h"
#include "engine/scenario_runner.h"
#include "eval/table.h"
#include "models/heat_model.h"
#include "models/per_distance_logistic.h"
#include "numerics/stats.h"

namespace dlm::eval {
namespace {

/// Mean prediction accuracy of `predicted` against `r.actual` over
/// t = 2..6 for one distance row.
double row_accuracy(const std::vector<double>& predicted,
                    const std::vector<double>& actual) {
  double acc = 0.0;
  std::size_t n = 0;
  for (std::size_t j = 1; j < actual.size(); ++j) {  // skip t = 1
    acc += core::prediction_accuracy(predicted[j], actual[j]);
    ++n;
  }
  return n > 0 ? acc / static_cast<double>(n) : 0.0;
}

}  // namespace

diffusion_ablation_result run_diffusion_ablation(
    const experiment_context& ctx, std::size_t story_index,
    social::distance_metric metric, int max_distance) {
  const prediction_experiment dl =
      run_prediction(ctx, story_index, metric, max_distance);

  diffusion_ablation_result out;
  out.distances = dl.distances;

  // Initial profile shared by all three models.
  std::vector<double> initial;
  for (const auto& row : dl.actual) initial.push_back(row.front());

  // Growth-only baseline (d = 0): per-distance logistic under the same
  // rate field and K — one callable per distance group, so a spatial
  // r(x, t) keeps its per-group rates here too.
  const core::rate_field rate = dl.params.r;
  std::vector<models::rate_fn> rates;
  for (const int x : dl.distances)
    rates.push_back([rate, x](double t) { return rate(x, t); });
  models::per_distance_logistic logistic(initial, /*t0=*/1.0, dl.params.k,
                                         std::move(rates));

  // Diffusion-only baseline: Neumann heat equation from the same profile.
  const std::size_t heat_nodes = 101;
  core::initial_condition phi(initial);
  const std::vector<double> phi_samples =
      phi.sample(dl.params.x_min, static_cast<double>(max_distance),
                 heat_nodes);

  double dl_acc = 0.0, log_acc = 0.0, heat_acc = 0.0;
  for (std::size_t i = 0; i < dl.distances.size(); ++i) {
    // DL rows come from the prediction experiment.
    out.dl_accuracy.push_back(
        row_accuracy(dl.predicted[i], dl.actual[i]));

    // Logistic rows.
    std::vector<double> log_pred{initial[i]};
    for (std::size_t j = 1; j < dl.times.size(); ++j)
      log_pred.push_back(logistic.predict(dl.times[j])[i]);
    out.logistic_accuracy.push_back(row_accuracy(log_pred, dl.actual[i]));

    // Heat rows: evaluate the series solution at the integer distance.
    std::vector<double> heat_pred{initial[i]};
    for (std::size_t j = 1; j < dl.times.size(); ++j) {
      const std::vector<double> profile = models::heat_neumann_series(
          phi_samples, dl.params.x_min, static_cast<double>(max_distance),
          dl.params.d, dl.times[j] - 1.0);
      const double pos = (static_cast<double>(dl.distances[i]) -
                          dl.params.x_min) /
                         (static_cast<double>(max_distance) - dl.params.x_min);
      const auto idx = static_cast<std::size_t>(
          std::lround(pos * static_cast<double>(heat_nodes - 1)));
      heat_pred.push_back(profile[idx]);
    }
    out.heat_accuracy.push_back(row_accuracy(heat_pred, dl.actual[i]));

    dl_acc += out.dl_accuracy.back();
    log_acc += out.logistic_accuracy.back();
    heat_acc += out.heat_accuracy.back();
  }
  const auto n = static_cast<double>(dl.distances.size());
  out.dl_overall = dl_acc / n;
  out.logistic_overall = log_acc / n;
  out.heat_overall = heat_acc / n;
  return out;
}

void print_diffusion_ablation(std::ostream& out,
                              const diffusion_ablation_result& r) {
  out << "Ablation — what the diffusion term buys (story s1, hops)\n"
      << "DL = full model; logistic = growth only (d=0, temporal baseline);\n"
      << "heat = diffusion only (r=0; mass-conserving, cannot grow)\n\n";
  text_table table({"distance", "DL", "logistic (d=0)", "heat (r=0)"});
  for (std::size_t i = 0; i < r.distances.size(); ++i) {
    table.add_row({std::to_string(r.distances[i]),
                   text_table::pct(r.dl_accuracy[i], 2),
                   text_table::pct(r.logistic_accuracy[i], 2),
                   text_table::pct(r.heat_accuracy[i], 2)});
  }
  table.add_row({"overall", text_table::pct(r.dl_overall, 2),
                 text_table::pct(r.logistic_overall, 2),
                 text_table::pct(r.heat_overall, 2)});
  out << table << "\n";
}

std::vector<scheme_ablation_row> run_scheme_ablation(
    const experiment_context& ctx, std::size_t story_index) {
  const int max_distance = 6;
  const social::density_field field =
      ctx.density(story_index, social::distance_metric::friendship_hops);
  const int upper = std::min(max_distance, field.max_distance());

  // The observed surface (t = 1..6) as an engine slice.
  std::vector<std::vector<double>> surface(static_cast<std::size_t>(upper));
  for (int x = 1; x <= upper; ++x) {
    for (int t = 1; t <= 6; ++t)
      surface[static_cast<std::size_t>(x - 1)].push_back(field.at(x, t));
  }
  const engine::scenario_context context = engine::scenario_context::
      from_surface("scheme-ablation", social::distance_metric::friendship_hops,
                   std::move(surface), core::dl_parameters::paper_hops(upper));

  // One sweep: the four schemes plus a fine MOL-RK4 reference scenario.
  const std::vector<core::dl_scheme> schemes{
      core::dl_scheme::ftcs, core::dl_scheme::strang_cn,
      core::dl_scheme::implicit_newton, core::dl_scheme::mol_rk4};
  std::vector<engine::scenario> scenarios;
  for (const core::dl_scheme scheme : schemes) {
    engine::scenario sc;
    sc.model = "dl";
    sc.scheme = scheme;
    scenarios.push_back(std::move(sc));
  }
  engine::scenario reference;
  reference.model = "dl";
  reference.scheme = core::dl_scheme::mol_rk4;
  reference.points_per_unit = 80;
  reference.dt = 0.002;
  scenarios.push_back(std::move(reference));

  engine::runner_options options;
  options.keep_traces = true;
  const engine::sweep_result result =
      engine::run_sweep(context, scenarios, options);

  const engine::model_trace& ref_trace = result.traces.back();
  const std::size_t last = ref_trace.times.size() - 1;
  std::vector<scheme_ablation_row> rows;
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    scheme_ablation_row row;
    row.scheme = schemes[i];
    row.overall_accuracy = result.table.row(i).accuracy;
    row.solve_ms = result.table.row(i).wall_ms;
    const engine::model_trace& trace = result.traces[i];
    for (std::size_t x = 0; x < trace.distances.size(); ++x)
      row.deviation_vs_reference =
          std::max(row.deviation_vs_reference,
                   std::abs(trace.predicted[x][last] -
                            ref_trace.predicted[x][last]));
    rows.push_back(row);
  }
  return rows;
}

void print_scheme_ablation(std::ostream& out,
                           const std::vector<scheme_ablation_row>& rows) {
  out << "Ablation — numerical scheme (story s1, hops, t = 1..6)\n"
      << "deviation = max |difference| vs fine MOL-RK4 reference at t=6\n\n";
  text_table table({"scheme", "overall accuracy", "deviation", "solve ms"});
  for (const auto& row : rows) {
    table.add_row({core::to_string(row.scheme),
                   text_table::pct(row.overall_accuracy, 2),
                   text_table::num(row.deviation_vs_reference, 6),
                   text_table::num(row.solve_ms, 2)});
  }
  out << table << "\n";
}

std::vector<growth_ablation_row> run_growth_ablation(
    const experiment_context& ctx, std::size_t story_index) {
  const int max_distance = 6;
  const social::density_field field =
      ctx.density(story_index, social::distance_metric::friendship_hops);
  const int upper = std::min(max_distance, field.max_distance());

  // The observed surface (t = 1..6) as an engine slice; the whole
  // ablation is then one engine sweep over the `rates` axis.  The
  // calibrated variants are "calibrate" specs (fit on the t <= 4 window,
  // evaluate on t = 2..6) instead of hand-rolled fit::calibrate_dl
  // calls; the spatial rows ("spatial:...", "calibrate-spatial:4")
  // evaluate the paper's §V r(x, t) conjecture on the same Digg slice.
  std::vector<std::vector<double>> surface(static_cast<std::size_t>(upper));
  for (int x = 1; x <= upper; ++x) {
    for (int t = 1; t <= 6; ++t)
      surface[static_cast<std::size_t>(x - 1)].push_back(field.at(x, t));
  }
  const engine::scenario_context context = engine::scenario_context::
      from_surface("growth-ablation", social::distance_metric::friendship_hops,
                   std::move(surface), core::dl_parameters::paper_hops(upper));

  engine::sweep_spec spec;
  spec.models = {"dl"};
  spec.rates = {"preset", "constant:0.25", "constant:0.5", "constant:0.8",
                "spatial:preset|1.25,1,0.85,0.7,0.6,0.5", "calibrate:4",
                "calibrate-spatial:4"};
  spec.t_end = 6.0;

  engine::solve_cache cache;
  engine::runner_options options;
  options.cache = &cache;
  options.calibration.a_max = 3.0;
  options.calibration.b_min = 0.5;
  options.calibration.c_max = 0.6;
  const engine::sweep_result result =
      engine::run_sweep(context, spec, options);

  std::vector<growth_ablation_row> rows;
  for (const engine::result_row& row : result.table.rows()) {
    growth_ablation_row out_row;
    if (row.rate == "preset") {
      out_row.label = "paper r(t) = 1.4 exp(-1.5(t-1)) + 0.25";
    } else if (row.rate.starts_with("constant:")) {
      out_row.label =
          "constant r = " + row.rate.substr(sizeof("constant:") - 1);
    } else if (row.rate.starts_with("spatial:")) {
      out_row.label = "fixed r(x,t) = m(x)*preset, m = " +
                      row.rate.substr(row.rate.find('|') + 1);
    } else if (row.rate.starts_with("calibrate-spatial")) {
      out_row.fitted = true;
      out_row.fit_sse = row.fit_sse;
      out_row.label = "calibrated r(x,t) (fit m on t<=4): m = ";
      for (std::size_t i = 0; i < row.fit_m.size(); ++i) {
        if (i > 0) out_row.label += ',';
        out_row.label += text_table::num(row.fit_m[i], 2);
      }
    } else {
      out_row.fitted = true;
      out_row.fit_sse = row.fit_sse;
      out_row.label = "calibrated r(t) (fit on t<=4): r(t) = " +
                      text_table::num(row.fit_a, 2) + " exp(-" +
                      text_table::num(row.fit_b, 2) + "(t-1)) + " +
                      text_table::num(row.fit_c, 2);
    }
    out_row.overall_accuracy = row.accuracy;
    rows.push_back(std::move(out_row));
  }
  return rows;
}

void print_growth_ablation(std::ostream& out,
                           const std::vector<growth_ablation_row>& rows) {
  out << "Ablation — growth-rate family (story s1, hops, t = 2..6)\n"
      << "fit SSE = squared residuals on the t <= 4 window (calibrated\n"
      << "rows); calibrated r(x,t) vs r(t) evaluates the paper's §V\n"
      << "spatio-temporal conjecture on the same Digg slice\n\n";
  text_table table({"growth rate", "overall accuracy", "fit SSE"});
  for (const auto& row : rows)
    table.add_row({row.label, text_table::pct(row.overall_accuracy, 2),
                   row.fitted ? text_table::num(row.fit_sse, 3) : "-"});
  out << table << "\n";
}

std::vector<resolution_row> run_resolution_ablation() {
  // Synthetic smooth initial profile on [1, 6].
  const std::vector<double> initial{1.9, 0.8, 1.1, 0.6, 0.4, 0.3};
  const core::dl_parameters params = core::dl_parameters::paper_hops(6.0);
  const int horizon = 6;

  // Finest level as reference — its surface doubles as the engine slice.
  // Solved through the unified request API (one request, scalar path).
  core::dl_solver_options fine;
  fine.points_per_unit = 160;
  fine.dt = 0.0025;
  const core::initial_condition phi =
      core::dl_model::build_initial(params, initial);
  const core::dl_solution reference =
      core::solve_dl({.params = &params,
                      .phi = &phi,
                      .t0 = 1.0,
                      .t_end = static_cast<double>(horizon),
                      .options = fine});
  std::vector<std::vector<double>> surface(initial.size());
  for (std::size_t i = 0; i < initial.size(); ++i) {
    surface[i].push_back(initial[i]);
    for (int t = 2; t <= horizon; ++t)
      surface[i].push_back(reference.at(static_cast<double>(i) + 1.0,
                                        static_cast<double>(t)));
  }
  const engine::scenario_context context = engine::scenario_context::
      from_surface("resolution-ablation",
                   social::distance_metric::friendship_hops,
                   std::move(surface), params);

  // Paired Δx/Δt refinement levels (not a full cross product).
  struct level {
    std::size_t ppu;
    double dt;
  };
  const std::vector<level> levels{{5, 0.08}, {10, 0.04}, {20, 0.02},
                                  {40, 0.01}, {80, 0.005}};
  std::vector<engine::scenario> scenarios;
  for (const level& lv : levels) {
    engine::scenario sc;
    sc.model = "dl";
    sc.points_per_unit = lv.ppu;
    sc.dt = lv.dt;
    sc.t_end = horizon;
    scenarios.push_back(std::move(sc));
  }

  engine::runner_options options;
  options.keep_traces = true;
  const engine::sweep_result result =
      engine::run_sweep(context, scenarios, options);

  std::vector<resolution_row> rows;
  for (std::size_t i = 0; i < levels.size(); ++i) {
    resolution_row row;
    row.points_per_unit = levels[i].ppu;
    row.dt = levels[i].dt;
    row.solve_ms = result.table.row(i).wall_ms;
    const engine::model_trace& trace = result.traces[i];
    const std::size_t last = trace.times.size() - 1;
    for (std::size_t x = 0; x < trace.distances.size(); ++x) {
      const double ref = context.slice(0).actual_at(trace.distances[x],
                                                    horizon);
      row.deviation = std::max(row.deviation,
                               std::abs(trace.predicted[x][last] - ref));
    }
    rows.push_back(row);
  }
  return rows;
}

void print_resolution_ablation(std::ostream& out,
                               const std::vector<resolution_row>& rows) {
  out << "Ablation — grid resolution (Strang-CN, paper s1 parameters)\n"
      << "deviation = max |difference| at integer distances, t = 6, vs a\n"
      << "160-points-per-unit, dt=0.0025 reference\n\n";
  text_table table({"points/unit", "dt", "deviation", "solve ms"});
  for (const auto& row : rows) {
    table.add_row({std::to_string(row.points_per_unit),
                   text_table::num(row.dt, 4),
                   text_table::num(row.deviation, 7),
                   text_table::num(row.solve_ms, 2)});
  }
  out << table << "\n";
}

}  // namespace dlm::eval
