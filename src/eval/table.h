// Plain-text table rendering for the figure/table benches.
//
// Every bench prints the same rows/series its paper counterpart reports;
// this module does the column alignment and number formatting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dlm::eval {

/// Column-aligned ASCII table.
class text_table {
 public:
  explicit text_table(std::vector<std::string> headers);

  /// Adds one row; the cell count must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows added so far.
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders with padded columns, a header separator and a trailing
  /// newline.
  [[nodiscard]] std::string str() const;

  friend std::ostream& operator<<(std::ostream& out, const text_table& t);

  /// "92.81%" — percentage with `decimals` places (value is a fraction).
  [[nodiscard]] static std::string pct(double fraction, int decimals = 2);

  /// Fixed-precision number.
  [[nodiscard]] static std::string num(double value, int decimals = 3);

  /// Integer with thousands separators ("24,099").
  [[nodiscard]] static std::string count(std::size_t value);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dlm::eval
