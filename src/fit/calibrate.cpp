#include "fit/calibrate.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <utility>

#include "numerics/optimize/grid_search.h"
#include "numerics/optimize/nelder_mead.h"

namespace dlm::fit {
namespace {

core::dl_parameters params_from_vector(const core::dl_parameters& base,
                                       std::span<const double> v,
                                       const calibration_options& options) {
  core::dl_parameters p = base;
  p.d = v[0];
  p.k = v[1];
  if (options.spatial_groups > 0) {
    // Separable spatio-temporal rate m(x)·base(t): the multipliers are
    // the trailing coordinates, the base the fitted decay family or the
    // temporal factor of the start rate.
    core::growth_rate base_rate =
        options.fit_rate
            ? core::growth_rate::exponential_decay(v[2], v[3], v[4])
            : base.r.base();
    const std::size_t first_m = options.fit_rate ? 5 : 2;
    std::vector<double> multipliers(v.begin() + static_cast<std::ptrdiff_t>(first_m),
                                    v.end());
    p.r = core::rate_field::separable(std::move(base_rate),
                                      std::move(multipliers), base.x_min);
  } else if (options.fit_rate) {
    p.r = core::growth_rate::exponential_decay(v[2], v[3], v[4]);
  }
  return p;
}

}  // namespace

calibration_result calibrate_dl(const observation_window& window,
                                const core::dl_parameters& start,
                                const calibration_options& options) {
  window.validate();

  // Counters are atomic because the coarse lattice may run on a pool.
  std::atomic<std::size_t> pde_solves{0};
  std::atomic<std::size_t> cache_hits{0};
  const auto objective = [&](std::span<const double> v) {
    if (options.cache_find) {
      if (const std::optional<double> cached = options.cache_find(v)) {
        cache_hits.fetch_add(1, std::memory_order_relaxed);
        return *cached;
      }
    }
    pde_solves.fetch_add(1, std::memory_order_relaxed);
    const core::dl_parameters params = params_from_vector(start, v, options);
    core::dl_solver_options solver = options.solver;
    if (solver.scheme == core::dl_scheme::ftcs && params.d > 0.0 &&
        solver.points_per_unit > 0) {
      // Mirror the engine adapter's FTCS stability clamp (dt <=
      // dx²/(2d)) per probed d, so the objective evaluates exactly the
      // discretization the fitted parameters will later run under.
      const double dx = 1.0 / static_cast<double>(solver.points_per_unit);
      solver.dt = std::min(solver.dt, 0.9 * dx * dx / (2.0 * params.d));
    }
    const double value = dl_sse(params, window, solver);
    if (options.cache_store) options.cache_store(v, value);
    return value;
  };

  const std::size_t dims =
      (options.fit_rate ? 5 : 2) + options.spatial_groups;

  // Coarse lattice scan over minimize_grid's own enumeration order.  The
  // objective values are independent solves, so the scan fans out through
  // the caller's batch executor when provided; the argmin (lowest index
  // on ties) is identical either way.  Spatial multiplier axes are
  // pinned at the neutral 1.0 — a lattice over them would grow
  // exponentially in the group count; Nelder–Mead refines them below.
  std::vector<num::grid_axis> axes;
  axes.push_back({options.d_min, options.d_max, options.coarse_steps});
  axes.push_back({options.k_min, options.k_max, options.coarse_steps});
  if (options.fit_rate) {
    axes.push_back({options.a_min, options.a_max, options.coarse_steps});
    axes.push_back({options.b_min, options.b_max, options.coarse_steps});
    axes.push_back({options.c_min, options.c_max, options.coarse_steps});
  }
  for (std::size_t g = 0; g < options.spatial_groups; ++g)
    axes.push_back({1.0, 1.0, 1});
  const std::vector<std::vector<double>> points =
      num::grid_lattice_points(axes);
  std::vector<double> values(points.size());
  if (options.run_batch) {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i)
      tasks.push_back([&, i] { values[i] = objective(points[i]); });
    options.run_batch(std::move(tasks));
  } else {
    for (std::size_t i = 0; i < points.size(); ++i)
      values[i] = objective(points[i]);
  }
  std::size_t best = 0;
  double best_value = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] < best_value) {
      best_value = values[i];
      best = i;
    }
  }

  // Refinement with bounded Nelder–Mead from the best lattice point.
  std::vector<double> lower{options.d_min, options.k_min};
  std::vector<double> upper{options.d_max, options.k_max};
  if (options.fit_rate) {
    lower.insert(lower.end(), {options.a_min, options.b_min, options.c_min});
    upper.insert(upper.end(), {options.a_max, options.b_max, options.c_max});
  }
  for (std::size_t g = 0; g < options.spatial_groups; ++g) {
    lower.push_back(options.m_min);
    upper.push_back(options.m_max);
  }
  num::nelder_mead_options nm;
  nm.max_iterations = options.refine_iterations;
  nm.initial_step = 0.15;
  nm.f_tolerance = 1e-9;
  nm.x_tolerance = 1e-7;
  const num::nelder_mead_result refined = num::minimize_nelder_mead_bounded(
      objective, std::span<const double>(points[best].data(), dims), lower,
      upper, nm);

  calibration_result result;
  result.params = params_from_vector(start, refined.x, options);
  result.x = refined.x;
  result.sse = refined.f_value;
  result.pde_solves = pde_solves.load();
  result.cache_hits = cache_hits.load();
  result.evaluations = result.pde_solves + result.cache_hits;
  result.converged = refined.converged;
  return result;
}

}  // namespace dlm::fit
