#include "fit/calibrate.h"

#include <algorithm>
#include <vector>

#include "numerics/optimize/grid_search.h"
#include "numerics/optimize/nelder_mead.h"

namespace dlm::fit {
namespace {

core::dl_parameters params_from_vector(const core::dl_parameters& base,
                                       std::span<const double> v,
                                       bool fit_rate) {
  core::dl_parameters p = base;
  p.d = v[0];
  p.k = v[1];
  if (fit_rate)
    p.r = core::growth_rate::exponential_decay(v[2], v[3], v[4]);
  return p;
}

}  // namespace

calibration_result calibrate_dl(const observation_window& window,
                                const core::dl_parameters& start,
                                const calibration_options& options) {
  window.validate();

  std::size_t evaluations = 0;
  const auto objective = [&](std::span<const double> v) {
    ++evaluations;
    return dl_sse(params_from_vector(start, v, options.fit_rate), window,
                  options.solver);
  };

  const std::size_t dims = options.fit_rate ? 5 : 2;

  // Coarse lattice scan.
  std::vector<num::grid_axis> axes;
  axes.push_back({options.d_min, options.d_max, options.coarse_steps});
  axes.push_back({options.k_min, options.k_max, options.coarse_steps});
  if (options.fit_rate) {
    axes.push_back({options.a_min, options.a_max, options.coarse_steps});
    axes.push_back({options.b_min, options.b_max, options.coarse_steps});
    axes.push_back({options.c_min, options.c_max, options.coarse_steps});
  }
  const num::grid_search_result coarse = num::minimize_grid(objective, axes);

  // Refinement with bounded Nelder–Mead from the best lattice point.
  std::vector<double> lower{options.d_min, options.k_min};
  std::vector<double> upper{options.d_max, options.k_max};
  if (options.fit_rate) {
    lower.insert(lower.end(), {options.a_min, options.b_min, options.c_min});
    upper.insert(upper.end(), {options.a_max, options.b_max, options.c_max});
  }
  num::nelder_mead_options nm;
  nm.max_iterations = 600;
  nm.initial_step = 0.15;
  nm.f_tolerance = 1e-9;
  nm.x_tolerance = 1e-7;
  const num::nelder_mead_result refined = num::minimize_nelder_mead_bounded(
      objective, std::span<const double>(coarse.x.data(), dims), lower, upper,
      nm);

  calibration_result result;
  result.params = params_from_vector(start, refined.x, options.fit_rate);
  result.sse = refined.f_value;
  result.evaluations = evaluations;
  result.converged = refined.converged;
  return result;
}

}  // namespace dlm::fit
