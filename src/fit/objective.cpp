#include "fit/objective.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/dl_model.h"

namespace dlm::fit {

void observation_window::validate() const {
  if (initial.size() < 2)
    throw std::invalid_argument("observation_window: need >= 2 distances");
  if (times.empty())
    throw std::invalid_argument("observation_window: no observed times");
  double prev = t0;
  for (double t : times) {
    if (!(t > prev))
      throw std::invalid_argument(
          "observation_window: times must be ascending and > t0");
    prev = t;
  }
  if (observed.size() != initial.size())
    throw std::invalid_argument("observation_window: observed row mismatch");
  for (const auto& row : observed) {
    if (row.size() != times.size())
      throw std::invalid_argument("observation_window: observed column mismatch");
  }
}

double dl_sse(const core::dl_parameters& params,
              const observation_window& window,
              const core::dl_solver_options& solver) {
  window.validate();
  try {
    params.validate();
    // Straight through the unified request API: build φ once, solve, read
    // back — no dl_model instance, so the objective's hot loop carries no
    // parameter/φ copies.
    const core::initial_condition phi =
        core::dl_model::build_initial(params, window.initial);
    const core::dl_solution solution =
        core::solve_dl({.params = &params,
                        .phi = &phi,
                        .t0 = window.t0,
                        .t_end = window.times.back(),
                        .options = solver});
    const int lo = static_cast<int>(std::lround(params.x_min));
    const int hi = static_cast<int>(std::lround(params.x_max));
    double acc = 0.0;
    // Domain-agnostic by construction: at_integer_distances reduces a
    // multi-block trace (2-D sheet rows, coupled communities) down to
    // the distance axis, so the same SSE calibrates params.dom of any
    // kind against per-distance observations.
    // One profile buffer reused across the observed hours — calibration
    // evaluates this objective hundreds of times per fit, so the solver's
    // allocation-free read path matters here.
    std::vector<double> profile(window.initial.size());
    for (std::size_t j = 0; j < window.times.size(); ++j) {
      solution.at_integer_distances(window.times[j], lo, hi, profile);
      for (std::size_t i = 0; i < window.initial.size(); ++i) {
        const double e = profile[i] - window.observed[i][j];
        acc += e * e;
      }
    }
    return std::isfinite(acc) ? acc : std::numeric_limits<double>::infinity();
  } catch (const std::exception&) {
    return std::numeric_limits<double>::infinity();
  }
}

}  // namespace dlm::fit
