// Least-squares objective for DL calibration.
//
// The paper selects d, K and the r(t) family manually (§II.D guidelines:
// "r controls the gap between I(x,t) and I(x,t+1) … d controls the slope
// of I … K controls the upper bound").  This module turns those guidelines
// into an objective: sum of squared residuals between the DL solution and
// the densities observed during the early window, which `calibrate_dl`
// minimizes.
#pragma once

#include <vector>

#include "core/dl_parameters.h"
#include "core/dl_solver.h"

namespace dlm::fit {

/// The early observations available for calibration.
struct observation_window {
  double t0 = 1.0;                ///< time of the initial profile (hour 1)
  std::vector<double> initial;    ///< densities at integer distances, t = t0
  std::vector<double> times;      ///< observed times, all > t0, ascending
  /// observed[i][j]: density at distance x_min + i, time times[j].
  std::vector<std::vector<double>> observed;

  /// Throws std::invalid_argument when shapes are inconsistent.
  void validate() const;
};

/// Sum of squared residuals of the DL solution for `params` against the
/// window (solves the PDE once).  Returns +inf for invalid parameters so
/// optimizers can probe freely.  The solve borrows the calling thread's
/// core::dl_workspace, so a lattice scan fanned out over a pool (or a
/// Nelder–Mead refinement on one thread) reuses scratch buffers across
/// all of its probes instead of reallocating per solve.
[[nodiscard]] double dl_sse(const core::dl_parameters& params,
                            const observation_window& window,
                            const core::dl_solver_options& solver = {});

}  // namespace dlm::fit
