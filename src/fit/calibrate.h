// DL parameter calibration from the early observation window.
//
// Coarse lattice scan (grid search) followed by bounded Nelder–Mead
// refinement over (d, K, a, b, c) where r(t) = a·e^{−b(t−1)} + c — the
// paper's growth-rate family.  The paper tunes by hand; this automates the
// same procedure and is used by the `model_comparison` example and the
// r(t)-family ablation bench.
#pragma once

#include <cstddef>

#include "core/dl_parameters.h"
#include "fit/objective.h"

namespace dlm::fit {

/// Box bounds and switches for calibration.
struct calibration_options {
  double d_min = 0.0, d_max = 0.5;
  double k_min = 1.0, k_max = 100.0;
  double a_min = 0.0, a_max = 4.0;   ///< rate amplitude
  double b_min = 0.1, b_max = 4.0;   ///< rate decay
  double c_min = 0.0, c_max = 1.0;   ///< rate floor
  bool fit_rate = true;   ///< false: keep the rate from `start`, fit (d, K)
  std::size_t coarse_steps = 4;  ///< lattice points per axis in the scan
  core::dl_solver_options solver{};
};

/// Calibration outcome.
struct calibration_result {
  core::dl_parameters params;  ///< best-fit parameters
  double sse = 0.0;            ///< objective at the optimum
  std::size_t evaluations = 0; ///< PDE solves spent
  bool converged = false;
};

/// Calibrates DL parameters against `window`, starting from `start`
/// (which also fixes x_min/x_max and, when !fit_rate, the rate function).
[[nodiscard]] calibration_result calibrate_dl(
    const observation_window& window, const core::dl_parameters& start,
    const calibration_options& options = {});

}  // namespace dlm::fit
