// DL parameter calibration from the early observation window.
//
// Coarse lattice scan (grid search) followed by bounded Nelder–Mead
// refinement over (d, K, a, b, c) where r(t) = a·e^{−b(t−1)} + c — the
// paper's growth-rate family.  The paper tunes by hand; this automates the
// same procedure and is reachable either directly (this header) or as the
// engine workload behind the "calibrate" growth-rate spec
// (engine::scenario_runner), which memoizes objective values in a solve
// cache and fans the lattice out over the engine thread pool via the
// hooks below.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "core/dl_parameters.h"
#include "fit/objective.h"

namespace dlm::fit {

/// Box bounds and switches for calibration.
struct calibration_options {
  double d_min = 0.0, d_max = 0.5;
  double k_min = 1.0, k_max = 100.0;
  double a_min = 0.0, a_max = 4.0;   ///< rate amplitude
  double b_min = 0.1, b_max = 4.0;   ///< rate decay
  double c_min = 0.0, c_max = 1.0;   ///< rate floor
  bool fit_rate = true;   ///< false: keep the rate from `start`, fit (d, K)
  /// > 0: additionally fit that many per-group rate multipliers — the
  /// optimizer vector grows to (d, K[, a, b, c], m_1..m_n) and the fitted
  /// rate becomes the separable field m(x)·base(t) anchored at
  /// start.x_min (paper §V; the engine's "calibrate-spatial" workload).
  /// The base is the fitted decay family when fit_rate, otherwise the
  /// rate carried by `start` — which must then be of separable form.
  /// The coarse lattice pins every multiplier at 1.0 (a lattice over n
  /// extra axes would grow exponentially); Nelder–Mead refines them
  /// inside [m_min, m_max].
  std::size_t spatial_groups = 0;
  double m_min = 0.2, m_max = 2.5;   ///< multiplier box bounds
  std::size_t coarse_steps = 4;  ///< lattice points per axis in the scan
  std::size_t refine_iterations = 600;  ///< Nelder–Mead iteration cap
  core::dl_solver_options solver{};

  /// Optional memoization hooks.  `cache_find(v)` returns the objective
  /// value previously stored for parameter vector `v` (or nullopt);
  /// `cache_store(v, f)` records a freshly solved value.  When set, every
  /// lookup is counted in calibration_result::cache_hits / pde_solves so
  /// the reported "PDE solves spent" stays truthful instead of silently
  /// shrinking as the cache warms up.  Hooks must be thread-safe when
  /// `run_batch` is also set.
  std::function<std::optional<double>(std::span<const double>)> cache_find;
  std::function<void(std::span<const double>, double)> cache_store;

  /// Optional batch executor for the coarse lattice: receives one task
  /// per lattice point and must run them all before returning (order
  /// free — each task owns its output slot).  Unset → serial scan.  The
  /// engine wires this to thread_pool::run_batch.
  std::function<void(std::vector<std::function<void()>>)> run_batch;
};

/// Calibration outcome.
struct calibration_result {
  core::dl_parameters params;  ///< best-fit parameters
  /// Raw optimizer vector behind `params`: (d, K[, a, b, c][, m_1..m_n])
  /// per calibration_options::fit_rate / spatial_groups — callers that
  /// need the fitted rate coefficients read them here, since
  /// core::growth_rate does not expose its constants.
  std::vector<double> x;
  double sse = 0.0;            ///< objective at the optimum
  std::size_t evaluations = 0; ///< objective evaluations (solves + hits)
  std::size_t pde_solves = 0;  ///< evaluations that actually solved the PDE
  std::size_t cache_hits = 0;  ///< evaluations served from the memo hooks
  bool converged = false;
};

/// Calibrates DL parameters against `window`, starting from `start`
/// (which also fixes x_min/x_max and, when !fit_rate, the rate function).
[[nodiscard]] calibration_result calibrate_dl(
    const observation_window& window, const core::dl_parameters& start,
    const calibration_options& options = {});

}  // namespace dlm::fit
