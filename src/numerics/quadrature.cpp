#include "numerics/quadrature.h"

#include <stdexcept>

namespace dlm::num {

double trapezoid_uniform(std::span<const double> y, double dx) {
  if (y.size() < 2)
    throw std::invalid_argument("trapezoid_uniform: need >= 2 samples");
  double acc = 0.5 * (y.front() + y.back());
  for (std::size_t i = 1; i + 1 < y.size(); ++i) acc += y[i];
  return acc * dx;
}

double trapezoid(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size())
    throw std::invalid_argument("trapezoid: x/y size mismatch");
  if (x.size() < 2) throw std::invalid_argument("trapezoid: need >= 2 samples");
  double acc = 0.0;
  for (std::size_t i = 1; i < x.size(); ++i) {
    const double h = x[i] - x[i - 1];
    if (!(h > 0.0))
      throw std::invalid_argument("trapezoid: x must be strictly increasing");
    acc += 0.5 * h * (y[i] + y[i - 1]);
  }
  return acc;
}

double simpson(const std::function<double(double)>& f, double a, double b,
               std::size_t n) {
  if (!(b > a)) throw std::invalid_argument("simpson: require b > a");
  if (n < 2) n = 2;
  if (n % 2 != 0) ++n;
  const double h = (b - a) / static_cast<double>(n);
  double acc = f(a) + f(b);
  for (std::size_t i = 1; i < n; ++i) {
    const double xi = a + static_cast<double>(i) * h;
    acc += (i % 2 == 1 ? 4.0 : 2.0) * f(xi);
  }
  return acc * h / 3.0;
}

}  // namespace dlm::num
