#include "numerics/cubic_spline.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "numerics/tridiagonal.h"

namespace dlm::num {
namespace {

void validate_knots(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size())
    throw std::invalid_argument("cubic_spline: x/y size mismatch");
  if (x.size() < 2)
    throw std::invalid_argument("cubic_spline: need at least 2 knots");
  for (std::size_t i = 1; i < x.size(); ++i) {
    if (!(x[i] > x[i - 1]))
      throw std::invalid_argument("cubic_spline: knots must be strictly increasing");
  }
}

}  // namespace

cubic_spline::cubic_spline(std::vector<double> x, std::vector<double> y,
                           std::vector<double> second_derivs,
                           spline_boundary boundary)
    : x_(std::move(x)), y_(std::move(y)), m_(std::move(second_derivs)),
      boundary_(boundary) {}

cubic_spline cubic_spline::natural(std::span<const double> x,
                                   std::span<const double> y) {
  validate_knots(x, y);
  const std::size_t n = x.size();
  std::vector<double> m(n, 0.0);
  if (n > 2) {
    // Interior system for second derivatives M_1..M_{n-2}.
    const std::size_t k = n - 2;
    tridiagonal_matrix a(k);
    std::vector<double> rhs(k, 0.0);
    for (std::size_t i = 0; i < k; ++i) {
      const double h0 = x[i + 1] - x[i];
      const double h1 = x[i + 2] - x[i + 1];
      a.diag[i] = 2.0 * (h0 + h1);
      if (i > 0) a.lower[i - 1] = h0;
      if (i + 1 < k) a.upper[i] = h1;
      rhs[i] = 6.0 * ((y[i + 2] - y[i + 1]) / h1 - (y[i + 1] - y[i]) / h0);
    }
    const std::vector<double> sol = solve_tridiagonal(a, rhs);
    for (std::size_t i = 0; i < k; ++i) m[i + 1] = sol[i];
  }
  return cubic_spline(std::vector<double>(x.begin(), x.end()),
                      std::vector<double>(y.begin(), y.end()), std::move(m),
                      spline_boundary::natural);
}

cubic_spline cubic_spline::clamped(std::span<const double> x,
                                   std::span<const double> y,
                                   double slope_left, double slope_right) {
  validate_knots(x, y);
  const std::size_t n = x.size();
  // Full system for M_0..M_{n-1} with clamped-end rows.
  tridiagonal_matrix a(n);
  std::vector<double> rhs(n, 0.0);

  const double h_first = x[1] - x[0];
  a.diag[0] = 2.0 * h_first;
  a.upper[0] = h_first;
  rhs[0] = 6.0 * ((y[1] - y[0]) / h_first - slope_left);

  for (std::size_t i = 1; i + 1 < n; ++i) {
    const double h0 = x[i] - x[i - 1];
    const double h1 = x[i + 1] - x[i];
    a.lower[i - 1] = h0;
    a.diag[i] = 2.0 * (h0 + h1);
    a.upper[i] = h1;
    rhs[i] = 6.0 * ((y[i + 1] - y[i]) / h1 - (y[i] - y[i - 1]) / h0);
  }

  const double h_last = x[n - 1] - x[n - 2];
  a.lower[n - 2] = h_last;
  a.diag[n - 1] = 2.0 * h_last;
  rhs[n - 1] = 6.0 * (slope_right - (y[n - 1] - y[n - 2]) / h_last);

  std::vector<double> m = solve_tridiagonal(a, rhs);
  return cubic_spline(std::vector<double>(x.begin(), x.end()),
                      std::vector<double>(y.begin(), y.end()), std::move(m),
                      spline_boundary::clamped);
}

cubic_spline cubic_spline::flat_ends(std::span<const double> x,
                                     std::span<const double> y) {
  return clamped(x, y, 0.0, 0.0);
}

std::size_t cubic_spline::interval_of(double x) const noexcept {
  // Binary search for the interval [x_i, x_{i+1}] containing x.
  const auto it = std::upper_bound(x_.begin(), x_.end(), x);
  if (it == x_.begin()) return 0;
  const auto idx = static_cast<std::size_t>(it - x_.begin()) - 1;
  return std::min(idx, x_.size() - 2);
}

double cubic_spline::operator()(double x) const noexcept {
  if (extrap_ == spline_extrapolation::clamp_flat) {
    if (x <= x_.front()) return y_.front();
    if (x >= x_.back()) return y_.back();
  }
  const std::size_t i = interval_of(x);
  const double h = x_[i + 1] - x_[i];
  const double a = (x_[i + 1] - x) / h;
  const double b = (x - x_[i]) / h;
  return a * y_[i] + b * y_[i + 1] +
         ((a * a * a - a) * m_[i] + (b * b * b - b) * m_[i + 1]) * h * h / 6.0;
}

double cubic_spline::derivative(double x) const noexcept {
  if (extrap_ == spline_extrapolation::clamp_flat) {
    if (x <= x_.front() || x >= x_.back()) {
      // Flat extension: zero slope outside the knot range.  At the knots
      // themselves report the one-sided interior slope for clamped splines
      // (which is the prescribed slope) to keep derivative() continuous
      // from inside.
      if (x < x_.front() || x > x_.back()) return 0.0;
    }
  }
  const std::size_t i = interval_of(x);
  const double h = x_[i + 1] - x_[i];
  const double a = (x_[i + 1] - x) / h;
  const double b = (x - x_[i]) / h;
  return (y_[i + 1] - y_[i]) / h -
         (3.0 * a * a - 1.0) / 6.0 * h * m_[i] +
         (3.0 * b * b - 1.0) / 6.0 * h * m_[i + 1];
}

double cubic_spline::second_derivative(double x) const noexcept {
  if (extrap_ == spline_extrapolation::clamp_flat) {
    if (x < x_.front() || x > x_.back()) return 0.0;
  }
  const std::size_t i = interval_of(x);
  const double h = x_[i + 1] - x_[i];
  const double a = (x_[i + 1] - x) / h;
  const double b = (x - x_[i]) / h;
  return a * m_[i] + b * m_[i + 1];
}

std::vector<double> cubic_spline::sample(std::span<const double> xs) const {
  std::vector<double> out(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) out[i] = (*this)(xs[i]);
  return out;
}

double cubic_spline::min_value(std::size_t samples_per_interval) const {
  double best = y_.front();
  for (std::size_t i = 0; i + 1 < x_.size(); ++i) {
    for (std::size_t s = 0; s <= samples_per_interval; ++s) {
      const double t = static_cast<double>(s) / static_cast<double>(samples_per_interval);
      const double xv = x_[i] + t * (x_[i + 1] - x_[i]);
      best = std::min(best, (*this)(xv));
    }
  }
  return best;
}

}  // namespace dlm::num
