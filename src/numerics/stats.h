// Descriptive statistics and error metrics over samples.
//
// The evaluation harness reports the paper's per-cell prediction accuracy
// plus aggregate error metrics (MAPE/RMSE) over density surfaces.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dlm::num {

/// Arithmetic mean; throws std::invalid_argument on empty input.
[[nodiscard]] double mean(std::span<const double> xs);

/// Unbiased sample variance (n-1 denominator); requires >= 2 samples.
[[nodiscard]] double variance(std::span<const double> xs);

/// Sample standard deviation.
[[nodiscard]] double stddev(std::span<const double> xs);

/// Median (average of the two central order statistics for even n).
[[nodiscard]] double median(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100].
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// Pearson correlation coefficient of two equal-length samples.
[[nodiscard]] double pearson(std::span<const double> xs,
                             std::span<const double> ys);

/// Simple linear regression y ≈ slope * x + intercept.
struct linear_fit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};
[[nodiscard]] linear_fit fit_line(std::span<const double> xs,
                                  std::span<const double> ys);

/// Root-mean-square error between predictions and observations.
[[nodiscard]] double rmse(std::span<const double> predicted,
                          std::span<const double> actual);

/// Mean absolute error.
[[nodiscard]] double mae(std::span<const double> predicted,
                         std::span<const double> actual);

/// Mean absolute percentage error in [0, +inf), skipping cells where
/// |actual| < `floor` to avoid division blow-ups.
[[nodiscard]] double mape(std::span<const double> predicted,
                          std::span<const double> actual,
                          double floor = 1e-12);

/// Sum of squared residuals (the least-squares objective used by fitting).
[[nodiscard]] double sse(std::span<const double> predicted,
                         std::span<const double> actual);

/// Min and max of a non-empty sample.
struct min_max {
  double min = 0.0;
  double max = 0.0;
};
[[nodiscard]] min_max extent(std::span<const double> xs);

}  // namespace dlm::num
