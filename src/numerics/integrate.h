// Explicit ODE integrators (method-of-lines backbone).
//
// The DL equation can be solved by discretizing space and integrating the
// resulting ODE system in time ("method of lines").  These integrators also
// drive the baseline temporal-only models (per-distance logistic, SI).
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

namespace dlm::num {

/// Right-hand side of an ODE system y' = f(t, y): writes dy/dt into `dydt`.
/// `y` and `dydt` always have the same size.
using ode_rhs =
    std::function<void(double t, std::span<const double> y, std::span<double> dydt)>;

/// One explicit Euler step from (t, y) with step h; writes the result into
/// `y_next` (may not alias y).
void euler_step(const ode_rhs& f, double t, std::span<const double> y, double h,
                std::span<double> y_next);

/// One Heun (explicit trapezoid, 2nd order) step.
void heun_step(const ode_rhs& f, double t, std::span<const double> y, double h,
               std::span<double> y_next);

/// One classical Runge–Kutta 4th-order step.
void rk4_step(const ode_rhs& f, double t, std::span<const double> y, double h,
              std::span<double> y_next);

/// Reusable stage buffers for rk4_step: one allocation per run instead of
/// five per step when a caller steps the same system repeatedly (the DL
/// method-of-lines scheme does this thousands of times per solve).
struct rk4_scratch {
  std::vector<double> k1, k2, k3, k4, tmp;

  /// Sizes every stage buffer to n (no-op when already sized).
  void prepare(std::size_t n);
};

/// rk4_step writing its stages into caller-owned scratch — bitwise
/// identical to the allocating overload, zero allocations once `scratch`
/// has been prepared at the right size.
void rk4_step(const ode_rhs& f, double t, std::span<const double> y, double h,
              std::span<double> y_next, rk4_scratch& scratch);

/// Time-stepping scheme selector for `integrate_fixed`.
enum class ode_scheme { euler, heun, rk4 };

/// A recorded trajectory: times[k] and the state at that time.
struct ode_trajectory {
  std::vector<double> times;
  std::vector<std::vector<double>> states;

  [[nodiscard]] std::size_t steps() const noexcept { return times.size(); }
  [[nodiscard]] const std::vector<double>& final_state() const {
    return states.back();
  }
};

/// Integrates y' = f(t,y) from (t0, y0) to t1 with `n_steps` fixed steps of
/// the chosen scheme, recording every `record_every`-th state (and always
/// the first and last).  Throws std::invalid_argument for t1 <= t0 or
/// n_steps == 0.
[[nodiscard]] ode_trajectory integrate_fixed(const ode_rhs& f, double t0,
                                             std::span<const double> y0,
                                             double t1, std::size_t n_steps,
                                             ode_scheme scheme = ode_scheme::rk4,
                                             std::size_t record_every = 1);

/// Result of adaptive integration.
struct adaptive_result {
  std::vector<double> y;        ///< state at t1
  std::size_t steps_taken = 0;  ///< accepted steps
  std::size_t steps_rejected = 0;
};

/// Adaptive Runge–Kutta–Fehlberg 4(5) from (t0,y0) to t1 with per-component
/// absolute tolerance `atol` and relative tolerance `rtol`.
/// Throws std::runtime_error if the step size collapses below `h_min`.
[[nodiscard]] adaptive_result integrate_rkf45(const ode_rhs& f, double t0,
                                              std::span<const double> y0,
                                              double t1, double atol = 1e-8,
                                              double rtol = 1e-8,
                                              double h_min = 1e-12);

/// Convenience: integrates a scalar ODE y' = f(t, y) with RK4 and returns
/// y(t1).
[[nodiscard]] double integrate_scalar(
    const std::function<double(double, double)>& f, double t0, double y0,
    double t1, std::size_t n_steps);

}  // namespace dlm::num
