#include "numerics/roots.h"

#include <cmath>
#include <stdexcept>

namespace dlm::num {

root_result bisect(const std::function<double(double)>& f, double a, double b,
                   double tol, int max_iter) {
  double fa = f(a);
  double fb = f(b);
  if (fa == 0.0) return {a, 0.0, 0, true};
  if (fb == 0.0) return {b, 0.0, 0, true};
  if (fa * fb > 0.0)
    throw std::invalid_argument("bisect: f(a) and f(b) must differ in sign");

  root_result res;
  for (int it = 0; it < max_iter; ++it) {
    const double mid = 0.5 * (a + b);
    const double fm = f(mid);
    res.x = mid;
    res.f_value = fm;
    res.iterations = it + 1;
    if (std::abs(fm) <= tol || 0.5 * (b - a) <= tol) {
      res.converged = true;
      return res;
    }
    if (fa * fm < 0.0) {
      b = mid;
    } else {
      a = mid;
      fa = fm;
    }
  }
  return res;
}

root_result newton(const std::function<double(double)>& f,
                   const std::function<double(double)>& df, double x0,
                   double tol, int max_iter) {
  root_result res;
  double x = x0;
  for (int it = 0; it < max_iter; ++it) {
    const double fx = f(x);
    res.x = x;
    res.f_value = fx;
    res.iterations = it;
    if (std::abs(fx) <= tol) {
      res.converged = true;
      return res;
    }
    double d = df(x);
    if (std::abs(d) < 1e-300) d = (d < 0.0 ? -1.0 : 1.0) * 1e-300;
    const double step = fx / d;
    x -= step;
    if (!std::isfinite(x)) return res;  // diverged
  }
  res.x = x;
  res.f_value = f(x);
  res.iterations = max_iter;
  res.converged = std::abs(res.f_value) <= tol;
  return res;
}

root_result newton_bisect(const std::function<double(double)>& f,
                          const std::function<double(double)>& df, double a,
                          double b, double tol, int max_iter) {
  double fa = f(a);
  double fb = f(b);
  if (fa == 0.0) return {a, 0.0, 0, true};
  if (fb == 0.0) return {b, 0.0, 0, true};
  if (fa * fb > 0.0)
    throw std::invalid_argument("newton_bisect: need sign change on [a,b]");

  root_result res;
  double x = 0.5 * (a + b);
  for (int it = 0; it < max_iter; ++it) {
    const double fx = f(x);
    res.x = x;
    res.f_value = fx;
    res.iterations = it + 1;
    if (std::abs(fx) <= tol || (b - a) <= tol) {
      res.converged = true;
      return res;
    }
    // Maintain the bracket.
    if (fa * fx < 0.0) {
      b = x;
    } else {
      a = x;
      fa = fx;
    }
    // Try Newton; fall back to bisection if it leaves the bracket.
    const double d = df(x);
    double x_new = (std::abs(d) > 1e-300) ? x - fx / d : a - 1.0;  // force bisect
    if (!(x_new > a && x_new < b)) x_new = 0.5 * (a + b);
    x = x_new;
  }
  return res;
}

}  // namespace dlm::num
