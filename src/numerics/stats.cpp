#include "numerics/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace dlm::num {
namespace {

void require_nonempty(std::span<const double> xs, const char* who) {
  if (xs.empty()) throw std::invalid_argument(std::string(who) + ": empty input");
}

void require_same_size(std::span<const double> a, std::span<const double> b,
                       const char* who) {
  if (a.size() != b.size())
    throw std::invalid_argument(std::string(who) + ": size mismatch");
  if (a.empty()) throw std::invalid_argument(std::string(who) + ": empty input");
}

}  // namespace

double mean(std::span<const double> xs) {
  require_nonempty(xs, "mean");
  double acc = 0.0;
  for (double v : xs) acc += v;
  return acc / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) throw std::invalid_argument("variance: need >= 2 samples");
  const double m = mean(xs);
  double acc = 0.0;
  for (double v : xs) acc += (v - m) * (v - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double median(std::span<const double> xs) {
  require_nonempty(xs, "median");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  if (n % 2 == 1) return sorted[n / 2];
  return 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

double percentile(std::span<const double> xs, double p) {
  require_nonempty(xs, "percentile");
  if (p < 0.0 || p > 100.0)
    throw std::invalid_argument("percentile: p must be in [0,100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  require_same_size(xs, ys, "pearson");
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

linear_fit fit_line(std::span<const double> xs, std::span<const double> ys) {
  require_same_size(xs, ys, "fit_line");
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  linear_fit fit;
  if (sxx == 0.0) {
    fit.intercept = my;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

double rmse(std::span<const double> predicted, std::span<const double> actual) {
  require_same_size(predicted, actual, "rmse");
  double acc = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double e = predicted[i] - actual[i];
    acc += e * e;
  }
  return std::sqrt(acc / static_cast<double>(predicted.size()));
}

double mae(std::span<const double> predicted, std::span<const double> actual) {
  require_same_size(predicted, actual, "mae");
  double acc = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i)
    acc += std::abs(predicted[i] - actual[i]);
  return acc / static_cast<double>(predicted.size());
}

double mape(std::span<const double> predicted, std::span<const double> actual,
            double floor) {
  require_same_size(predicted, actual, "mape");
  double acc = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    if (std::abs(actual[i]) < floor) continue;
    acc += std::abs(predicted[i] - actual[i]) / std::abs(actual[i]);
    ++counted;
  }
  if (counted == 0)
    throw std::invalid_argument("mape: all actual values below floor");
  return acc / static_cast<double>(counted);
}

double sse(std::span<const double> predicted, std::span<const double> actual) {
  require_same_size(predicted, actual, "sse");
  double acc = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double e = predicted[i] - actual[i];
    acc += e * e;
  }
  return acc;
}

min_max extent(std::span<const double> xs) {
  require_nonempty(xs, "extent");
  const auto [lo, hi] = std::minmax_element(xs.begin(), xs.end());
  return {*lo, *hi};
}

}  // namespace dlm::num
