// Tridiagonal linear systems and the Thomas algorithm.
//
// The implicit finite-difference schemes for the Diffusive Logistic equation
// (Crank–Nicolson, backward Euler with Newton linearization) reduce each time
// step to a tridiagonal solve; this module provides that primitive.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dlm::num {

/// A tridiagonal matrix of dimension n, stored as three diagonals.
///
/// Row i of the matrix is:  lower[i-1] * x[i-1] + diag[i] * x[i] +
/// upper[i] * x[i+1].  `lower` and `upper` have size n-1, `diag` has size n.
struct tridiagonal_matrix {
  std::vector<double> lower;  ///< sub-diagonal, size n-1
  std::vector<double> diag;   ///< main diagonal, size n
  std::vector<double> upper;  ///< super-diagonal, size n-1

  /// Creates an n-by-n tridiagonal matrix with all entries zero.
  explicit tridiagonal_matrix(std::size_t n);

  /// Dimension of the (square) matrix.
  [[nodiscard]] std::size_t size() const noexcept { return diag.size(); }

  /// Computes y = A * x.  `x` must have size n.
  [[nodiscard]] std::vector<double> multiply(std::span<const double> x) const;

  /// True if the matrix is strictly diagonally dominant by rows, a
  /// sufficient condition for the Thomas algorithm to be stable.
  [[nodiscard]] bool diagonally_dominant() const noexcept;
};

/// Solves A x = rhs for a tridiagonal A using the Thomas algorithm (O(n)).
///
/// Requires A to be non-singular; diagonally dominant systems (as produced
/// by the DL discretizations) are solved stably without pivoting.
/// Throws std::invalid_argument on dimension mismatch and
/// std::domain_error if a zero pivot is encountered.
[[nodiscard]] std::vector<double> solve_tridiagonal(
    const tridiagonal_matrix& a, std::span<const double> rhs);

/// In-place variant: overwrites `rhs` with the solution and uses `scratch`
/// for the modified coefficients, avoiding allocation in solver hot loops.
/// `scratch` must have size n (it is resized if needed).
void solve_tridiagonal_in_place(const tridiagonal_matrix& a,
                                std::vector<double>& rhs,
                                std::vector<double>& scratch);

}  // namespace dlm::num
