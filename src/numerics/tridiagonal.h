// Tridiagonal linear systems and the Thomas algorithm.
//
// The implicit finite-difference schemes for the Diffusive Logistic equation
// (Crank–Nicolson, backward Euler with Newton linearization) reduce each time
// step to a tridiagonal solve; this module provides that primitive.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dlm::num {

/// A tridiagonal matrix of dimension n, stored as three diagonals.
///
/// Row i of the matrix is:  lower[i-1] * x[i-1] + diag[i] * x[i] +
/// upper[i] * x[i+1].  `lower` and `upper` have size n-1, `diag` has size n.
struct tridiagonal_matrix {
  std::vector<double> lower;  ///< sub-diagonal, size n-1
  std::vector<double> diag;   ///< main diagonal, size n
  std::vector<double> upper;  ///< super-diagonal, size n-1

  /// Creates an empty (0-by-0) matrix; resize() before use.  Exists so
  /// the matrix can live inside a reusable workspace.
  tridiagonal_matrix() = default;

  /// Creates an n-by-n tridiagonal matrix with all entries zero.
  explicit tridiagonal_matrix(std::size_t n);

  /// Resizes to n-by-n, reusing the diagonal buffers' capacity.  Newly
  /// added entries are zero; existing entries keep their values.
  /// Throws std::invalid_argument for n == 0.
  void resize(std::size_t n);

  /// Dimension of the (square) matrix.
  [[nodiscard]] std::size_t size() const noexcept { return diag.size(); }

  /// Computes y = A * x.  `x` must have size n.
  [[nodiscard]] std::vector<double> multiply(std::span<const double> x) const;

  /// Computes y = A * x into a caller-provided buffer (no allocation).
  /// `x` and `y` must both have size n and may not alias.
  void multiply_into(std::span<const double> x, std::span<double> y) const;

  /// True if the matrix is strictly diagonally dominant by rows, a
  /// sufficient condition for the Thomas algorithm to be stable.
  [[nodiscard]] bool diagonally_dominant() const noexcept;
};

/// Solves A x = rhs for a tridiagonal A using the Thomas algorithm (O(n)).
///
/// Requires A to be non-singular; diagonally dominant systems (as produced
/// by the DL discretizations) are solved stably without pivoting.
/// Throws std::invalid_argument on dimension mismatch and
/// std::domain_error if a zero pivot is encountered.
[[nodiscard]] std::vector<double> solve_tridiagonal(
    const tridiagonal_matrix& a, std::span<const double> rhs);

/// In-place variant: overwrites `rhs` with the solution and uses `scratch`
/// for the modified coefficients, avoiding allocation in solver hot loops.
/// `scratch` must have size n (it is resized if needed).
void solve_tridiagonal_in_place(const tridiagonal_matrix& a,
                                std::vector<double>& rhs,
                                std::vector<double>& scratch);

/// Cached Thomas forward elimination.
///
/// The Crank–Nicolson diffusion matrix of the Strang-split DL scheme is
/// constant across an entire run, yet solve_tridiagonal re-eliminates it
/// on every time step.  factor() performs the elimination once — the
/// pivot chain d'_i = d_i − l_{i−1}·u_{i−1}/d'_{i−1} and the modified
/// super-diagonal c*_i = u_i/d'_i — so each subsequent solve is just the
/// rhs forward sweep plus back substitution (one multiply-subtract and
/// one divide per node, no allocation).
///
/// solve_in_place() is arithmetically *identical* to running
/// solve_tridiagonal_in_place on the factored matrix: the stored pivots
/// are the same denominators the one-shot path divides by, so results
/// match bitwise (the DL solver relies on this to keep cached traces and
/// golden fit values valid).
class tridiagonal_factorization {
 public:
  tridiagonal_factorization() = default;

  /// Factors `a`, reusing the coefficient buffers' capacity across calls.
  /// Throws std::domain_error on a zero pivot.
  void factor(const tridiagonal_matrix& a);

  /// Dimension of the factored matrix (0 before the first factor()).
  [[nodiscard]] std::size_t size() const noexcept { return pivot_.size(); }

  /// Solves A x = rhs, overwriting `rhs` with the solution.
  /// Throws std::invalid_argument on size mismatch (or if empty).
  void solve_in_place(std::span<double> rhs) const;

  /// Sub-diagonal of A (the forward-sweep multiplier l_i) — exposed so a
  /// caller fusing its own rhs computation into the forward sweep (the
  /// Strang–CN step does this) uses exactly the stored coefficients.
  [[nodiscard]] const std::vector<double>& lower() const noexcept {
    return lower_;
  }
  /// Eliminated pivots d'_i.
  [[nodiscard]] const std::vector<double>& pivots() const noexcept {
    return pivot_;
  }
  /// Modified super-diagonal u_i / d'_i (back-substitution coefficients).
  [[nodiscard]] const std::vector<double>& c_star() const noexcept {
    return c_star_;
  }

 private:
  std::vector<double> lower_;   ///< sub-diagonal of A (forward-sweep factor)
  std::vector<double> pivot_;   ///< eliminated pivots d'_i
  std::vector<double> c_star_;  ///< modified super-diagonal u_i / d'_i
};

}  // namespace dlm::num
