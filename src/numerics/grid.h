// Uniform 1-D spatial grids over the distance axis [l, L].
//
// The DL equation is posed on a closed interval of "distances" (friendship
// hops or shared-interest groups).  All finite-difference solvers in
// src/core discretize that interval with this grid type.
#pragma once

#include <cstddef>
#include <vector>

namespace dlm::num {

/// A uniform grid of `points()` nodes covering [lower, upper] inclusively.
class uniform_grid {
 public:
  /// Builds a grid with `n_points >= 2` nodes spanning [lower, upper],
  /// `lower < upper`.  Throws std::invalid_argument otherwise.
  uniform_grid(double lower, double upper, std::size_t n_points);

  [[nodiscard]] double lower() const noexcept { return lower_; }
  [[nodiscard]] double upper() const noexcept { return upper_; }
  [[nodiscard]] std::size_t points() const noexcept { return n_; }

  /// Spacing between adjacent nodes (Δx).
  [[nodiscard]] double spacing() const noexcept { return dx_; }

  /// Coordinate of node i (0 <= i < points()); x(0) == lower(),
  /// x(points()-1) == upper() exactly.
  [[nodiscard]] double x(std::size_t i) const noexcept;

  /// All node coordinates as a vector.
  [[nodiscard]] std::vector<double> coordinates() const;

  /// Index of the node nearest to coordinate `value` (clamped to range).
  [[nodiscard]] std::size_t nearest_index(double value) const noexcept;

  /// True if `value` lies within [lower, upper] (inclusive, with a small
  /// floating-point tolerance).
  [[nodiscard]] bool contains(double value) const noexcept;

 private:
  double lower_;
  double upper_;
  std::size_t n_;
  double dx_;
};

/// `n` evenly spaced values from `first` to `last` inclusive (n >= 2),
/// or the single value `first` when n == 1.
[[nodiscard]] std::vector<double> linspace(double first, double last,
                                           std::size_t n);

}  // namespace dlm::num
