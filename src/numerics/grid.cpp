#include "numerics/grid.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dlm::num {

uniform_grid::uniform_grid(double lower, double upper, std::size_t n_points)
    : lower_(lower), upper_(upper), n_(n_points) {
  if (n_points < 2)
    throw std::invalid_argument("uniform_grid: need at least 2 points");
  if (!(lower < upper))
    throw std::invalid_argument("uniform_grid: require lower < upper");
  dx_ = (upper - lower) / static_cast<double>(n_points - 1);
}

double uniform_grid::x(std::size_t i) const noexcept {
  if (i + 1 == n_) return upper_;  // exact right endpoint
  return lower_ + static_cast<double>(i) * dx_;
}

std::vector<double> uniform_grid::coordinates() const {
  std::vector<double> xs(n_);
  for (std::size_t i = 0; i < n_; ++i) xs[i] = x(i);
  return xs;
}

std::size_t uniform_grid::nearest_index(double value) const noexcept {
  if (value <= lower_) return 0;
  if (value >= upper_) return n_ - 1;
  const double pos = (value - lower_) / dx_;
  const auto idx = static_cast<std::size_t>(std::lround(pos));
  return std::min(idx, n_ - 1);
}

bool uniform_grid::contains(double value) const noexcept {
  const double eps = 1e-12 * (std::abs(lower_) + std::abs(upper_) + 1.0);
  return value >= lower_ - eps && value <= upper_ + eps;
}

std::vector<double> linspace(double first, double last, std::size_t n) {
  if (n == 0) throw std::invalid_argument("linspace: n must be >= 1");
  if (n == 1) return {first};
  std::vector<double> out(n);
  const double step = (last - first) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = first + static_cast<double>(i) * step;
  out.back() = last;
  return out;
}

}  // namespace dlm::num
