// Numerical quadrature over sampled functions and callables.
//
// Used to compute "total influence mass" ∫ I(x,t) dx diagnostics and to
// verify conservation properties of the pure-diffusion limit in tests.
#pragma once

#include <cstddef>
#include <functional>
#include <span>

namespace dlm::num {

/// Composite trapezoid rule over samples y at uniformly spaced abscissae
/// with spacing `dx`.  Requires y.size() >= 2.
[[nodiscard]] double trapezoid_uniform(std::span<const double> y, double dx);

/// Composite trapezoid rule over samples (x[i], y[i]) with arbitrary
/// (strictly increasing) abscissae.
[[nodiscard]] double trapezoid(std::span<const double> x,
                               std::span<const double> y);

/// Composite Simpson rule for a callable over [a, b] with n subintervals
/// (n is rounded up to the next even number; n >= 2).
[[nodiscard]] double simpson(const std::function<double(double)>& f, double a,
                             double b, std::size_t n);

}  // namespace dlm::num
