#include "numerics/integrate.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dlm::num {
namespace {

void check_sizes(std::span<const double> y, std::span<double> y_next) {
  if (y.size() != y_next.size())
    throw std::invalid_argument("ode step: y/y_next size mismatch");
}

}  // namespace

void euler_step(const ode_rhs& f, double t, std::span<const double> y, double h,
                std::span<double> y_next) {
  check_sizes(y, y_next);
  const std::size_t n = y.size();
  std::vector<double> k(n);
  f(t, y, k);
  for (std::size_t i = 0; i < n; ++i) y_next[i] = y[i] + h * k[i];
}

void heun_step(const ode_rhs& f, double t, std::span<const double> y, double h,
               std::span<double> y_next) {
  check_sizes(y, y_next);
  const std::size_t n = y.size();
  std::vector<double> k1(n), k2(n), mid(n);
  f(t, y, k1);
  for (std::size_t i = 0; i < n; ++i) mid[i] = y[i] + h * k1[i];
  f(t + h, mid, k2);
  for (std::size_t i = 0; i < n; ++i)
    y_next[i] = y[i] + 0.5 * h * (k1[i] + k2[i]);
}

void rk4_step(const ode_rhs& f, double t, std::span<const double> y, double h,
              std::span<double> y_next) {
  rk4_scratch scratch;
  rk4_step(f, t, y, h, y_next, scratch);
}

void rk4_scratch::prepare(std::size_t n) {
  k1.resize(n);
  k2.resize(n);
  k3.resize(n);
  k4.resize(n);
  tmp.resize(n);
}

void rk4_step(const ode_rhs& f, double t, std::span<const double> y, double h,
              std::span<double> y_next, rk4_scratch& scratch) {
  check_sizes(y, y_next);
  const std::size_t n = y.size();
  scratch.prepare(n);
  std::vector<double>& k1 = scratch.k1;
  std::vector<double>& k2 = scratch.k2;
  std::vector<double>& k3 = scratch.k3;
  std::vector<double>& k4 = scratch.k4;
  std::vector<double>& tmp = scratch.tmp;
  f(t, y, k1);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + 0.5 * h * k1[i];
  f(t + 0.5 * h, tmp, k2);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + 0.5 * h * k2[i];
  f(t + 0.5 * h, tmp, k3);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + h * k3[i];
  f(t + h, tmp, k4);
  for (std::size_t i = 0; i < n; ++i)
    y_next[i] = y[i] + h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
}

ode_trajectory integrate_fixed(const ode_rhs& f, double t0,
                               std::span<const double> y0, double t1,
                               std::size_t n_steps, ode_scheme scheme,
                               std::size_t record_every) {
  if (!(t1 > t0)) throw std::invalid_argument("integrate_fixed: t1 must exceed t0");
  if (n_steps == 0) throw std::invalid_argument("integrate_fixed: n_steps == 0");
  if (record_every == 0) record_every = 1;

  const double h = (t1 - t0) / static_cast<double>(n_steps);
  std::vector<double> y(y0.begin(), y0.end());
  std::vector<double> y_next(y.size());

  ode_trajectory traj;
  traj.times.push_back(t0);
  traj.states.push_back(y);

  for (std::size_t s = 0; s < n_steps; ++s) {
    const double t = t0 + static_cast<double>(s) * h;
    switch (scheme) {
      case ode_scheme::euler: euler_step(f, t, y, h, y_next); break;
      case ode_scheme::heun: heun_step(f, t, y, h, y_next); break;
      case ode_scheme::rk4: rk4_step(f, t, y, h, y_next); break;
    }
    y.swap(y_next);
    if ((s + 1) % record_every == 0 || s + 1 == n_steps) {
      traj.times.push_back(t0 + static_cast<double>(s + 1) * h);
      traj.states.push_back(y);
    }
  }
  return traj;
}

adaptive_result integrate_rkf45(const ode_rhs& f, double t0,
                                std::span<const double> y0, double t1,
                                double atol, double rtol, double h_min) {
  if (!(t1 > t0)) throw std::invalid_argument("integrate_rkf45: t1 must exceed t0");
  const std::size_t n = y0.size();

  // Fehlberg coefficients.
  constexpr double a2 = 1.0 / 4, a3 = 3.0 / 8, a4 = 12.0 / 13, a5 = 1.0,
                   a6 = 1.0 / 2;
  constexpr double b21 = 1.0 / 4;
  constexpr double b31 = 3.0 / 32, b32 = 9.0 / 32;
  constexpr double b41 = 1932.0 / 2197, b42 = -7200.0 / 2197, b43 = 7296.0 / 2197;
  constexpr double b51 = 439.0 / 216, b52 = -8.0, b53 = 3680.0 / 513,
                   b54 = -845.0 / 4104;
  constexpr double b61 = -8.0 / 27, b62 = 2.0, b63 = -3544.0 / 2565,
                   b64 = 1859.0 / 4104, b65 = -11.0 / 40;
  // 5th-order solution weights.
  constexpr double c1 = 16.0 / 135, c3 = 6656.0 / 12825, c4 = 28561.0 / 56430,
                   c5 = -9.0 / 50, c6 = 2.0 / 55;
  // 4th-order solution weights (for the error estimate).
  constexpr double d1 = 25.0 / 216, d3 = 1408.0 / 2565, d4 = 2197.0 / 4104,
                   d5 = -1.0 / 5;

  std::vector<double> y(y0.begin(), y0.end());
  std::vector<double> k1(n), k2(n), k3(n), k4(n), k5(n), k6(n), tmp(n), y5(n);

  adaptive_result res;
  double t = t0;
  double h = (t1 - t0) / 16.0;

  while (t < t1) {
    h = std::min(h, t1 - t);
    f(t, y, k1);
    for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + h * b21 * k1[i];
    f(t + a2 * h, tmp, k2);
    for (std::size_t i = 0; i < n; ++i)
      tmp[i] = y[i] + h * (b31 * k1[i] + b32 * k2[i]);
    f(t + a3 * h, tmp, k3);
    for (std::size_t i = 0; i < n; ++i)
      tmp[i] = y[i] + h * (b41 * k1[i] + b42 * k2[i] + b43 * k3[i]);
    f(t + a4 * h, tmp, k4);
    for (std::size_t i = 0; i < n; ++i)
      tmp[i] = y[i] + h * (b51 * k1[i] + b52 * k2[i] + b53 * k3[i] + b54 * k4[i]);
    f(t + a5 * h, tmp, k5);
    for (std::size_t i = 0; i < n; ++i)
      tmp[i] = y[i] + h * (b61 * k1[i] + b62 * k2[i] + b63 * k3[i] +
                           b64 * k4[i] + b65 * k5[i]);
    f(t + a6 * h, tmp, k6);

    double err_norm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      y5[i] = y[i] + h * (c1 * k1[i] + c3 * k3[i] + c4 * k4[i] + c5 * k5[i] +
                          c6 * k6[i]);
      const double y4 =
          y[i] + h * (d1 * k1[i] + d3 * k3[i] + d4 * k4[i] + d5 * k5[i]);
      const double scale = atol + rtol * std::max(std::abs(y[i]), std::abs(y5[i]));
      const double e = (y5[i] - y4) / scale;
      err_norm = std::max(err_norm, std::abs(e));
    }

    if (err_norm <= 1.0) {
      t += h;
      y.swap(y5);
      ++res.steps_taken;
    } else {
      ++res.steps_rejected;
    }

    const double safety = 0.9;
    const double factor =
        (err_norm > 0.0) ? safety * std::pow(err_norm, -0.2) : 4.0;
    h *= std::clamp(factor, 0.1, 4.0);
    if (h < h_min)
      throw std::runtime_error("integrate_rkf45: step size underflow");
  }

  res.y = std::move(y);
  return res;
}

double integrate_scalar(const std::function<double(double, double)>& f,
                        double t0, double y0, double t1, std::size_t n_steps) {
  const ode_rhs rhs = [&f](double t, std::span<const double> y,
                           std::span<double> dydt) {
    dydt[0] = f(t, y[0]);
  };
  const double y0v[1] = {y0};
  return integrate_fixed(rhs, t0, y0v, t1, n_steps, ode_scheme::rk4,
                         n_steps)  // record only the final state
      .final_state()[0];
}

}  // namespace dlm::num
