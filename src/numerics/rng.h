// Deterministic random number generation.
//
// Every stochastic component (graph generators, cascade simulator, noise
// injection) draws from this engine so that a single seed reproduces an
// entire synthetic "Digg" dataset bit-for-bit — a requirement for the
// figure/table benches to be rerunnable.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace dlm::num {

/// Seeded pseudo-random generator wrapping a fixed, portable engine
/// (std::mt19937_64) with convenience draws for the distributions the
/// simulator needs.
class rng {
 public:
  explicit rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform();

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);

  /// Uniform integer in [0, n) — n must be positive.
  [[nodiscard]] std::size_t index(std::size_t n);

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t integer(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p);

  /// Standard normal draw.
  [[nodiscard]] double normal() { return normal(0.0, 1.0); }

  /// Normal draw with given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double sd);

  /// Exponential draw with the given rate (mean 1/rate).
  [[nodiscard]] double exponential(double rate);

  /// Poisson draw with the given mean.
  [[nodiscard]] std::uint64_t poisson(double mean_value);

  /// Pareto (power-law) draw: x_min * U^{-1/alpha}; heavy-tailed degrees.
  [[nodiscard]] double pareto(double x_min, double alpha);

  /// Index drawn from unnormalized non-negative weights; throws
  /// std::invalid_argument if all weights are zero or empty.
  [[nodiscard]] std::size_t weighted_index(std::span<const double> weights);

  /// Fisher–Yates shuffle of `items` in place.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = index(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Draws `k` distinct indices uniformly from [0, n) (k <= n).
  [[nodiscard]] std::vector<std::size_t> sample_without_replacement(
      std::size_t n, std::size_t k);

  /// Access to the raw engine for std distributions not wrapped here.
  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace dlm::num
