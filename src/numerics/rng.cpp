#include "numerics/rng.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace dlm::num {

double rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double rng::uniform(double lo, double hi) {
  if (!(hi > lo)) throw std::invalid_argument("rng::uniform: require hi > lo");
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::size_t rng::index(std::size_t n) {
  if (n == 0) throw std::invalid_argument("rng::index: n must be positive");
  return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
}

std::int64_t rng::integer(std::int64_t lo, std::int64_t hi) {
  if (hi < lo) throw std::invalid_argument("rng::integer: require hi >= lo");
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

bool rng::bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  return std::bernoulli_distribution(p)(engine_);
}

double rng::normal(double mean, double sd) {
  return std::normal_distribution<double>(mean, sd)(engine_);
}

double rng::exponential(double rate) {
  if (!(rate > 0.0))
    throw std::invalid_argument("rng::exponential: rate must be positive");
  return std::exponential_distribution<double>(rate)(engine_);
}

std::uint64_t rng::poisson(double mean_value) {
  if (mean_value < 0.0)
    throw std::invalid_argument("rng::poisson: mean must be non-negative");
  if (mean_value == 0.0) return 0;
  return std::poisson_distribution<std::uint64_t>(mean_value)(engine_);
}

double rng::pareto(double x_min, double alpha) {
  if (!(x_min > 0.0) || !(alpha > 0.0))
    throw std::invalid_argument("rng::pareto: x_min and alpha must be positive");
  const double u = 1.0 - uniform();  // in (0, 1]
  return x_min * std::pow(u, -1.0 / alpha);
}

std::size_t rng::weighted_index(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0)
      throw std::invalid_argument("rng::weighted_index: negative weight");
    total += w;
  }
  if (weights.empty() || total <= 0.0)
    throw std::invalid_argument("rng::weighted_index: no positive weight");
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target <= 0.0) return i;
  }
  return weights.size() - 1;  // numerical edge: return the last bucket
}

std::vector<std::size_t> rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  if (k > n)
    throw std::invalid_argument("rng::sample_without_replacement: k > n");
  // For small k relative to n use rejection; otherwise shuffle a full range.
  if (k * 4 <= n) {
    std::unordered_set<std::size_t> chosen;
    std::vector<std::size_t> out;
    out.reserve(k);
    while (out.size() < k) {
      const std::size_t candidate = index(n);
      if (chosen.insert(candidate).second) out.push_back(candidate);
    }
    return out;
  }
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  shuffle(all);
  all.resize(k);
  return all;
}

}  // namespace dlm::num
