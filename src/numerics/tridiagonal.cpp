#include "numerics/tridiagonal.h"

#include <cmath>
#include <stdexcept>

namespace dlm::num {

tridiagonal_matrix::tridiagonal_matrix(std::size_t n)
    : lower(n > 0 ? n - 1 : 0, 0.0), diag(n, 0.0), upper(n > 0 ? n - 1 : 0, 0.0) {
  if (n == 0) throw std::invalid_argument("tridiagonal_matrix: n must be >= 1");
}

std::vector<double> tridiagonal_matrix::multiply(std::span<const double> x) const {
  const std::size_t n = size();
  if (x.size() != n)
    throw std::invalid_argument("tridiagonal_matrix::multiply: size mismatch");
  std::vector<double> y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = diag[i] * x[i];
    if (i > 0) acc += lower[i - 1] * x[i - 1];
    if (i + 1 < n) acc += upper[i] * x[i + 1];
    y[i] = acc;
  }
  return y;
}

bool tridiagonal_matrix::diagonally_dominant() const noexcept {
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) {
    double off = 0.0;
    if (i > 0) off += std::abs(lower[i - 1]);
    if (i + 1 < n) off += std::abs(upper[i]);
    if (std::abs(diag[i]) < off) return false;
  }
  return true;
}

std::vector<double> solve_tridiagonal(const tridiagonal_matrix& a,
                                      std::span<const double> rhs) {
  if (rhs.size() != a.size())
    throw std::invalid_argument("solve_tridiagonal: size mismatch");
  std::vector<double> x(rhs.begin(), rhs.end());
  std::vector<double> scratch;
  solve_tridiagonal_in_place(a, x, scratch);
  return x;
}

void solve_tridiagonal_in_place(const tridiagonal_matrix& a,
                                std::vector<double>& rhs,
                                std::vector<double>& scratch) {
  const std::size_t n = a.size();
  if (rhs.size() != n)
    throw std::invalid_argument("solve_tridiagonal_in_place: size mismatch");
  scratch.resize(n);

  // Forward sweep: eliminate the sub-diagonal.
  double pivot = a.diag[0];
  if (pivot == 0.0) throw std::domain_error("solve_tridiagonal: zero pivot");
  scratch[0] = (n > 1) ? a.upper[0] / pivot : 0.0;
  rhs[0] /= pivot;
  for (std::size_t i = 1; i < n; ++i) {
    pivot = a.diag[i] - a.lower[i - 1] * scratch[i - 1];
    if (pivot == 0.0) throw std::domain_error("solve_tridiagonal: zero pivot");
    scratch[i] = (i + 1 < n) ? a.upper[i] / pivot : 0.0;
    rhs[i] = (rhs[i] - a.lower[i - 1] * rhs[i - 1]) / pivot;
  }

  // Back substitution.
  for (std::size_t i = n - 1; i-- > 0;) {
    rhs[i] -= scratch[i] * rhs[i + 1];
  }
}

}  // namespace dlm::num
