#include "numerics/tridiagonal.h"

#include <cmath>
#include <stdexcept>

namespace dlm::num {

tridiagonal_matrix::tridiagonal_matrix(std::size_t n)
    : lower(n > 0 ? n - 1 : 0, 0.0), diag(n, 0.0), upper(n > 0 ? n - 1 : 0, 0.0) {
  if (n == 0) throw std::invalid_argument("tridiagonal_matrix: n must be >= 1");
}

void tridiagonal_matrix::resize(std::size_t n) {
  if (n == 0) throw std::invalid_argument("tridiagonal_matrix: n must be >= 1");
  lower.resize(n - 1, 0.0);
  diag.resize(n, 0.0);
  upper.resize(n - 1, 0.0);
}

std::vector<double> tridiagonal_matrix::multiply(std::span<const double> x) const {
  std::vector<double> y(size(), 0.0);
  multiply_into(x, y);
  return y;
}

void tridiagonal_matrix::multiply_into(std::span<const double> x,
                                       std::span<double> y) const {
  const std::size_t n = size();
  if (x.size() != n || y.size() != n)
    throw std::invalid_argument("tridiagonal_matrix::multiply: size mismatch");
  for (std::size_t i = 0; i < n; ++i) {
    double acc = diag[i] * x[i];
    if (i > 0) acc += lower[i - 1] * x[i - 1];
    if (i + 1 < n) acc += upper[i] * x[i + 1];
    y[i] = acc;
  }
}

bool tridiagonal_matrix::diagonally_dominant() const noexcept {
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) {
    double off = 0.0;
    if (i > 0) off += std::abs(lower[i - 1]);
    if (i + 1 < n) off += std::abs(upper[i]);
    if (std::abs(diag[i]) < off) return false;
  }
  return true;
}

std::vector<double> solve_tridiagonal(const tridiagonal_matrix& a,
                                      std::span<const double> rhs) {
  if (rhs.size() != a.size())
    throw std::invalid_argument("solve_tridiagonal: size mismatch");
  std::vector<double> x(rhs.begin(), rhs.end());
  std::vector<double> scratch;
  solve_tridiagonal_in_place(a, x, scratch);
  return x;
}

void solve_tridiagonal_in_place(const tridiagonal_matrix& a,
                                std::vector<double>& rhs,
                                std::vector<double>& scratch) {
  const std::size_t n = a.size();
  if (rhs.size() != n)
    throw std::invalid_argument("solve_tridiagonal_in_place: size mismatch");
  scratch.resize(n);

  // Forward sweep: eliminate the sub-diagonal.
  double pivot = a.diag[0];
  if (pivot == 0.0) throw std::domain_error("solve_tridiagonal: zero pivot");
  scratch[0] = (n > 1) ? a.upper[0] / pivot : 0.0;
  rhs[0] /= pivot;
  for (std::size_t i = 1; i < n; ++i) {
    pivot = a.diag[i] - a.lower[i - 1] * scratch[i - 1];
    if (pivot == 0.0) throw std::domain_error("solve_tridiagonal: zero pivot");
    scratch[i] = (i + 1 < n) ? a.upper[i] / pivot : 0.0;
    rhs[i] = (rhs[i] - a.lower[i - 1] * rhs[i - 1]) / pivot;
  }

  // Back substitution.
  for (std::size_t i = n - 1; i-- > 0;) {
    rhs[i] -= scratch[i] * rhs[i + 1];
  }
}

void tridiagonal_factorization::factor(const tridiagonal_matrix& a) {
  const std::size_t n = a.size();
  if (n == 0)
    throw std::invalid_argument("tridiagonal_factorization: empty matrix");
  lower_.assign(a.lower.begin(), a.lower.end());
  pivot_.resize(n);
  c_star_.resize(n);

  // The same elimination solve_tridiagonal_in_place performs per call,
  // done once: the pivots are kept verbatim (not inverted) so the solve
  // divides by exactly the values the one-shot path divides by.
  double pivot = a.diag[0];
  if (pivot == 0.0) throw std::domain_error("solve_tridiagonal: zero pivot");
  pivot_[0] = pivot;
  c_star_[0] = (n > 1) ? a.upper[0] / pivot : 0.0;
  for (std::size_t i = 1; i < n; ++i) {
    pivot = a.diag[i] - a.lower[i - 1] * c_star_[i - 1];
    if (pivot == 0.0) throw std::domain_error("solve_tridiagonal: zero pivot");
    pivot_[i] = pivot;
    c_star_[i] = (i + 1 < n) ? a.upper[i] / pivot : 0.0;
  }
}

void tridiagonal_factorization::solve_in_place(std::span<double> rhs) const {
  const std::size_t n = pivot_.size();
  if (n == 0 || rhs.size() != n)
    throw std::invalid_argument(
        "tridiagonal_factorization::solve_in_place: size mismatch");

  // Forward sweep over the rhs only — the coefficient work is cached.
  rhs[0] /= pivot_[0];
  for (std::size_t i = 1; i < n; ++i)
    rhs[i] = (rhs[i] - lower_[i - 1] * rhs[i - 1]) / pivot_[i];

  // Back substitution.
  for (std::size_t i = n - 1; i-- > 0;) {
    rhs[i] -= c_star_[i] * rhs[i + 1];
  }
}

}  // namespace dlm::num
