// C² cubic-spline interpolation.
//
// Paper §II.D constructs the initial density function φ(x) of the DL model
// by cubic-spline interpolation of the discrete densities observed at hour 1
// ("a series of unique cubic polynomials are fitted between each of the data
// points ... continuous and smooth"), then flattens the two ends so that
// φ'(l) = φ'(L) = 0.  The `clamped` boundary mode with zero end slopes
// realizes exactly that construction; `natural` is provided for comparison.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dlm::num {

/// Boundary condition for cubic-spline construction.
enum class spline_boundary {
  natural,  ///< zero second derivative at both ends
  clamped,  ///< prescribed first derivative at both ends
};

/// Behaviour when evaluating outside the knot range.
enum class spline_extrapolation {
  clamp_flat,  ///< hold the boundary value (flat extension; DL default)
  cubic,       ///< continue the boundary polynomial
};

/// A piecewise-cubic, twice continuously differentiable interpolant through
/// a set of strictly increasing knots.
class cubic_spline {
 public:
  /// Builds a natural cubic spline through (x[i], y[i]).
  ///
  /// Requires x strictly increasing and x.size() == y.size() >= 2.
  /// Throws std::invalid_argument otherwise.
  static cubic_spline natural(std::span<const double> x,
                              std::span<const double> y);

  /// Builds a clamped cubic spline with prescribed end slopes.
  /// `slope_left`/`slope_right` are φ'(x.front()) and φ'(x.back()).
  static cubic_spline clamped(std::span<const double> x,
                              std::span<const double> y, double slope_left,
                              double slope_right);

  /// Convenience: clamped spline with both end slopes zero — the paper's
  /// "flat ends" initial-density construction.
  static cubic_spline flat_ends(std::span<const double> x,
                                std::span<const double> y);

  /// Interpolated value at `x`.
  [[nodiscard]] double operator()(double x) const noexcept;

  /// First derivative of the interpolant at `x`.
  [[nodiscard]] double derivative(double x) const noexcept;

  /// Second derivative of the interpolant at `x`.
  [[nodiscard]] double second_derivative(double x) const noexcept;

  /// Evaluates the spline at every coordinate in `xs`.
  [[nodiscard]] std::vector<double> sample(std::span<const double> xs) const;

  [[nodiscard]] double x_min() const noexcept { return x_.front(); }
  [[nodiscard]] double x_max() const noexcept { return x_.back(); }
  [[nodiscard]] std::size_t knot_count() const noexcept { return x_.size(); }
  [[nodiscard]] spline_boundary boundary() const noexcept { return boundary_; }

  /// Extrapolation policy outside [x_min, x_max]; default clamp_flat.
  void set_extrapolation(spline_extrapolation mode) noexcept { extrap_ = mode; }
  [[nodiscard]] spline_extrapolation extrapolation() const noexcept {
    return extrap_;
  }

  /// Minimum of the interpolant over [x_min, x_max], located by dense
  /// sampling plus local refinement; used to verify non-negativity of φ.
  [[nodiscard]] double min_value(std::size_t samples_per_interval = 64) const;

 private:
  cubic_spline(std::vector<double> x, std::vector<double> y,
               std::vector<double> second_derivs, spline_boundary boundary);

  /// Index of the interval containing `x` (clamped to valid range).
  [[nodiscard]] std::size_t interval_of(double x) const noexcept;

  std::vector<double> x_;   ///< knots, strictly increasing
  std::vector<double> y_;   ///< values at knots
  std::vector<double> m_;   ///< second derivatives at knots
  spline_boundary boundary_;
  spline_extrapolation extrap_ = spline_extrapolation::clamp_flat;
};

}  // namespace dlm::num
