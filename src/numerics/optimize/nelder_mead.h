// Nelder–Mead derivative-free simplex minimizer.
//
// Calibration of the DL model (diffusion rate d, capacity K, growth-rate
// parameters) minimizes a least-squares objective over the early observation
// window; the objective goes through a PDE solve, so derivative-free search
// is the right tool.
#pragma once

#include <functional>
#include <span>
#include <vector>

namespace dlm::num {

/// Objective: maps a parameter vector to a scalar cost.
using objective_fn = std::function<double(std::span<const double>)>;

/// Options controlling the Nelder–Mead iteration.
struct nelder_mead_options {
  std::size_t max_iterations = 2000;
  double f_tolerance = 1e-10;   ///< stop when simplex f-spread is below this
  double x_tolerance = 1e-10;   ///< stop when simplex diameter is below this
  double initial_step = 0.1;    ///< per-coordinate displacement of the
                                ///< initial simplex (relative when the
                                ///< coordinate is nonzero, absolute otherwise)
  // Standard reflection/expansion/contraction/shrink coefficients.
  double alpha = 1.0;
  double gamma = 2.0;
  double rho = 0.5;
  double sigma = 0.5;
};

/// Result of a minimization run.
struct nelder_mead_result {
  std::vector<double> x;       ///< best parameter vector found
  double f_value = 0.0;        ///< objective at `x`
  std::size_t iterations = 0;  ///< iterations performed
  std::size_t evaluations = 0; ///< objective evaluations
  bool converged = false;
};

/// Minimizes `f` starting from `x0` using the Nelder–Mead simplex method.
/// Throws std::invalid_argument for an empty starting point.
[[nodiscard]] nelder_mead_result minimize_nelder_mead(
    const objective_fn& f, std::span<const double> x0,
    const nelder_mead_options& options = {});

/// Variant with box constraints: candidates are clamped into
/// [lower[i], upper[i]] before evaluation (projection method).
[[nodiscard]] nelder_mead_result minimize_nelder_mead_bounded(
    const objective_fn& f, std::span<const double> x0,
    std::span<const double> lower, std::span<const double> upper,
    const nelder_mead_options& options = {});

}  // namespace dlm::num
