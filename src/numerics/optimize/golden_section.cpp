#include "numerics/optimize/golden_section.h"

#include <cmath>
#include <stdexcept>

namespace dlm::num {

golden_section_result minimize_golden_section(
    const std::function<double(double)>& f, double a, double b, double tol,
    int max_iter) {
  if (!(a < b))
    throw std::invalid_argument("golden_section: require a < b");

  const double inv_phi = (std::sqrt(5.0) - 1.0) / 2.0;  // 1/φ ≈ 0.618
  double c = b - inv_phi * (b - a);
  double d = a + inv_phi * (b - a);
  double fc = f(c);
  double fd = f(d);

  golden_section_result res;
  for (int it = 0; it < max_iter; ++it) {
    res.iterations = it + 1;
    if (b - a <= tol) {
      res.converged = true;
      break;
    }
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - inv_phi * (b - a);
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + inv_phi * (b - a);
      fd = f(d);
    }
  }
  res.x = 0.5 * (a + b);
  res.f_value = f(res.x);
  return res;
}

}  // namespace dlm::num
