#include "numerics/optimize/nelder_mead.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace dlm::num {
namespace {

struct vertex {
  std::vector<double> x;
  double f;
};

double simplex_diameter(const std::vector<vertex>& simplex) {
  double diam = 0.0;
  for (std::size_t i = 1; i < simplex.size(); ++i) {
    double dist = 0.0;
    for (std::size_t k = 0; k < simplex[0].x.size(); ++k) {
      const double d = simplex[i].x[k] - simplex[0].x[k];
      dist += d * d;
    }
    diam = std::max(diam, std::sqrt(dist));
  }
  return diam;
}

nelder_mead_result run(const objective_fn& raw_f, std::span<const double> x0,
                       const nelder_mead_options& opt,
                       const std::function<void(std::vector<double>&)>& project) {
  if (x0.empty())
    throw std::invalid_argument("nelder_mead: empty starting point");
  const std::size_t n = x0.size();

  std::size_t evals = 0;
  const auto f = [&](std::vector<double>& x) {
    project(x);
    ++evals;
    return raw_f(x);
  };

  // Build the initial simplex: x0 plus n displaced vertices.
  std::vector<vertex> simplex;
  simplex.reserve(n + 1);
  {
    std::vector<double> base(x0.begin(), x0.end());
    const double fb = f(base);
    simplex.push_back({std::move(base), fb});
  }
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> v(x0.begin(), x0.end());
    const double step =
        (v[i] != 0.0) ? opt.initial_step * std::abs(v[i]) : opt.initial_step;
    v[i] += step;
    const double fv = f(v);
    simplex.push_back({std::move(v), fv});
  }

  nelder_mead_result result;
  const auto by_f = [](const vertex& a, const vertex& b) { return a.f < b.f; };

  for (std::size_t it = 0; it < opt.max_iterations; ++it) {
    std::sort(simplex.begin(), simplex.end(), by_f);
    result.iterations = it;

    const double f_spread = std::abs(simplex.back().f - simplex.front().f);
    if (f_spread <= opt.f_tolerance && simplex_diameter(simplex) <= opt.x_tolerance) {
      result.converged = true;
      break;
    }

    // Centroid of all but the worst vertex.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t k = 0; k < n; ++k) centroid[k] += simplex[i].x[k];
    }
    for (double& c : centroid) c /= static_cast<double>(n);

    const vertex& worst = simplex.back();

    // Reflection.
    std::vector<double> xr(n);
    for (std::size_t k = 0; k < n; ++k)
      xr[k] = centroid[k] + opt.alpha * (centroid[k] - worst.x[k]);
    const double fr = f(xr);

    if (fr < simplex.front().f) {
      // Expansion.
      std::vector<double> xe(n);
      for (std::size_t k = 0; k < n; ++k)
        xe[k] = centroid[k] + opt.gamma * (xr[k] - centroid[k]);
      const double fe = f(xe);
      if (fe < fr) {
        simplex.back() = {std::move(xe), fe};
      } else {
        simplex.back() = {std::move(xr), fr};
      }
      continue;
    }
    if (fr < simplex[n - 1].f) {
      simplex.back() = {std::move(xr), fr};
      continue;
    }

    // Contraction (outside if fr beats the worst, inside otherwise).
    std::vector<double> xc(n);
    if (fr < worst.f) {
      for (std::size_t k = 0; k < n; ++k)
        xc[k] = centroid[k] + opt.rho * (xr[k] - centroid[k]);
    } else {
      for (std::size_t k = 0; k < n; ++k)
        xc[k] = centroid[k] + opt.rho * (worst.x[k] - centroid[k]);
    }
    const double fc = f(xc);
    if (fc < std::min(fr, worst.f)) {
      simplex.back() = {std::move(xc), fc};
      continue;
    }

    // Shrink towards the best vertex.
    for (std::size_t i = 1; i <= n; ++i) {
      for (std::size_t k = 0; k < n; ++k)
        simplex[i].x[k] =
            simplex[0].x[k] + opt.sigma * (simplex[i].x[k] - simplex[0].x[k]);
      simplex[i].f = f(simplex[i].x);
    }
  }

  std::sort(simplex.begin(), simplex.end(), by_f);
  result.x = simplex.front().x;
  result.f_value = simplex.front().f;
  result.evaluations = evals;
  return result;
}

}  // namespace

nelder_mead_result minimize_nelder_mead(const objective_fn& f,
                                        std::span<const double> x0,
                                        const nelder_mead_options& options) {
  return run(f, x0, options, [](std::vector<double>&) {});
}

nelder_mead_result minimize_nelder_mead_bounded(
    const objective_fn& f, std::span<const double> x0,
    std::span<const double> lower, std::span<const double> upper,
    const nelder_mead_options& options) {
  if (lower.size() != x0.size() || upper.size() != x0.size())
    throw std::invalid_argument("nelder_mead_bounded: bound size mismatch");
  for (std::size_t i = 0; i < x0.size(); ++i) {
    if (!(lower[i] <= upper[i]))
      throw std::invalid_argument("nelder_mead_bounded: lower > upper");
  }
  std::vector<double> lo(lower.begin(), lower.end());
  std::vector<double> hi(upper.begin(), upper.end());
  return run(f, x0, options, [lo, hi](std::vector<double>& x) {
    for (std::size_t i = 0; i < x.size(); ++i)
      x[i] = std::clamp(x[i], lo[i], hi[i]);
  });
}

}  // namespace dlm::num
