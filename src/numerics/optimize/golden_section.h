// Golden-section search for one-dimensional minimization.
//
// Used to tune single DL parameters (e.g. the diffusion rate d) against the
// early-window objective when the other parameters are held fixed.
#pragma once

#include <functional>

namespace dlm::num {

/// Result of a 1-D minimization.
struct golden_section_result {
  double x = 0.0;        ///< minimizer estimate
  double f_value = 0.0;  ///< objective at x
  int iterations = 0;
  bool converged = false;
};

/// Minimizes a unimodal `f` over [a, b] to within `tol` of the true
/// minimizer.  Throws std::invalid_argument for a >= b.
[[nodiscard]] golden_section_result minimize_golden_section(
    const std::function<double(double)>& f, double a, double b,
    double tol = 1e-8, int max_iter = 200);

}  // namespace dlm::num
