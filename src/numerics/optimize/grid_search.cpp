#include "numerics/optimize/grid_search.h"

#include <limits>
#include <stdexcept>

namespace dlm::num {
namespace {

/// Validates the axes and visits every lattice point in scan order (axis
/// 0 varying fastest) with O(dims) memory — both public entry points
/// share this enumeration, so their orders can never drift apart.
template <typename Visitor>
void for_each_lattice_point(std::span<const grid_axis> axes,
                            Visitor&& visit) {
  if (axes.empty()) throw std::invalid_argument("minimize_grid: no axes");
  for (const grid_axis& ax : axes) {
    if (ax.count == 0)
      throw std::invalid_argument("minimize_grid: axis count must be >= 1");
    if (ax.count > 1 && !(ax.hi > ax.lo))
      throw std::invalid_argument("minimize_grid: require hi > lo for count > 1");
  }

  const std::size_t dims = axes.size();
  std::vector<std::size_t> idx(dims, 0);
  std::vector<double> point(dims);

  bool done = false;
  while (!done) {
    for (std::size_t k = 0; k < dims; ++k) {
      const grid_axis& ax = axes[k];
      point[k] = (ax.count == 1)
                     ? ax.lo
                     : ax.lo + (ax.hi - ax.lo) * static_cast<double>(idx[k]) /
                           static_cast<double>(ax.count - 1);
    }
    visit(std::span<const double>(point));

    // Odometer increment across the lattice.
    std::size_t k = 0;
    for (; k < dims; ++k) {
      if (++idx[k] < axes[k].count) break;
      idx[k] = 0;
    }
    done = (k == dims);
  }
}

}  // namespace

std::vector<std::vector<double>> grid_lattice_points(
    std::span<const grid_axis> axes) {
  std::vector<std::vector<double>> points;
  for_each_lattice_point(axes, [&points](std::span<const double> point) {
    points.emplace_back(point.begin(), point.end());
  });
  return points;
}

grid_search_result minimize_grid(
    const std::function<double(std::span<const double>)>& f,
    std::span<const grid_axis> axes) {
  grid_search_result best;
  best.f_value = std::numeric_limits<double>::infinity();
  for_each_lattice_point(axes, [&](std::span<const double> point) {
    const double fv = f(point);
    ++best.evaluations;
    if (fv < best.f_value) {
      best.f_value = fv;
      best.x.assign(point.begin(), point.end());
    }
  });
  return best;
}

}  // namespace dlm::num
