// Exhaustive grid search over boxed parameter spaces.
//
// Coarse calibration pass: scan a lattice of (d, K, r-parameters) and hand
// the best cell to Nelder–Mead for refinement.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

namespace dlm::num {

/// One axis of the search lattice: `count` evenly spaced values spanning
/// [lo, hi] inclusive (count >= 1; count == 1 pins the axis at lo).
struct grid_axis {
  double lo = 0.0;
  double hi = 0.0;
  std::size_t count = 1;
};

/// Result of a lattice scan.
struct grid_search_result {
  std::vector<double> x;        ///< best lattice point
  double f_value = 0.0;         ///< objective there
  std::size_t evaluations = 0;  ///< total lattice points visited
};

/// Every point of the Cartesian lattice defined by `axes`, materialized
/// in evaluation order (axis 0 varying fastest) — the exact sequence
/// minimize_grid visits, exposed so callers that fan the evaluations out
/// (parallel calibration) resolve ties identically to the serial scan.
/// O(points × dims) memory; use minimize_grid for a streaming scan.
/// Throws std::invalid_argument for empty axes, a zero-count axis, or
/// hi <= lo on a multi-point axis.
[[nodiscard]] std::vector<std::vector<double>> grid_lattice_points(
    std::span<const grid_axis> axes);

/// Evaluates `f` at every point of the Cartesian lattice defined by
/// `axes` — streaming, O(dims) memory — and returns the argmin (lowest
/// index on ties).  Throws like grid_lattice_points.
[[nodiscard]] grid_search_result minimize_grid(
    const std::function<double(std::span<const double>)>& f,
    std::span<const grid_axis> axes);

}  // namespace dlm::num
