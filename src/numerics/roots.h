// Scalar root finding.
//
// Newton iteration backs the fully implicit DL time stepper (per-step
// nonlinear solve); bisection provides a bracketing fallback used by the
// calibration code to invert logistic saturation times.
#pragma once

#include <functional>
#include <optional>

namespace dlm::num {

/// Result of a scalar root search.
struct root_result {
  double x = 0.0;          ///< final iterate
  double f_value = 0.0;    ///< f at the final iterate
  int iterations = 0;      ///< iterations performed
  bool converged = false;  ///< |f| <= tol (or interval shrank below xtol)
};

/// Bisection on [a, b]; requires f(a) and f(b) of opposite sign
/// (throws std::invalid_argument otherwise).
[[nodiscard]] root_result bisect(const std::function<double(double)>& f,
                                 double a, double b, double tol = 1e-12,
                                 int max_iter = 200);

/// Newton iteration from x0 with analytic derivative; falls back to a
/// damped step when the derivative is tiny.  Not guaranteed to converge;
/// check `converged`.
[[nodiscard]] root_result newton(const std::function<double(double)>& f,
                                 const std::function<double(double)>& df,
                                 double x0, double tol = 1e-12,
                                 int max_iter = 100);

/// Newton with a bisection safeguard on [a, b] (robust hybrid): the Newton
/// step is taken when it stays inside the current bracket, otherwise the
/// bracket is bisected.  Requires a sign change on [a, b].
[[nodiscard]] root_result newton_bisect(const std::function<double(double)>& f,
                                        const std::function<double(double)>& df,
                                        double a, double b, double tol = 1e-12,
                                        int max_iter = 200);

}  // namespace dlm::num
