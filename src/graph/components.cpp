#include "graph/components.h"

#include <algorithm>
#include <stack>
#include <stdexcept>

namespace dlm::graph {

std::size_t component_partition::giant() const {
  if (sizes.empty()) return 0;
  return static_cast<std::size_t>(
      std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
}

double component_partition::giant_fraction() const {
  if (component_of.empty()) return 0.0;
  std::size_t best = 0;
  for (std::size_t s : sizes) best = std::max(best, s);
  return static_cast<double>(best) / static_cast<double>(component_of.size());
}

component_partition weakly_connected_components(const digraph& g) {
  const std::size_t n = g.node_count();
  component_partition part;
  part.component_of.assign(n, UINT32_MAX);

  std::vector<node_id> stack;
  for (node_id start = 0; start < n; ++start) {
    if (part.component_of[start] != UINT32_MAX) continue;
    const auto comp = static_cast<std::uint32_t>(part.sizes.size());
    std::size_t size = 0;
    stack.push_back(start);
    part.component_of[start] = comp;
    while (!stack.empty()) {
      const node_id v = stack.back();
      stack.pop_back();
      ++size;
      const auto visit = [&](node_id w) {
        if (part.component_of[w] == UINT32_MAX) {
          part.component_of[w] = comp;
          stack.push_back(w);
        }
      };
      for (node_id w : g.successors(v)) visit(w);
      for (node_id w : g.predecessors(v)) visit(w);
    }
    part.sizes.push_back(size);
  }
  return part;
}

component_partition strongly_connected_components(const digraph& g) {
  const std::size_t n = g.node_count();
  constexpr std::uint32_t undefined = UINT32_MAX;

  std::vector<std::uint32_t> index_of(n, undefined);
  std::vector<std::uint32_t> low_link(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<node_id> scc_stack;

  component_partition part;
  part.component_of.assign(n, undefined);
  std::uint32_t next_index = 0;

  // Iterative Tarjan: frame = (node, index of next successor to visit).
  struct frame {
    node_id v;
    std::size_t child;
  };
  std::stack<frame> call_stack;

  for (node_id root = 0; root < n; ++root) {
    if (index_of[root] != undefined) continue;
    call_stack.push({root, 0});
    index_of[root] = low_link[root] = next_index++;
    scc_stack.push_back(root);
    on_stack[root] = true;

    while (!call_stack.empty()) {
      frame& top = call_stack.top();
      const auto succ = g.successors(top.v);
      if (top.child < succ.size()) {
        const node_id w = succ[top.child++];
        if (index_of[w] == undefined) {
          index_of[w] = low_link[w] = next_index++;
          scc_stack.push_back(w);
          on_stack[w] = true;
          call_stack.push({w, 0});
        } else if (on_stack[w]) {
          low_link[top.v] = std::min(low_link[top.v], index_of[w]);
        }
      } else {
        const node_id v = top.v;
        call_stack.pop();
        if (!call_stack.empty())
          low_link[call_stack.top().v] =
              std::min(low_link[call_stack.top().v], low_link[v]);
        if (low_link[v] == index_of[v]) {
          const auto comp = static_cast<std::uint32_t>(part.sizes.size());
          std::size_t size = 0;
          node_id w;
          do {
            w = scc_stack.back();
            scc_stack.pop_back();
            on_stack[w] = false;
            part.component_of[w] = comp;
            ++size;
          } while (w != v);
          part.sizes.push_back(size);
        }
      }
    }
  }
  return part;
}

}  // namespace dlm::graph
