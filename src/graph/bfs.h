// Breadth-first search and hop distances.
//
// The paper's first distance metric is *friendship hops*: the length of the
// shortest path from the information source to a user in the follower graph.
// BFS from the initiator yields the distance group U_x for every user.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/digraph.h"

namespace dlm::graph {

/// Hop distance type; `unreachable` marks nodes with no path from the source.
using hop_distance = std::uint32_t;
inline constexpr hop_distance unreachable =
    std::numeric_limits<hop_distance>::max();

/// Which adjacency BFS expands along.
enum class bfs_direction {
  successors,    ///< follow edges src → dst
  predecessors,  ///< follow edges dst → src (reverse graph)
  either,        ///< treat edges as undirected
};

/// Hop distance from `source` to every node (BFS).  distances[source] == 0;
/// unreachable nodes get `unreachable`.
[[nodiscard]] std::vector<hop_distance> bfs_distances(
    const digraph& g, node_id source,
    bfs_direction direction = bfs_direction::successors);

/// Multi-source BFS: distance to the nearest of `sources`.
[[nodiscard]] std::vector<hop_distance> bfs_distances_multi(
    const digraph& g, const std::vector<node_id>& sources,
    bfs_direction direction = bfs_direction::successors);

/// Nodes grouped by hop distance: result[d] lists the nodes at distance d
/// (result[0] == {source}).  Unreachable nodes are omitted.  The vector is
/// truncated at the last non-empty group.
[[nodiscard]] std::vector<std::vector<node_id>> nodes_by_distance(
    const digraph& g, node_id source,
    bfs_direction direction = bfs_direction::successors);

/// Largest finite hop distance from `source` (its eccentricity within the
/// reachable set); 0 if nothing else is reachable.
[[nodiscard]] hop_distance eccentricity(
    const digraph& g, node_id source,
    bfs_direction direction = bfs_direction::successors);

}  // namespace dlm::graph
