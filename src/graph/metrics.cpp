#include "graph/metrics.h"

#include <algorithm>
#include <unordered_set>

namespace dlm::graph {
namespace {

/// Sorted, deduplicated undirected neighbourhood of v (successors ∪
/// predecessors, v excluded).
std::vector<node_id> undirected_neighbours(const digraph& g, node_id v) {
  std::vector<node_id> nbrs;
  const auto succ = g.successors(v);
  const auto pred = g.predecessors(v);
  nbrs.reserve(succ.size() + pred.size());
  nbrs.insert(nbrs.end(), succ.begin(), succ.end());
  nbrs.insert(nbrs.end(), pred.begin(), pred.end());
  std::sort(nbrs.begin(), nbrs.end());
  nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  nbrs.erase(std::remove(nbrs.begin(), nbrs.end(), v), nbrs.end());
  return nbrs;
}

bool undirected_edge(const digraph& g, node_id a, node_id b) {
  return g.has_edge(a, b) || g.has_edge(b, a);
}

}  // namespace

degree_histogram out_degree_histogram(const digraph& g) {
  degree_histogram hist;
  for (node_id v = 0; v < g.node_count(); ++v) ++hist[g.out_degree(v)];
  return hist;
}

degree_histogram in_degree_histogram(const digraph& g) {
  degree_histogram hist;
  for (node_id v = 0; v < g.node_count(); ++v) ++hist[g.in_degree(v)];
  return hist;
}

double mean_degree(const digraph& g) {
  if (g.node_count() == 0) return 0.0;
  return static_cast<double>(g.edge_count()) /
         static_cast<double>(g.node_count());
}

double reciprocity(const digraph& g) {
  if (g.edge_count() == 0) return 0.0;
  std::size_t mutual = 0;
  for (node_id v = 0; v < g.node_count(); ++v) {
    for (node_id w : g.successors(v)) {
      if (g.has_edge(w, v)) ++mutual;
    }
  }
  return static_cast<double>(mutual) / static_cast<double>(g.edge_count());
}

double local_clustering(const digraph& g, node_id v) {
  const std::vector<node_id> nbrs = undirected_neighbours(g, v);
  const std::size_t k = nbrs.size();
  if (k < 2) return 0.0;
  std::size_t links = 0;
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j) {
      if (undirected_edge(g, nbrs[i], nbrs[j])) ++links;
    }
  }
  return 2.0 * static_cast<double>(links) /
         (static_cast<double>(k) * static_cast<double>(k - 1));
}

double average_clustering(const digraph& g) {
  double acc = 0.0;
  std::size_t counted = 0;
  for (node_id v = 0; v < g.node_count(); ++v) {
    if (undirected_neighbours(g, v).size() >= 2) {
      acc += local_clustering(g, v);
      ++counted;
    }
  }
  return counted > 0 ? acc / static_cast<double>(counted) : 0.0;
}

double edge_density(const digraph& g) {
  const auto n = static_cast<double>(g.node_count());
  if (g.node_count() < 2) return 0.0;
  return static_cast<double>(g.edge_count()) / (n * (n - 1.0));
}

std::size_t directed_triangle_count(const digraph& g) {
  // For each edge a→b, count successors c of b with c→a; each directed
  // 3-cycle a→b→c→a is found exactly three times (once per starting edge).
  std::size_t found = 0;
  for (node_id a = 0; a < g.node_count(); ++a) {
    for (node_id b : g.successors(a)) {
      for (node_id c : g.successors(b)) {
        if (c != a && g.has_edge(c, a)) ++found;
      }
    }
  }
  return found / 3;
}

}  // namespace dlm::graph
