#include "graph/io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dlm::graph {

void write_edge_list(std::ostream& out, const digraph& g) {
  out << "digraph " << g.node_count() << "\n";
  for (node_id v = 0; v < g.node_count(); ++v) {
    for (node_id w : g.successors(v)) out << v << " " << w << "\n";
  }
  if (!out) throw std::runtime_error("write_edge_list: stream failure");
}

digraph read_edge_list(std::istream& in) {
  std::string magic;
  std::size_t n = 0;
  if (!(in >> magic >> n) || magic != "digraph")
    throw std::runtime_error("read_edge_list: bad header");
  digraph_builder b(n);
  node_id src = 0, dst = 0;
  while (in >> src >> dst) {
    if (src >= n || dst >= n)
      throw std::runtime_error("read_edge_list: node id out of range");
    b.add_edge(src, dst);
  }
  if (!in.eof() && in.fail())
    throw std::runtime_error("read_edge_list: malformed edge line");
  return b.build();
}

void save_edge_list(const std::string& path, const digraph& g) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_edge_list: cannot open " + path);
  write_edge_list(out, g);
}

digraph load_edge_list(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_edge_list: cannot open " + path);
  return read_edge_list(in);
}

}  // namespace dlm::graph
