#include "graph/digraph.h"

#include <algorithm>
#include <stdexcept>

namespace dlm::graph {

digraph::digraph(std::size_t n)
    : out_offsets_(n + 1, 0), in_offsets_(n + 1, 0) {}

std::span<const node_id> digraph::successors(node_id v) const {
  if (v >= node_count()) throw std::out_of_range("digraph::successors: bad node");
  return {out_targets_.data() + out_offsets_[v],
          out_offsets_[v + 1] - out_offsets_[v]};
}

std::span<const node_id> digraph::predecessors(node_id v) const {
  if (v >= node_count()) throw std::out_of_range("digraph::predecessors: bad node");
  return {in_sources_.data() + in_offsets_[v],
          in_offsets_[v + 1] - in_offsets_[v]};
}

std::size_t digraph::out_degree(node_id v) const {
  if (v >= node_count()) throw std::out_of_range("digraph::out_degree: bad node");
  return out_offsets_[v + 1] - out_offsets_[v];
}

std::size_t digraph::in_degree(node_id v) const {
  if (v >= node_count()) throw std::out_of_range("digraph::in_degree: bad node");
  return in_offsets_[v + 1] - in_offsets_[v];
}

bool digraph::has_edge(node_id src, node_id dst) const {
  const auto row = successors(src);
  return std::binary_search(row.begin(), row.end(), dst);
}

std::vector<edge> digraph::edges() const {
  std::vector<edge> out;
  out.reserve(edge_count());
  for (node_id v = 0; v < node_count(); ++v) {
    for (node_id w : successors(v)) out.push_back({v, w});
  }
  return out;
}

digraph_builder::digraph_builder(std::size_t n_nodes) : n_(n_nodes) {}

void digraph_builder::add_edge(node_id src, node_id dst) {
  if (src >= n_ || dst >= n_)
    throw std::out_of_range("digraph_builder::add_edge: node out of range");
  if (src == dst) return;  // drop self-loops
  edges_.push_back({src, dst});
}

void digraph_builder::add_bidirectional(node_id a, node_id b) {
  add_edge(a, b);
  add_edge(b, a);
}

digraph digraph_builder::build() const {
  std::vector<edge> sorted = edges_;
  std::sort(sorted.begin(), sorted.end(), [](const edge& a, const edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  digraph g(n_);
  g.out_targets_.reserve(sorted.size());
  g.in_sources_.reserve(sorted.size());

  // Out-CSR directly from the sorted edge list.
  for (const edge& e : sorted) {
    ++g.out_offsets_[e.src + 1];
    g.out_targets_.push_back(e.dst);
  }
  for (std::size_t v = 0; v < n_; ++v)
    g.out_offsets_[v + 1] += g.out_offsets_[v];

  // In-CSR: counting sort by destination.
  for (const edge& e : sorted) ++g.in_offsets_[e.dst + 1];
  for (std::size_t v = 0; v < n_; ++v) g.in_offsets_[v + 1] += g.in_offsets_[v];
  g.in_sources_.assign(sorted.size(), 0);
  std::vector<std::size_t> cursor(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
  for (const edge& e : sorted) g.in_sources_[cursor[e.dst]++] = e.src;
  // Rows of in_sources_ are sorted automatically because `sorted` is
  // src-major and the counting sort is stable in src order.
  return g;
}

}  // namespace dlm::graph
