// Structural graph metrics.
//
// The paper motivates the logistic ("growth") term with the prevalence of
// social triangles — users at the same distance who are friends with each
// other.  Clustering coefficient, reciprocity and degree statistics let the
// simulator's synthetic follower graph be validated against the qualitative
// structure reported for Digg.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "graph/digraph.h"

namespace dlm::graph {

/// Histogram: degree value → number of nodes with that degree.
using degree_histogram = std::map<std::size_t, std::size_t>;

[[nodiscard]] degree_histogram out_degree_histogram(const digraph& g);
[[nodiscard]] degree_histogram in_degree_histogram(const digraph& g);

/// Mean out-degree (== mean in-degree == |E| / |V|); 0 for an empty graph.
[[nodiscard]] double mean_degree(const digraph& g);

/// Fraction of directed edges (a,b) whose reverse (b,a) also exists.
/// Follower networks like Digg show substantial reciprocity.
[[nodiscard]] double reciprocity(const digraph& g);

/// Local clustering coefficient of `v` over the undirected projection:
/// (# links among neighbours) / (k choose 2).  Returns 0 for degree < 2.
[[nodiscard]] double local_clustering(const digraph& g, node_id v);

/// Mean local clustering over all nodes with undirected degree >= 2.
/// Returns 0 if no such node exists.
[[nodiscard]] double average_clustering(const digraph& g);

/// Global edge density |E| / (|V|·(|V|−1)); 0 for graphs with < 2 nodes.
[[nodiscard]] double edge_density(const digraph& g);

/// Count of directed triangles a→b→c→a (each triangle counted once).
[[nodiscard]] std::size_t directed_triangle_count(const digraph& g);

}  // namespace dlm::graph
