// Random graph generators.
//
// The Digg 2009 crawl is unavailable offline (see DESIGN.md §3), so the
// follower network substrate is generated synthetically.  `digg_follower_graph`
// is the production generator: preferential attachment (heavy-tailed
// in-degree, like real follower counts) with partial edge reciprocation,
// matching the qualitative structure reported for Digg.  Erdős–Rényi and
// Watts–Strogatz are provided as structural baselines for tests/ablations.
#pragma once

#include <cstddef>

#include "graph/digraph.h"
#include "numerics/rng.h"

namespace dlm::graph {

/// G(n, p): each ordered pair (a, b), a != b, holds an edge independently
/// with probability p.  O(n²) — intended for small test graphs.
[[nodiscard]] digraph erdos_renyi(std::size_t n, double p, num::rng& rand);

/// Sparse G(n, m): exactly `m` distinct directed edges drawn uniformly.
[[nodiscard]] digraph erdos_renyi_m(std::size_t n, std::size_t m,
                                    num::rng& rand);

/// Directed Barabási–Albert: nodes arrive one at a time and follow
/// `attach` existing nodes chosen preferentially by current degree.
/// Produces heavy-tailed in-degree.  Requires attach >= 1, n > attach.
[[nodiscard]] digraph barabasi_albert(std::size_t n, std::size_t attach,
                                      num::rng& rand);

/// Watts–Strogatz small world on a ring (k nearest neighbours per side,
/// rewire probability beta); each undirected edge becomes two directed
/// edges.  Requires k >= 1 and n > 2k.
[[nodiscard]] digraph watts_strogatz(std::size_t n, std::size_t k, double beta,
                                     num::rng& rand);

/// Parameters of the synthetic Digg-like follower network.
///
/// Each arriving user creates `attach` preferential/uniform follows (the
/// hub structure: everyone follows a few celebrities) plus `local_links`
/// follows drawn from the `local_window` most recently arrived users (the
/// community structure: people follow peers who joined around the same
/// time).  The local links are what give the network hop distances out to
/// 8–10 like the crawled Digg graph (paper Fig. 2); a pure
/// preferential-attachment graph is ultra-small-world and collapses every
/// pair to ≤ 4 hops.
struct digg_graph_params {
  std::size_t users = 20000;       ///< number of accounts
  std::size_t attach = 2;          ///< preferential follows per arriving user
  std::size_t local_links = 4;     ///< community follows per arriving user
  std::size_t local_window = 150;  ///< "recently joined" pool size
  /// P(celebrity follows back): hubs rarely reciprocate, which keeps them
  /// information sinks rather than shortcuts (stretches hop distances the
  /// way the crawled graph shows in Fig. 2).
  double hub_reciprocation = 0.02;
  /// P(peer follows back) for community links: much higher, as between
  /// acquaintances.
  double local_reciprocation = 0.30;
  double random_follow_ratio = 0.20;  ///< fraction of preferential follows
                                      ///< that ignore degree (uniform)
  /// The most-followed `celebrity_count` accounts follow each other with
  /// probability `celebrity_clique_p` (added in a post-pass).  Popular
  /// submitters being embedded in a mutually-following elite is what puts
  /// the bulk of the network exactly 3 hops from a top initiator
  /// (initiator → elite friends → their follower clouds → the clouds'
  /// community), reproducing the paper's Fig. 2 peak.
  std::size_t celebrity_count = 900;
  double celebrity_clique_p = 0.15;
  /// Each arriving user additionally follows one uniform member of the
  /// earliest `celebrity_pool` accounts with this probability.  Gives top
  /// accounts follower counts in the hundreds-to-thousands (like top Digg
  /// submitters), which keeps the hop-1 density denominators statistically
  /// stable.
  double celebrity_follow_p = 0.6;
  std::size_t celebrity_pool = 60;
  /// Occasionally a contiguous block of arriving users forms an isolated
  /// community: no celebrity follows, only local ones.  Influence reaches
  /// the block's depths through member-to-member chains only, which
  /// populates the hop-6..10 tail of Fig. 2 (tiny but non-zero mass).
  double loner_block_start_p = 0.0005;  ///< per-user block start probability
  std::size_t loner_block_min_len = 400;
  std::size_t loner_block_max_len = 900;
  /// Fraction of users who follow NOBODY (they only browse the front
  /// page).  They can be followed but never reached through follow links,
  /// so they sit outside every hop group — mirroring the crawled data,
  /// where the hop-reachable set accounts for well under half of a top
  /// story's voters (the paper's Fig. 2/3 numbers integrate to ~10k votes
  /// while s1 had 24,099: the majority arrived via the front page).
  double lurker_ratio = 0.50;
};

/// Synthetic Digg follower graph; see `digg_graph_params`.
/// Edge (a, b) means "a follows b": b's votes are visible to a.
[[nodiscard]] digraph digg_follower_graph(const digg_graph_params& params,
                                          num::rng& rand);

}  // namespace dlm::graph
