#include "graph/bfs.h"

#include <queue>
#include <stdexcept>

namespace dlm::graph {
namespace {

template <typename Expand>
std::vector<hop_distance> bfs_impl(const digraph& g,
                                   const std::vector<node_id>& sources,
                                   Expand&& expand) {
  std::vector<hop_distance> dist(g.node_count(), unreachable);
  std::queue<node_id> frontier;
  for (node_id s : sources) {
    if (s >= g.node_count()) throw std::out_of_range("bfs: bad source node");
    if (dist[s] == unreachable) {  // skip duplicate sources
      dist[s] = 0;
      frontier.push(s);
    }
  }
  while (!frontier.empty()) {
    const node_id v = frontier.front();
    frontier.pop();
    const hop_distance next = dist[v] + 1;
    expand(v, [&](node_id w) {
      if (dist[w] == unreachable) {
        dist[w] = next;
        frontier.push(w);
      }
    });
  }
  return dist;
}

template <typename Visit>
void expand_direction(const digraph& g, node_id v, bfs_direction dir,
                      Visit&& visit) {
  if (dir == bfs_direction::successors || dir == bfs_direction::either) {
    for (node_id w : g.successors(v)) visit(w);
  }
  if (dir == bfs_direction::predecessors || dir == bfs_direction::either) {
    for (node_id w : g.predecessors(v)) visit(w);
  }
}

}  // namespace

std::vector<hop_distance> bfs_distances(const digraph& g, node_id source,
                                        bfs_direction direction) {
  return bfs_distances_multi(g, {source}, direction);
}

std::vector<hop_distance> bfs_distances_multi(
    const digraph& g, const std::vector<node_id>& sources,
    bfs_direction direction) {
  if (sources.empty())
    throw std::invalid_argument("bfs_distances_multi: no sources");
  return bfs_impl(g, sources, [&](node_id v, auto&& visit) {
    expand_direction(g, v, direction, visit);
  });
}

std::vector<std::vector<node_id>> nodes_by_distance(const digraph& g,
                                                    node_id source,
                                                    bfs_direction direction) {
  const std::vector<hop_distance> dist = bfs_distances(g, source, direction);
  hop_distance max_d = 0;
  for (hop_distance d : dist) {
    if (d != unreachable) max_d = std::max(max_d, d);
  }
  std::vector<std::vector<node_id>> groups(max_d + 1);
  for (node_id v = 0; v < dist.size(); ++v) {
    if (dist[v] != unreachable) groups[dist[v]].push_back(v);
  }
  return groups;
}

hop_distance eccentricity(const digraph& g, node_id source,
                          bfs_direction direction) {
  const std::vector<hop_distance> dist = bfs_distances(g, source, direction);
  hop_distance max_d = 0;
  for (hop_distance d : dist) {
    if (d != unreachable) max_d = std::max(max_d, d);
  }
  return max_d;
}

}  // namespace dlm::graph
