// Edge-list serialization.
//
// The Digg 2009 release shipped follower links as a flat edge list; this
// module reads/writes the same shape so synthetic datasets round-trip
// through files exactly like the original crawl would have.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/digraph.h"

namespace dlm::graph {

/// Writes `g` as "digraph <n_nodes>\n" followed by one "src dst" line per
/// edge.  Throws std::runtime_error on stream failure.
void write_edge_list(std::ostream& out, const digraph& g);

/// Parses the format produced by `write_edge_list`.
/// Throws std::runtime_error on malformed input.
[[nodiscard]] digraph read_edge_list(std::istream& in);

/// File-path conveniences.
void save_edge_list(const std::string& path, const digraph& g);
[[nodiscard]] digraph load_edge_list(const std::string& path);

}  // namespace dlm::graph
