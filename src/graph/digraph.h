// Compressed-sparse-row directed graph.
//
// The Digg follower network ("user a follows user b") is a directed graph;
// friendship-hop distances, cascade exposure, and all structural metrics in
// the paper's §III are computed over this representation.  The graph is
// immutable once built; use `digraph_builder` to assemble edges.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace dlm::graph {

/// Node identifier (dense, 0-based).
using node_id = std::uint32_t;

/// A directed edge from `src` to `dst`.
struct edge {
  node_id src = 0;
  node_id dst = 0;

  friend bool operator==(const edge&, const edge&) = default;
};

class digraph_builder;

/// Immutable directed graph in CSR form with both out- and in-adjacency.
///
/// Edge direction convention: an edge (a, b) means "a follows b" in the
/// social layer; information flows b → a (a sees what b votes for).  The
/// graph itself is direction-agnostic — the social layer decides semantics.
class digraph {
 public:
  /// Empty graph with `n` nodes and no edges.
  explicit digraph(std::size_t n = 0);

  [[nodiscard]] std::size_t node_count() const noexcept { return out_offsets_.size() - 1; }
  [[nodiscard]] std::size_t edge_count() const noexcept { return out_targets_.size(); }

  /// Successors of `v` (targets of edges leaving v).  O(1) view.
  [[nodiscard]] std::span<const node_id> successors(node_id v) const;

  /// Predecessors of `v` (sources of edges entering v).  O(1) view.
  [[nodiscard]] std::span<const node_id> predecessors(node_id v) const;

  [[nodiscard]] std::size_t out_degree(node_id v) const;
  [[nodiscard]] std::size_t in_degree(node_id v) const;

  /// True if the edge (src, dst) exists.  O(log out_degree(src)).
  [[nodiscard]] bool has_edge(node_id src, node_id dst) const;

  /// All edges in (src-major, dst-minor) order.
  [[nodiscard]] std::vector<edge> edges() const;

 private:
  friend class digraph_builder;

  std::vector<std::size_t> out_offsets_;  ///< size n+1
  std::vector<node_id> out_targets_;      ///< sorted within each row
  std::vector<std::size_t> in_offsets_;   ///< size n+1
  std::vector<node_id> in_sources_;       ///< sorted within each row
};

/// Mutable edge accumulator that produces an immutable `digraph`.
/// Duplicate edges and self-loops are silently dropped at build time
/// (neither occurs meaningfully in follower networks).
class digraph_builder {
 public:
  explicit digraph_builder(std::size_t n_nodes);

  /// Number of nodes the final graph will have.
  [[nodiscard]] std::size_t node_count() const noexcept { return n_; }

  /// Records the directed edge (src, dst).  Throws std::out_of_range if an
  /// endpoint is not a valid node.
  void add_edge(node_id src, node_id dst);

  /// Records both (a, b) and (b, a).
  void add_bidirectional(node_id a, node_id b);

  /// Number of edges recorded so far (before dedup).
  [[nodiscard]] std::size_t pending_edges() const noexcept { return edges_.size(); }

  /// Assembles the CSR graph.  The builder may be reused afterwards.
  [[nodiscard]] digraph build() const;

 private:
  std::size_t n_;
  std::vector<edge> edges_;
};

}  // namespace dlm::graph
