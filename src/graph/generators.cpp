#include "graph/generators.h"

#include <algorithm>

#include <stdexcept>
#include <unordered_set>

namespace dlm::graph {

digraph erdos_renyi(std::size_t n, double p, num::rng& rand) {
  if (p < 0.0 || p > 1.0)
    throw std::invalid_argument("erdos_renyi: p must be in [0,1]");
  digraph_builder b(n);
  for (node_id i = 0; i < n; ++i) {
    for (node_id j = 0; j < n; ++j) {
      if (i != j && rand.bernoulli(p)) b.add_edge(i, j);
    }
  }
  return b.build();
}

digraph erdos_renyi_m(std::size_t n, std::size_t m, num::rng& rand) {
  if (n < 2 && m > 0)
    throw std::invalid_argument("erdos_renyi_m: too few nodes for any edge");
  const std::size_t max_edges = n * (n - 1);
  if (m > max_edges)
    throw std::invalid_argument("erdos_renyi_m: m exceeds n(n-1)");
  digraph_builder b(n);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(m * 2);
  while (seen.size() < m) {
    const auto i = static_cast<node_id>(rand.index(n));
    const auto j = static_cast<node_id>(rand.index(n));
    if (i == j) continue;
    const std::uint64_t key = (static_cast<std::uint64_t>(i) << 32) | j;
    if (seen.insert(key).second) b.add_edge(i, j);
  }
  return b.build();
}

digraph barabasi_albert(std::size_t n, std::size_t attach, num::rng& rand) {
  if (attach == 0) throw std::invalid_argument("barabasi_albert: attach == 0");
  if (n <= attach)
    throw std::invalid_argument("barabasi_albert: need n > attach");

  digraph_builder b(n);
  // `endpoints` holds one entry per edge endpoint; sampling uniformly from
  // it realizes degree-proportional (preferential) attachment.
  std::vector<node_id> endpoints;
  endpoints.reserve(2 * n * attach);

  // Seed: a small complete kernel of (attach + 1) nodes.
  const std::size_t kernel = attach + 1;
  for (node_id i = 0; i < kernel; ++i) {
    for (node_id j = 0; j < kernel; ++j) {
      if (i == j) continue;
      b.add_edge(i, j);
      endpoints.push_back(i);
      endpoints.push_back(j);
    }
  }

  for (node_id v = static_cast<node_id>(kernel); v < n; ++v) {
    std::unordered_set<node_id> chosen;
    while (chosen.size() < attach) {
      const node_id target = endpoints[rand.index(endpoints.size())];
      if (target != v) chosen.insert(target);
    }
    for (node_id target : chosen) {
      b.add_edge(v, target);
      endpoints.push_back(v);
      endpoints.push_back(target);
    }
  }
  return b.build();
}

digraph watts_strogatz(std::size_t n, std::size_t k, double beta,
                       num::rng& rand) {
  if (k == 0) throw std::invalid_argument("watts_strogatz: k == 0");
  if (n <= 2 * k)
    throw std::invalid_argument("watts_strogatz: need n > 2k");
  if (beta < 0.0 || beta > 1.0)
    throw std::invalid_argument("watts_strogatz: beta must be in [0,1]");

  // Undirected edge set as canonical (min, max) pairs.
  std::unordered_set<std::uint64_t> edges;
  const auto key = [](node_id a, node_id b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  };
  for (node_id v = 0; v < n; ++v) {
    for (std::size_t d = 1; d <= k; ++d) {
      const auto w = static_cast<node_id>((v + d) % n);
      edges.insert(key(v, w));
    }
  }
  // Rewire each ring edge with probability beta.
  std::vector<std::uint64_t> initial(edges.begin(), edges.end());
  for (std::uint64_t e : initial) {
    if (!rand.bernoulli(beta)) continue;
    const auto a = static_cast<node_id>(e >> 32);
    edges.erase(e);
    node_id c;
    std::uint64_t candidate;
    int guard = 0;
    do {
      c = static_cast<node_id>(rand.index(n));
      candidate = key(a, c);
      if (++guard > 1000) {  // pathological density; keep the original edge
        candidate = e;
        break;
      }
    } while (c == a || edges.contains(candidate));
    edges.insert(candidate);
  }

  digraph_builder b(n);
  for (std::uint64_t e : edges) {
    const auto a = static_cast<node_id>(e >> 32);
    const auto c = static_cast<node_id>(e & 0xffffffffu);
    b.add_bidirectional(a, c);
  }
  return b.build();
}

digraph digg_follower_graph(const digg_graph_params& params, num::rng& rand) {
  const std::size_t n = params.users;
  const std::size_t attach = params.attach;
  if (attach == 0)
    throw std::invalid_argument("digg_follower_graph: attach == 0");
  if (n <= attach + params.local_links + 1)
    throw std::invalid_argument("digg_follower_graph: too few users");
  if (params.hub_reciprocation < 0.0 || params.hub_reciprocation > 1.0 ||
      params.local_reciprocation < 0.0 || params.local_reciprocation > 1.0)
    throw std::invalid_argument("digg_follower_graph: bad reciprocation");
  if (params.random_follow_ratio < 0.0 || params.random_follow_ratio > 1.0)
    throw std::invalid_argument("digg_follower_graph: bad random_follow_ratio");

  digraph_builder b(n);
  std::vector<node_id> endpoints;  // preferential-attachment pool
  endpoints.reserve(2 * n * attach);
  std::vector<bool> is_lurker(n, false);

  const auto follow = [&](node_id src, node_id dst, bool preferential) {
    b.add_edge(src, dst);
    if (preferential) {
      endpoints.push_back(src);
      endpoints.push_back(dst);
    }
    if (is_lurker[dst]) return;  // lurkers never follow back
    const double reciprocation = preferential ? params.hub_reciprocation
                                              : params.local_reciprocation;
    if (rand.bernoulli(reciprocation)) {
      b.add_edge(dst, src);
      if (preferential) {
        endpoints.push_back(dst);
        endpoints.push_back(src);
      }
    }
  };

  const std::size_t kernel = attach + params.local_links + 1;
  for (node_id i = 0; i < kernel; ++i) {
    for (node_id j = 0; j < kernel; ++j) {
      if (i == j) continue;
      b.add_edge(i, j);
      endpoints.push_back(i);
      endpoints.push_back(j);
    }
  }

  std::size_t loner_remaining = 0;
  for (node_id v = static_cast<node_id>(kernel); v < n; ++v) {
    // Lurkers browse but follow nobody: unreachable via follow links.
    if (rand.bernoulli(params.lurker_ratio)) {
      is_lurker[v] = true;
      continue;
    }

    // Isolated-community bookkeeping (see digg_graph_params docs).
    if (loner_remaining == 0 && params.loner_block_start_p > 0.0 &&
        rand.bernoulli(params.loner_block_start_p)) {
      loner_remaining = params.loner_block_min_len +
                        rand.index(std::max<std::size_t>(
                            params.loner_block_max_len -
                                params.loner_block_min_len, 1));
    }
    const bool loner = loner_remaining > 0;
    if (loner) --loner_remaining;

    // Celebrity follows: preferential attachment with a uniform fraction.
    if (!loner) {
      std::unordered_set<node_id> chosen;
      while (chosen.size() < attach) {
        node_id target;
        if (rand.bernoulli(params.random_follow_ratio)) {
          target = static_cast<node_id>(rand.index(v));  // uniform older user
        } else {
          target = endpoints[rand.index(endpoints.size())];
        }
        if (target != v) chosen.insert(target);
      }
      for (node_id target : chosen) follow(v, target, /*preferential=*/true);

      // One extra follow of an early "celebrity" account.
      if (params.celebrity_pool > 0 &&
          rand.bernoulli(params.celebrity_follow_p)) {
        const auto pool = std::min<std::size_t>(params.celebrity_pool, v);
        if (pool > 0) {
          const auto target = static_cast<node_id>(rand.index(pool));
          if (target != v) follow(v, target, /*preferential=*/true);
        }
      }
    }

    // Community follows: peers who joined recently (id locality).
    const std::size_t window = std::min<std::size_t>(params.local_window, v);
    std::unordered_set<node_id> local;
    while (local.size() < std::min(params.local_links, window)) {
      const auto target =
          static_cast<node_id>(v - 1 - rand.index(window));
      if (target != v) local.insert(target);
    }
    for (node_id target : local) follow(v, target, /*preferential=*/false);
  }

  // Celebrity clique post-pass: the elite mutually follow each other.
  if (params.celebrity_count >= 2 && params.celebrity_clique_p > 0.0) {
    // Rank by in-degree accumulated so far (approximated by the
    // preferential pool: count endpoint occurrences).
    std::vector<std::size_t> occurrences(n, 0);
    for (node_id v : endpoints) ++occurrences[v];
    std::vector<node_id> ranked(n);
    for (std::size_t i = 0; i < n; ++i) ranked[i] = static_cast<node_id>(i);
    const std::size_t top = std::min(params.celebrity_count, n);
    std::partial_sort(ranked.begin(),
                      ranked.begin() + static_cast<std::ptrdiff_t>(top),
                      ranked.end(), [&](node_id a, node_id c) {
                        return occurrences[a] > occurrences[c];
                      });
    for (std::size_t i = 0; i < top; ++i) {
      if (is_lurker[ranked[i]]) continue;  // lurkers never follow
      for (std::size_t j = 0; j < top; ++j) {
        if (i != j && rand.bernoulli(params.celebrity_clique_p))
          b.add_edge(ranked[i], ranked[j]);
      }
    }
  }
  return b.build();
}

}  // namespace dlm::graph
