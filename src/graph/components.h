// Connected-component decomposition.
//
// Density denominators in the paper ("total number of users in U_x") are
// defined over the users reachable from the initiator; component analysis
// validates that the synthetic follower graph has the same giant-component
// structure as crawled OSNs.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/digraph.h"

namespace dlm::graph {

/// Result of a component decomposition.
struct component_partition {
  std::vector<std::uint32_t> component_of;  ///< node → component index
  std::vector<std::size_t> sizes;           ///< component index → node count

  [[nodiscard]] std::size_t count() const noexcept { return sizes.size(); }

  /// Index of the largest component (0 if the graph is empty).
  [[nodiscard]] std::size_t giant() const;

  /// Fraction of all nodes inside the largest component.
  [[nodiscard]] double giant_fraction() const;
};

/// Weakly connected components (edges treated as undirected).
[[nodiscard]] component_partition weakly_connected_components(const digraph& g);

/// Strongly connected components (Tarjan, iterative — safe for deep graphs).
[[nodiscard]] component_partition strongly_connected_components(const digraph& g);

}  // namespace dlm::graph
