#include "social/interest.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dlm::social {

double jaccard_distance(std::span<const story_id> a,
                        std::span<const story_id> b) {
  if (a.empty() && b.empty()) return 1.0;
  std::size_t intersection = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++intersection;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const std::size_t uni = a.size() + b.size() - intersection;
  return 1.0 - static_cast<double>(intersection) / static_cast<double>(uni);
}

double shared_interest_distance(const social_network& net, user_id a,
                                user_id b) {
  return jaccard_distance(net.stories_of(a), net.stories_of(b));
}

std::vector<double> interest_distances_from(const social_network& net,
                                            user_id source) {
  const auto source_stories = net.stories_of(source);
  std::vector<double> dist(net.user_count(), 1.0);
  for (user_id u = 0; u < net.user_count(); ++u) {
    dist[u] = (u == source)
                  ? 0.0
                  : jaccard_distance(source_stories, net.stories_of(u));
  }
  return dist;
}

interest_grouping group_by_interest_with_edges(const social_network& net,
                                               user_id source,
                                               std::vector<double> edges) {
  return group_distances_with_edges(interest_distances_from(net, source),
                                    source, std::move(edges));
}

interest_grouping group_distances_with_edges(std::span<const double> distances,
                                             user_id source,
                                             std::vector<double> edges) {
  if (edges.empty())
    throw std::invalid_argument("group_distances_with_edges: no edges");
  for (std::size_t k = 1; k < edges.size(); ++k) {
    if (!(edges[k] >= edges[k - 1]))
      throw std::invalid_argument(
          "group_distances_with_edges: edges must be ascending");
  }
  const std::size_t n_groups = edges.size();
  interest_grouping out;
  out.group_of.assign(distances.size(), 0);
  out.sizes.assign(n_groups + 1, 0);

  double max_dist = 0.0;
  for (user_id u = 0; u < distances.size(); ++u) {
    if (u != source) max_dist = std::max(max_dist, distances[u]);
  }
  edges.back() = std::max(edges.back(), max_dist);
  out.edges = edges;

  for (user_id u = 0; u < distances.size(); ++u) {
    if (u == source) {
      out.group_of[u] = 0;
      ++out.sizes[0];
      continue;
    }
    int group = static_cast<int>(n_groups);
    for (std::size_t k = 0; k < n_groups; ++k) {
      if (distances[u] <= edges[k]) {
        group = static_cast<int>(k + 1);
        break;
      }
    }
    out.group_of[u] = group;
    ++out.sizes[static_cast<std::size_t>(group)];
  }
  return out;
}

interest_grouping group_by_interest(const social_network& net, user_id source,
                                    std::size_t n_groups,
                                    interest_binning binning) {
  if (n_groups == 0)
    throw std::invalid_argument("group_by_interest: n_groups == 0");
  const std::vector<double> dist = interest_distances_from(net, source);

  interest_grouping out;
  out.group_of.assign(net.user_count(), 0);
  out.sizes.assign(n_groups + 1, 0);

  // Collect the distances of everyone but the source.
  std::vector<double> others;
  others.reserve(dist.size() - 1);
  for (user_id u = 0; u < dist.size(); ++u) {
    if (u != source) others.push_back(dist[u]);
  }
  if (others.empty()) return out;

  out.edges.resize(n_groups);
  if (binning == interest_binning::equal_width) {
    // Robust range: 0.5th percentile as the lower edge so a single
    // near-duplicate history does not stretch every bin.
    std::vector<double> sorted = others;
    std::sort(sorted.begin(), sorted.end());
    const double lo = sorted[static_cast<std::size_t>(
        0.005 * static_cast<double>(sorted.size() - 1))];
    const double hi = sorted.back();
    const double width = (hi > lo) ? (hi - lo) / static_cast<double>(n_groups)
                                   : 1.0;
    for (std::size_t k = 0; k < n_groups; ++k)
      out.edges[k] = lo + width * static_cast<double>(k + 1);
  } else {
    std::vector<double> sorted = others;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t k = 0; k < n_groups; ++k) {
      const double q = static_cast<double>(k + 1) / static_cast<double>(n_groups);
      const auto idx = static_cast<std::size_t>(
          std::ceil(q * static_cast<double>(sorted.size())) - 1);
      out.edges[k] = sorted[std::min(idx, sorted.size() - 1)];
    }
  }
  // Guarantee the last edge swallows the maximum (floating-point safety).
  out.edges.back() = std::max(out.edges.back(), 1.0);

  for (user_id u = 0; u < dist.size(); ++u) {
    if (u == source) {
      out.group_of[u] = 0;
      ++out.sizes[0];
      continue;
    }
    int group = static_cast<int>(n_groups);
    for (std::size_t k = 0; k < n_groups; ++k) {
      if (dist[u] <= out.edges[k]) {
        group = static_cast<int>(k + 1);
        break;
      }
    }
    out.group_of[u] = group;
    ++out.sizes[static_cast<std::size_t>(group)];
  }
  return out;
}

}  // namespace dlm::social
