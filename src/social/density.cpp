#include "social/density.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dlm::social {

density_field::density_field(const social_network& net, story_id story,
                             const distance_partition& partition,
                             int horizon_hours)
    : horizon_(horizon_hours), metric_(partition.metric) {
  if (horizon_hours < 1)
    throw std::invalid_argument("density_field: horizon must be >= 1 hour");
  if (partition.group_of.size() != net.user_count())
    throw std::invalid_argument("density_field: partition/network mismatch");

  max_distance_ = partition.max_distance();
  if (max_distance_ < 1)
    throw std::invalid_argument(
        "density_field: partition has no non-source groups");

  group_sizes_ = partition.sizes;
  group_sizes_.resize(static_cast<std::size_t>(max_distance_) + 1, 0);

  const auto votes = net.votes_for(story);
  if (votes.empty())
    throw std::invalid_argument("density_field: story has no votes");
  const timestamp submitted = votes.front().time;

  const std::size_t cells =
      static_cast<std::size_t>(max_distance_) * static_cast<std::size_t>(horizon_);
  counts_.assign(cells, 0);
  density_.assign(cells, 0.0);

  // Each vote lands in the snapshot of the hour it happened: hour index
  // t = floor(hours_since) + 1 clamped to [1, horizon].  Later snapshots
  // accumulate earlier votes (cumulative sum below).
  for (const vote& v : votes) {
    const int group = partition.group_of[v.user];
    if (group < 1 || group > max_distance_) continue;  // source/unreachable
    const double h = hours_since(submitted, v.time);
    if (h < 0.0) continue;
    const int t = std::min(static_cast<int>(std::floor(h)) + 1, horizon_);
    ++counts_[index(group, t)];
  }
  // Cumulative over time per distance row.
  for (int x = 1; x <= max_distance_; ++x) {
    std::size_t acc = 0;
    for (int t = 1; t <= horizon_; ++t) {
      acc += counts_[index(x, t)];
      counts_[index(x, t)] = acc;
      const std::size_t denom = group_sizes_[static_cast<std::size_t>(x)];
      density_[index(x, t)] =
          denom > 0 ? 100.0 * static_cast<double>(acc) /
                          static_cast<double>(denom)
                    : 0.0;
    }
  }
}

std::size_t density_field::index(int x, int t) const {
  if (x < 1 || x > max_distance_)
    throw std::out_of_range("density_field: distance out of range");
  if (t < 1 || t > horizon_)
    throw std::out_of_range("density_field: hour out of range");
  return static_cast<std::size_t>(x - 1) * static_cast<std::size_t>(horizon_) +
         static_cast<std::size_t>(t - 1);
}

double density_field::at(int x, int t) const { return density_[index(x, t)]; }

std::vector<double> density_field::series_at_distance(int x) const {
  std::vector<double> out(static_cast<std::size_t>(horizon_));
  for (int t = 1; t <= horizon_; ++t)
    out[static_cast<std::size_t>(t - 1)] = at(x, t);
  return out;
}

std::vector<double> density_field::profile_at_hour(int t) const {
  std::vector<double> out(static_cast<std::size_t>(max_distance_));
  for (int x = 1; x <= max_distance_; ++x)
    out[static_cast<std::size_t>(x - 1)] = at(x, t);
  return out;
}

std::size_t density_field::group_size(int x) const {
  if (x < 1 || x > max_distance_)
    throw std::out_of_range("density_field::group_size: bad distance");
  return group_sizes_[static_cast<std::size_t>(x)];
}

std::size_t density_field::influenced_count(int x, int t) const {
  return counts_[index(x, t)];
}

bool density_field::is_monotone() const {
  for (int x = 1; x <= max_distance_; ++x) {
    for (int t = 2; t <= horizon_; ++t) {
      if (at(x, t) < at(x, t - 1)) return false;
    }
  }
  return true;
}

}  // namespace dlm::social
