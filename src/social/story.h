// Core value types of the social layer: users, stories, votes.
//
// Mirrors the shape of the Digg 2009 release: per story, the (user,
// timestamp) pairs of every vote, plus the follower links among voters
// (the links live in dlm::graph::digraph).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/digraph.h"

namespace dlm::social {

/// User identifier — the same dense id space as graph nodes.
using user_id = graph::node_id;

/// Story (news item) identifier.
using story_id = std::uint32_t;

/// Seconds since the dataset epoch (Digg timestamps are unix seconds; only
/// differences matter here).
using timestamp = std::uint64_t;

inline constexpr timestamp seconds_per_hour = 3600;

/// A single "digg": `user` voted for `story` at `time`.
struct vote {
  user_id user = 0;
  story_id story = 0;
  timestamp time = 0;

  friend bool operator==(const vote&, const vote&) = default;
};

/// Story metadata. The initiator (paper: "source") is the first voter —
/// the user who submitted the story to the site.
struct story_info {
  story_id id = 0;
  std::string title;        ///< synthetic datasets use generated titles
  user_id initiator = 0;
  timestamp submitted = 0;  ///< time of the first vote
  std::size_t vote_count = 0;
};

/// Hours elapsed from story submission to `t` (fractional).
[[nodiscard]] inline double hours_since(timestamp submitted, timestamp t) {
  return t >= submitted
             ? static_cast<double>(t - submitted) /
                   static_cast<double>(seconds_per_hour)
             : -static_cast<double>(submitted - t) /
                   static_cast<double>(seconds_per_hour);
}

}  // namespace dlm::social
