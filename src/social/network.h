// The assembled social dataset: follower graph + vote log.
//
// Owns everything the experiments consume: the directed follower graph
// (edge (a, b) = "a follows b"; b's votes appear in a's feed) and the
// per-story vote streams, indexed both by story and by user.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "graph/digraph.h"
#include "social/story.h"

namespace dlm::social {

/// Immutable social dataset.  Construct via `social_network_builder`.
class social_network {
 public:
  social_network(graph::digraph followers, std::vector<vote> votes,
                 std::size_t n_stories);

  /// The follower graph; node v's *feed sources* are successors(v) (the
  /// users v follows) and v's *audience* is predecessors(v).
  [[nodiscard]] const graph::digraph& followers() const noexcept {
    return graph_;
  }

  [[nodiscard]] std::size_t user_count() const noexcept {
    return graph_.node_count();
  }
  [[nodiscard]] std::size_t story_count() const noexcept {
    return story_count_;
  }
  [[nodiscard]] std::size_t vote_count() const noexcept {
    return votes_.size();
  }

  /// Votes on `story`, sorted by timestamp ascending (ties by user id).
  [[nodiscard]] std::span<const vote> votes_for(story_id story) const;

  /// Stories `user` has voted on, sorted ascending, deduplicated.
  [[nodiscard]] std::span<const story_id> stories_of(user_id user) const;

  /// Metadata of `story` (initiator = first voter); std::nullopt if the
  /// story received no votes.
  [[nodiscard]] std::optional<story_info> info(story_id story) const;

  /// Stories sorted by vote count descending ("front page" order).
  [[nodiscard]] std::vector<story_info> top_stories(std::size_t limit) const;

 private:
  graph::digraph graph_;
  std::size_t story_count_;
  std::vector<vote> votes_;                  ///< grouped by story, time-sorted
  std::vector<std::size_t> story_offsets_;   ///< story → [begin, end) in votes_
  std::vector<story_id> user_stories_;       ///< grouped by user
  std::vector<std::size_t> user_offsets_;    ///< user → [begin, end)
};

/// Accumulates votes and produces a `social_network`.
class social_network_builder {
 public:
  social_network_builder(graph::digraph followers, std::size_t n_stories);

  /// Records a vote.  Duplicate (user, story) pairs keep only the earliest
  /// vote (a user can digg a story once).  Throws std::out_of_range for bad
  /// user or story ids.
  void add_vote(user_id user, story_id story, timestamp time);

  [[nodiscard]] social_network build();

 private:
  graph::digraph graph_;
  std::size_t n_stories_;
  std::vector<vote> votes_;
};

}  // namespace dlm::social
