// Shared-interest distance (paper §II.A, Eq. 1).
//
//   d(a, b) = 1 − |C_a ∩ C_b| / |C_a ∪ C_b|
//
// where C_u is the set of stories user u has voted on — i.e. the Jaccard
// *distance* between vote histories.  Users with identical histories are at
// distance 0; users with disjoint histories at distance 1.  The paper maps
// these continuous distances into five groups (values 1..5) to align with
// friendship hops.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "social/network.h"
#include "social/story.h"

namespace dlm::social {

/// Jaccard distance between two sorted story lists (paper Eq. 1).
/// Both-empty histories are defined as distance 1 (no evidence of shared
/// interest).
[[nodiscard]] double jaccard_distance(std::span<const story_id> a,
                                      std::span<const story_id> b);

/// Shared-interest distance between two users of `net`.
[[nodiscard]] double shared_interest_distance(const social_network& net,
                                              user_id a, user_id b);

/// Shared-interest distance from `source` to every user (vector indexed by
/// user id; distance to self is 0).
[[nodiscard]] std::vector<double> interest_distances_from(
    const social_network& net, user_id source);

/// Partition of continuous interest distances into `n_groups` bins.
struct interest_grouping {
  /// group_of[u] ∈ [1, n_groups], or 0 for the source itself.
  std::vector<int> group_of;
  /// Right bin edges: distances ≤ edges[k] fall in group k+1.
  std::vector<double> edges;
  /// Users per group, indexed 1..n_groups (index 0 counts the source).
  std::vector<std::size_t> sizes;
};

/// How bin edges are chosen when grouping continuous interest distances.
enum class interest_binning {
  equal_width,  ///< uniform bins over [min, max] of observed distances
  quantile,     ///< equal-population bins (the paper's "disjoint groups")
};

/// Groups every user (except the source) into `n_groups` interest-distance
/// bins, group 1 = most-shared interests, matching the paper's assignment
/// of values 1–5 to "five disjoint groups based on their interest ranges"
/// (equal-width ranges; near groups are naturally small because most users
/// share little content with the initiator).  Users who voted nothing sit
/// at distance 1 and land in the outermost group.
[[nodiscard]] interest_grouping group_by_interest(
    const social_network& net, user_id source, std::size_t n_groups = 5,
    interest_binning binning = interest_binning::equal_width);

/// Groups by explicit right bin edges (ascending; the last edge is raised
/// to cover the maximum distance).  Used when the caller calibrates the
/// edges itself — e.g. the dataset synthesizer, which picks edges so the
/// two distance metrics' vote totals are consistent (the paper leaves the
/// choice of "interest ranges" open).
[[nodiscard]] interest_grouping group_by_interest_with_edges(
    const social_network& net, user_id source, std::vector<double> edges);

/// Precomputed-distance variant of `group_by_interest_with_edges`.
[[nodiscard]] interest_grouping group_distances_with_edges(
    std::span<const double> distances, user_id source,
    std::vector<double> edges);

}  // namespace dlm::social
