#include "social/network.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace dlm::social {

social_network::social_network(graph::digraph followers,
                               std::vector<vote> votes, std::size_t n_stories)
    : graph_(std::move(followers)), story_count_(n_stories),
      votes_(std::move(votes)) {
  // Group by story, then time, then user; this is the canonical order.
  std::sort(votes_.begin(), votes_.end(), [](const vote& a, const vote& b) {
    if (a.story != b.story) return a.story < b.story;
    if (a.time != b.time) return a.time < b.time;
    return a.user < b.user;
  });

  story_offsets_.assign(story_count_ + 1, 0);
  for (const vote& v : votes_) {
    if (v.story >= story_count_)
      throw std::out_of_range("social_network: story id out of range");
    if (v.user >= graph_.node_count())
      throw std::out_of_range("social_network: user id out of range");
    ++story_offsets_[v.story + 1];
  }
  for (std::size_t s = 0; s < story_count_; ++s)
    story_offsets_[s + 1] += story_offsets_[s];

  // Per-user story lists (deduplicated by construction upstream, but be
  // safe: dedup here too).
  user_offsets_.assign(graph_.node_count() + 1, 0);
  for (const vote& v : votes_) ++user_offsets_[v.user + 1];
  for (std::size_t u = 0; u < graph_.node_count(); ++u)
    user_offsets_[u + 1] += user_offsets_[u];
  user_stories_.assign(votes_.size(), 0);
  std::vector<std::size_t> cursor(user_offsets_.begin(),
                                  user_offsets_.end() - 1);
  for (const vote& v : votes_) user_stories_[cursor[v.user]++] = v.story;
  for (std::size_t u = 0; u < graph_.node_count(); ++u) {
    auto first = user_stories_.begin() + static_cast<std::ptrdiff_t>(user_offsets_[u]);
    auto last = user_stories_.begin() + static_cast<std::ptrdiff_t>(user_offsets_[u + 1]);
    std::sort(first, last);
  }
}

std::span<const vote> social_network::votes_for(story_id story) const {
  if (story >= story_count_)
    throw std::out_of_range("social_network::votes_for: bad story");
  return {votes_.data() + story_offsets_[story],
          story_offsets_[story + 1] - story_offsets_[story]};
}

std::span<const story_id> social_network::stories_of(user_id user) const {
  if (user >= graph_.node_count())
    throw std::out_of_range("social_network::stories_of: bad user");
  return {user_stories_.data() + user_offsets_[user],
          user_offsets_[user + 1] - user_offsets_[user]};
}

std::optional<story_info> social_network::info(story_id story) const {
  const auto vs = votes_for(story);
  if (vs.empty()) return std::nullopt;
  story_info meta;
  meta.id = story;
  meta.initiator = vs.front().user;
  meta.submitted = vs.front().time;
  meta.vote_count = vs.size();
  meta.title = "story-" + std::to_string(story);
  return meta;
}

std::vector<story_info> social_network::top_stories(std::size_t limit) const {
  std::vector<story_info> all;
  all.reserve(story_count_);
  for (story_id s = 0; s < story_count_; ++s) {
    if (auto meta = info(s)) all.push_back(std::move(*meta));
  }
  std::sort(all.begin(), all.end(), [](const story_info& a, const story_info& b) {
    return a.vote_count > b.vote_count;
  });
  if (all.size() > limit) all.resize(limit);
  return all;
}

social_network_builder::social_network_builder(graph::digraph followers,
                                               std::size_t n_stories)
    : graph_(std::move(followers)), n_stories_(n_stories) {}

void social_network_builder::add_vote(user_id user, story_id story,
                                      timestamp time) {
  if (user >= graph_.node_count())
    throw std::out_of_range("add_vote: user out of range");
  if (story >= n_stories_)
    throw std::out_of_range("add_vote: story out of range");
  votes_.push_back({user, story, time});
}

social_network social_network_builder::build() {
  // Keep only the earliest vote per (user, story).
  std::sort(votes_.begin(), votes_.end(), [](const vote& a, const vote& b) {
    if (a.user != b.user) return a.user < b.user;
    if (a.story != b.story) return a.story < b.story;
    return a.time < b.time;
  });
  votes_.erase(std::unique(votes_.begin(), votes_.end(),
                           [](const vote& a, const vote& b) {
                             return a.user == b.user && a.story == b.story;
                           }),
               votes_.end());
  return social_network(std::move(graph_), std::move(votes_), n_stories_);
}

}  // namespace dlm::social
