#include "social/distance.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "graph/bfs.h"

namespace dlm::social {

std::string to_string(distance_metric metric) {
  switch (metric) {
    case distance_metric::friendship_hops: return "friendship-hops";
    case distance_metric::shared_interests: return "shared-interests";
  }
  return "unknown";
}

int distance_partition::max_distance() const {
  for (std::size_t x = sizes.size(); x-- > 1;) {
    if (sizes[x] > 0) return static_cast<int>(x);
  }
  return 0;
}

std::vector<double> distance_partition::group_fractions() const {
  std::size_t total = 0;
  for (std::size_t x = 1; x < sizes.size(); ++x) total += sizes[x];
  std::vector<double> frac(sizes.size(), 0.0);
  if (total == 0) return frac;
  for (std::size_t x = 1; x < sizes.size(); ++x)
    frac[x] = static_cast<double>(sizes[x]) / static_cast<double>(total);
  return frac;
}

distance_partition partition_by_hops(const social_network& net,
                                     user_id source) {
  return partition_by_hops(net, source,
                           std::numeric_limits<int>::max());
}

distance_partition partition_by_hops(const social_network& net,
                                     user_id source, int max_hops) {
  if (max_hops < 1)
    throw std::invalid_argument("partition_by_hops: max_hops must be >= 1");
  // Information flows from a voter to the users who follow that voter.
  // Edge (a, b) = "a follows b", so spreading moves along *predecessors*
  // in the digraph (from b to each a with a→b).
  const auto dist = graph::bfs_distances(net.followers(), source,
                                         graph::bfs_direction::predecessors);

  distance_partition part;
  part.metric = distance_metric::friendship_hops;
  part.group_of.assign(net.user_count(), -1);

  graph::hop_distance max_seen = 0;
  for (user_id u = 0; u < net.user_count(); ++u) {
    if (dist[u] == graph::unreachable) continue;
    if (dist[u] > static_cast<graph::hop_distance>(max_hops) && dist[u] != 0)
      continue;
    max_seen = std::max(max_seen, dist[u]);
  }
  part.sizes.assign(static_cast<std::size_t>(max_seen) + 1, 0);
  for (user_id u = 0; u < net.user_count(); ++u) {
    if (dist[u] == graph::unreachable) continue;
    if (dist[u] != 0 && dist[u] > static_cast<graph::hop_distance>(max_hops))
      continue;
    part.group_of[u] = static_cast<int>(dist[u]);
    ++part.sizes[dist[u]];
  }
  return part;
}

distance_partition partition_by_interest(const social_network& net,
                                         user_id source,
                                         std::size_t n_groups) {
  const interest_grouping grouping = group_by_interest(net, source, n_groups);
  distance_partition part;
  part.metric = distance_metric::shared_interests;
  part.group_of = grouping.group_of;
  part.group_of[source] = 0;
  part.sizes = grouping.sizes;
  return part;
}

distance_partition make_partition(const social_network& net, user_id source,
                                  distance_metric metric, int limit) {
  switch (metric) {
    case distance_metric::friendship_hops:
      return partition_by_hops(net, source, limit);
    case distance_metric::shared_interests:
      return partition_by_interest(net, source,
                                   static_cast<std::size_t>(limit));
  }
  throw std::invalid_argument("make_partition: unknown metric");
}

}  // namespace dlm::social
