// Unified distance-group assignment (paper §II.A).
//
// The DL model's spatial axis is "distance from the source", measured
// either as *friendship hops* (BFS over the follower graph, information
// flowing source → its followers → their followers, i.e. along reversed
// follow edges) or as *shared interests* (Jaccard groups).  This module
// maps every user to a distance group 1..max and records group sizes —
// the denominators of the density field.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "social/interest.h"
#include "social/network.h"
#include "social/story.h"

namespace dlm::social {

/// Which of the paper's two distance metrics to use.
enum class distance_metric {
  friendship_hops,
  shared_interests,
};

[[nodiscard]] std::string to_string(distance_metric metric);

/// A complete distance partition for one story's initiator.
struct distance_partition {
  distance_metric metric = distance_metric::friendship_hops;
  /// group_of[u]: 1-based distance group, 0 for the source, -1 for users
  /// outside every group (unreachable from the source for hop distance).
  std::vector<int> group_of;
  /// sizes[x]: number of users in group x (index 0 = the source alone).
  std::vector<std::size_t> sizes;

  /// Largest group index with at least one user (the spatial domain bound L).
  [[nodiscard]] int max_distance() const;

  /// Fraction of reachable users per group (paper Fig. 2's y-axis):
  /// sizes[x] / Σ_{x>=1} sizes[x].
  [[nodiscard]] std::vector<double> group_fractions() const;
};

/// Friendship-hop partition: BFS from `source` through its audience
/// (followers, i.e. reversed follow edges).  Group x = users exactly x
/// hops away; unreachable users get group -1.
[[nodiscard]] distance_partition partition_by_hops(const social_network& net,
                                                   user_id source);

/// Hop partition truncated at `max_hops`: users farther than `max_hops`
/// (but reachable) are folded into group -1 as well.  The paper's analysis
/// keeps hops 1..5 because greater distances hold too few users.
[[nodiscard]] distance_partition partition_by_hops(const social_network& net,
                                                   user_id source,
                                                   int max_hops);

/// Shared-interest partition with `n_groups` quantile bins (paper assigns
/// values 1–5 to five disjoint groups).
[[nodiscard]] distance_partition partition_by_interest(
    const social_network& net, user_id source, std::size_t n_groups = 5);

/// Dispatch on `metric`; `limit` is max_hops (hops) or n_groups (interest).
[[nodiscard]] distance_partition make_partition(const social_network& net,
                                                user_id source,
                                                distance_metric metric,
                                                int limit = 5);

}  // namespace dlm::social
