// The spatio-temporal density field I(x, t) (paper §II.B.1).
//
// I(x, t) = percentage of the users in distance group U_x that have voted
// for the story by hour t.  Every figure and table in the paper's
// evaluation is a view over this surface, so it is the pivotal data
// structure of the reproduction.  Densities are *percentages* (0–100): the
// paper's figures show values up to 60 with carrying capacities K = 25 and
// K = 60, which only makes sense on a percent scale (see DESIGN.md §4).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "social/distance.h"
#include "social/network.h"
#include "social/story.h"

namespace dlm::social {

/// Dense matrix of densities over (hour, distance group).
class density_field {
 public:
  /// Builds the field for one story.
  ///
  /// `partition` assigns every user to a distance group; `horizon_hours`
  /// is the number of hourly snapshots (t = 1..horizon, measured from
  /// story submission; the vote at t=0 belongs to snapshot t=1, matching
  /// the paper's "data collected at the first hour" initial condition).
  /// Distance groups with zero members yield density 0.
  density_field(const social_network& net, story_id story,
                const distance_partition& partition, int horizon_hours);

  /// Number of hourly snapshots (t runs 1..hours()).
  [[nodiscard]] int hours() const noexcept { return horizon_; }

  /// Largest distance group index with at least one member.
  [[nodiscard]] int max_distance() const noexcept { return max_distance_; }

  /// Density (percent, 0–100) at distance group x (1-based) and hour t
  /// (1-based).  Throws std::out_of_range outside the surface.
  [[nodiscard]] double at(int x, int t) const;

  /// Time series I(x, ·) for a fixed distance group, hours 1..hours().
  [[nodiscard]] std::vector<double> series_at_distance(int x) const;

  /// Spatial profile I(·, t) for a fixed hour, distances 1..max_distance().
  [[nodiscard]] std::vector<double> profile_at_hour(int t) const;

  /// Members of group x (the density denominator).
  [[nodiscard]] std::size_t group_size(int x) const;

  /// Raw cumulative vote counts per group at hour t.
  [[nodiscard]] std::size_t influenced_count(int x, int t) const;

  /// True if I(x, ·) is non-decreasing for every x — votes are cumulative,
  /// so a correctly built field always satisfies this.
  [[nodiscard]] bool is_monotone() const;

  /// The distance metric the field was built with.
  [[nodiscard]] distance_metric metric() const noexcept { return metric_; }

 private:
  [[nodiscard]] std::size_t index(int x, int t) const;

  int horizon_ = 0;
  int max_distance_ = 0;
  distance_metric metric_ = distance_metric::friendship_hops;
  std::vector<std::size_t> group_sizes_;  ///< index 0 unused (source)
  std::vector<std::size_t> counts_;       ///< cumulative votes, (x,t) matrix
  std::vector<double> density_;           ///< percentages, (x,t) matrix
};

}  // namespace dlm::social
