// Temporal-only baseline: independent logistic growth per distance group.
//
// The ablation of the DL model's diffusion term (d = 0): every distance
// group evolves by N' = r(t)·N·(1 − N/K) from its hour-1 density, with no
// coupling across distances.  Comparing its predictions against the full
// DL model isolates what Fick's-law diffusion buys (bench
// `ablation_diffusion_term`).
#pragma once

#include <functional>
#include <vector>

namespace dlm::models {

/// Time-varying growth rate r(t); shared across groups like the paper's
/// Eq. 7 function.
using rate_fn = std::function<double(double)>;

/// Per-distance logistic predictor.
class per_distance_logistic {
 public:
  /// `initial[x]` is the density of group x at time `t0`; `k` is the common
  /// carrying capacity.  Throws std::invalid_argument for empty input or
  /// non-positive k.
  per_distance_logistic(std::vector<double> initial, double t0, double k,
                        rate_fn rate);

  /// Per-group rates (the r(x, t) extension, paper §V): `rates[x]` drives
  /// group x; when there are fewer rates than groups the last one extends
  /// to the remaining groups.  Throws std::invalid_argument for an empty
  /// or partially-empty rate table.
  per_distance_logistic(std::vector<double> initial, double t0, double k,
                        std::vector<rate_fn> rates);

  /// Density profile at time `t >= t0()`: one value per group, integrated
  /// with the exact logistic propagator on `substeps` sub-intervals per
  /// unit time (rate integral via Simpson).
  [[nodiscard]] std::vector<double> predict(double t, int substeps = 64) const;

  [[nodiscard]] double t0() const noexcept { return t0_; }
  [[nodiscard]] double capacity() const noexcept { return k_; }
  [[nodiscard]] std::size_t groups() const noexcept { return initial_.size(); }

 private:
  std::vector<double> initial_;
  double t0_;
  double k_;
  /// One shared rate (size 1) or one per group (last extends).
  std::vector<rate_fn> rates_;
};

}  // namespace dlm::models
