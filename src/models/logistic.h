// The scalar logistic growth model (paper Eq. 2).
//
// N' = r·N·(1 − N/K) — the paper's model of the *growth process* (spread
// within one distance group).  Provides the closed-form solution, the
// exact one-step propagator the Strang-split DL solver uses, and a
// least-squares fitter that recovers (r, K, N0) from a sampled curve.
#pragma once

#include <functional>
#include <span>
#include <vector>

namespace dlm::models {

/// Closed-form logistic solution
///   N(t) = K / (1 + ((K − N0)/N0) · e^{−r (t − t0)}),  N0 > 0.
[[nodiscard]] double logistic_solution(double n0, double r, double k,
                                       double t0, double t);

/// Exact propagator over one step of length h with *integrated* rate
/// R = ∫ r(t) dt over the step (logistic is autonomous in the rescaled
/// time ∫r): N ← K·N·e^R / (K + N·(e^R − 1)).  Maps [0, K] to [0, K] for
/// any R ≥ 0 — the positivity backbone of the Strang-split DL scheme.
[[nodiscard]] double logistic_step(double n, double integrated_rate, double k);

/// Least-squares fit of (r, K, N0) to samples (t[i], n[i]) via
/// Nelder–Mead from a heuristic start.  Requires >= 3 samples and at
/// least one strictly positive n.
struct logistic_fit {
  double r = 0.0;
  double k = 0.0;
  double n0 = 0.0;
  double sse = 0.0;  ///< objective at the optimum
};
[[nodiscard]] logistic_fit fit_logistic(std::span<const double> t,
                                        std::span<const double> n);

}  // namespace dlm::models
