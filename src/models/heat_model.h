// Pure-diffusion baseline (Fick's law only, r = 0).
//
// The other half of the DL ablation: keep the diffusion term, drop the
// logistic growth.  Heat flow redistributes the initial density mass but
// cannot create any — total mass is conserved under Neumann boundaries —
// so it can never track the paper's growing surfaces.  Also serves as a
// solver cross-check: the DL schemes with r = 0 must agree with this
// module's closed-form cosine-series solution.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dlm::models {

/// Solves I_t = d·I_xx on [l, L] with Neumann (no-flux) boundaries from
/// initial samples `phi` on a uniform grid of phi.size() nodes, by cosine
/// (Neumann eigenfunction) series truncated at `modes` terms.
/// Returns the profile at time `t >= 0` on the same grid.
[[nodiscard]] std::vector<double> heat_neumann_series(
    const std::vector<double>& phi, double lower, double upper, double d,
    double t, std::size_t modes = 64);

/// Spatial mean of a sampled profile — the conserved quantity of the
/// Neumann heat equation (trapezoid weights).
[[nodiscard]] double profile_mean(std::span<const double> profile);

}  // namespace dlm::models
