#include "models/heat_model.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace dlm::models {

std::vector<double> heat_neumann_series(const std::vector<double>& phi,
                                        double lower, double upper, double d,
                                        double t, std::size_t modes) {
  const std::size_t n = phi.size();
  if (n < 2) throw std::invalid_argument("heat_neumann_series: need >= 2 samples");
  if (!(upper > lower))
    throw std::invalid_argument("heat_neumann_series: require upper > lower");
  if (d < 0.0) throw std::invalid_argument("heat_neumann_series: d must be >= 0");
  if (t < 0.0) throw std::invalid_argument("heat_neumann_series: t must be >= 0");

  const double length = upper - lower;
  const double dx = length / static_cast<double>(n - 1);

  // Coefficients above the sampling Nyquist limit are aliasing artifacts
  // of the trapezoid quadrature; truncate there.
  modes = std::min(modes, (n - 1) / 2);

  // Cosine coefficients a_m = (2/length) ∫ φ(x) cos(mπ(x−l)/length) dx,
  // trapezoid quadrature on the grid (a_0 halved later).
  std::vector<double> coeff(modes + 1, 0.0);
  for (std::size_t m = 0; m <= modes; ++m) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double x = static_cast<double>(i) * dx;
      const double w = (i == 0 || i + 1 == n) ? 0.5 : 1.0;
      acc += w * phi[i] *
             std::cos(static_cast<double>(m) * std::numbers::pi * x / length);
    }
    coeff[m] = 2.0 * acc * dx / length;
  }

  std::vector<double> out(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) * dx;
    double v = 0.5 * coeff[0];
    for (std::size_t m = 1; m <= modes; ++m) {
      const double km = static_cast<double>(m) * std::numbers::pi / length;
      v += coeff[m] * std::exp(-d * km * km * t) * std::cos(km * x);
    }
    out[i] = v;
  }
  return out;
}

double profile_mean(std::span<const double> profile) {
  if (profile.size() < 2)
    throw std::invalid_argument("profile_mean: need >= 2 samples");
  double acc = 0.5 * (profile.front() + profile.back());
  for (std::size_t i = 1; i + 1 < profile.size(); ++i) acc += profile[i];
  return acc / static_cast<double>(profile.size() - 1);
}

}  // namespace dlm::models
