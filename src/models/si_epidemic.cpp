#include "models/si_epidemic.h"

#include <algorithm>
#include <stdexcept>

namespace dlm::models {

si_trace run_si(const graph::digraph& g, graph::node_id seed_node,
                const si_params& params, num::rng& rand) {
  if (seed_node >= g.node_count())
    throw std::out_of_range("run_si: bad seed node");
  if (params.steps < 1)
    throw std::invalid_argument("run_si: steps must be >= 1");
  if (params.beta < 0.0 || params.beta > 1.0)
    throw std::invalid_argument("run_si: beta must be in [0,1]");
  if (params.recovery < 0.0 || params.recovery > 1.0)
    throw std::invalid_argument("run_si: recovery must be in [0,1]");

  si_trace trace;
  trace.infected_at.assign(g.node_count(), -1);
  trace.total_infected.assign(static_cast<std::size_t>(params.steps), 0);

  trace.infected_at[seed_node] = 0;
  std::size_t ever_infected = 1;

  std::vector<graph::node_id> current_active{seed_node};

  for (int step = 0; step < params.steps; ++step) {
    std::vector<graph::node_id> newly;
    for (graph::node_id v : current_active) {
      for (graph::node_id f : g.predecessors(v)) {
        if (trace.infected_at[f] >= 0) continue;
        if (rand.bernoulli(params.beta)) {
          trace.infected_at[f] = step + 1;
          newly.push_back(f);
          ++ever_infected;
        }
      }
    }
    // SIS recovery: active nodes may leave the infectious pool (they stay
    // counted as "ever infected" — votes are permanent in the OSN analogy).
    if (params.recovery > 0.0) {
      std::vector<graph::node_id> still;
      still.reserve(current_active.size());
      for (graph::node_id v : current_active) {
        if (!rand.bernoulli(params.recovery)) still.push_back(v);
      }
      current_active = std::move(still);
    }
    for (graph::node_id v : newly) current_active.push_back(v);
    trace.total_infected[static_cast<std::size_t>(step)] = ever_infected;
  }
  return trace;
}

std::vector<std::vector<double>> si_density_by_distance(
    const si_trace& trace, const social::distance_partition& partition,
    int steps) {
  if (trace.infected_at.size() != partition.group_of.size())
    throw std::invalid_argument("si_density_by_distance: size mismatch");
  const int max_d = partition.max_distance();
  std::vector<std::vector<double>> density(
      static_cast<std::size_t>(max_d),
      std::vector<double>(static_cast<std::size_t>(steps), 0.0));

  // Histogram of infections per (group, step), then cumulative sum.
  std::vector<std::vector<std::size_t>> hist(
      static_cast<std::size_t>(max_d),
      std::vector<std::size_t>(static_cast<std::size_t>(steps) + 1, 0));
  for (std::size_t u = 0; u < trace.infected_at.size(); ++u) {
    const int x = partition.group_of[u];
    const int at = trace.infected_at[u];
    if (x < 1 || x > max_d || at < 0) continue;
    const int bucket = std::min(at, steps);
    ++hist[static_cast<std::size_t>(x - 1)][static_cast<std::size_t>(bucket)];
  }
  for (int x = 1; x <= max_d; ++x) {
    const auto size = static_cast<double>(
        partition.sizes[static_cast<std::size_t>(x)]);
    if (size == 0.0) continue;
    std::size_t acc = hist[static_cast<std::size_t>(x - 1)][0];
    for (int t = 1; t <= steps; ++t) {
      acc += hist[static_cast<std::size_t>(x - 1)][static_cast<std::size_t>(t)];
      density[static_cast<std::size_t>(x - 1)][static_cast<std::size_t>(t - 1)] =
          100.0 * static_cast<double>(acc) / size;
    }
  }
  return density;
}

}  // namespace dlm::models
