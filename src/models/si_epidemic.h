// SI epidemic baseline on the explicit follower graph.
//
// Related work the paper contrasts against (§IV: SIS-style epidemic
// models) spreads infection along graph edges only — no front-page /
// random-walk channel.  Running SI on the same graph and extracting the
// same density-by-distance surface shows what a purely link-driven model
// misses (e.g. it can never produce the hop-3 > hop-2 inversion of
// Fig. 3a).
#pragma once

#include <cstddef>
#include <vector>

#include "graph/digraph.h"
#include "numerics/rng.h"
#include "social/distance.h"

namespace dlm::models {

/// Parameters of the discrete-time SI process.
struct si_params {
  double beta = 0.02;     ///< P(infect one follower per step)
  int steps = 50;         ///< simulated steps ("hours")
  double recovery = 0.0;  ///< SIS: P(infected → susceptible per step)
};

/// Infection trace: which nodes were infected at (or before) each step.
struct si_trace {
  /// infected_at[v]: step at which v got infected, or -1 if never.
  std::vector<int> infected_at;
  /// total_infected[t]: cumulative infected count after step t (0-based).
  std::vector<std::size_t> total_infected;
};

/// Runs SI(S) from `seed_node`: each step, every infected node infects each
/// of its followers (graph predecessors — the people who see its votes)
/// independently with probability beta.  Deterministic in `rand`.
[[nodiscard]] si_trace run_si(const graph::digraph& g,
                              graph::node_id seed_node,
                              const si_params& params, num::rng& rand);

/// Density surface of an SI trace under a distance partition: value at
/// (x, t) = percentage of group x infected by step t (same shape as
/// social::density_field; rows are groups 1..max_distance, t = 1..steps).
[[nodiscard]] std::vector<std::vector<double>> si_density_by_distance(
    const si_trace& trace, const social::distance_partition& partition,
    int steps);

}  // namespace dlm::models
