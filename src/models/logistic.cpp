#include "models/logistic.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "numerics/optimize/nelder_mead.h"
#include "numerics/stats.h"

namespace dlm::models {

double logistic_solution(double n0, double r, double k, double t0, double t) {
  if (!(n0 > 0.0)) throw std::invalid_argument("logistic_solution: N0 must be > 0");
  if (!(k > 0.0)) throw std::invalid_argument("logistic_solution: K must be > 0");
  const double a = (k - n0) / n0;
  return k / (1.0 + a * std::exp(-r * (t - t0)));
}

double logistic_step(double n, double integrated_rate, double k) {
  if (!(k > 0.0)) throw std::invalid_argument("logistic_step: K must be > 0");
  if (n <= 0.0) return n;  // 0 is an equilibrium; negatives pass through
  const double growth = std::exp(integrated_rate);
  return k * n * growth / (k + n * (growth - 1.0));
}

logistic_fit fit_logistic(std::span<const double> t,
                          std::span<const double> n) {
  if (t.size() != n.size())
    throw std::invalid_argument("fit_logistic: size mismatch");
  if (t.size() < 3) throw std::invalid_argument("fit_logistic: need >= 3 samples");
  const double n_max = num::extent(n).max;
  if (!(n_max > 0.0))
    throw std::invalid_argument("fit_logistic: need a positive sample");

  const double t0 = t.front();
  // Heuristic start: K slightly above the max, N0 at the first positive
  // sample, r from the early doubling rate.
  double n0_guess = n.front() > 0.0 ? n.front() : 1e-3 * n_max;
  double k_guess = 1.1 * n_max;
  double r_guess = 0.5;
  for (std::size_t i = 1; i < n.size(); ++i) {
    if (n[i] > n0_guess && n[i] < 0.8 * k_guess && t[i] > t0) {
      r_guess = std::max(
          0.05, std::log(n[i] / n0_guess) / (t[i] - t0));
      break;
    }
  }

  const auto objective = [&](std::span<const double> p) {
    const double r = p[0];
    const double k = p[1];
    const double n0 = p[2];
    if (r <= 0.0 || k <= 0.0 || n0 <= 0.0 || n0 >= k) return 1e18;
    double acc = 0.0;
    for (std::size_t i = 0; i < t.size(); ++i) {
      const double pred = logistic_solution(n0, r, k, t0, t[i]);
      const double e = pred - n[i];
      acc += e * e;
    }
    return acc;
  };

  const double start[3] = {r_guess, k_guess, n0_guess};
  num::nelder_mead_options opt;
  opt.max_iterations = 4000;
  opt.initial_step = 0.25;
  const num::nelder_mead_result res =
      num::minimize_nelder_mead(objective, start, opt);

  logistic_fit fit;
  fit.r = res.x[0];
  fit.k = res.x[1];
  fit.n0 = res.x[2];
  fit.sse = res.f_value;
  return fit;
}

}  // namespace dlm::models
