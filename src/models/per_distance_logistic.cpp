#include "models/per_distance_logistic.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "models/logistic.h"
#include "numerics/quadrature.h"

namespace dlm::models {

per_distance_logistic::per_distance_logistic(std::vector<double> initial,
                                             double t0, double k, rate_fn rate)
    : per_distance_logistic(std::move(initial), t0, k,
                            std::vector<rate_fn>{std::move(rate)}) {}

per_distance_logistic::per_distance_logistic(std::vector<double> initial,
                                             double t0, double k,
                                             std::vector<rate_fn> rates)
    : initial_(std::move(initial)), t0_(t0), k_(k), rates_(std::move(rates)) {
  if (initial_.empty())
    throw std::invalid_argument("per_distance_logistic: empty initial profile");
  if (!(k_ > 0.0))
    throw std::invalid_argument("per_distance_logistic: K must be positive");
  if (rates_.empty())
    throw std::invalid_argument("per_distance_logistic: empty rate table");
  for (const rate_fn& rate : rates_) {
    if (!rate)
      throw std::invalid_argument(
          "per_distance_logistic: missing rate function");
  }
}

std::vector<double> per_distance_logistic::predict(double t,
                                                   int substeps) const {
  if (t < t0_)
    throw std::invalid_argument("per_distance_logistic: t before t0");
  if (substeps < 1)
    throw std::invalid_argument("per_distance_logistic: substeps must be >= 1");

  // The logistic ODE with time-varying rate is exactly solvable given the
  // integrated rate; one Simpson evaluation of ∫r per distinct rate
  // suffices (a single shared rate — the common case — integrates once).
  std::vector<double> integrated(rates_.size(), 0.0);
  if (t > t0_) {
    for (std::size_t i = 0; i < rates_.size(); ++i)
      integrated[i] = num::simpson(rates_[i], t0_, t,
                                   static_cast<std::size_t>(substeps));
  }
  std::vector<double> out(initial_.size());
  for (std::size_t x = 0; x < initial_.size(); ++x) {
    const double total_rate = integrated[std::min(x, rates_.size() - 1)];
    out[x] = logistic_step(initial_[x], total_rate, k_);
  }
  return out;
}

}  // namespace dlm::models
