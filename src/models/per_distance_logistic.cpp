#include "models/per_distance_logistic.h"

#include <stdexcept>

#include "models/logistic.h"
#include "numerics/quadrature.h"

namespace dlm::models {

per_distance_logistic::per_distance_logistic(std::vector<double> initial,
                                             double t0, double k, rate_fn rate)
    : initial_(std::move(initial)), t0_(t0), k_(k), rate_(std::move(rate)) {
  if (initial_.empty())
    throw std::invalid_argument("per_distance_logistic: empty initial profile");
  if (!(k_ > 0.0))
    throw std::invalid_argument("per_distance_logistic: K must be positive");
  if (!rate_)
    throw std::invalid_argument("per_distance_logistic: missing rate function");
}

std::vector<double> per_distance_logistic::predict(double t,
                                                   int substeps) const {
  if (t < t0_)
    throw std::invalid_argument("per_distance_logistic: t before t0");
  if (substeps < 1)
    throw std::invalid_argument("per_distance_logistic: substeps must be >= 1");

  // The logistic ODE with time-varying rate is exactly solvable given the
  // integrated rate; one Simpson evaluation of ∫r over [t0, t] suffices.
  const double total_rate =
      (t > t0_) ? num::simpson(rate_, t0_, t,
                               static_cast<std::size_t>(substeps))
                : 0.0;
  std::vector<double> out(initial_.size());
  for (std::size_t x = 0; x < initial_.size(); ++x)
    out[x] = logistic_step(initial_[x], total_rate, k_);
  return out;
}

}  // namespace dlm::models
