// Calibrated per-group density target curves.
//
// The real Digg 2009 crawl is unavailable (DESIGN.md §3), so the published
// density surfaces are regenerated from a parametric family fitted to the
// paper's figures: each distance group x follows a logistic growth with a
// time-decaying intrinsic rate and a capacity that relaxes from the DL
// model's K towards the group's observed saturation level S_x,
//
//   dI/dt = rate_mult_x · r(t) · I · (1 − I / K_x(t)),   I(1) = φ_x
//   K_x(t) = S_x + (K_model − S_x) · exp(−(t−1)/τ_K)
//   r(t)   = a · exp(−b (t−1)) + c                       (paper Eq. 7 family)
//
// Early on (t ≲ 5) the curve is DL-consistent (capacity ≈ K_model), which
// is what makes the paper's 6-hour prediction experiment work; at long
// horizons it saturates at S_x, matching Fig. 3/5.  `rate_mult_x` injects
// the per-group idiosyncrasies the paper observed (e.g. the slow
// interest-distance-5 group behind Table II's 40% accuracy row).
#pragma once

#include <cstddef>
#include <vector>

namespace dlm::digg {

/// Decaying growth-rate function r(t) = a·e^{−b(t−1)} + c (paper Eq. 7 is
/// a = 1.4, b = 1.5, c = 0.25).
struct growth_curve {
  double a = 1.4;
  double b = 1.5;
  double c = 0.25;

  [[nodiscard]] double operator()(double t) const;
};

/// Parameters of one distance group's target curve.
struct group_target {
  double initial = 1.0;     ///< φ_x: density (percent) at t = 1
  double saturation = 10.0; ///< S_x: density as t → ∞ (Fig. 3/5 plateau)
  double rate_mult = 1.0;   ///< group-specific multiplier on r(t)
  /// Interest-metric groups only: the group's density follows the story's
  /// total-votes clock raised to this power, density_g(t) = S_g·W(t)^γ
  /// (W = normalized cumulative votes).  γ = 1 tracks the story exactly;
  /// γ < 1 front-loads and slows later growth — the behaviour behind the
  /// paper's anomalous interest-distance-5 row (Table II).
  double clock_power = 1.0;
};

/// Parameters shared by all groups of one (story, metric) surface.
struct surface_params {
  growth_curve rate;        ///< story growth-rate function
  double k_model = 25.0;    ///< DL carrying capacity the early phase obeys
  double tau_k = 4.0;       ///< hours for K_x(t) to relax towards S_x
};

/// Density target curve for one group at hourly knots t = 1..horizon
/// (index 0 ↔ t = 1).  Integrated with RK4 at `substeps` per hour.
[[nodiscard]] std::vector<double> target_curve(const group_target& group,
                                               const surface_params& surface,
                                               int horizon_hours,
                                               int substeps = 32);

/// Full surface: one curve per group (same order as `groups`).
[[nodiscard]] std::vector<std::vector<double>> target_surface(
    const std::vector<group_target>& groups, const surface_params& surface,
    int horizon_hours, int substeps = 32);

/// Vote-time sampling helper: piecewise-linear cumulative curve over
/// [0, horizon] hours built from a target curve (density 0 at t = 0,
/// curve[k] at t = k+1).  `invert(u)` maps u ∈ [0, 1] to the vote time in
/// hours whose cumulative share of the final density equals u.
class vote_time_distribution {
 public:
  explicit vote_time_distribution(const std::vector<double>& curve);

  /// Hours offset of a vote given uniform u in [0, 1).
  [[nodiscard]] double invert(double u) const;

  /// Final (t = horizon) cumulative density the curve reaches.
  [[nodiscard]] double final_density() const { return knots_.back(); }

 private:
  std::vector<double> knots_;  ///< cumulative density at t = 0, 1, ..., horizon
};

}  // namespace dlm::digg
