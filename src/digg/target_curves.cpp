#include "digg/target_curves.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dlm::digg {

double growth_curve::operator()(double t) const {
  return a * std::exp(-b * (t - 1.0)) + c;
}

std::vector<double> target_curve(const group_target& group,
                                 const surface_params& surface,
                                 int horizon_hours, int substeps) {
  if (horizon_hours < 1)
    throw std::invalid_argument("target_curve: horizon must be >= 1");
  if (substeps < 1)
    throw std::invalid_argument("target_curve: substeps must be >= 1");
  if (group.initial < 0.0 || group.saturation <= 0.0)
    throw std::invalid_argument("target_curve: bad group levels");

  const auto capacity = [&](double t) {
    return group.saturation +
           (surface.k_model - group.saturation) *
               std::exp(-(t - 1.0) / surface.tau_k);
  };
  // Clamped at zero: once the relaxing capacity K_x(t) falls below the
  // current density the curve plateaus — cumulative vote counts can never
  // decrease.
  const auto rhs = [&](double t, double i) {
    const double k = capacity(t);
    const double v = group.rate_mult * surface.rate(t) * i * (1.0 - i / k);
    return v > 0.0 ? v : 0.0;
  };

  std::vector<double> curve(static_cast<std::size_t>(horizon_hours));
  double i_val = group.initial;
  curve[0] = i_val;
  const double h = 1.0 / static_cast<double>(substeps);
  for (int hour = 1; hour < horizon_hours; ++hour) {
    double t = static_cast<double>(hour);  // integrating [hour, hour+1]
    for (int s = 0; s < substeps; ++s) {
      const double k1 = rhs(t, i_val);
      const double k2 = rhs(t + 0.5 * h, i_val + 0.5 * h * k1);
      const double k3 = rhs(t + 0.5 * h, i_val + 0.5 * h * k2);
      const double k4 = rhs(t + h, i_val + h * k3);
      i_val += h / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4);
      t += h;
    }
    // Monotonize against numerical wiggle at the clamp boundary.
    i_val = std::max(i_val, curve[static_cast<std::size_t>(hour - 1)]);
    curve[static_cast<std::size_t>(hour)] = i_val;
  }
  return curve;
}

std::vector<std::vector<double>> target_surface(
    const std::vector<group_target>& groups, const surface_params& surface,
    int horizon_hours, int substeps) {
  std::vector<std::vector<double>> out;
  out.reserve(groups.size());
  for (const group_target& g : groups)
    out.push_back(target_curve(g, surface, horizon_hours, substeps));
  return out;
}

vote_time_distribution::vote_time_distribution(
    const std::vector<double>& curve) {
  if (curve.empty())
    throw std::invalid_argument("vote_time_distribution: empty curve");
  knots_.reserve(curve.size() + 1);
  knots_.push_back(0.0);
  double prev = 0.0;
  for (double v : curve) {
    if (v < prev)
      throw std::invalid_argument(
          "vote_time_distribution: curve must be non-decreasing");
    knots_.push_back(v);
    prev = v;
  }
  if (knots_.back() <= 0.0)
    throw std::invalid_argument("vote_time_distribution: curve is flat zero");
}

double vote_time_distribution::invert(double u) const {
  if (u < 0.0) u = 0.0;
  if (u >= 1.0) u = std::nextafter(1.0, 0.0);
  const double target = u * knots_.back();
  // Find the knot interval containing `target` (knots_ is non-decreasing).
  std::size_t hi = 1;
  while (hi < knots_.size() - 1 && knots_[hi] < target) ++hi;
  const double lo_v = knots_[hi - 1];
  const double hi_v = knots_[hi];
  const double frac = (hi_v > lo_v) ? (target - lo_v) / (hi_v - lo_v) : 1.0;
  return static_cast<double>(hi - 1) + frac;
}

}  // namespace dlm::digg
