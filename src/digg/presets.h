// Story presets calibrated to the paper's published surfaces.
//
// The paper demonstrates everything on four representative June-2009 Digg
// stories: s1 (most popular, 24,099 votes), s2 (8,521), s3 (5,988) and
// s4 (1,618).  Each preset encodes, per distance metric, the plateau
// densities, hour-1 densities and per-group rate multipliers read off
// Fig. 3 (hops), Fig. 5 (interests) and Fig. 7, plus the story's growth
// clock: popular stories stabilize by ~10 h, less popular ones by 20–30 h
// (paper §III.B observations).  See DESIGN.md §3 for why the dataset is
// synthetic and what the calibration preserves.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "digg/target_curves.h"
#include "graph/generators.h"

namespace dlm::digg {

/// Complete target description of one story.
struct story_preset {
  std::string name;
  std::size_t paper_votes = 0;  ///< vote count reported in the paper
  /// Hop-distance groups; index k describes distance k+1.  Stories define
  /// ten groups (the paper observes users out to hop 10 in Fig. 2).
  std::vector<group_target> hop_groups;
  surface_params hop_surface;
  /// Interest-distance groups; index k describes group k+1 of 5.
  std::vector<group_target> interest_groups;
  surface_params interest_surface;
  /// Initiator popularity: the story's submitter is the node holding this
  /// follower-count rank in the synthetic graph (0 = most followed).
  std::size_t initiator_rank = 0;
};

/// The paper's four representative stories.
[[nodiscard]] story_preset story_s1();
[[nodiscard]] story_preset story_s2();
[[nodiscard]] story_preset story_s3();
[[nodiscard]] story_preset story_s4();
[[nodiscard]] std::vector<story_preset> paper_stories();

/// Scenario: everything needed to synthesize the June-2009-like dataset.
struct scenario_config {
  graph::digg_graph_params graph{.users = 40000, .local_window = 120};
  std::uint64_t seed = 20090601;       ///< dataset collection month :-)
  int horizon_hours = 50;              ///< paper tracks 50 hours
  std::size_t background_stories = 300;///< corpus building vote histories
  std::size_t topic_clusters = 24;     ///< interest structure granularity
  double corpus_mean_activity = 8.0;   ///< mean background votes per user
  /// Share of a story's votes cast by users OUTSIDE the hop-reachable set
  /// (front-page-only voters).  Sizes the interest bins: the interest
  /// marginal totals are hop totals / (1 − share).
  double front_page_vote_share = 0.5;
  int max_hops = 10;                   ///< hop partition depth
  std::size_t interest_groups = 5;     ///< paper uses 5 interest bins
  std::vector<story_preset> stories = paper_stories();
};

/// Scenario scaled down for unit tests (small graph, fewer background
/// stories) while keeping every preset shape.
[[nodiscard]] scenario_config test_scale_scenario();

/// Scenario at the paper's population scale (139,409 voters).
[[nodiscard]] scenario_config paper_scale_scenario();

}  // namespace dlm::digg
