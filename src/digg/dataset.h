// Dataset serialization in the Digg-2009 release shape.
//
// Lerman's Digg 2009 release shipped two flat files: a vote table
// (timestamp, voter, story) and a friendship table (follower, followee).
// Synthetic datasets round-trip through the same shape so downstream
// tooling written for the original release would work unchanged.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/digraph.h"
#include "social/network.h"
#include "social/story.h"

namespace dlm::digg {

/// Writes the vote table as CSV: header "timestamp,user,story" then one
/// row per vote (story-major, time-ascending).
void write_votes_csv(std::ostream& out, const social::social_network& net);

/// Writes the friendship table as CSV: header "follower,followee".
void write_friends_csv(std::ostream& out, const social::social_network& net);

/// Parsed vote table.
struct vote_table {
  std::vector<social::vote> votes;
  std::size_t max_user = 0;   ///< largest user id seen
  std::size_t max_story = 0;  ///< largest story id seen
};

/// Reads a votes CSV produced by `write_votes_csv` (or hand-made in the
/// same format).  Throws std::runtime_error on malformed rows.
[[nodiscard]] vote_table read_votes_csv(std::istream& in);

/// Reads a friendship CSV into a digraph with `n_users` nodes.
[[nodiscard]] graph::digraph read_friends_csv(std::istream& in,
                                              std::size_t n_users);

/// Writes both tables under `directory` as votes.csv / friends.csv.
void save_dataset(const std::string& directory,
                  const social::social_network& net);

/// Loads a dataset saved by `save_dataset`; `n_stories` of the resulting
/// network is max_story + 1.
[[nodiscard]] social::social_network load_dataset(const std::string& directory);

}  // namespace dlm::digg
