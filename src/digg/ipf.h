// Iterative proportional fitting (IPF) of joint vote probabilities.
//
// One vote stream must induce TWO density surfaces at once: the paper
// evaluates the same story s1 under friendship-hop distance (Fig. 3a,
// Table I) and shared-interest distance (Fig. 5a, Table II).  Users sit in
// a (hop group h, interest group g) contingency table; IPF finds per-cell
// vote probabilities p[h][g] whose row marginals hit the hop targets and
// whose column marginals hit the interest targets simultaneously.
#pragma once

#include <cstddef>
#include <vector>

namespace dlm::digg {

/// Result of the probability-raking run.
struct ipf_result {
  /// p[h][g]: probability that a user in cell (h, g) eventually votes.
  std::vector<std::vector<double>> probability;
  std::size_t iterations = 0;
  double max_marginal_error = 0.0;  ///< worst relative miss on any marginal
  bool converged = false;
};

/// Computes cell vote probabilities.
///
/// `cell_count[h][g]` — users in each cell (H×G, rectangular).
/// `row_target[h]`    — expected voters among row h (0 ≤ target ≤ row size).
/// `col_target[g]`    — expected voters among column g.
/// The column targets are always rescaled to the row total before fitting
/// (a joint distribution can only honor one grand total); `total_tolerance`
/// bounds how large that rescaling may be before the inputs are considered
/// irreconcilable and rejected.  Probabilities are clamped to [0, 1];
/// clamping makes exact fitting impossible in extreme cases, so check
/// `max_marginal_error`.
[[nodiscard]] ipf_result fit_vote_probabilities(
    const std::vector<std::vector<std::size_t>>& cell_count,
    const std::vector<double>& row_target,
    const std::vector<double>& col_target, std::size_t max_iterations = 200,
    double tolerance = 1e-9, double total_tolerance = 4.0);

}  // namespace dlm::digg
