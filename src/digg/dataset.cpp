#include "digg/dataset.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dlm::digg {

void write_votes_csv(std::ostream& out, const social::social_network& net) {
  out << "timestamp,user,story\n";
  for (social::story_id s = 0; s < net.story_count(); ++s) {
    for (const social::vote& v : net.votes_for(s))
      out << v.time << "," << v.user << "," << v.story << "\n";
  }
  if (!out) throw std::runtime_error("write_votes_csv: stream failure");
}

void write_friends_csv(std::ostream& out, const social::social_network& net) {
  out << "follower,followee\n";
  const graph::digraph& g = net.followers();
  for (graph::node_id v = 0; v < g.node_count(); ++v) {
    for (graph::node_id w : g.successors(v)) out << v << "," << w << "\n";
  }
  if (!out) throw std::runtime_error("write_friends_csv: stream failure");
}

vote_table read_votes_csv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != "timestamp,user,story")
    throw std::runtime_error("read_votes_csv: bad header");
  vote_table table;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream row(line);
    std::uint64_t ts = 0;
    std::uint64_t user = 0;
    std::uint64_t story = 0;
    char c1 = 0, c2 = 0;
    if (!(row >> ts >> c1 >> user >> c2 >> story) || c1 != ',' || c2 != ',')
      throw std::runtime_error("read_votes_csv: malformed row at line " +
                               std::to_string(line_no));
    table.votes.push_back({static_cast<social::user_id>(user),
                           static_cast<social::story_id>(story), ts});
    table.max_user = std::max<std::size_t>(table.max_user, user);
    table.max_story = std::max<std::size_t>(table.max_story, story);
  }
  return table;
}

graph::digraph read_friends_csv(std::istream& in, std::size_t n_users) {
  std::string line;
  if (!std::getline(in, line) || line != "follower,followee")
    throw std::runtime_error("read_friends_csv: bad header");
  graph::digraph_builder builder(n_users);
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream row(line);
    std::uint64_t a = 0, b = 0;
    char comma = 0;
    if (!(row >> a >> comma >> b) || comma != ',')
      throw std::runtime_error("read_friends_csv: malformed row at line " +
                               std::to_string(line_no));
    builder.add_edge(static_cast<graph::node_id>(a),
                     static_cast<graph::node_id>(b));
  }
  return builder.build();
}

void save_dataset(const std::string& directory,
                  const social::social_network& net) {
  std::filesystem::create_directories(directory);
  {
    std::ofstream votes(directory + "/votes.csv");
    if (!votes) throw std::runtime_error("save_dataset: cannot open votes.csv");
    write_votes_csv(votes, net);
  }
  {
    std::ofstream friends(directory + "/friends.csv");
    if (!friends)
      throw std::runtime_error("save_dataset: cannot open friends.csv");
    write_friends_csv(friends, net);
  }
}

social::social_network load_dataset(const std::string& directory) {
  std::ifstream votes_file(directory + "/votes.csv");
  if (!votes_file)
    throw std::runtime_error("load_dataset: cannot open votes.csv");
  const vote_table table = read_votes_csv(votes_file);

  std::ifstream friends_file(directory + "/friends.csv");
  if (!friends_file)
    throw std::runtime_error("load_dataset: cannot open friends.csv");

  // Users present only in the friendship table still need node slots; scan
  // the friends file for its max id first.
  std::string header;
  std::getline(friends_file, header);
  std::size_t max_user = table.max_user;
  {
    std::string line;
    while (std::getline(friends_file, line)) {
      if (line.empty()) continue;
      std::istringstream row(line);
      std::uint64_t a = 0, b = 0;
      char comma = 0;
      if (row >> a >> comma >> b) {
        max_user = std::max<std::size_t>(max_user, std::max(a, b));
      }
    }
  }
  friends_file.clear();
  friends_file.seekg(0);
  graph::digraph g = read_friends_csv(friends_file, max_user + 1);

  social::social_network_builder builder(std::move(g), table.max_story + 1);
  for (const social::vote& v : table.votes)
    builder.add_vote(v.user, v.story, v.time);
  return builder.build();
}

}  // namespace dlm::digg
