#include "digg/simulator.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>
#include <unordered_set>

#include "digg/ipf.h"
#include "digg/target_curves.h"
#include "graph/generators.h"
#include "social/interest.h"

namespace dlm::digg {
namespace {

using social::story_id;
using social::timestamp;
using social::user_id;
using social::vote;

constexpr double seconds_per_hour_d = 3600.0;

/// Ranks nodes by follower count (in-degree) and returns the node holding
/// `rank` (0 = most followed).
user_id node_at_follower_rank(const graph::digraph& g, std::size_t rank) {
  std::vector<std::pair<std::size_t, user_id>> by_followers;
  by_followers.reserve(g.node_count());
  for (graph::node_id v = 0; v < g.node_count(); ++v)
    by_followers.emplace_back(g.in_degree(v), v);
  std::sort(by_followers.begin(), by_followers.end(), [](auto& a, auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  rank = std::min(rank, by_followers.size() - 1);
  return by_followers[rank].second;
}

/// Expected-voter marginal target curves for one surface: per group, the
/// expected cumulative voters at every hour (target density × group size).
/// targets[x][t-1] for group x (index 0 unused, empty).
std::vector<std::vector<double>> marginal_target_curves(
    const std::vector<group_target>& groups, const surface_params& surface,
    int horizon, const std::vector<std::size_t>& sizes, std::size_t n_groups) {
  std::vector<std::vector<double>> targets(n_groups + 1);
  for (std::size_t x = 1; x <= n_groups; ++x) {
    if (x - 1 >= groups.size() || x >= sizes.size() || sizes[x] == 0) continue;
    std::vector<double> curve = target_curve(groups[x - 1], surface, horizon);
    for (double& v : curve) v *= static_cast<double>(sizes[x]) / 100.0;
    targets[x] = std::move(curve);
  }
  return targets;
}

/// Interest partition with calibrated bin edges.
///
/// Both distance metrics slice the SAME vote stream, so the grand totals
/// must agree: Σ_g S_g·n_g(edges) ≈ Σ_h (hop targets) = expected story
/// votes.  The paper never specifies its "interest ranges", so the edges
/// are a free calibration knob: starting from equal-width bins over the
/// robust distance range, the inner bins are stretched by a factor α
/// (bisected) until the identity holds.
social::distance_partition calibrated_interest_partition(
    const std::vector<double>& distances, user_id initiator,
    const story_preset& preset, int /*horizon*/, double rows_total,
    std::size_t n_groups) {
  // Robust distance range (0.5th percentile .. max) over non-source users.
  std::vector<double> sorted;
  sorted.reserve(distances.size());
  for (user_id u = 0; u < distances.size(); ++u) {
    if (u != initiator) sorted.push_back(distances[u]);
  }
  std::sort(sorted.begin(), sorted.end());
  const double lo = sorted[static_cast<std::size_t>(
      0.005 * static_cast<double>(sorted.size() - 1))];
  const double hi = sorted.back();

  // Saturation levels per group (fraction of the group that ever votes).
  std::vector<double> level(n_groups, 0.0);
  for (std::size_t g = 0; g < n_groups && g < preset.interest_groups.size();
       ++g) {
    level[g] = preset.interest_groups[g].saturation / 100.0;
  }

  // Power-law warp keeps all bins non-degenerate: β = 1 is equal width,
  // β > 1 widens the inner (high-affinity) bins.
  const auto edges_for = [&](double beta) {
    std::vector<double> edges(n_groups);
    for (std::size_t k = 0; k < n_groups; ++k) {
      const double frac = std::pow(
          static_cast<double>(k + 1) / static_cast<double>(n_groups),
          1.0 / beta);
      edges[k] = lo + (hi - lo) * frac;
    }
    edges.back() = std::max(edges.back(), hi);
    return edges;
  };
  const auto total_for = [&](double alpha) {
    const social::interest_grouping grouping =
        social::group_distances_with_edges(distances, initiator,
                                           edges_for(alpha));
    double total = 0.0;
    for (std::size_t g = 1; g <= n_groups; ++g)
      total += level[g - 1] * static_cast<double>(grouping.sizes[g]);
    return total;
  };

  // Bisect the smallest warp β whose total reaches the hop total (the
  // total is non-decreasing in β: wider inner bins shift users into
  // higher-propensity groups).
  double a_lo = 0.3, a_hi = 10.0;
  if (total_for(a_hi) < rows_total) {
    a_lo = a_hi;  // cannot reach: take the widest bins, IPF rescales rest
  } else {
    for (int it = 0; it < 48; ++it) {
      const double mid = 0.5 * (a_lo + a_hi);
      if (total_for(mid) >= rows_total) {
        a_hi = mid;
      } else {
        a_lo = mid;
      }
    }
    a_lo = a_hi;
  }

  const social::interest_grouping grouping =
      social::group_distances_with_edges(distances, initiator,
                                         edges_for(a_lo));
  social::distance_partition part;
  part.metric = social::distance_metric::shared_interests;
  part.group_of = grouping.group_of;
  part.sizes = grouping.sizes;
  return part;
}

/// Samples votes for one flagship story so the realized density surfaces
/// match the preset's targets under both metrics: IPF for the eventual
/// vote probabilities, stratified (low-noise) sampling of voters and vote
/// times, hop-group time distributions taking priority (the hop metric
/// carries the paper's headline experiments).
std::vector<vote> sample_flagship_story(
    const story_preset& preset, story_id story, user_id initiator,
    timestamp submit, const social::distance_partition& hops,
    const social::distance_partition& interests, int horizon,
    num::rng& rand) {
  const std::size_t n_users = hops.group_of.size();
  const int max_hop = std::min<int>(hops.max_distance(),
                                    static_cast<int>(preset.hop_groups.size()));
  const int max_int =
      std::min<int>(interests.max_distance(),
                    static_cast<int>(preset.interest_groups.size()));
  if (max_hop < 1 || max_int < 1)
    throw std::invalid_argument("sample_flagship_story: degenerate partitions");

  // --- Contingency table: rows = hop group (0 = outside the modelled hop
  // range, incl. unreachable users), cols = interest group 1..max_int.
  const auto rows = static_cast<std::size_t>(max_hop) + 1;
  const auto cols = static_cast<std::size_t>(max_int);
  std::vector<std::vector<std::size_t>> cell(rows,
                                             std::vector<std::size_t>(cols, 0));
  std::vector<std::vector<std::vector<user_id>>> members(
      rows, std::vector<std::vector<user_id>>(cols));
  const auto row_of = [&](user_id u) -> int {
    const int h = hops.group_of[u];
    return (h >= 1 && h <= max_hop) ? h : 0;
  };
  for (user_id u = 0; u < n_users; ++u) {
    if (u == initiator) continue;
    const int g = interests.group_of[u];
    if (g < 1 || g > max_int) continue;
    const auto r = static_cast<std::size_t>(row_of(u));
    const auto c = static_cast<std::size_t>(g - 1);
    ++cell[r][c];
    members[r][c].push_back(u);
  }

  // --- Marginal target curves (expected cumulative voters per hour).
  const std::vector<std::vector<double>> hop_curves = marginal_target_curves(
      preset.hop_groups, preset.hop_surface, horizon, hops.sizes,
      static_cast<std::size_t>(max_hop));

  // Interest columns follow the story's total-votes clock (the hop side)
  // raised to the group's clock_power: the same events sliced two ways
  // must share one grand total at EVERY hour, and W(t)^γ injects the
  // per-group idiosyncrasies (γ < 1 ⇒ front-loaded, slow late growth —
  // Table II's anomalous distance-5 row).
  std::vector<double> clock(static_cast<std::size_t>(horizon), 0.0);
  for (const auto& curve : hop_curves) {
    for (std::size_t t = 0; t < curve.size(); ++t) clock[t] += curve[t];
  }
  if (clock.back() <= 0.0)
    throw std::invalid_argument("sample_flagship_story: empty hop targets");
  for (double& v : clock) v /= clock[clock.size() - 1];

  std::vector<std::vector<double>> int_curves(
      static_cast<std::size_t>(max_int) + 1);
  for (int g = 1; g <= max_int; ++g) {
    const group_target& target =
        preset.interest_groups[static_cast<std::size_t>(g - 1)];
    const auto size =
        static_cast<double>(interests.sizes[static_cast<std::size_t>(g)]);
    if (size == 0.0) continue;
    std::vector<double> curve(static_cast<std::size_t>(horizon));
    for (std::size_t t = 0; t < curve.size(); ++t)
      curve[t] = size * target.saturation / 100.0 *
                 std::pow(clock[t], target.clock_power);
    int_curves[static_cast<std::size_t>(g)] = std::move(curve);
  }

  std::size_t outside_users = 0;
  for (std::size_t g = 0; g < cols; ++g) outside_users += cell[0][g];

  // --- Hourly IPF: at every hour t, rake the expected cumulative-votes
  // table V[h][g](t) so BOTH marginals' time profiles hold at once.  The
  // same story sliced by hops and by interests shows different growth
  // clocks in the real data purely through cross-correlations (who votes
  // early); hourly raking reproduces exactly that.  Row 0 ("outside the
  // modelled hop range") absorbs the grand-total imbalance; when the
  // interest total undershoots, interest targets are rescaled up
  // (shape preserved — DESIGN.md §3).
  const auto h_idx = [](int t) { return static_cast<std::size_t>(t - 1); };
  std::vector<std::vector<std::vector<double>>> cumulative(
      static_cast<std::size_t>(horizon),
      std::vector<std::vector<double>>(rows, std::vector<double>(cols, 0.0)));
  for (int t = 1; t <= horizon; ++t) {
    std::vector<double> row_target(rows, 0.0);
    double in_rows_total = 0.0;
    for (int h = 1; h <= max_hop; ++h) {
      const auto& curve = hop_curves[static_cast<std::size_t>(h)];
      if (!curve.empty()) {
        row_target[static_cast<std::size_t>(h)] = curve[h_idx(t)];
        in_rows_total += curve[h_idx(t)];
      }
    }
    std::vector<double> col_target(cols, 0.0);
    double col_total = 0.0;
    for (int g = 1; g <= max_int; ++g) {
      const auto& curve = int_curves[static_cast<std::size_t>(g)];
      if (!curve.empty()) {
        col_target[static_cast<std::size_t>(g - 1)] = curve[h_idx(t)];
        col_total += curve[h_idx(t)];
      }
    }
    double outside = col_total - in_rows_total;
    if (outside < 0.0 && col_total > 0.0) {
      const double scale = in_rows_total / col_total;
      for (double& v : col_target) v *= scale;
      outside = 0.0;
    }
    row_target[0] = std::min(outside, static_cast<double>(outside_users));

    ipf_result ipf = fit_vote_probabilities(cell, row_target, col_target,
                                            /*max_iterations=*/300,
                                            /*tolerance=*/1e-8,
                                            /*total_tolerance=*/20.0);
    // Row-exact rebalance: the hop marginals carry the headline tables.
    for (std::size_t h = 0; h < rows; ++h) {
      double expected = 0.0;
      for (std::size_t g = 0; g < cols; ++g)
        expected += ipf.probability[h][g] * static_cast<double>(cell[h][g]);
      if (expected <= 0.0) continue;
      const double factor = row_target[h] / expected;
      for (std::size_t g = 0; g < cols; ++g)
        ipf.probability[h][g] =
            std::clamp(ipf.probability[h][g] * factor, 0.0, 1.0);
    }
    for (std::size_t h = 0; h < rows; ++h) {
      for (std::size_t g = 0; g < cols; ++g) {
        double v = ipf.probability[h][g] * static_cast<double>(cell[h][g]);
        // Cumulative votes cannot decrease hour over hour.
        if (t > 1) v = std::max(v, cumulative[h_idx(t) - 1][h][g]);
        cumulative[h_idx(t)][h][g] = std::min(v, static_cast<double>(cell[h][g]));
      }
    }
  }

  // --- Stratified sampling: per cell, a deterministic voter count (the
  // rounded expectation at the horizon) and stratified time quantiles
  // drawn from the cell's own raked cumulative curve.  This suppresses
  // the binomial noise that would otherwise swamp the accuracy tables for
  // groups of a few hundred users; *which* users vote stays random.
  std::vector<vote> votes;
  votes.push_back({initiator, story, submit});
  std::vector<double> cell_curve(static_cast<std::size_t>(horizon));
  for (std::size_t h = 0; h < rows; ++h) {
    double carry = 0.0;  // per-row rounding carry keeps row totals exact
    for (std::size_t g = 0; g < cols; ++g) {
      const std::size_t n_cell = cell[h][g];
      if (n_cell == 0) continue;
      for (int t = 1; t <= horizon; ++t)
        cell_curve[h_idx(t)] = cumulative[h_idx(t)][h][g];
      const double expected = cell_curve.back() + carry;
      auto m = static_cast<std::size_t>(std::llround(expected));
      m = std::min(m, n_cell);
      carry = expected - static_cast<double>(m);
      if (m == 0) continue;

      const std::vector<std::size_t> picks =
          rand.sample_without_replacement(n_cell, m);
      const vote_time_distribution dist(cell_curve);

      // Stratified quantiles in shuffled order: the k-th voter lands in
      // stratum k of the cell's cumulative curve.
      std::vector<double> quantiles(m);
      for (std::size_t k = 0; k < m; ++k)
        quantiles[k] = (static_cast<double>(k) + rand.uniform()) /
                       static_cast<double>(m);
      rand.shuffle(quantiles);

      for (std::size_t k = 0; k < m; ++k) {
        const user_id u = members[h][g][picks[k]];
        const double tau = dist.invert(quantiles[k]);
        // At least one second after submission: the initiator is always
        // strictly the first voter.
        const auto offset = std::max<timestamp>(
            1, static_cast<timestamp>(std::llround(tau * seconds_per_hour_d)));
        votes.push_back({u, story, submit + offset});
      }
    }
  }
  return votes;
}

}  // namespace

topic_model make_topic_model(std::size_t users, std::size_t clusters,
                             num::rng& rand) {
  if (clusters == 0)
    throw std::invalid_argument("make_topic_model: clusters == 0");
  topic_model model;
  model.clusters = clusters;
  model.memberships.resize(users);
  for (std::size_t u = 0; u < users; ++u) {
    const std::size_t count = 1 + rand.index(3);  // 1..3 clusters
    std::unordered_set<std::uint32_t> chosen;
    while (chosen.size() < std::min(count, clusters))
      chosen.insert(static_cast<std::uint32_t>(rand.index(clusters)));
    model.memberships[u].assign(chosen.begin(), chosen.end());
    std::sort(model.memberships[u].begin(), model.memberships[u].end());
  }
  return model;
}

std::vector<vote> background_corpus(const topic_model& topics,
                                    std::size_t n_stories,
                                    story_id first_story, num::rng& rand) {
  return background_corpus(topics, n_stories, first_story, {}, 0, rand);
}

std::vector<vote> background_corpus(const topic_model& topics,
                                    std::size_t n_stories,
                                    story_id first_story,
                                    std::span<const user_id> vips,
                                    std::size_t vip_min_history,
                                    num::rng& rand) {
  return background_corpus(topics, n_stories, first_story, vips,
                           vip_min_history, corpus_params{}, rand);
}

std::vector<vote> background_corpus(const topic_model& topics,
                                    std::size_t n_stories,
                                    story_id first_story,
                                    std::span<const user_id> vips,
                                    std::size_t vip_min_history,
                                    const corpus_params& params,
                                    num::rng& rand) {
  const std::size_t users = topics.memberships.size();
  if (users == 0) return {};

  // Cluster → member list and per-user activity (heavy-tailed: a few
  // dedicated diggers vote on a lot, matching crawled OSN behaviour).
  std::vector<std::vector<user_id>> members(topics.clusters);
  for (std::size_t u = 0; u < users; ++u) {
    for (std::uint32_t c : topics.memberships[u])
      members[c].push_back(static_cast<user_id>(u));
  }
  std::vector<double> activity(users);
  for (std::size_t u = 0; u < users; ++u)
    activity[u] = std::min(rand.pareto(1.0, 1.4), 60.0);

  // Story → cluster assignment (round-robin keeps clusters balanced) and
  // submission times across the collection month.
  const timestamp month_seconds = 30ull * 24 * 3600;
  std::vector<std::size_t> story_cluster(n_stories);
  std::vector<timestamp> story_submit(n_stories);
  std::vector<std::vector<story_id>> cluster_stories(topics.clusters);
  for (std::size_t s = 0; s < n_stories; ++s) {
    story_cluster[s] = (s + rand.index(topics.clusters)) % topics.clusters;
    story_submit[s] = static_cast<timestamp>(
        rand.uniform(0.0, static_cast<double>(month_seconds)));
    cluster_stories[story_cluster[s]].push_back(
        static_cast<story_id>(first_story + s));
  }

  // Total corpus volume: dense enough that same-cluster users share a
  // substantial fraction of their histories — otherwise every Jaccard
  // distance collapses to ≈1 and the shared-interest metric is useless.
  const double total_votes =
      static_cast<double>(users) * params.mean_user_activity;
  std::vector<double> story_weight(n_stories);
  double weight_sum = 0.0;
  for (std::size_t s = 0; s < n_stories; ++s) {
    story_weight[s] = std::min(rand.pareto(1.0, 1.1), 40.0);
    weight_sum += story_weight[s];
  }

  std::vector<vote> votes;
  votes.reserve(static_cast<std::size_t>(total_votes));
  for (std::size_t s = 0; s < n_stories; ++s) {
    const auto story = static_cast<story_id>(first_story + s);
    const std::size_t cluster = story_cluster[s];
    if (members[cluster].empty()) continue;

    const auto target_votes = static_cast<std::size_t>(
        std::min(total_votes * story_weight[s] / weight_sum,
                 0.9 * static_cast<double>(members[cluster].size())));

    // Activity-weighted voters from the topic cluster, uniform front-page
    // browsers otherwise.
    std::vector<double> weights;
    weights.reserve(members[cluster].size());
    for (user_id u : members[cluster]) weights.push_back(activity[u]);

    for (std::size_t k = 0; k < target_votes; ++k) {
      const user_id u =
          rand.bernoulli(params.cluster_affinity)
              ? members[cluster][rand.weighted_index(weights)]
              : static_cast<user_id>(rand.index(users));
      const auto offset = static_cast<timestamp>(
          rand.uniform(0.0, 72.0) * seconds_per_hour_d);
      votes.push_back({u, story, story_submit[s] + offset});
    }
  }

  // VIP guarantee: flagship initiators need a substantial vote history or
  // shared-interest distance to them is meaningless.
  for (user_id vip : vips) {
    if (vip >= users) continue;
    std::vector<story_id> candidates;
    for (std::uint32_t c : topics.memberships[vip]) {
      candidates.insert(candidates.end(), cluster_stories[c].begin(),
                        cluster_stories[c].end());
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    rand.shuffle(candidates);
    const std::size_t take = std::min(vip_min_history, candidates.size());
    for (std::size_t k = 0; k < take; ++k) {
      const auto offset = static_cast<timestamp>(
          rand.uniform(0.0, 72.0) * seconds_per_hour_d);
      const auto idx = static_cast<std::size_t>(candidates[k] - first_story);
      votes.push_back({vip, candidates[k], story_submit[idx] + offset});
    }
  }
  return votes;
}

digg_dataset make_dataset(const scenario_config& config) {
  num::rng rand(config.seed);

  // 1. Follower graph.
  graph::digraph followers = graph::digg_follower_graph(config.graph, rand);
  const std::size_t users = followers.node_count();
  const std::size_t n_flagship = config.stories.size();
  const std::size_t n_stories = n_flagship + config.background_stories;

  // 2. Flagship initiators (needed before the corpus: they get VIP vote
  // histories so interest distance to them is informative).
  std::vector<user_id> initiators;
  initiators.reserve(n_flagship);
  for (const story_preset& preset : config.stories)
    initiators.push_back(
        node_at_follower_rank(followers, preset.initiator_rank));

  // 3. Background corpus → vote histories / interest profiles.
  const topic_model topics =
      make_topic_model(users, config.topic_clusters, rand);
  const std::size_t vip_history =
      std::max<std::size_t>(10, config.background_stories / 12);
  corpus_params corpus;
  corpus.mean_user_activity = config.corpus_mean_activity;
  std::vector<vote> bg_votes = background_corpus(
      topics, config.background_stories, static_cast<story_id>(n_flagship),
      initiators, vip_history, corpus, rand);

  // Background-only network for computing interest partitions (the
  // flagship votes must not influence the grouping they are sampled from).
  social::social_network_builder bg_builder(followers, n_stories);
  for (const vote& v : bg_votes) bg_builder.add_vote(v.user, v.story, v.time);
  social::social_network bg_net = bg_builder.build();

  // 4. Flagship stories.
  digg_dataset out{
      social::social_network(graph::digraph(1), {}, 0), {}, {}, {}, {}, config};
  std::vector<vote> all_votes = std::move(bg_votes);

  const timestamp base_submit = 7ull * 24 * 3600;  // one week into the month
  for (std::size_t s = 0; s < n_flagship; ++s) {
    const story_preset& preset = config.stories[s];
    const auto story = static_cast<story_id>(s);
    const user_id initiator = initiators[s];

    social::distance_partition hops = social::partition_by_hops(
        bg_net, initiator, config.max_hops);

    // Expected story votes implied by the hop targets — the interest bin
    // edges are calibrated against this total (see
    // calibrated_interest_partition).
    const int max_hop = std::min<int>(
        hops.max_distance(), static_cast<int>(preset.hop_groups.size()));
    const std::vector<std::vector<double>> hop_curves = marginal_target_curves(
        preset.hop_groups, preset.hop_surface, config.horizon_hours,
        hops.sizes, static_cast<std::size_t>(max_hop));
    double rows_total = 0.0;
    for (const auto& curve : hop_curves) {
      if (!curve.empty()) rows_total += curve.back();
    }

    // Interest groups cover everyone (incl. front-page-only voters), so
    // their total is the hop total grossed up by the front-page share.
    const double share = std::clamp(config.front_page_vote_share, 0.0, 0.95);
    const double interest_total = rows_total / (1.0 - share);

    const std::vector<double> idistances =
        social::interest_distances_from(bg_net, initiator);
    social::distance_partition interests = calibrated_interest_partition(
        idistances, initiator, preset, config.horizon_hours, interest_total,
        config.interest_groups);

    const timestamp submit =
        base_submit + static_cast<timestamp>(s) * 36ull * 3600;
    std::vector<vote> story_votes = sample_flagship_story(
        preset, story, initiator, submit, hops, interests,
        config.horizon_hours, rand);

    all_votes.insert(all_votes.end(), story_votes.begin(), story_votes.end());
    out.flagship_ids.push_back(story);
    out.initiators.push_back(initiator);
    out.hop_partitions.push_back(std::move(hops));
    out.interest_partitions.push_back(std::move(interests));
  }

  // 5. Final network with every vote.
  social::social_network_builder builder(std::move(followers), n_stories);
  for (const vote& v : all_votes) builder.add_vote(v.user, v.story, v.time);
  out.network = builder.build();
  return out;
}

std::vector<vote> simulate_cascade(const graph::digraph& g,
                                   user_id initiator, story_id story,
                                   timestamp submit,
                                   const cascade_params& params,
                                   num::rng& rand) {
  if (initiator >= g.node_count())
    throw std::out_of_range("simulate_cascade: bad initiator");
  if (params.horizon_hours < 1)
    throw std::invalid_argument("simulate_cascade: horizon must be >= 1");

  const double horizon = static_cast<double>(params.horizon_hours);
  std::vector<bool> voted(g.node_count(), false);
  std::vector<bool> scheduled(g.node_count(), false);

  struct pending {
    double time_h;
    user_id user;
    bool operator>(const pending& other) const { return time_h > other.time_h; }
  };
  std::priority_queue<pending, std::vector<pending>, std::greater<>> queue;

  std::vector<vote> votes;
  bool promoted = false;

  const auto cast_vote = [&](user_id u, double t_h) {
    voted[u] = true;
    votes.push_back({u, story,
                     submit + static_cast<timestamp>(
                                  std::llround(t_h * seconds_per_hour_d))});
    // Channel 1: expose u's followers (paper: "after a user votes for a
    // news, all his followers are able to see and vote on the news").
    for (graph::node_id f : g.predecessors(u)) {
      if (voted[f] || scheduled[f]) continue;
      if (!rand.bernoulli(params.p_follow)) continue;
      const double delay = rand.exponential(params.response_rate);
      if (t_h + delay >= horizon) continue;
      scheduled[f] = true;
      queue.push({t_h + delay, f});
    }
  };

  cast_vote(initiator, 0.0);

  // Channel 2 bookkeeping: front-page arrivals start at promotion time.
  double promote_time = -1.0;
  const auto maybe_promote = [&](double now) {
    if (!promoted && votes.size() >= params.promote_threshold) {
      promoted = true;
      promote_time = now;
    }
  };
  maybe_promote(0.0);

  std::vector<double> arrivals;  // absolute hours, ascending
  std::size_t arrival_cursor = 0;
  bool arrivals_generated = false;

  const auto generate_arrivals = [&]() {
    // Inhomogeneous Poisson with rate λ(t) = rate · e^{−(t−t0)/decay} on
    // [t0, horizon] via inversion of the integrated rate.
    const double t0 = promote_time;
    const double mass =
        1.0 - std::exp(-(horizon - t0) / params.front_page_decay);
    const double expected =
        params.front_page_rate * params.front_page_decay * mass;
    const std::uint64_t n = rand.poisson(expected);
    arrivals.reserve(n);
    for (std::uint64_t k = 0; k < n; ++k) {
      const double u = rand.uniform();
      arrivals.push_back(t0 - params.front_page_decay *
                                  std::log(1.0 - u * mass));
    }
    std::sort(arrivals.begin(), arrivals.end());
  };

  while (true) {
    if (promoted && !arrivals_generated) {
      generate_arrivals();
      arrivals_generated = true;
    }
    const bool has_cascade = !queue.empty();
    const bool has_arrival = arrival_cursor < arrivals.size();
    if (!has_cascade && !has_arrival) break;

    const double cascade_t = has_cascade ? queue.top().time_h : horizon + 1.0;
    const double arrival_t =
        has_arrival ? arrivals[arrival_cursor] : horizon + 1.0;

    if (cascade_t <= arrival_t) {
      const pending p = queue.top();
      queue.pop();
      if (p.time_h >= horizon) continue;
      if (!voted[p.user]) cast_vote(p.user, p.time_h);
      maybe_promote(p.time_h);
    } else {
      ++arrival_cursor;
      if (arrival_t >= horizon) continue;
      const auto visitor = static_cast<user_id>(rand.index(g.node_count()));
      if (!voted[visitor] && rand.bernoulli(params.p_random)) {
        cast_vote(visitor, arrival_t);
        maybe_promote(arrival_t);
      }
    }
  }

  std::sort(votes.begin(), votes.end(), [](const vote& a, const vote& b) {
    return a.time < b.time;
  });
  return votes;
}

}  // namespace dlm::digg
