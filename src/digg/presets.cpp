#include "digg/presets.h"

namespace dlm::digg {
namespace {

/// Builds ten hop groups from explicit values for distances 1..5 and a
/// geometric tail for 6..10 (Fig. 2: the population beyond hop 5 is tiny
/// and its densities decay fast).
std::vector<group_target> hop_groups_with_tail(
    std::vector<group_target> first_five) {
  std::vector<group_target> groups = std::move(first_five);
  group_target tail = groups.back();
  for (int k = 0; k < 5; ++k) {
    tail.initial *= 0.85;
    tail.saturation *= 0.85;
    groups.push_back(tail);
  }
  return groups;
}

}  // namespace

story_preset story_s1() {
  story_preset p;
  p.name = "s1";
  p.paper_votes = 24099;
  p.initiator_rank = 12;
  // Fig. 3a: plateau ~18.5 at hop 1; hop 3 ABOVE hop 2 (the random-walk
  // evidence); stable by ~10 h.  Fig. 7a: hour-1 profile ~1.9 at hop 1.
  p.hop_groups = hop_groups_with_tail({
      {/*initial=*/1.90, /*saturation=*/18.5, /*rate_mult=*/1.00},
      {/*initial=*/0.75, /*saturation=*/7.5, /*rate_mult=*/0.98},
      {/*initial=*/1.05, /*saturation=*/11.0, /*rate_mult=*/1.03},
      {/*initial=*/0.60, /*saturation=*/6.0, /*rate_mult=*/1.00},
      {/*initial=*/0.42, /*saturation=*/4.3, /*rate_mult=*/1.01},
  });
  p.hop_surface = {/*rate=*/{1.4, 1.5, 0.25}, /*k_model=*/25.0, /*tau_k=*/4.0};
  // Fig. 5a: monotone in interest distance, plateau ~60 at group 1.
  // Interest groups ride the story's total-votes clock (see
  // group_target::clock_power); group 5's γ = 0.85 front-loads it and
  // slows its later growth — the anomaly behind Table II's 39.84% row.
  p.interest_groups = {
      {/*initial=*/6.00, /*saturation=*/60.0, /*rate_mult=*/1.0, /*clock_power=*/0.68},
      {/*initial=*/3.60, /*saturation=*/42.0, /*rate_mult=*/1.0, /*clock_power=*/0.95},
      {/*initial=*/2.20, /*saturation=*/27.0, /*rate_mult=*/1.0, /*clock_power=*/1.00},
      {/*initial=*/1.10, /*saturation=*/13.0, /*rate_mult=*/1.0, /*clock_power=*/1.14},
      {/*initial=*/1.00, /*saturation=*/5.0, /*rate_mult=*/1.0, /*clock_power=*/0.85},
  };
  p.interest_surface = {/*rate=*/{1.6, 1.0, 0.10}, /*k_model=*/60.0,
                        /*tau_k=*/4.0};
  return p;
}

story_preset story_s2() {
  story_preset p;
  p.name = "s2";
  p.paper_votes = 8521;
  p.initiator_rank = 60;
  // Fig. 3b: plateau ~11 at hop 1, stable by ~20 h (slower clock).
  p.hop_groups = hop_groups_with_tail({
      {0.72, 11.0, 1.00},
      {0.38, 5.2, 0.95},
      {0.46, 6.6, 1.02},
      {0.27, 3.9, 0.99},
      {0.19, 2.6, 1.00},
  });
  p.hop_surface = {/*rate=*/{1.05, 1.05, 0.16}, /*k_model=*/25.0,
                   /*tau_k=*/5.0};
  // Fig. 5b: plateau ~45 at group 1, monotone.
  p.interest_groups = {
      {2.9, 45.0, 1.0, 1.00},
      {1.9, 30.0, 1.0, 1.02},
      {1.2, 18.0, 1.0, 1.04},
      {0.7, 9.0, 1.0, 1.02},
      {0.5, 4.0, 1.0, 0.80},
  };
  p.interest_surface = {/*rate=*/{1.35, 0.85, 0.09}, /*k_model=*/60.0,
                        /*tau_k=*/5.0};
  return p;
}

story_preset story_s3() {
  story_preset p;
  p.name = "s3";
  p.paper_votes = 5988;
  p.initiator_rank = 150;
  // Fig. 3c: plateau ~7.5 at hop 1, stable by ~25 h.
  p.hop_groups = hop_groups_with_tail({
      {0.48, 7.6, 1.00},
      {0.24, 3.8, 0.96},
      {0.30, 4.8, 1.01},
      {0.18, 2.8, 0.99},
      {0.12, 1.9, 1.00},
  });
  p.hop_surface = {/*rate=*/{0.92, 0.9, 0.13}, /*k_model=*/25.0,
                   /*tau_k=*/6.0};
  // Fig. 5c: plateau ~33 at group 1.
  p.interest_groups = {
      {1.9, 33.0, 1.0, 1.00},
      {1.25, 22.0, 1.0, 1.02},
      {0.75, 13.0, 1.0, 1.03},
      {0.45, 6.5, 1.0, 1.02},
      {0.32, 3.0, 1.0, 0.85},
  };
  p.interest_surface = {/*rate=*/{1.2, 0.8, 0.085}, /*k_model=*/60.0,
                        /*tau_k=*/6.0};
  return p;
}

story_preset story_s4() {
  story_preset p;
  p.name = "s4";
  p.paper_votes = 1618;
  // Moderately popular submitter: well inside the elite clique (Fig. 2
  // shows hop 3 peaking for ALL four stories, which requires an initiator
  // whose audience reaches the core) but far enough down the ranking that
  // the story stays small.
  p.initiator_rank = 200;
  // Fig. 3d: strictly decreasing with hops (social links dominate for the
  // least popular story); plateau ~2.5, stable by ~30 h.
  p.hop_groups = hop_groups_with_tail({
      {0.16, 2.50, 1.00},
      {0.115, 1.80, 1.00},
      {0.08, 1.25, 1.00},
      {0.05, 0.80, 1.00},
      {0.032, 0.50, 1.00},
  });
  p.hop_surface = {/*rate=*/{0.80, 0.8, 0.10}, /*k_model=*/25.0,
                   /*tau_k=*/7.0};
  // Fig. 5d: plateau ~33 at group 1 (interest groups are much smaller than
  // hop groups, so densities stay high even for an unpopular story).
  p.interest_groups = {
      {1.8, 33.0, 1.0, 1.00},
      {1.1, 20.0, 1.0, 1.02},
      {0.65, 12.0, 1.0, 1.03},
      {0.38, 6.0, 1.0, 1.02},
      {0.26, 2.5, 1.0, 0.85},
  };
  p.interest_surface = {/*rate=*/{1.15, 0.8, 0.08}, /*k_model=*/60.0,
                        /*tau_k=*/7.0};
  return p;
}

std::vector<story_preset> paper_stories() {
  return {story_s1(), story_s2(), story_s3(), story_s4()};
}

scenario_config test_scale_scenario() {
  scenario_config cfg;
  cfg.graph.users = 6000;
  cfg.graph.local_window = 60;
  cfg.graph.celebrity_count = 250;
  cfg.graph.loner_block_start_p = 0.0008;
  cfg.graph.loner_block_min_len = 80;
  cfg.graph.loner_block_max_len = 200;
  cfg.background_stories = 80;
  cfg.topic_clusters = 12;
  return cfg;
}

scenario_config paper_scale_scenario() {
  scenario_config cfg;
  cfg.graph.users = 139409;  // voter population of the June 2009 crawl
  cfg.graph.local_window = 200;
  cfg.background_stories = 500;
  return cfg;
}

}  // namespace dlm::digg
