// Synthetic Digg-2009 dataset generation.
//
// Two generation modes (DESIGN.md §3):
//
//  * `make_dataset` — the *calibrated* pipeline used by the figure/table
//    benches.  It builds the follower graph, simulates a background corpus
//    of stories (giving every user a vote history, hence an interest
//    profile), then samples each flagship story's votes so that the
//    realized density surfaces match the paper's published curves under
//    BOTH distance metrics simultaneously (IPF over the hop×interest
//    contingency table, per-group vote-time distributions).
//
//  * `simulate_cascade` — a *mechanistic* event-driven cascade with the
//    two propagation channels the paper describes for Digg: follower-
//    driven spreading (a vote exposes the voter's followers) and
//    front-page promotion (after enough votes, random users arrive and
//    vote).  Used by examples and the organic-data ablation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "digg/presets.h"
#include "graph/digraph.h"
#include "numerics/rng.h"
#include "social/distance.h"
#include "social/network.h"
#include "social/story.h"

namespace dlm::digg {

/// Everything the experiments need about one generated dataset.
struct digg_dataset {
  social::social_network network;  ///< graph + background + flagship votes
  /// Story ids of the flagship stories, in preset order (s1 first).
  std::vector<social::story_id> flagship_ids;
  /// Initiator of each flagship story.
  std::vector<social::user_id> initiators;
  /// Hop partition used when sampling each flagship story.
  std::vector<social::distance_partition> hop_partitions;
  /// Interest partition (computed on the background corpus) per story.
  std::vector<social::distance_partition> interest_partitions;
  /// The scenario that generated the dataset.
  scenario_config config;
};

/// Generates the calibrated dataset for `config`.  Deterministic in
/// `config.seed`.
[[nodiscard]] digg_dataset make_dataset(const scenario_config& config);

/// Parameters of the mechanistic cascade simulator.
struct cascade_params {
  double p_follow = 0.02;          ///< P(vote | one feed exposure)
  double response_rate = 0.9;      ///< 1/h — mean exposure→vote delay 1/rate
  std::size_t promote_threshold = 50;  ///< votes needed to reach front page
  double front_page_rate = 300.0;  ///< arrivals/hour right after promotion
  double front_page_decay = 12.0;  ///< hours; arrival rate e-folding time
  double p_random = 0.004;         ///< P(vote | front-page arrival)
  int horizon_hours = 50;
};

/// Simulates one story's cascade on `g` from `initiator`, submitted at
/// `submit`.  Returns the votes (initiator's vote first).  Deterministic
/// in `rand`.
[[nodiscard]] std::vector<social::vote> simulate_cascade(
    const graph::digraph& g, social::user_id initiator,
    social::story_id story, social::timestamp submit,
    const cascade_params& params, num::rng& rand);

/// Per-user topic-cluster memberships used by the background corpus.
struct topic_model {
  std::size_t clusters = 24;
  /// memberships[u]: the clusters user u belongs to (1–3 each).
  std::vector<std::vector<std::uint32_t>> memberships;
};

/// Assigns every user 1–3 topic clusters.
[[nodiscard]] topic_model make_topic_model(std::size_t users,
                                           std::size_t clusters,
                                           num::rng& rand);

/// Background-corpus votes: `n_stories` stories (ids [first_story,
/// first_story + n_stories)), each drawing voters mostly from one topic
/// cluster with heavy-tailed per-user activity.  Builds the vote histories
/// that make shared-interest distance meaningful.
[[nodiscard]] std::vector<social::vote> background_corpus(
    const topic_model& topics, std::size_t n_stories,
    social::story_id first_story, num::rng& rand);

/// Corpus volume/coherence knobs.
struct corpus_params {
  /// Mean background votes per user.  Dense histories (≈8+) are required
  /// for shared-interest distance to spread away from 1.
  double mean_user_activity = 8.0;
  /// Probability a vote comes from the story's topic cluster (the rest are
  /// uniform front-page browsers).
  double cluster_affinity = 0.85;
};

/// Variant that also guarantees every user in `vips` (flagship initiators)
/// a history of at least `vip_min_history` votes on stories within their
/// own topic clusters.
[[nodiscard]] std::vector<social::vote> background_corpus(
    const topic_model& topics, std::size_t n_stories,
    social::story_id first_story, std::span<const social::user_id> vips,
    std::size_t vip_min_history, num::rng& rand);

/// Full-control variant.
[[nodiscard]] std::vector<social::vote> background_corpus(
    const topic_model& topics, std::size_t n_stories,
    social::story_id first_story, std::span<const social::user_id> vips,
    std::size_t vip_min_history, const corpus_params& params, num::rng& rand);

}  // namespace dlm::digg
