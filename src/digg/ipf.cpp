#include "digg/ipf.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dlm::digg {

ipf_result fit_vote_probabilities(
    const std::vector<std::vector<std::size_t>>& cell_count,
    const std::vector<double>& row_target, const std::vector<double>& col_target,
    std::size_t max_iterations, double tolerance, double total_tolerance) {
  const std::size_t rows = cell_count.size();
  if (rows == 0) throw std::invalid_argument("ipf: empty table");
  const std::size_t cols = cell_count.front().size();
  if (cols == 0) throw std::invalid_argument("ipf: empty row");
  for (const auto& row : cell_count) {
    if (row.size() != cols)
      throw std::invalid_argument("ipf: ragged cell table");
  }
  if (row_target.size() != rows || col_target.size() != cols)
    throw std::invalid_argument("ipf: target size mismatch");

  double row_total = 0.0, col_total = 0.0;
  for (double v : row_target) {
    if (v < 0.0) throw std::invalid_argument("ipf: negative row target");
    row_total += v;
  }
  for (double v : col_target) {
    if (v < 0.0) throw std::invalid_argument("ipf: negative column target");
    col_total += v;
  }
  if (row_total <= 0.0 || col_total <= 0.0)
    throw std::invalid_argument("ipf: all-zero targets");
  const double ratio = std::max(row_total / col_total, col_total / row_total);
  if (ratio > 1.0 + total_tolerance)
    throw std::invalid_argument(
        "ipf: row/column target totals disagree beyond tolerance");

  // Rescale column targets onto the row total so a solution can exist.
  std::vector<double> cols_scaled(col_target);
  const double scale = row_total / col_total;
  for (double& v : cols_scaled) v *= scale;

  // Start from the row-only solution: uniform probability within each row.
  ipf_result res;
  res.probability.assign(rows, std::vector<double>(cols, 0.0));
  for (std::size_t h = 0; h < rows; ++h) {
    std::size_t row_users = 0;
    for (std::size_t g = 0; g < cols; ++g) row_users += cell_count[h][g];
    const double p = row_users > 0
                         ? std::clamp(row_target[h] / static_cast<double>(row_users),
                                      0.0, 1.0)
                         : 0.0;
    for (std::size_t g = 0; g < cols; ++g) res.probability[h][g] = p;
  }

  const auto expected_row = [&](std::size_t h) {
    double acc = 0.0;
    for (std::size_t g = 0; g < cols; ++g)
      acc += res.probability[h][g] * static_cast<double>(cell_count[h][g]);
    return acc;
  };
  const auto expected_col = [&](std::size_t g) {
    double acc = 0.0;
    for (std::size_t h = 0; h < rows; ++h)
      acc += res.probability[h][g] * static_cast<double>(cell_count[h][g]);
    return acc;
  };

  for (std::size_t it = 0; it < max_iterations; ++it) {
    res.iterations = it + 1;
    // Row sweep.
    for (std::size_t h = 0; h < rows; ++h) {
      const double cur = expected_row(h);
      if (cur <= 0.0) continue;
      const double f = row_target[h] / cur;
      for (std::size_t g = 0; g < cols; ++g)
        res.probability[h][g] = std::clamp(res.probability[h][g] * f, 0.0, 1.0);
    }
    // Column sweep.
    for (std::size_t g = 0; g < cols; ++g) {
      const double cur = expected_col(g);
      if (cur <= 0.0) continue;
      const double f = cols_scaled[g] / cur;
      for (std::size_t h = 0; h < rows; ++h)
        res.probability[h][g] = std::clamp(res.probability[h][g] * f, 0.0, 1.0);
    }
    // Convergence check on both marginals.
    double worst = 0.0;
    for (std::size_t h = 0; h < rows; ++h) {
      if (row_target[h] > 0.0)
        worst = std::max(worst,
                         std::abs(expected_row(h) - row_target[h]) / row_target[h]);
    }
    for (std::size_t g = 0; g < cols; ++g) {
      if (cols_scaled[g] > 0.0)
        worst = std::max(worst, std::abs(expected_col(g) - cols_scaled[g]) /
                                    cols_scaled[g]);
    }
    res.max_marginal_error = worst;
    if (worst <= tolerance) {
      res.converged = true;
      break;
    }
  }
  return res;
}

}  // namespace dlm::digg
