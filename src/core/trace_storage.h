// Contiguous row-major snapshot storage for solved trajectories.
//
// dl_solution used to hold one heap vector per recorded snapshot
// (vector<vector<double>>), which costs an allocation per record and
// scatters rows across the heap.  trace_storage packs every snapshot
// into a single row-major buffer: one allocation per solve (the solver
// reserves the exact record count up front) and cache-friendly row
// scans for the accuracy / result_table consumers that walk whole
// trajectories.  Rows are exposed as std::span views, and the class
// models a random-access range of rows so existing range-for /
// indexing call sites keep working unchanged.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dlm::core {

class trace_storage {
 public:
  /// Empty storage with no row width; usable only after assigning from a
  /// sized instance.
  trace_storage() = default;

  /// Empty storage of `cols`-wide rows.  Throws std::invalid_argument
  /// for cols == 0.
  explicit trace_storage(std::size_t cols);

  /// Adopts an existing row-major buffer (`data.size()` must be a
  /// multiple of `cols`).  Throws std::invalid_argument otherwise.
  trace_storage(std::size_t cols, std::vector<double> data);

  /// Reserves capacity for `rows` rows (one allocation up front).
  void reserve(std::size_t rows) { data_.reserve(rows * cols_); }

  /// Appends a snapshot.  Throws std::invalid_argument when `row` does
  /// not have exactly cols() values.
  void append_row(std::span<const double> row);

  [[nodiscard]] std::size_t size() const noexcept {
    return cols_ == 0 ? 0 : data_.size() / cols_;
  }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  /// Row `i` as a view into the contiguous buffer (no bounds check).
  [[nodiscard]] std::span<const double> operator[](
      std::size_t i) const noexcept {
    return {data_.data() + i * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> front() const noexcept {
    return (*this)[0];
  }
  [[nodiscard]] std::span<const double> back() const noexcept {
    return (*this)[size() - 1];
  }

  /// The raw row-major buffer (size() * cols() values).
  [[nodiscard]] const std::vector<double>& data() const noexcept {
    return data_;
  }

  /// Random-access iterator yielding std::span rows, so
  /// `for (const auto& state : sol.states())` keeps working.
  class const_iterator {
   public:
    using value_type = std::span<const double>;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::random_access_iterator_tag;

    const_iterator() = default;
    const_iterator(const double* ptr, std::size_t cols)
        : ptr_(ptr), cols_(cols) {}

    value_type operator*() const noexcept { return {ptr_, cols_}; }
    value_type operator[](difference_type k) const noexcept {
      return {ptr_ + k * static_cast<difference_type>(cols_), cols_};
    }
    const_iterator& operator++() noexcept {
      ptr_ += cols_;
      return *this;
    }
    const_iterator operator++(int) noexcept {
      const_iterator old = *this;
      ++*this;
      return old;
    }
    const_iterator& operator--() noexcept {
      ptr_ -= cols_;
      return *this;
    }
    const_iterator operator--(int) noexcept {
      const_iterator old = *this;
      --*this;
      return old;
    }
    const_iterator& operator+=(difference_type k) noexcept {
      ptr_ += k * static_cast<difference_type>(cols_);
      return *this;
    }
    const_iterator& operator-=(difference_type k) noexcept {
      return *this += -k;
    }
    friend const_iterator operator+(const_iterator it,
                                    difference_type k) noexcept {
      return it += k;
    }
    friend const_iterator operator+(difference_type k,
                                    const_iterator it) noexcept {
      return it += k;
    }
    friend const_iterator operator-(const_iterator it,
                                    difference_type k) noexcept {
      return it -= k;
    }
    friend difference_type operator-(const const_iterator& a,
                                     const const_iterator& b) noexcept {
      return (a.ptr_ - b.ptr_) / static_cast<difference_type>(a.cols_);
    }
    friend bool operator==(const const_iterator& a,
                           const const_iterator& b) noexcept {
      return a.ptr_ == b.ptr_;
    }
    friend auto operator<=>(const const_iterator& a,
                            const const_iterator& b) noexcept {
      return a.ptr_ <=> b.ptr_;
    }

   private:
    const double* ptr_ = nullptr;
    std::size_t cols_ = 1;
  };

  [[nodiscard]] const_iterator begin() const noexcept {
    return {data_.data(), cols_ == 0 ? 1 : cols_};
  }
  [[nodiscard]] const_iterator end() const noexcept {
    return {data_.data() + data_.size(), cols_ == 0 ? 1 : cols_};
  }

 private:
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace dlm::core
