// Structure-of-arrays scratch for the batched DL solver.
//
// solve_dl(std::span<const solve_request>) advances a group of compatible
// scenarios (same scheme / grid / dt / time window) in lockstep: one time
// loop steps W independent solves at once.  The state is packed
// grid-node-major × scenario-minor — u[node * W + lane] — so the per-node
// inner loops run over W contiguous lanes and auto-vectorize, and the
// serial Thomas recurrence interleaves W independent chains, hiding the
// division latency that dominates the scalar sweep.
//
// Layouts at a glance (n nodes, W lanes):
//
//  * SoA state / rhs / Laplacian / RK4 stages: n·W, index [i*W + l];
//  * Crank–Nicolson coefficients, scattered per lane from each lane's
//    scalar factorization: diag-shaped n·W, off-diag-shaped (n−1)·W;
//  * rate rows: lane-major W·n, index [l*n + i] — rate_field::profile
//    writes one contiguous per-lane span, so rates are evaluated
//    lane-major and read strided (or hoisted to one growth per lane for
//    x-uniform fields, the common calibration case);
//  * per-lane scalars (d, K, growth factors, rolling reaction registers,
//    Thomas carry): W.
//
// The Crank–Nicolson cache holds one rhs-matrix + Thomas factorization
// per *distinct* λ = d·dt/dx² in the group, so lanes probing the same
// diffusion coefficient share one elimination.
//
// Like dl_workspace, reuse never changes results: prepare() keeps
// capacity across groups, and a reused batch workspace is bitwise
// identical to a fresh one (solver_batch_test).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/dl_solver.h"
#include "core/dl_workspace.h"
#include "numerics/tridiagonal.h"

namespace dlm::core {

struct dl_batch_workspace {
  // SoA state, size n·W.
  std::vector<double> u;       ///< current solution, all lanes
  std::vector<double> u_next;  ///< RK4 next-step state
  std::vector<double> lap;     ///< discrete Laplacian, all lanes
  std::vector<double> rhs;     ///< interleaved Thomas right-hand sides

  // Crank–Nicolson coefficients scattered per lane (strang_cn only):
  // rhs-matrix diagonals and the cached elimination of the lane's lhs.
  std::vector<double> cn_dm;  ///< rhs-matrix diag, n·W
  std::vector<double> cn_lm;  ///< rhs-matrix lower, (n−1)·W
  std::vector<double> cn_um;  ///< rhs-matrix upper, (n−1)·W
  std::vector<double> cn_fl;  ///< factor lower l_i, (n−1)·W
  std::vector<double> cn_fp;  ///< factor pivots d'_i, n·W
  std::vector<double> cn_fc;  ///< factor c*_i, (n−1)·W

  // RK4 stage buffers, size n·W (mol_rk4 only).
  std::vector<double> k1, k2, k3, k4, tmp;

  // Per-lane scalars, size W.
  std::vector<double> lane_d;   ///< diffusion coefficient d
  std::vector<double> lane_k;   ///< carrying capacity K
  std::vector<double> growth1;  ///< e^∫r, first logistic half-step
  std::vector<double> growth2;  ///< e^∫r, second logistic half-step
  std::vector<double> v_prev, v_cur, v_next;  ///< rolling reaction rows
  std::vector<double> w;                      ///< Thomas recurrence carry
  std::vector<std::uint8_t> lane_factored;    ///< separable-form rate?
  std::vector<std::uint8_t> lane_uniform;     ///< x-constant rate?

  // Lane-major rate rows, size W·n (row l is lane l's contiguous span).
  std::vector<double> mod_rows;   ///< separable spatial profile m(x_i)
  std::vector<double> rt_rows;    ///< r(x_i, t) per step / stage
  std::vector<double> rint_rows;  ///< ∫ r(x_i, s) ds per substep

  // Shared per-node buffers, size n.
  std::vector<double> node_x;  ///< grid node coordinates
  std::vector<double> row;     ///< de-interleave scratch for recording
  std::vector<double> rate_scratch;  ///< per-group rate family's table

  /// One cached Crank–Nicolson elimination per distinct λ = d·dt/dx²
  /// in the group.
  struct cn_entry {
    double lambda = 0.0;
    num::tridiagonal_matrix rhs_m;
    num::tridiagonal_factorization factor;
  };
  std::vector<cn_entry> cn_cache;
  num::tridiagonal_matrix cn_lhs;  ///< build scratch for cache entries

  /// Scalar workspace for the lanes the batch path hands back to the
  /// scalar solver: implicit_newton groups (data-dependent Newton
  /// iteration counts defeat lockstep), groups of one, and requests
  /// carrying their own dl_workspace.
  dl_workspace scalar;

  /// True while a batched solve is running on this workspace; the
  /// thread-local wrapper checks it to survive reentrancy (mirrors
  /// dl_workspace::in_use).
  bool in_use = false;

  /// Sizes every buffer for an n-node, `width`-lane group of the given
  /// scheme.  Capacity is kept across calls, so a workspace reused at a
  /// fixed shape allocates nothing after its first group.
  void prepare(std::size_t n, std::size_t width, dl_scheme scheme);
};

/// This thread's shared batch workspace — what the plain batched
/// solve_dl overload uses.
[[nodiscard]] dl_batch_workspace& thread_batch_workspace();

}  // namespace dlm::core
