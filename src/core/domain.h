// Spatial-domain descriptor for the Diffusive Logistic solver.
//
// The paper's model lives on a single 1-D distance axis x ∈ [l, L]; the
// solver, workspace and trace layout historically hardcoded that shape.
// `core::domain` makes the shape an explicit, validated value so richer
// structures — the §V-adjacent 2-D distance×interest surface u(x, y, t)
// and K coupled per-community copies of the 1-D equation — ride the same
// parameter set, solver entry points, caches and engine plumbing.  Three
// kinds:
//
//  * line        — the paper's 1-D axis (the default; every existing call
//                  site, cache key and trace is bitwise-unchanged);
//  * grid2d      — a second uniform axis y ∈ [y_min, y_max] at the same
//                  resolution, solved by Peaceman–Rachford ADI (two
//                  tridiagonal passes per step) with the growth rate
//                  r(x, t) applied along x;
//  * communities — K coupled 1-D lines with an optional K×K mixing
//                  matrix (explicit-Euler cross-community exchange) and
//                  optional per-community initial-profile scales.
//
// Node layout is row-major with the x axis innermost: node (i, j) of a
// grid2d domain is j·nx + i, community c's node i is c·nx + i.  A domain
// carries a canonical full-precision `label()` that feeds solve-cache
// keys, CSV columns and the dl_serve wire protocol.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dlm::core {

/// Domain shape selector.
enum class domain_kind { line, grid2d, communities };

[[nodiscard]] std::string to_string(domain_kind kind);

/// A validated domain descriptor.  The x axis (extent and resolution)
/// stays where it always lived — dl_parameters / dl_solver_options — so a
/// default-constructed domain is exactly the historical 1-D line.
struct domain {
  domain_kind kind = domain_kind::line;

  /// grid2d: the second (interest) axis bounds.  The y resolution reuses
  /// the solver's points_per_unit, so integer interest distances land on
  /// nodes exactly like integer hop distances do on x.
  double y_min = 1.0;
  double y_max = 5.0;

  /// communities: the number K of coupled per-community lines.
  std::size_t community_count = 1;
  /// K×K row-major mixing matrix: `mixing[c*K + c2]` is the exchange rate
  /// from community c2 into community c (diagonal entries are ignored).
  /// Empty means no coupling — K independent lines.
  std::vector<double> mixing;
  /// Per-community scale factors applied when an x-profile initial
  /// condition is broadcast across communities.  Empty means all 1.
  std::vector<double> scales;

  [[nodiscard]] bool is_line() const noexcept {
    return kind == domain_kind::line;
  }

  /// Rows stacked behind the x axis: 1 (line), the y node count (grid2d)
  /// or K (communities).
  [[nodiscard]] std::size_t blocks(std::size_t points_per_unit) const;

  /// Total solver node count for `x_nodes` nodes on the x axis.
  [[nodiscard]] std::size_t node_count(std::size_t x_nodes,
                                       std::size_t points_per_unit) const {
    return x_nodes * blocks(points_per_unit);
  }

  /// True when the mixing matrix couples at least one community pair.
  [[nodiscard]] bool has_mixing() const noexcept;

  /// Canonical full-precision label: "line", "grid2d:<y_min>,<y_max>",
  /// "comm:<K>[|mix=...][|scale=...]" (a uniform mixing matrix collapses
  /// to the single off-diagonal rate).  Feeds cache keys, the result
  /// table's domain column and the service wire protocol, so equal labels
  /// mean interchangeable solves.
  [[nodiscard]] std::string label() const;

  /// Throws std::invalid_argument on non-finite/ill-ordered grid2d bounds,
  /// K == 0, a mixing matrix that is not K×K or has a negative /
  /// non-finite off-diagonal entry, or a scales list that is not size K
  /// or has a negative / non-finite entry.
  void validate() const;

  [[nodiscard]] static domain line() noexcept { return {}; }
  /// 2-D distance×interest domain with y ∈ [y_min, y_max].
  [[nodiscard]] static domain grid(double y_min, double y_max);
  /// K communities mixed uniformly at `mix_rate` (0 = independent).
  [[nodiscard]] static domain coupled(std::size_t k, double mix_rate = 0.0);
  /// K communities with an explicit K×K mixing matrix and optional
  /// per-community initial-profile scales.
  [[nodiscard]] static domain coupled(std::size_t k,
                                      std::vector<double> mixing,
                                      std::vector<double> scales);
};

}  // namespace dlm::core
