#include "core/rate_field.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "numerics/quadrature.h"

namespace dlm::core {
namespace {

std::string join_full(const std::vector<double>& values) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ',';
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.17g", values[i]);
    out += buffer;
  }
  return out;
}

}  // namespace

rate_field::rate_field(growth_rate temporal) {
  family_ = family::temporal;
  label_ = temporal.label();
  rates_.push_back(std::move(temporal));
}

rate_field rate_field::separable(growth_rate base,
                                 std::vector<double> multipliers,
                                 double x_anchor) {
  if (multipliers.empty())
    throw std::invalid_argument("rate_field::separable: no multipliers");
  for (const double m : multipliers) {
    if (!(m >= 0.0) || !std::isfinite(m))
      throw std::invalid_argument(
          "rate_field::separable: multipliers must be finite and >= 0");
  }
  rate_field field;
  field.family_ = family::separable;
  field.label_ =
      "spatial(" + base.label() + "|m=" + join_full(multipliers) + ")";
  field.rates_.push_back(std::move(base));
  field.multipliers_ = std::move(multipliers);
  field.x_anchor_ = x_anchor;
  return field;
}

rate_field rate_field::per_group(std::vector<growth_rate> rates,
                                 double x_anchor) {
  if (rates.empty())
    throw std::invalid_argument("rate_field::per_group: empty rate table");
  rate_field field;
  field.family_ = family::per_group;
  field.label_ = "per-hop(";
  for (std::size_t i = 0; i < rates.size(); ++i) {
    if (i > 0) field.label_ += ';';
    field.label_ += rates[i].label();
  }
  field.label_ += ')';
  field.rates_ = std::move(rates);
  field.x_anchor_ = x_anchor;
  return field;
}

rate_field rate_field::custom(std::function<double(double, double)> fn,
                              std::string label) {
  if (!fn) throw std::invalid_argument("rate_field::custom: empty callable");
  rate_field field;
  field.family_ = family::custom;
  field.fn_ = std::move(fn);
  field.label_ = std::move(label);
  return field;
}

rate_field::blend rate_field::blend_at(double x, std::size_t count) const {
  blend b;
  const double pos = std::clamp(x - x_anchor_, 0.0,
                                static_cast<double>(count - 1));
  b.lo = static_cast<std::size_t>(pos);
  b.hi = std::min(b.lo + 1, count - 1);
  b.frac = std::clamp(pos - static_cast<double>(b.lo), 0.0, 1.0);
  return b;
}

double rate_field::operator()(double x, double t) const {
  switch (family_) {
    case family::temporal:
      return rates_.front()(t);
    case family::separable:
      return modulation(x) * rates_.front()(t);
    case family::per_group: {
      const blend b = blend_at(x, rates_.size());
      return rates_[b.lo](t) * (1.0 - b.frac) + rates_[b.hi](t) * b.frac;
    }
    case family::custom:
      return fn_(x, t);
  }
  return 0.0;  // unreachable
}

double rate_field::integral(double t0, double t1, double x) const {
  if (t1 < t0)
    throw std::invalid_argument("rate_field::integral: t1 < t0");
  if (t1 == t0) return 0.0;
  switch (family_) {
    case family::temporal:
      return rates_.front().integral(t0, t1);
    case family::separable:
      return modulation(x) * rates_.front().integral(t0, t1);
    case family::per_group: {
      // r(x, ·) is a fixed convex blend of two group rates, so the exact
      // integral is the same blend of the groups' exact integrals.
      const blend b = blend_at(x, rates_.size());
      return rates_[b.lo].integral(t0, t1) * (1.0 - b.frac) +
             rates_[b.hi].integral(t0, t1) * b.frac;
    }
    case family::custom:
      return num::simpson([this, x](double t) { return fn_(x, t); }, t0, t1,
                          64);
  }
  return 0.0;  // unreachable
}

bool rate_field::spatial() const noexcept {
  return family_ != family::temporal;
}

bool rate_field::separable_form() const noexcept {
  return family_ == family::temporal || family_ == family::separable;
}

const growth_rate& rate_field::base() const {
  if (!separable_form())
    throw std::logic_error("rate_field::base: field is not separable");
  return rates_.front();
}

double rate_field::modulation(double x) const {
  if (!separable_form())
    throw std::logic_error("rate_field::modulation: field is not separable");
  if (family_ == family::temporal) return 1.0;
  const blend b = blend_at(x, multipliers_.size());
  return multipliers_[b.lo] * (1.0 - b.frac) + multipliers_[b.hi] * b.frac;
}

void rate_field::profile(double t, std::span<const double> xs,
                         std::span<double> out) const {
  std::vector<double> scratch;
  profile(t, xs, out, scratch);
}

void rate_field::profile(double t, std::span<const double> xs,
                         std::span<double> out,
                         std::vector<double>& scratch) const {
  if (xs.size() != out.size())
    throw std::invalid_argument("rate_field::profile: size mismatch");
  if (separable_form()) {
    const double base_value = rates_.front()(t);
    for (std::size_t i = 0; i < xs.size(); ++i)
      out[i] = modulation(xs[i]) * base_value;
    return;
  }
  if (family_ == family::per_group) {
    // One evaluation per *group*, blended per node — the per-node cost
    // is two multiplies, not two growth_rate calls.
    scratch.resize(rates_.size());
    for (std::size_t g = 0; g < rates_.size(); ++g)
      scratch[g] = rates_[g](t);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const blend b = blend_at(xs[i], scratch.size());
      out[i] = scratch[b.lo] * (1.0 - b.frac) + scratch[b.hi] * b.frac;
    }
    return;
  }
  for (std::size_t i = 0; i < xs.size(); ++i) out[i] = (*this)(xs[i], t);
}

void rate_field::integral_profile(double t0, double t1,
                                  std::span<const double> xs,
                                  std::span<double> out) const {
  std::vector<double> scratch;
  integral_profile(t0, t1, xs, out, scratch);
}

void rate_field::integral_profile(double t0, double t1,
                                  std::span<const double> xs,
                                  std::span<double> out,
                                  std::vector<double>& scratch) const {
  if (xs.size() != out.size())
    throw std::invalid_argument("rate_field::integral_profile: size mismatch");
  if (t1 < t0)
    throw std::invalid_argument("rate_field::integral_profile: t1 < t0");
  if (separable_form()) {
    const double base_integral = rates_.front().integral(t0, t1);
    for (std::size_t i = 0; i < xs.size(); ++i)
      out[i] = modulation(xs[i]) * base_integral;
    return;
  }
  if (family_ == family::per_group) {
    // One exact integral per *group*, blended per node (the solver calls
    // this once per time step over the whole grid).
    scratch.resize(rates_.size());
    for (std::size_t g = 0; g < rates_.size(); ++g)
      scratch[g] = rates_[g].integral(t0, t1);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const blend b = blend_at(xs[i], scratch.size());
      out[i] = scratch[b.lo] * (1.0 - b.frac) + scratch[b.hi] * b.frac;
    }
    return;
  }
  for (std::size_t i = 0; i < xs.size(); ++i)
    out[i] = integral(t0, t1, xs[i]);
}

}  // namespace dlm::core
