#include "core/dl_workspace.h"

namespace dlm::core {

void dl_workspace::prepare(std::size_t n) {
  u.resize(n);
  u_next.resize(n);
  lap.resize(n);
  rhs.resize(n);
  scratch.resize(n);
  node_x.resize(n);
  mod.resize(n);
  rt.resize(n);
  r_int.resize(n);
  rt_react.resize(n);
  jac.resize(n);
  newton_g.resize(n);
  cn_lhs.resize(n);
  cn_rhs.resize(n);
  rk4.prepare(n);
}

dl_workspace& thread_workspace() {
  thread_local dl_workspace workspace;
  return workspace;
}

}  // namespace dlm::core
