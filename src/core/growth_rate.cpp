#include "core/growth_rate.h"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "numerics/quadrature.h"

namespace dlm::core {

growth_rate::growth_rate(std::function<double(double)> fn,
                         std::function<double(double, double)> integral,
                         std::string label)
    : fn_(std::move(fn)), integral_(std::move(integral)),
      label_(std::move(label)) {}

growth_rate growth_rate::constant(double value) {
  if (value < 0.0)
    throw std::invalid_argument("growth_rate::constant: negative rate");
  return growth_rate([value](double) { return value; },
                     [value](double t0, double t1) { return value * (t1 - t0); },
                     "constant(" + std::to_string(value) + ")");
}

growth_rate growth_rate::exponential_decay(double amplitude, double decay,
                                           double floor) {
  if (amplitude < 0.0 || floor < 0.0 || decay <= 0.0)
    throw std::invalid_argument("growth_rate::exponential_decay: bad params");
  const auto fn = [amplitude, decay, floor](double t) {
    return amplitude * std::exp(-decay * (t - 1.0)) + floor;
  };
  const auto integral = [amplitude, decay, floor](double t0, double t1) {
    // ∫ a·e^{−b(s−1)} + c ds = −a/b·e^{−b(s−1)} + c·s
    const double part = amplitude / decay *
                        (std::exp(-decay * (t0 - 1.0)) -
                         std::exp(-decay * (t1 - 1.0)));
    return part + floor * (t1 - t0);
  };
  return growth_rate(fn, integral,
                     "exp_decay(a=" + std::to_string(amplitude) +
                         ",b=" + std::to_string(decay) +
                         ",c=" + std::to_string(floor) + ")");
}

growth_rate growth_rate::paper_hops() {
  return exponential_decay(1.4, 1.5, 0.25);
}

growth_rate growth_rate::paper_interest() {
  return exponential_decay(1.6, 1.0, 0.1);
}

growth_rate growth_rate::custom(std::function<double(double)> fn,
                                std::string label) {
  if (!fn) throw std::invalid_argument("growth_rate::custom: empty callable");
  auto copy = fn;
  return growth_rate(
      std::move(fn),
      [copy](double t0, double t1) {
        if (t1 <= t0) return 0.0;
        return num::simpson(copy, t0, t1, 64);
      },
      std::move(label));
}

double growth_rate::integral(double t0, double t1) const {
  if (t1 < t0) throw std::invalid_argument("growth_rate::integral: t1 < t0");
  if (t1 == t0) return 0.0;
  return integral_(t0, t1);
}

}  // namespace dlm::core
