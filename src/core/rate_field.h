// Spatio-temporal growth-rate fields r(x, t) for the DL equation.
//
// The paper's future work (§V) proposes letting the growth rate vary
// with both time *and* distance — motivated by the Table II distance-5
// anomaly, where one shared r(t) over-predicts the slow outermost
// interest group.  This module promotes that refinement to a typed,
// first-class field consumed by the main solver (all four schemes), the
// engine's rate-spec grammar and the calibration family.  Four families:
//
//  * temporal   — r(x, t) = r(t): a plain growth_rate lifted into the
//                 field (the implicit-conversion path every pre-existing
//                 call site takes);
//  * separable  — r(x, t) = m(x)·base(t): per-group multipliers anchored
//                 at integer distances, linearly interpolated between and
//                 clamped outside (the engine's "spatial:<base>|<m,...>"
//                 spec and the "calibrate-spatial" fit family);
//  * per-group  — one growth_rate per distance group, values *and* exact
//                 integrals linearly interpolated across groups (the
//                 "per-hop:<spec>;..." spec);
//  * custom     — an arbitrary callable r(x, t), integrated in t by
//                 Simpson quadrature.
//
// Every family carries a canonical label (folded into slice fingerprints
// and cache keys) and an integral ∫ r(x, s) ds over [t0, t1] at fixed x —
// exact for the first three families, quadrature for custom — because the
// Strang-split solver's logistic substep consumes integrated rates.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/growth_rate.h"

namespace dlm::core {

/// A growth-rate field r(x, t).
class rate_field {
 public:
  /// Lifts a pure-temporal rate: r(x, t) = r(t) for every x.  Implicit on
  /// purpose — every API that took a growth_rate keeps working unchanged.
  rate_field(growth_rate temporal);  // NOLINT(google-explicit-constructor)

  /// Separable field r(x, t) = m(x)·base(t).  `multipliers[i]` applies at
  /// x = x_anchor + i; m(x) interpolates linearly between anchors and
  /// clamps to the nearest multiplier outside them (so a list shorter
  /// than the domain extends its last value to farther groups).
  /// Throws std::invalid_argument for an empty list or a negative /
  /// non-finite multiplier.
  static rate_field separable(growth_rate base, std::vector<double> multipliers,
                              double x_anchor = 1.0);

  /// Per-group table: `rates[i]` is the rate of the group at
  /// x = x_anchor + i; r(x, t) interpolates the group rates linearly in x
  /// (clamped outside), and integral() interpolates the groups' exact
  /// integrals with the same weights.  Throws on an empty table.
  static rate_field per_group(std::vector<growth_rate> rates,
                              double x_anchor = 1.0);

  /// Arbitrary callable r(x, t); integral() uses Simpson quadrature in t.
  /// Throws std::invalid_argument for an empty callable.
  static rate_field custom(std::function<double(double, double)> fn,
                           std::string label = "custom(x,t)");

  /// r(x, t).
  [[nodiscard]] double operator()(double x, double t) const;

  /// ∫ r(x, s) ds over [t0, t1] at fixed x — exact for the temporal,
  /// separable and per-group families, 64-interval Simpson for custom.
  /// Throws std::invalid_argument when t1 < t0.
  [[nodiscard]] double integral(double t0, double t1, double x) const;

  /// True unless the field is constant in x (the temporal family).
  [[nodiscard]] bool spatial() const noexcept;

  /// True when r(x, t) factors as m(x)·base(t) — the temporal (m ≡ 1) and
  /// separable families.  Solvers use this to hoist the spatial profile
  /// out of the time loop: one base evaluation + n multiplies per step.
  [[nodiscard]] bool separable_form() const noexcept;

  /// The temporal factor base(t) of a separable-form field.
  /// Throws std::logic_error for the per-group and custom families.
  [[nodiscard]] const growth_rate& base() const;

  /// The spatial factor m(x) of a separable-form field (1 for temporal).
  /// Throws std::logic_error for the per-group and custom families.
  [[nodiscard]] double modulation(double x) const;

  /// Canonical description: the wrapped label for temporal fields,
  /// "spatial(<base>|m=...)" / "per-hop(...)" for the spatial families.
  [[nodiscard]] const std::string& label() const noexcept { return label_; }

  /// r(x_i, t) for every x in `xs`, written to `out` (sizes must match).
  /// One base evaluation for separable-form fields.
  void profile(double t, std::span<const double> xs,
               std::span<double> out) const;

  /// ∫ r(x_i, s) ds over [t0, t1] for every x in `xs`, written to `out`.
  /// One base integral for separable-form fields.
  void integral_profile(double t0, double t1, std::span<const double> xs,
                        std::span<double> out) const;

  /// Allocation-free variants: the per-group family's one-value-per-group
  /// table lands in `scratch` (resized to the group count, capacity kept)
  /// instead of a fresh vector — the solver calls these once or twice per
  /// time step, so the plain overloads above would otherwise allocate in
  /// the hot loop.  Other families ignore `scratch`.
  void profile(double t, std::span<const double> xs, std::span<double> out,
               std::vector<double>& scratch) const;
  void integral_profile(double t0, double t1, std::span<const double> xs,
                        std::span<double> out,
                        std::vector<double>& scratch) const;

 private:
  enum class family { temporal, separable, per_group, custom };

  rate_field() = default;

  /// Interpolation weights of x against the anchor lattice:
  /// indices (lo, hi) and the blend fraction in [0, 1].
  struct blend {
    std::size_t lo = 0;
    std::size_t hi = 0;
    double frac = 0.0;
  };
  [[nodiscard]] blend blend_at(double x, std::size_t count) const;

  family family_ = family::temporal;
  /// temporal/separable: exactly one entry (the base); per-group: one per
  /// group.  Empty only for custom.
  std::vector<growth_rate> rates_;
  std::vector<double> multipliers_;  ///< separable only
  std::function<double(double, double)> fn_;  ///< custom only
  double x_anchor_ = 1.0;
  std::string label_;
};

}  // namespace dlm::core
