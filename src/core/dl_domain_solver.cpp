// Non-line domain solvers for the Diffusive Logistic equation.
//
// solve_dl_profile dispatches here for the two non-line domain kinds
// (core/domain.h); the 1-D line keeps its original stepping loops in
// dl_solver.cpp, untouched.
//
//  * grid2d — u(x, y, t) with ∂u/∂t = d(u_xx + u_yy) + r(x, t)u(1 − u/K)
//    and no-flux boundaries on all four edges, advanced by Strang
//    splitting around a Peaceman–Rachford ADI diffusion step:
//        reaction half-step (exact logistic, integrated rate per x node)
//        (I − (λx/2)Ax) u*      = (I + (λy/2)Ay) uⁿ    — tridiagonal in x
//        (I − (λy/2)Ay) u^{n+1} = (I + (λx/2)Ax) u*    — tridiagonal in y
//        reaction half-step
//    Both one-axis operators reuse detail::build_cn_matrices and a cached
//    num::tridiagonal_factorization per axis, so each step is two sets of
//    Thomas sweeps — no 2-D solve anywhere.
//
//  * communities — K coupled copies of the 1-D line, each advanced by the
//    same fused Strang–CN step as the scalar solver
//    (detail::strang_cn_step, shared inline so a K = 1 run is *bitwise
//    identical* to the plain line), followed by an explicit-Euler
//    cross-community mixing substep that is skipped entirely when K = 1
//    or the mixing matrix is zero — which is what makes the K = 1
//    identity exact rather than approximate.
//
// Only dl_scheme::strang_cn is supported on non-line domains; other
// schemes are rejected with the domain's label in the message.
#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/dl_solver.h"
#include "core/dl_solver_internal.h"
#include "core/dl_workspace.h"
#include "numerics/grid.h"
#include "numerics/tridiagonal.h"

namespace dlm::core::detail {
namespace {

void require_strang(const dl_parameters& params,
                    const dl_solver_options& options) {
  if (options.scheme != dl_scheme::strang_cn)
    throw std::invalid_argument("solve_dl: domain '" + params.dom.label() +
                                "' supports only the strang-cn scheme (got " +
                                to_string(options.scheme) + ")");
}

/// Snapshot recording state shared by both solvers — the same cadence
/// expressions as the 1-D line, so record times match across domains.
struct recorder {
  std::vector<double> times;
  trace_storage trace;
  double next_record;
  double record_dt;

  recorder(std::size_t n, std::size_t total_steps, double t0, double t_end,
           const dl_solver_options& options)
      : trace(n), next_record(t0 + options.record_dt),
        record_dt(options.record_dt) {
    std::size_t max_records = total_steps;
    if (options.record_dt > 0.0) {
      const double est = (t_end - t0) / options.record_dt;
      if (est < static_cast<double>(total_steps))
        max_records = static_cast<std::size_t>(est) + 1;
    }
    times.reserve(max_records + 2);
    trace.reserve(max_records + 2);
  }

  void record_if_due(double t_new, bool last_step,
                     const std::vector<double>& u) {
    if (t_new + 1e-12 >= next_record || last_step) {
      times.push_back(t_new);
      trace.append_row(u);
      while (next_record <= t_new + 1e-12) next_record += record_dt;
    }
  }
};

}  // namespace

std::vector<double> broadcast_profile(const dl_parameters& params,
                                      std::span<const double> x_profile,
                                      const dl_solver_options& options) {
  const domain& dom = params.dom;
  const std::size_t nx = x_profile.size();
  const std::size_t blocks = dom.blocks(options.points_per_unit);
  std::vector<double> full(nx * blocks);
  for (std::size_t blk = 0; blk < blocks; ++blk) {
    const double scale = (dom.kind == domain_kind::communities &&
                          !dom.scales.empty())
                             ? dom.scales[blk]
                             : 1.0;
    for (std::size_t i = 0; i < nx; ++i)
      full[blk * nx + i] = x_profile[i] * scale;
  }
  return full;
}

dl_solution solve_dl_grid2d(const dl_parameters& params,
                            std::span<const double> phi_samples, double t0,
                            double t_end, const dl_solver_options& options,
                            dl_workspace& ws) {
  require_strang(params, options);
  const std::size_t nx = node_count(params, options);
  const std::size_t ny = params.dom.blocks(options.points_per_unit);
  const std::size_t n = nx * ny;
  if (phi_samples.size() != n)
    throw std::invalid_argument("solve_dl_profile: profile size mismatch");

  const num::uniform_grid grid(params.x_min, params.x_max, nx);
  const num::uniform_grid y_grid(params.dom.y_min, params.dom.y_max, ny);
  const double dx = grid.spacing();
  const double dy = y_grid.spacing();

  const workspace_guard guard(ws.in_use);
  ws.prepare(n);
  std::vector<double>& u = ws.u;
  std::vector<double>& u_star = ws.u_next;  ///< ADI intermediate u*
  std::vector<double>& col = ws.scratch;    ///< gathered y column (≥ ny)
  u.assign(phi_samples.begin(), phi_samples.end());

  // The growth rate lives on the x axis (r(x, t), uniform in y), so rate
  // buffers span nx nodes, not n.
  for (std::size_t i = 0; i < nx; ++i) ws.node_x[i] = grid.x(i);
  const rate_sampler sampler(
      params.r, std::span<const double>(ws.node_x.data(), nx),
      std::span<double>(ws.mod.data(), nx), ws.rate_scratch);
  const std::span<double> r_int(ws.r_int.data(), nx);
  const std::span<double> rt(ws.rt.data(), nx);

  // One tridiagonal operator pair per axis; both LHS factorizations are
  // cached for the whole run (rebuilt only for a short trailing step).
  const auto build_operators = [&](double h) {
    ws.cn_lhs.resize(nx);
    ws.cn_rhs.resize(nx);
    build_cn_matrices(nx, params.d * h / (dx * dx), ws.cn_lhs, ws.cn_rhs);
    ws.cn_factor.factor(ws.cn_lhs);
    ws.cn_lhs_y.resize(ny);
    ws.cn_rhs_y.resize(ny);
    build_cn_matrices(ny, params.d * h / (dy * dy), ws.cn_lhs_y, ws.cn_rhs_y);
    ws.cn_factor_y.factor(ws.cn_lhs_y);
  };
  build_operators(options.dt);

  const double kk = params.k;
  /// Exact-logistic reaction half-step over the whole grid; `rates[i]` is
  /// the integrated rate of x node i (one shared exp when uniform in x).
  const auto react = [&](std::span<const double> rates) {
    if (sampler.uniform()) {
      const double growth = std::exp(rates[0]);
      for (std::size_t idx = 0; idx < n; ++idx)
        u[idx] = logistic_exact_with_growth(u[idx], growth, kk);
    } else {
      for (std::size_t j = 0; j < ny; ++j)
        for (std::size_t i = 0; i < nx; ++i)
          u[j * nx + i] = logistic_exact(u[j * nx + i], rates[i], kk);
    }
  };

  const std::size_t total_steps = static_cast<std::size_t>(
      std::ceil((t_end - t0) / options.dt - 1e-12));
  recorder rec(n, total_steps, t0, t_end, options);
  rec.times.push_back(t0);
  rec.trace.append_row(u);

  const num::tridiagonal_matrix& ax = ws.cn_rhs;    // I + (λx/2)Ax
  const num::tridiagonal_matrix& ay = ws.cn_rhs_y;  // I + (λy/2)Ay
  for (std::size_t step = 0; step < total_steps; ++step) {
    const double t = t0 + static_cast<double>(step) * options.dt;
    const double h = std::min(options.dt, t_end - t);
    if (h <= 0.0) break;
    if (h != options.dt) build_operators(h);

    sampler.integrals_over(t, t + 0.5 * h, r_int);
    sampler.integrals_over(t + 0.5 * h, t + h, rt);
    react(r_int);

    // ADI pass 1: explicit y operator, implicit x solve row by row.
    for (std::size_t j = 0; j < ny; ++j) {
      const double* row = u.data() + j * nx;
      const double* below = j > 0 ? row - nx : nullptr;
      const double* above = j + 1 < ny ? row + nx : nullptr;
      double* out = u_star.data() + j * nx;
      for (std::size_t i = 0; i < nx; ++i) {
        double acc = ay.diag[j] * row[i];
        if (below != nullptr) acc += ay.lower[j - 1] * below[i];
        if (above != nullptr) acc += ay.upper[j] * above[i];
        out[i] = acc;
      }
      ws.cn_factor.solve_in_place(std::span<double>(out, nx));
    }

    // ADI pass 2: explicit x operator, implicit y solve column by column.
    for (std::size_t j = 0; j < ny; ++j) {
      const double* row = u_star.data() + j * nx;
      double* out = u.data() + j * nx;
      for (std::size_t i = 0; i < nx; ++i) {
        double acc = ax.diag[i] * row[i];
        if (i > 0) acc += ax.lower[i - 1] * row[i - 1];
        if (i + 1 < nx) acc += ax.upper[i] * row[i + 1];
        out[i] = acc;
      }
    }
    for (std::size_t i = 0; i < nx; ++i) {
      for (std::size_t j = 0; j < ny; ++j) col[j] = u[j * nx + i];
      ws.cn_factor_y.solve_in_place(std::span<double>(col.data(), ny));
      for (std::size_t j = 0; j < ny; ++j) u[j * nx + i] = col[j];
    }

    react(rt);
    rec.record_if_due(t + h, step + 1 == total_steps, u);
  }

  return dl_solution(grid, std::move(rec.times), std::move(rec.trace), ny);
}

dl_solution solve_dl_communities(const dl_parameters& params,
                                 std::span<const double> phi_samples,
                                 double t0, double t_end,
                                 const dl_solver_options& options,
                                 dl_workspace& ws) {
  require_strang(params, options);
  const std::size_t nx = node_count(params, options);
  const std::size_t kc = params.dom.community_count;
  const std::size_t n = nx * kc;
  if (phi_samples.size() != n)
    throw std::invalid_argument("solve_dl_profile: profile size mismatch");

  const num::uniform_grid grid(params.x_min, params.x_max, nx);
  const double dx = grid.spacing();

  const workspace_guard guard(ws.in_use);
  ws.prepare(n);
  std::vector<double>& u = ws.u;
  std::vector<double>& pre_mix = ws.u_next;
  u.assign(phi_samples.begin(), phi_samples.end());

  for (std::size_t i = 0; i < nx; ++i) ws.node_x[i] = grid.x(i);
  const rate_sampler sampler(
      params.r, std::span<const double>(ws.node_x.data(), nx),
      std::span<double>(ws.mod.data(), nx), ws.rate_scratch);
  const std::span<double> r_int(ws.r_int.data(), nx);
  const std::span<double> rt(ws.rt.data(), nx);

  // One nx-sized Strang–CN operator shared by every community (same d,
  // dx, dt).  For K = 1 this is exactly the line path's matrix build.
  const auto build_operators = [&](double h) {
    ws.cn_lhs.resize(nx);
    ws.cn_rhs.resize(nx);
    build_cn_matrices(nx, params.d * h / (dx * dx), ws.cn_lhs, ws.cn_rhs);
    ws.cn_factor.factor(ws.cn_lhs);
  };
  build_operators(options.dt);

  // The mixing substep is skipped when it cannot change anything — this
  // is what makes a K = 1 run bitwise identical to the plain 1-D line.
  const bool mixing_on = kc > 1 && params.dom.has_mixing();
  const std::vector<double>& mix = params.dom.mixing;

  const std::size_t total_steps = static_cast<std::size_t>(
      std::ceil((t_end - t0) / options.dt - 1e-12));
  recorder rec(n, total_steps, t0, t_end, options);
  rec.times.push_back(t0);
  rec.trace.append_row(u);

  for (std::size_t step = 0; step < total_steps; ++step) {
    const double t = t0 + static_cast<double>(step) * options.dt;
    const double h = std::min(options.dt, t_end - t);
    if (h <= 0.0) break;
    if (h != options.dt) build_operators(h);

    sampler.integrals_over(t, t + 0.5 * h, r_int);
    sampler.integrals_over(t + 0.5 * h, t + h, rt);
    for (std::size_t c = 0; c < kc; ++c)
      strang_cn_step(nx, u.data() + c * nx, ws.rhs.data(), ws.cn_rhs,
                     ws.cn_factor, sampler.uniform(), r_int.data(), rt.data(),
                     params.k);

    if (mixing_on) {
      // Explicit-Euler exchange against the pre-mixing state, so the
      // update is symmetric in community order (and deterministic).
      pre_mix.assign(u.begin(), u.end());
      for (std::size_t c = 0; c < kc; ++c) {
        double* dst = u.data() + c * nx;
        const double* own = pre_mix.data() + c * nx;
        for (std::size_t c2 = 0; c2 < kc; ++c2) {
          if (c2 == c) continue;
          const double rate = mix[c * kc + c2];
          if (rate == 0.0) continue;
          const double* other = pre_mix.data() + c2 * nx;
          for (std::size_t i = 0; i < nx; ++i)
            dst[i] += h * rate * (other[i] - own[i]);
        }
      }
    }

    rec.record_if_due(t + h, step + 1 == total_steps, u);
  }

  return dl_solution(grid, std::move(rec.times), std::move(rec.trace), kc);
}

}  // namespace dlm::core::detail
