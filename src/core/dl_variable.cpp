#include "core/dl_variable.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dlm::core {

dl_variable_parameters dl_variable_parameters::from_constant(
    const dl_parameters& params) {
  params.validate();
  dl_variable_parameters out;
  const rate_field rate = params.r;
  out.r = [rate](double x, double t) { return rate(x, t); };
  const double d_value = params.d;
  out.d = [d_value](double) { return d_value; };
  const double k_value = params.k;
  out.k = [k_value](double) { return k_value; };
  out.x_min = params.x_min;
  out.x_max = params.x_max;
  return out;
}

void dl_variable_parameters::validate() const {
  if (!r || !d || !k)
    throw std::invalid_argument("dl_variable_parameters: missing coefficient");
  if (!(x_min < x_max))
    throw std::invalid_argument("dl_variable_parameters: bad domain");
}

dl_solution solve_dl_variable_profile(const dl_variable_parameters& params,
                                      std::span<const double> phi_samples,
                                      double t0, double t_end,
                                      const dl_variable_options& options) {
  params.validate();
  if (!(t_end > t0))
    throw std::invalid_argument("solve_dl_variable: t_end must exceed t0");
  if (!(options.dt > 0.0))
    throw std::invalid_argument("solve_dl_variable: dt must be positive");

  const double units = params.x_max - params.x_min;
  const auto intervals = static_cast<std::size_t>(std::lround(
      units * static_cast<double>(options.points_per_unit)));
  if (intervals == 0)
    throw std::invalid_argument("solve_dl_variable: degenerate domain");
  const std::size_t n = intervals + 1;
  if (phi_samples.size() != n)
    throw std::invalid_argument("solve_dl_variable: profile size mismatch");

  const num::uniform_grid grid(params.x_min, params.x_max, n);
  const double dx = grid.spacing();

  // Precompute nodal capacities and half-point diffusion coefficients.
  std::vector<double> k_at(n), d_half(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    k_at[i] = params.k(grid.x(i));
    if (!(k_at[i] > 0.0))
      throw std::invalid_argument("solve_dl_variable: K(x) must be positive");
  }
  double d_max = 0.0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double d_mid = params.d(0.5 * (grid.x(i) + grid.x(i + 1)));
    if (d_mid < 0.0)
      throw std::invalid_argument("solve_dl_variable: d(x) must be >= 0");
    d_half[i] = d_mid;
    d_max = std::max(d_max, d_mid);
  }
  // Explicit RK4 diffusion stability: λ = d·dt/dx² must stay below ≈0.69
  // (the RK4 stability interval on the negative real axis is ~2.78, and
  // the Neumann Laplacian's extreme eigenvalue is −4/dx²).
  if (d_max > 0.0 && options.dt > 0.6 * dx * dx / d_max) {
    throw std::invalid_argument(
        "solve_dl_variable: dt too large for explicit stability; need dt <= "
        + std::to_string(0.6 * dx * dx / d_max));
  }

  // Conservative-form RHS: flux differences plus local logistic growth.
  // No-flux boundaries: the boundary fluxes are identically zero.
  const auto rhs = [&](double t, std::span<const double> u,
                       std::span<double> dudt) {
    const double inv_dx2 = 1.0 / (dx * dx);
    for (std::size_t i = 0; i < n; ++i) {
      const double flux_right =
          (i + 1 < n) ? d_half[i] * (u[i + 1] - u[i]) : 0.0;
      const double flux_left = (i > 0) ? d_half[i - 1] * (u[i] - u[i - 1]) : 0.0;
      const double diffusion = (flux_right - flux_left) * inv_dx2;
      const double growth =
          params.r(grid.x(i), t) * u[i] * (1.0 - u[i] / k_at[i]);
      dudt[i] = diffusion + growth;
    }
  };

  std::vector<double> u(phi_samples.begin(), phi_samples.end());
  std::vector<double> k1(n), k2(n), k3(n), k4(n), tmp(n);

  std::vector<double> times{t0};
  trace_storage states(n);
  states.append_row(u);
  double next_record = t0 + options.record_dt;

  const auto total_steps = static_cast<std::size_t>(
      std::ceil((t_end - t0) / options.dt - 1e-12));
  for (std::size_t step = 0; step < total_steps; ++step) {
    const double t = t0 + static_cast<double>(step) * options.dt;
    const double h = std::min(options.dt, t_end - t);
    if (h <= 0.0) break;

    rhs(t, u, k1);
    for (std::size_t i = 0; i < n; ++i) tmp[i] = u[i] + 0.5 * h * k1[i];
    rhs(t + 0.5 * h, tmp, k2);
    for (std::size_t i = 0; i < n; ++i) tmp[i] = u[i] + 0.5 * h * k2[i];
    rhs(t + 0.5 * h, tmp, k3);
    for (std::size_t i = 0; i < n; ++i) tmp[i] = u[i] + h * k3[i];
    rhs(t + h, tmp, k4);
    for (std::size_t i = 0; i < n; ++i)
      u[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);

    const double t_new = t + h;
    if (t_new + 1e-12 >= next_record || step + 1 == total_steps) {
      times.push_back(t_new);
      states.append_row(u);
      while (next_record <= t_new + 1e-12) next_record += options.record_dt;
    }
  }
  return dl_solution(grid, std::move(times), std::move(states));
}

dl_solution solve_dl_variable(const dl_variable_parameters& params,
                              const initial_condition& phi, double t0,
                              double t_end,
                              const dl_variable_options& options) {
  params.validate();
  const double units = params.x_max - params.x_min;
  const auto intervals = static_cast<std::size_t>(std::lround(
      units * static_cast<double>(options.points_per_unit)));
  std::vector<double> samples =
      phi.sample(params.x_min, params.x_max, intervals + 1);
  for (double& v : samples) v = std::max(v, 0.0);
  return solve_dl_variable_profile(params, samples, t0, t_end, options);
}

std::vector<double> fit_rate_profile(std::span<const double> initial,
                                     std::span<const double> observed_at_tobs,
                                     const growth_rate& base_rate, double k,
                                     double t0, double t_obs) {
  if (initial.size() != observed_at_tobs.size())
    throw std::invalid_argument("fit_rate_profile: size mismatch");
  if (!(t_obs > t0))
    throw std::invalid_argument("fit_rate_profile: t_obs must exceed t0");
  if (!(k > 0.0))
    throw std::invalid_argument("fit_rate_profile: K must be positive");

  const double base_integral = base_rate.integral(t0, t_obs);
  std::vector<double> multipliers(initial.size(), 1.0);
  for (std::size_t i = 0; i < initial.size(); ++i) {
    if (initial[i] <= 0.0 || observed_at_tobs[i] <= initial[i]) continue;
    // Logistic-braking correction with the window-average density.
    const double mean_density = 0.5 * (initial[i] + observed_at_tobs[i]);
    const double braking = std::max(1.0 - mean_density / k, 1e-3);
    const double log_growth = std::log(observed_at_tobs[i] / initial[i]);
    multipliers[i] =
        std::max(0.0, log_growth / (base_integral * braking));
  }
  return multipliers;
}

std::function<double(double, double)> scaled_rate_field(
    std::vector<double> multipliers, growth_rate base_rate, double x_min) {
  if (multipliers.empty())
    throw std::invalid_argument("scaled_rate_field: no multipliers");
  return [m = std::move(multipliers), base = std::move(base_rate),
          x_min](double x, double t) {
    const double pos = x - x_min;
    const auto lo = static_cast<std::size_t>(std::clamp(
        pos, 0.0, static_cast<double>(m.size() - 1)));
    const std::size_t hi = std::min(lo + 1, m.size() - 1);
    const double frac = std::clamp(pos - static_cast<double>(lo), 0.0, 1.0);
    const double mult = m[lo] * (1.0 - frac) + m[hi] * frac;
    return mult * base(t);
  };
}

}  // namespace dlm::core
