#include "core/dl_solver.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "numerics/integrate.h"
#include "numerics/tridiagonal.h"

namespace dlm::core {
namespace {

/// Exact logistic propagator: N ← K·N·e^R / (K + N·(e^R − 1)) where R is
/// the integrated rate over the step.  Maps [0, K] into [0, K] for R ≥ 0.
double logistic_exact(double n, double integrated_rate, double k) {
  if (n <= 0.0) return n;
  const double growth = std::exp(integrated_rate);
  return k * n * growth / (k + n * (growth - 1.0));
}

std::size_t node_count(const dl_parameters& params,
                       const dl_solver_options& options) {
  const double units = params.x_max - params.x_min;
  const auto intervals = static_cast<std::size_t>(
      std::lround(units * static_cast<double>(options.points_per_unit)));
  if (intervals == 0)
    throw std::invalid_argument("dl_solver: domain shorter than one cell");
  return intervals + 1;
}

/// CN diffusion matrices: lhs = I − (λ/2)A, rhs-matrix = I + (λ/2)A with
/// the mirror-ghost Neumann Laplacian A (dx² folded into λ).
void build_cn_matrices(std::size_t n, double lambda,
                       num::tridiagonal_matrix& lhs,
                       num::tridiagonal_matrix& rhs) {
  for (std::size_t i = 0; i < n; ++i) {
    double off_l = 1.0, off_r = 1.0;
    if (i == 0) off_r = 2.0;
    if (i + 1 == n) off_l = 2.0;
    lhs.diag[i] = 1.0 + lambda;
    rhs.diag[i] = 1.0 - lambda;
    if (i + 1 < n) {
      lhs.upper[i] = -0.5 * lambda * off_r;
      rhs.upper[i] = 0.5 * lambda * off_r;
    }
    if (i > 0) {
      lhs.lower[i - 1] = -0.5 * lambda * off_l;
      rhs.lower[i - 1] = 0.5 * lambda * off_l;
    }
  }
}

}  // namespace

std::string to_string(dl_scheme scheme) {
  switch (scheme) {
    case dl_scheme::ftcs: return "ftcs";
    case dl_scheme::strang_cn: return "strang-cn";
    case dl_scheme::implicit_newton: return "implicit-newton";
    case dl_scheme::mol_rk4: return "mol-rk4";
  }
  return "unknown";
}

void neumann_laplacian(std::span<const double> u, double dx,
                       std::span<double> out) {
  const std::size_t n = u.size();
  if (out.size() != n)
    throw std::invalid_argument("neumann_laplacian: size mismatch");
  if (n < 2) throw std::invalid_argument("neumann_laplacian: need >= 2 nodes");
  const double inv = 1.0 / (dx * dx);
  out[0] = 2.0 * (u[1] - u[0]) * inv;
  for (std::size_t i = 1; i + 1 < n; ++i)
    out[i] = (u[i - 1] - 2.0 * u[i] + u[i + 1]) * inv;
  out[n - 1] = 2.0 * (u[n - 2] - u[n - 1]) * inv;
}

dl_solution::dl_solution(num::uniform_grid grid, std::vector<double> times,
                         std::vector<std::vector<double>> states)
    : grid_(grid), times_(std::move(times)), states_(std::move(states)) {
  if (times_.empty() || times_.size() != states_.size())
    throw std::invalid_argument("dl_solution: times/states mismatch");
}

double dl_solution::at(double x, double t) const {
  if (!grid_.contains(x))
    throw std::out_of_range("dl_solution::at: x outside the domain");
  if (t < times_.front() - 1e-12 || t > times_.back() + 1e-12)
    throw std::out_of_range("dl_solution::at: t outside the solved range");
  t = std::clamp(t, times_.front(), times_.back());

  // Bracketing snapshots.
  const auto upper =
      std::lower_bound(times_.begin(), times_.end(), t);
  std::size_t hi = upper == times_.end()
                       ? times_.size() - 1
                       : static_cast<std::size_t>(upper - times_.begin());
  if (hi == 0) hi = 1;
  const std::size_t lo = hi - 1;
  const double w = (times_[hi] > times_[lo])
                       ? (t - times_[lo]) / (times_[hi] - times_[lo])
                       : 1.0;

  // Linear interpolation in x within each snapshot.
  const auto value_in = [&](const std::vector<double>& state) {
    const double pos = (x - grid_.lower()) / grid_.spacing();
    const auto i = static_cast<std::size_t>(
        std::clamp(pos, 0.0, static_cast<double>(grid_.points() - 1)));
    const std::size_t j = std::min(i + 1, grid_.points() - 1);
    const double frac = std::clamp(pos - static_cast<double>(i), 0.0, 1.0);
    return state[i] * (1.0 - frac) + state[j] * frac;
  };
  return (1.0 - w) * value_in(states_[lo]) + w * value_in(states_[hi]);
}

std::vector<double> dl_solution::profile_at(double t) const {
  std::vector<double> out(grid_.points());
  for (std::size_t i = 0; i < grid_.points(); ++i) out[i] = at(grid_.x(i), t);
  return out;
}

std::vector<double> dl_solution::at_integer_distances(double t, int x_from,
                                                      int x_to) const {
  if (x_from > x_to)
    throw std::invalid_argument("at_integer_distances: empty range");
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(x_to - x_from + 1));
  for (int x = x_from; x <= x_to; ++x)
    out.push_back(at(static_cast<double>(x), t));
  return out;
}

double dl_solution::max_abs() const {
  double best = 0.0;
  for (const auto& state : states_) {
    for (double v : state) best = std::max(best, std::abs(v));
  }
  return best;
}

dl_solution solve_dl_profile(const dl_parameters& params,
                             std::span<const double> phi_samples, double t0,
                             double t_end, const dl_solver_options& options) {
  params.validate();
  if (!(t_end > t0))
    throw std::invalid_argument("solve_dl: t_end must exceed t0");
  if (!(options.dt > 0.0))
    throw std::invalid_argument("solve_dl: dt must be positive");
  const std::size_t n = node_count(params, options);
  if (phi_samples.size() != n)
    throw std::invalid_argument("solve_dl_profile: profile size mismatch");

  const num::uniform_grid grid(params.x_min, params.x_max, n);
  const double dx = grid.spacing();

  if (options.scheme == dl_scheme::ftcs && params.d > 0.0) {
    const double dt_max = dx * dx / (2.0 * params.d);
    if (options.dt > dt_max)
      throw std::invalid_argument(
          "solve_dl: FTCS unstable for dt > dx^2/(2d) = " +
          std::to_string(dt_max));
  }

  std::vector<double> u(phi_samples.begin(), phi_samples.end());
  std::vector<double> lap(n), scratch(n), rhs_vec(n);

  // Per-node growth rates.  For separable-form fields — every r(t)-only
  // run and the "spatial:<base>|m,..." family — the spatial profile is
  // hoisted out of the time loop: one base evaluation (or base integral)
  // plus n multiplies per step, so the pre-r(x,t) fast path is preserved.
  const rate_field& rate = params.r;
  std::vector<double> node_x(n);
  for (std::size_t i = 0; i < n; ++i) node_x[i] = grid.x(i);
  const bool factored = rate.separable_form();
  std::vector<double> mod;
  if (factored) {
    mod.resize(n);
    for (std::size_t i = 0; i < n; ++i) mod[i] = rate.modulation(node_x[i]);
  }
  std::vector<double> rt(n), r_int(n);
  const auto rates_at = [&](double t, std::span<double> out) {
    if (factored) {
      const double base = rate.base()(t);
      for (std::size_t i = 0; i < n; ++i) out[i] = mod[i] * base;
    } else {
      rate.profile(t, node_x, out);
    }
  };
  const auto integrals_over = [&](double from, double to,
                                  std::span<double> out) {
    if (factored) {
      const double base = rate.base().integral(from, to);
      for (std::size_t i = 0; i < n; ++i) out[i] = mod[i] * base;
    } else {
      rate.integral_profile(from, to, node_x, out);
    }
  };

  // Pre-built CN matrices for the Strang scheme.
  num::tridiagonal_matrix cn_lhs(n), cn_rhs(n);
  if (options.scheme == dl_scheme::strang_cn) {
    const double lambda = params.d * options.dt / (dx * dx);
    build_cn_matrices(n, lambda, cn_lhs, cn_rhs);
  }

  std::vector<double> times{t0};
  std::vector<std::vector<double>> states{u};
  double next_record = t0 + options.record_dt;

  const std::size_t total_steps = static_cast<std::size_t>(
      std::ceil((t_end - t0) / options.dt - 1e-12));

  std::vector<double> rt_react(n);
  const auto reaction = [&](double t, std::span<const double> y,
                            std::span<double> dydt) {
    neumann_laplacian(y, dx, dydt);
    rates_at(t, rt_react);
    for (std::size_t i = 0; i < y.size(); ++i)
      dydt[i] =
          params.d * dydt[i] + rt_react[i] * y[i] * (1.0 - y[i] / params.k);
  };

  std::vector<double> u_next(n);

  // Newton scratch for the implicit scheme: every entry is overwritten
  // each iteration, so one allocation serves the whole run.
  num::tridiagonal_matrix jac(n);
  std::vector<double> g(n);

  for (std::size_t step = 0; step < total_steps; ++step) {
    const double t = t0 + static_cast<double>(step) * options.dt;
    const double h = std::min(options.dt, t_end - t);
    if (h <= 0.0) break;

    switch (options.scheme) {
      case dl_scheme::ftcs: {
        neumann_laplacian(u, dx, lap);
        rates_at(t, rt);
        for (std::size_t i = 0; i < n; ++i)
          u[i] += h * (params.d * lap[i] +
                       rt[i] * u[i] * (1.0 - u[i] / params.k));
        break;
      }
      case dl_scheme::strang_cn: {
        // Reaction half-step (exact logistic with the per-node integrated
        // rate ∫ r(x_i, s) ds).
        integrals_over(t, t + 0.5 * h, r_int);
        for (std::size_t i = 0; i < n; ++i)
          u[i] = logistic_exact(u[i], r_int[i], params.k);
        // Diffusion full step (Crank–Nicolson).  Matrices were built for
        // options.dt; rebuild for a short trailing step.
        if (h != options.dt) {
          const double lambda = params.d * h / (dx * dx);
          build_cn_matrices(n, lambda, cn_lhs, cn_rhs);
        }
        rhs_vec = cn_rhs.multiply(u);
        num::solve_tridiagonal_in_place(cn_lhs, rhs_vec, scratch);
        u = rhs_vec;
        // Reaction half-step.
        integrals_over(t + 0.5 * h, t + h, r_int);
        for (std::size_t i = 0; i < n; ++i)
          u[i] = logistic_exact(u[i], r_int[i], params.k);
        break;
      }
      case dl_scheme::implicit_newton: {
        // Backward Euler: solve u_next - u - h*(d*A u_next + f(u_next)) = 0.
        const double t_next = t + h;
        rates_at(t_next, rt);
        u_next = u;  // warm start
        bool converged = false;
        for (int it = 0; it < options.newton_max_iter; ++it) {
          neumann_laplacian(u_next, dx, lap);
          double g_norm = 0.0;
          for (std::size_t i = 0; i < n; ++i) {
            g[i] = u_next[i] - u[i] -
                   h * (params.d * lap[i] +
                        rt[i] * u_next[i] * (1.0 - u_next[i] / params.k));
            g_norm = std::max(g_norm, std::abs(g[i]));
          }
          if (g_norm <= options.newton_tol) {
            converged = true;
            break;
          }
          // Jacobian: I − h·(d·A + diag(r·(1 − 2u/K))).
          const double mu = h * params.d / (dx * dx);
          for (std::size_t i = 0; i < n; ++i) {
            jac.diag[i] = 1.0 + 2.0 * mu -
                          h * rt[i] * (1.0 - 2.0 * u_next[i] / params.k);
            if (i + 1 < n) jac.upper[i] = -mu * (i == 0 ? 2.0 : 1.0);
            if (i > 0) jac.lower[i - 1] = -mu * (i + 1 == n ? 2.0 : 1.0);
          }
          num::solve_tridiagonal_in_place(jac, g, scratch);
          for (std::size_t i = 0; i < n; ++i) u_next[i] -= g[i];
        }
        if (!converged) {
          // Accept the last iterate; the step size is small enough in
          // practice that Newton stalls only at negligible residuals.
        }
        u = u_next;
        break;
      }
      case dl_scheme::mol_rk4: {
        num::rk4_step(reaction, t, u, h, u_next);
        u.swap(u_next);
        break;
      }
    }

    const double t_new = t + h;
    if (t_new + 1e-12 >= next_record || step + 1 == total_steps) {
      times.push_back(t_new);
      states.push_back(u);
      while (next_record <= t_new + 1e-12) next_record += options.record_dt;
    }
  }

  return dl_solution(grid, std::move(times), std::move(states));
}

dl_solution solve_dl(const dl_parameters& params, const initial_condition& phi,
                     double t0, double t_end,
                     const dl_solver_options& options) {
  params.validate();
  const std::size_t n = node_count(params, options);
  std::vector<double> samples = phi.sample(params.x_min, params.x_max, n);
  // Densities are non-negative (paper §II.D); a cubic interpolant may
  // undershoot slightly between sparse knots, so clip at zero.
  for (double& v : samples) v = std::max(v, 0.0);
  return solve_dl_profile(params, samples, t0, t_end, options);
}

}  // namespace dlm::core
