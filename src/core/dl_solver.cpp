#include "core/dl_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/dl_solver_internal.h"
#include "core/dl_workspace.h"
#include "numerics/integrate.h"
#include "numerics/tridiagonal.h"

namespace dlm::core {
namespace {

// The per-node arithmetic (logistic propagator, CN matrix entries, node
// count, rate sampling, the fused Strang–CN sweep) lives in
// dl_solver_internal.h, shared verbatim with the batched SoA solver and
// the domain solvers so every path is the same IEEE operation sequence.
using detail::build_cn_matrices;
using detail::node_count;
using detail::rate_sampler;
using detail::workspace_guard;

}  // namespace

std::string to_string(dl_scheme scheme) {
  switch (scheme) {
    case dl_scheme::ftcs: return "ftcs";
    case dl_scheme::strang_cn: return "strang-cn";
    case dl_scheme::implicit_newton: return "implicit-newton";
    case dl_scheme::mol_rk4: return "mol-rk4";
  }
  return "unknown";
}

void neumann_laplacian(std::span<const double> u, double dx,
                       std::span<double> out) {
  const std::size_t n = u.size();
  if (out.size() != n)
    throw std::invalid_argument("neumann_laplacian: size mismatch");
  if (n < 2) throw std::invalid_argument("neumann_laplacian: need >= 2 nodes");
  const double inv = 1.0 / (dx * dx);
  out[0] = 2.0 * (u[1] - u[0]) * inv;
  for (std::size_t i = 1; i + 1 < n; ++i)
    out[i] = (u[i - 1] - 2.0 * u[i] + u[i + 1]) * inv;
  out[n - 1] = 2.0 * (u[n - 2] - u[n - 1]) * inv;
}

dl_solution::dl_solution(num::uniform_grid grid, std::vector<double> times,
                         trace_storage states, std::size_t blocks)
    : grid_(grid),
      times_(std::move(times)),
      states_(std::move(states)),
      blocks_(blocks) {
  if (times_.empty() || times_.size() != states_.size())
    throw std::invalid_argument("dl_solution: times/states mismatch");
  if (blocks_ == 0 || states_.cols() != grid_.points() * blocks_)
    throw std::invalid_argument("dl_solution: grid/blocks/row-width mismatch");
}

dl_solution::dl_solution(num::uniform_grid grid, std::vector<double> times,
                         const std::vector<std::vector<double>>& states)
    : grid_(grid), times_(std::move(times)) {
  if (times_.empty() || times_.size() != states.size())
    throw std::invalid_argument("dl_solution: times/states mismatch");
  trace_storage packed(states.front().size());
  packed.reserve(states.size());
  for (const std::vector<double>& row : states) packed.append_row(row);
  states_ = std::move(packed);
}

dl_solution::time_bracket dl_solution::bracket_time(double t) const {
  if (t < times_.front() - 1e-12 || t > times_.back() + 1e-12)
    throw std::out_of_range("dl_solution::at: t outside the solved range");
  t = std::clamp(t, times_.front(), times_.back());

  const auto upper = std::lower_bound(times_.begin(), times_.end(), t);
  std::size_t hi = upper == times_.end()
                       ? times_.size() - 1
                       : static_cast<std::size_t>(upper - times_.begin());
  if (hi == 0) hi = 1;
  const std::size_t lo = hi - 1;
  const double w = (times_[hi] > times_[lo])
                       ? (t - times_[lo]) / (times_[hi] - times_[lo])
                       : 1.0;
  return {lo, hi, w};
}

double dl_solution::value_at(double x, const time_bracket& b) const {
  // Linear interpolation in x within each bracketing snapshot; the x
  // weights depend only on x, so they are computed once for both rows.
  const double pos = (x - grid_.lower()) / grid_.spacing();
  const auto i = static_cast<std::size_t>(
      std::clamp(pos, 0.0, static_cast<double>(grid_.points() - 1)));
  const std::size_t j = std::min(i + 1, grid_.points() - 1);
  const double frac = std::clamp(pos - static_cast<double>(i), 0.0, 1.0);
  const std::span<const double> lo = states_[b.lo];
  const std::span<const double> hi = states_[b.hi];
  if (blocks_ == 1) {
    const double in_lo = lo[i] * (1.0 - frac) + lo[j] * frac;
    const double in_hi = hi[i] * (1.0 - frac) + hi[j] * frac;
    return (1.0 - b.w) * in_lo + b.w * in_hi;
  }
  // Non-line domain: the 1-D consumers see the mean over the stacked
  // blocks (grid2d y rows / communities) at this x — a deterministic
  // fixed-order reduction, so cached traces replay byte-identically.
  const std::size_t nx = grid_.points();
  double sum = 0.0;
  for (std::size_t blk = 0; blk < blocks_; ++blk) {
    const std::size_t base = blk * nx;
    const double in_lo = lo[base + i] * (1.0 - frac) + lo[base + j] * frac;
    const double in_hi = hi[base + i] * (1.0 - frac) + hi[base + j] * frac;
    sum += (1.0 - b.w) * in_lo + b.w * in_hi;
  }
  return sum / static_cast<double>(blocks_);
}

double dl_solution::at(double x, double t) const {
  if (!grid_.contains(x))
    throw std::out_of_range("dl_solution::at: x outside the domain");
  return value_at(x, bracket_time(t));
}

std::vector<double> dl_solution::profile_at(double t) const {
  // One time bracket for the whole profile — the old per-node at() calls
  // re-ran the lower_bound bracketing grid.points() times.
  const time_bracket b = bracket_time(t);
  std::vector<double> out(grid_.points());
  for (std::size_t i = 0; i < grid_.points(); ++i)
    out[i] = value_at(grid_.x(i), b);
  return out;
}

std::vector<double> dl_solution::at_integer_distances(double t, int x_from,
                                                      int x_to) const {
  if (x_from > x_to)
    throw std::invalid_argument("at_integer_distances: empty range");
  std::vector<double> out(static_cast<std::size_t>(x_to - x_from + 1));
  at_integer_distances(t, x_from, x_to, out);
  return out;
}

void dl_solution::at_integer_distances(double t, int x_from, int x_to,
                                       std::span<double> out) const {
  if (x_from > x_to)
    throw std::invalid_argument("at_integer_distances: empty range");
  if (out.size() != static_cast<std::size_t>(x_to - x_from + 1))
    throw std::invalid_argument("at_integer_distances: output size mismatch");
  const time_bracket b = bracket_time(t);  // bracket once, not per distance
  for (int x = x_from; x <= x_to; ++x) {
    const double xd = static_cast<double>(x);
    if (!grid_.contains(xd))
      throw std::out_of_range("dl_solution::at: x outside the domain");
    out[static_cast<std::size_t>(x - x_from)] = value_at(xd, b);
  }
}

double dl_solution::max_abs() const {
  double best = 0.0;
  for (double v : states_.data()) best = std::max(best, std::abs(v));
  return best;
}

dl_solution solve_dl_profile(const dl_parameters& params,
                             std::span<const double> phi_samples, double t0,
                             double t_end, const dl_solver_options& options,
                             dl_workspace& ws) {
  params.validate();
  if (!(t_end > t0))
    throw std::invalid_argument("solve_dl: t_end must exceed t0");
  if (!(options.dt > 0.0))
    throw std::invalid_argument("solve_dl: dt must be positive");
  // Non-line domains take their own stepping loops (ADI / per-community
  // fused steps + mixing); the 1-D line continues below, untouched.
  switch (params.dom.kind) {
    case domain_kind::line:
      break;
    case domain_kind::grid2d:
      return detail::solve_dl_grid2d(params, phi_samples, t0, t_end, options,
                                     ws);
    case domain_kind::communities:
      return detail::solve_dl_communities(params, phi_samples, t0, t_end,
                                          options, ws);
  }
  const std::size_t n = node_count(params, options);
  if (phi_samples.size() != n)
    throw std::invalid_argument("solve_dl_profile: profile size mismatch");

  const num::uniform_grid grid(params.x_min, params.x_max, n);
  const double dx = grid.spacing();

  if (options.scheme == dl_scheme::ftcs && params.d > 0.0) {
    const double dt_max = dx * dx / (2.0 * params.d);
    if (options.dt > dt_max)
      throw std::invalid_argument(
          "solve_dl: FTCS unstable for dt > dx^2/(2d) = " +
          std::to_string(dt_max));
  }

  const workspace_guard guard(ws.in_use);
  ws.prepare(n);
  std::vector<double>& u = ws.u;
  std::vector<double>& u_next = ws.u_next;
  std::vector<double>& lap = ws.lap;
  std::vector<double>& rhs = ws.rhs;
  std::vector<double>& scratch = ws.scratch;
  u.assign(phi_samples.begin(), phi_samples.end());

  // Per-node growth rates.  For separable-form fields — every r(t)-only
  // run and the "spatial:<base>|m,..." family — the rate_sampler hoists
  // the spatial profile out of the time loop: one base evaluation (or
  // base integral) plus n multiplies per step, so the pre-r(x,t) fast
  // path is preserved.
  std::vector<double>& node_x = ws.node_x;
  for (std::size_t i = 0; i < n; ++i) node_x[i] = grid.x(i);
  const rate_sampler sampler(params.r, node_x, ws.mod, ws.rate_scratch);
  std::vector<double>& rt = ws.rt;
  std::vector<double>& r_int = ws.r_int;

  // Pre-built CN matrices for the Strang scheme; the LHS is constant for
  // the whole run, so its Thomas elimination is cached once here instead
  // of being redone every step.
  num::tridiagonal_matrix& cn_rhs_m = ws.cn_rhs;
  if (options.scheme == dl_scheme::strang_cn) {
    const double lambda = params.d * options.dt / (dx * dx);
    build_cn_matrices(n, lambda, ws.cn_lhs, cn_rhs_m);
    ws.cn_factor.factor(ws.cn_lhs);
  }

  const std::size_t total_steps = static_cast<std::size_t>(
      std::ceil((t_end - t0) / options.dt - 1e-12));

  // Recorded snapshots: one contiguous buffer, reserved for the exact
  // record count so steady-state stepping never reallocates.
  std::size_t max_records = total_steps;
  if (options.record_dt > 0.0) {
    const double est = (t_end - t0) / options.record_dt;
    if (est < static_cast<double>(total_steps))
      max_records = static_cast<std::size_t>(est) + 1;
  }
  std::vector<double> times;
  times.reserve(max_records + 2);
  trace_storage trace(n);
  trace.reserve(max_records + 2);
  times.push_back(t0);
  trace.append_row(u);
  double next_record = t0 + options.record_dt;

  std::vector<double>& rt_react = ws.rt_react;
  // Hoisted into a std::function once — handing the lambda to rk4_step
  // directly would rebuild (and heap-allocate) the ode_rhs every step.
  const num::ode_rhs reaction = [&](double t, std::span<const double> y,
                                    std::span<double> dydt) {
    neumann_laplacian(y, dx, dydt);
    sampler.rates_at(t, rt_react);
    for (std::size_t i = 0; i < y.size(); ++i)
      dydt[i] =
          params.d * dydt[i] + rt_react[i] * y[i] * (1.0 - y[i] / params.k);
  };

  for (std::size_t step = 0; step < total_steps; ++step) {
    const double t = t0 + static_cast<double>(step) * options.dt;
    const double h = std::min(options.dt, t_end - t);
    if (h <= 0.0) break;

    switch (options.scheme) {
      case dl_scheme::ftcs: {
        neumann_laplacian(u, dx, lap);
        sampler.rates_at(t, rt);
        for (std::size_t i = 0; i < n; ++i)
          u[i] += h * (params.d * lap[i] +
                       rt[i] * u[i] * (1.0 - u[i] / params.k));
        break;
      }
      case dl_scheme::strang_cn: {
        // One fused Strang step (detail::strang_cn_step): exact-logistic
        // reaction half-step with the per-node integrated rate, cached
        // Crank–Nicolson diffusion solve, second reaction half-step —
        // fused into a forward elimination + backward substitution pass
        // pair that is bitwise identical to the unfused substeps.
        sampler.integrals_over(t, t + 0.5 * h, r_int);
        sampler.integrals_over(t + 0.5 * h, t + h, rt);  // second half
        // Matrices were built and factored for options.dt; rebuild for a
        // short trailing step.
        if (h != options.dt) {
          const double lambda = params.d * h / (dx * dx);
          build_cn_matrices(n, lambda, ws.cn_lhs, cn_rhs_m);
          ws.cn_factor.factor(ws.cn_lhs);
        }
        detail::strang_cn_step(n, u.data(), rhs.data(), cn_rhs_m,
                               ws.cn_factor, sampler.uniform(), r_int.data(),
                               rt.data(), params.k);
        break;
      }
      case dl_scheme::implicit_newton: {
        // Backward Euler: solve u_next - u - h*(d*A u_next + f(u_next)) = 0.
        const double t_next = t + h;
        sampler.rates_at(t_next, rt);
        u_next = u;  // warm start
        num::tridiagonal_matrix& jac = ws.jac;
        std::vector<double>& g = ws.newton_g;
        bool converged = false;
        for (int it = 0; it < options.newton_max_iter; ++it) {
          neumann_laplacian(u_next, dx, lap);
          double g_norm = 0.0;
          for (std::size_t i = 0; i < n; ++i) {
            g[i] = u_next[i] - u[i] -
                   h * (params.d * lap[i] +
                        rt[i] * u_next[i] * (1.0 - u_next[i] / params.k));
            g_norm = std::max(g_norm, std::abs(g[i]));
          }
          if (g_norm <= options.newton_tol) {
            converged = true;
            break;
          }
          // Jacobian: I − h·(d·A + diag(r·(1 − 2u/K))).
          const double mu = h * params.d / (dx * dx);
          for (std::size_t i = 0; i < n; ++i) {
            jac.diag[i] = 1.0 + 2.0 * mu -
                          h * rt[i] * (1.0 - 2.0 * u_next[i] / params.k);
            if (i + 1 < n) jac.upper[i] = -mu * (i == 0 ? 2.0 : 1.0);
            if (i > 0) jac.lower[i - 1] = -mu * (i + 1 == n ? 2.0 : 1.0);
          }
          num::solve_tridiagonal_in_place(jac, g, scratch);
          for (std::size_t i = 0; i < n; ++i) u_next[i] -= g[i];
        }
        if (!converged) {
          // Accept the last iterate; the step size is small enough in
          // practice that Newton stalls only at negligible residuals.
        }
        u.swap(u_next);
        break;
      }
      case dl_scheme::mol_rk4: {
        num::rk4_step(reaction, t, u, h, u_next, ws.rk4);
        u.swap(u_next);
        break;
      }
    }

    const double t_new = t + h;
    if (t_new + 1e-12 >= next_record || step + 1 == total_steps) {
      times.push_back(t_new);
      trace.append_row(u);
      while (next_record <= t_new + 1e-12) next_record += options.record_dt;
    }
  }

  return dl_solution(grid, std::move(times), std::move(trace));
}

dl_solution solve_dl_profile(const dl_parameters& params,
                             std::span<const double> phi_samples, double t0,
                             double t_end, const dl_solver_options& options) {
  dl_workspace& shared = thread_workspace();
  if (shared.in_use) {
    // Reentrant solve (e.g. a custom rate field that itself runs the
    // solver): don't clobber the outer solve's live buffers.
    dl_workspace local;
    return solve_dl_profile(params, phi_samples, t0, t_end, options, local);
  }
  return solve_dl_profile(params, phi_samples, t0, t_end, options, shared);
}

dl_solution solve_dl(const dl_parameters& params, const initial_condition& phi,
                     double t0, double t_end, const dl_solver_options& options,
                     dl_workspace& ws) {
  params.validate();
  const std::size_t n = node_count(params, options);
  std::vector<double> samples = phi.sample(params.x_min, params.x_max, n);
  // Densities are non-negative (paper §II.D); a cubic interpolant may
  // undershoot slightly between sparse knots, so clip at zero.
  for (double& v : samples) v = std::max(v, 0.0);
  if (!params.dom.is_line()) {
    // φ describes the x axis; stack it across the domain's blocks
    // (replicated per grid2d row, scaled per community).
    const std::vector<double> full =
        detail::broadcast_profile(params, samples, options);
    return solve_dl_profile(params, full, t0, t_end, options, ws);
  }
  return solve_dl_profile(params, samples, t0, t_end, options, ws);
}

dl_solution solve_dl(const dl_parameters& params, const initial_condition& phi,
                     double t0, double t_end,
                     const dl_solver_options& options) {
  dl_workspace& shared = thread_workspace();
  if (shared.in_use) {
    dl_workspace local;
    return solve_dl(params, phi, t0, t_end, options, local);
  }
  return solve_dl(params, phi, t0, t_end, options, shared);
}

dl_solver_options detail::effective_options(const solve_request& request) {
  dl_solver_options options = request.options;
  // final_state is snapshots with an unreachable record cadence: only the
  // initial and final rows are recorded, and those rows are bitwise
  // identical to the matching snapshot-mode rows.
  if (request.output == dl_output_mode::final_state)
    options.record_dt = std::numeric_limits<double>::infinity();
  return options;
}

dl_solution detail::solve_request_scalar(const solve_request& request,
                                         dl_workspace& ws) {
  const dl_solver_options options = detail::effective_options(request);
  if (request.phi != nullptr)
    return solve_dl(*request.params, *request.phi, request.t0, request.t_end,
                    options, ws);
  if (request.phi_samples.empty())
    throw std::invalid_argument("solve_dl: request needs phi or phi_samples");
  return solve_dl_profile(*request.params, request.phi_samples, request.t0,
                          request.t_end, options, ws);
}

dl_solution solve_dl(const solve_request& request) {
  if (request.params == nullptr)
    throw std::invalid_argument("solve_dl: request has no parameters");
  if (request.workspace != nullptr)
    return detail::solve_request_scalar(request, *request.workspace);
  dl_workspace& shared = thread_workspace();
  if (shared.in_use) {
    dl_workspace local;
    return detail::solve_request_scalar(request, local);
  }
  return detail::solve_request_scalar(request, shared);
}

}  // namespace dlm::core
