// Batched DL solver: advances a span of solve_requests in lockstep.
//
// Compatible requests — same scheme, grid, dt, record cadence and time
// window — form a group whose W lanes share one time loop over the
// structure-of-arrays dl_batch_workspace (u[node*W + lane]).  The per-node
// inner loops then run over W contiguous lanes: the Strang–CN forward
// elimination and back substitution interleave W independent Thomas
// chains (the serial division chain of lane A overlaps the multiplies of
// lanes B..), and the logistic reaction substeps vectorize across lanes.
//
// Bitwise identity with the scalar path is the load-bearing contract
// (engine::solve_cache keys, golden fits and CSV output must not depend
// on how requests are grouped).  It holds because every per-lane
// expression below is the scalar solver's expression with `u[i]` spelled
// `u[i*W + l]`: the shared helpers in dl_solver_internal.h supply the
// propagator and matrix entries, each lane's Crank–Nicolson coefficients
// come from the same num::tridiagonal_factorization the scalar path
// solves with, and the accumulation order inside every loop is kept
// verbatim.  Reordering lanes, changing W, or re-running with a reused
// workspace cannot change a single bit of any lane (solver_batch_test).
//
// Not batched (solved per-request on the scalar path instead): the
// implicit_newton scheme (data-dependent Newton iteration counts defeat
// lockstep), requests carrying their own dl_workspace (the caller asked
// for exactly those buffers), and groups of one.
#include <algorithm>
#include <cmath>
#include <cstddef>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/dl_batch_workspace.h"
#include "core/dl_solver.h"
#include "core/dl_solver_internal.h"
#include "core/dl_workspace.h"
#include "core/rate_field.h"
#include "numerics/grid.h"

namespace dlm::core {
namespace {

/// Everything that must match for two requests to share a lockstep time
/// loop.  The diffusion coefficient d is deliberately absent: lanes with
/// different d share the loop and get per-lane Crank–Nicolson
/// factorizations from the workspace cache.
struct group_key {
  dl_scheme scheme = dl_scheme::strang_cn;
  std::size_t n = 0;  ///< grid node count
  double x_min = 0.0;
  double x_max = 0.0;
  double dt = 0.0;
  double record_dt = 0.0;  ///< effective (inf for final_state output)
  double t0 = 0.0;
  double t_end = 0.0;

  bool operator==(const group_key&) const = default;
};

group_key key_of(const solve_request& request) {
  request.params->validate();
  const dl_solver_options options = detail::effective_options(request);
  return {options.scheme,
          detail::node_count(*request.params, options),
          request.params->x_min,
          request.params->x_max,
          options.dt,
          options.record_dt,
          request.t0,
          request.t_end};
}

/// Mirrors the scalar path's workspace_guard for the batch workspace.
class batch_guard {
 public:
  explicit batch_guard(dl_batch_workspace& ws) : ws_(ws) { ws_.in_use = true; }
  ~batch_guard() { ws_.in_use = false; }
  batch_guard(const batch_guard&) = delete;
  batch_guard& operator=(const batch_guard&) = delete;

 private:
  dl_batch_workspace& ws_;
};

/// Advances one group of W ≥ 2 compatible requests in lockstep and fills
/// their slots in `solved`.  `members` lists request indices in original
/// request order (grouping is index-stable).
///
/// WC is the lane count when it is one of the specialized widths (the
/// default batch width and its halves) and 0 for the runtime-width
/// fallback: with W a compile-time constant the per-node lane loops fully
/// unroll into straight vector code instead of tiny runtime-trip-count
/// loops whose setup dominates at W = 2..8.  The arithmetic is identical
/// in every instantiation, so specialization cannot change bits.
template <std::size_t WC>
void solve_group(std::span<const solve_request> requests,
                 const group_key& key, std::span<const std::size_t> members,
                 dl_batch_workspace& bws,
                 std::vector<std::optional<dl_solution>>& solved) {
  const std::size_t W = WC == 0 ? members.size() : WC;
  const std::size_t n = key.n;
  const num::uniform_grid grid(key.x_min, key.x_max, n);
  const double dx = grid.spacing();
  bws.prepare(n, W, key.scheme);
  for (std::size_t i = 0; i < n; ++i) bws.node_x[i] = grid.x(i);

  // Per-lane setup: the scalar path's validation (same exceptions),
  // initial data scattered node-major × lane-minor, rate classification.
  std::vector<double> samples;
  for (std::size_t l = 0; l < W; ++l) {
    const solve_request& request = requests[members[l]];
    const dl_parameters& params = *request.params;
    const dl_solver_options options = detail::effective_options(request);
    if (!(request.t_end > request.t0))
      throw std::invalid_argument("solve_dl: t_end must exceed t0");
    if (!(options.dt > 0.0))
      throw std::invalid_argument("solve_dl: dt must be positive");
    if (key.scheme == dl_scheme::ftcs && params.d > 0.0) {
      const double dt_max = dx * dx / (2.0 * params.d);
      if (options.dt > dt_max)
        throw std::invalid_argument(
            "solve_dl: FTCS unstable for dt > dx^2/(2d) = " +
            std::to_string(dt_max));
    }
    if (request.phi != nullptr) {
      samples = request.phi->sample(params.x_min, params.x_max, n);
      // Same clip as the scalar initial-condition overload: densities are
      // non-negative, cubic interpolants may undershoot between knots.
      for (double& v : samples) v = std::max(v, 0.0);
    } else {
      if (request.phi_samples.empty())
        throw std::invalid_argument(
            "solve_dl: request needs phi or phi_samples");
      if (request.phi_samples.size() != n)
        throw std::invalid_argument(
            "solve_dl_profile: profile size mismatch");
      samples.assign(request.phi_samples.begin(), request.phi_samples.end());
    }
    for (std::size_t i = 0; i < n; ++i) bws.u[i * W + l] = samples[i];

    bws.lane_d[l] = params.d;
    bws.lane_k[l] = params.k;
    const rate_field& rate = params.r;
    bws.lane_factored[l] = rate.separable_form() ? 1 : 0;
    bws.lane_uniform[l] = rate.spatial() ? 0 : 1;
    if (bws.lane_factored[l])
      for (std::size_t i = 0; i < n; ++i)
        bws.mod_rows[l * n + i] = rate.modulation(bws.node_x[i]);
  }

  // Lane-major rate rows: rate_field::profile writes one contiguous span
  // per lane, and separable-form lanes hoist the spatial profile exactly
  // like the scalar path (one base evaluation + n multiplies).
  const auto lane_row = [&](std::vector<double>& rows, std::size_t l) {
    return std::span<double>(rows.data() + l * n, n);
  };
  const auto rates_lane = [&](std::size_t l, double t, std::span<double> out) {
    const rate_field& rate = requests[members[l]].params->r;
    if (bws.lane_factored[l]) {
      const double base = rate.base()(t);
      const double* mod = bws.mod_rows.data() + l * n;
      for (std::size_t i = 0; i < n; ++i) out[i] = mod[i] * base;
    } else {
      rate.profile(t, bws.node_x, out, bws.rate_scratch);
    }
  };
  const auto integrals_lane = [&](std::size_t l, double from, double to,
                                  std::span<double> out) {
    const rate_field& rate = requests[members[l]].params->r;
    if (bws.lane_uniform[l]) {
      // x-uniform lanes read only node 0's integrated rate (the Strang
      // substep hoists one exp from it); filling the other n−1 identical
      // entries would be pure waste.  Node 0's value is the factored
      // expression verbatim, so the bits the kernel sees are unchanged.
      out[0] = bws.mod_rows[l * n] * rate.base().integral(from, to);
    } else if (bws.lane_factored[l]) {
      const double base = rate.base().integral(from, to);
      const double* mod = bws.mod_rows.data() + l * n;
      for (std::size_t i = 0; i < n; ++i) out[i] = mod[i] * base;
    } else {
      rate.integral_profile(from, to, bws.node_x, out, bws.rate_scratch);
    }
  };

  // Per-lane Crank–Nicolson coefficients: one elimination per distinct
  // λ = d·h/dx² (lanes probing the same d share it), scattered into the
  // SoA arrays the interleaved Thomas sweep reads lane-contiguously.
  const auto build_cn = [&](double h) {
    std::size_t used = 0;
    auto& cache = bws.cn_cache;
    for (std::size_t l = 0; l < W; ++l) {
      const double lambda = bws.lane_d[l] * h / (dx * dx);
      std::size_t e = used;
      for (std::size_t j = 0; j < used; ++j) {
        if (cache[j].lambda == lambda) {
          e = j;
          break;
        }
      }
      if (e == used) {
        if (used == cache.size()) cache.emplace_back();
        dl_batch_workspace::cn_entry& entry = cache[used];
        entry.lambda = lambda;
        entry.rhs_m.resize(n);
        bws.cn_lhs.resize(n);
        detail::build_cn_matrices(n, lambda, bws.cn_lhs, entry.rhs_m);
        entry.factor.factor(bws.cn_lhs);
        ++used;
      }
      const dl_batch_workspace::cn_entry& entry = cache[e];
      for (std::size_t i = 0; i < n; ++i) {
        bws.cn_dm[i * W + l] = entry.rhs_m.diag[i];
        bws.cn_fp[i * W + l] = entry.factor.pivots()[i];
      }
      for (std::size_t i = 0; i + 1 < n; ++i) {
        bws.cn_lm[i * W + l] = entry.rhs_m.lower[i];
        bws.cn_um[i * W + l] = entry.rhs_m.upper[i];
        bws.cn_fl[i * W + l] = entry.factor.lower()[i];
        bws.cn_fc[i * W + l] = entry.factor.c_star()[i];
      }
    }
  };
  if (key.scheme == dl_scheme::strang_cn) build_cn(key.dt);

  // SoA mirror-ghost Laplacian: neumann_laplacian's expressions per lane.
  // (__restrict on the hot-path pointers: the SoA buffers never alias, and
  // telling the compiler so is what lets the W-lane inner loops vectorize.)
  const auto soa_laplacian = [&](const double* __restrict y,
                                 double* __restrict out) {
    const double inv = 1.0 / (dx * dx);
    for (std::size_t l = 0; l < W; ++l)
      out[l] = 2.0 * (y[W + l] - y[l]) * inv;
    for (std::size_t i = 1; i + 1 < n; ++i)
      for (std::size_t l = 0; l < W; ++l)
        out[i * W + l] =
            (y[(i - 1) * W + l] - 2.0 * y[i * W + l] + y[(i + 1) * W + l]) *
            inv;
    for (std::size_t l = 0; l < W; ++l)
      out[(n - 1) * W + l] =
          2.0 * (y[(n - 2) * W + l] - y[(n - 1) * W + l]) * inv;
  };

  const auto step_ftcs = [&](double t, double h) {
    double* __restrict u = bws.u.data();
    double* __restrict lap = bws.lap.data();
    soa_laplacian(u, lap);
    for (std::size_t l = 0; l < W; ++l)
      rates_lane(l, t, lane_row(bws.rt_rows, l));
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t l = 0; l < W; ++l) {
        const double ui = u[i * W + l];
        u[i * W + l] =
            ui + h * (bws.lane_d[l] * lap[i * W + l] +
                      bws.rt_rows[l * n + i] * ui * (1.0 - ui / bws.lane_k[l]));
      }
  };

  const auto step_strang = [&](double t, double h) {
    for (std::size_t l = 0; l < W; ++l) {
      integrals_lane(l, t, t + 0.5 * h, lane_row(bws.rint_rows, l));
      integrals_lane(l, t + 0.5 * h, t + h, lane_row(bws.rt_rows, l));
    }
    // Coefficients were scattered for key.dt; rebuild for a short
    // trailing step (the scalar path does the same).
    if (h != key.dt) build_cn(h);

    double* __restrict u = bws.u.data();
    double* __restrict rhs = bws.rhs.data();
    double* __restrict w = bws.w.data();
    double* __restrict vp = bws.v_prev.data();
    double* __restrict vc = bws.v_cur.data();
    double* __restrict vn = bws.v_next.data();
    const double* __restrict dm = bws.cn_dm.data();
    const double* __restrict lm = bws.cn_lm.data();
    const double* __restrict um = bws.cn_um.data();
    const double* __restrict fl = bws.cn_fl.data();
    const double* __restrict fp = bws.cn_fp.data();
    const double* __restrict fc = bws.cn_fc.data();

    // The scalar fused Strang step with every register widened to a
    // W-lane row: reaction values roll through three rows (pointer
    // rotation), the elimination carry is a row, and each lane's
    // accumulation order — dm·v_cur, += lm·v_prev, += um·v_next, the
    // divide, the back substitution — is the scalar sequence verbatim.
    const auto fused = [&](auto&& react1, auto&& react2) {
      for (std::size_t l = 0; l < W; ++l)
        vc[l] = react1(u[l], std::size_t{0}, l);
      for (std::size_t l = 0; l < W; ++l)
        vn[l] = react1(u[W + l], std::size_t{1}, l);
      for (std::size_t l = 0; l < W; ++l) {
        double acc = dm[l] * vc[l];
        acc += um[l] * vn[l];
        w[l] = acc / fp[l];
        rhs[l] = w[l];
      }
      for (std::size_t i = 1; i + 1 < n; ++i) {
        std::swap(vp, vc);
        std::swap(vc, vn);
        for (std::size_t l = 0; l < W; ++l)
          vn[l] = react1(u[(i + 1) * W + l], i + 1, l);
        for (std::size_t l = 0; l < W; ++l) {
          double acc = dm[i * W + l] * vc[l];
          acc += lm[(i - 1) * W + l] * vp[l];
          acc += um[i * W + l] * vn[l];
          w[l] = (acc - fl[(i - 1) * W + l] * w[l]) / fp[i * W + l];
          rhs[i * W + l] = w[l];
        }
      }
      {
        std::swap(vp, vc);
        std::swap(vc, vn);
        for (std::size_t l = 0; l < W; ++l) {
          double acc = dm[(n - 1) * W + l] * vc[l];
          acc += lm[(n - 2) * W + l] * vp[l];
          w[l] = (acc - fl[(n - 2) * W + l] * w[l]) / fp[(n - 1) * W + l];
        }
      }
      // Backward pass: back substitution + second reaction half-step.
      for (std::size_t l = 0; l < W; ++l)
        u[(n - 1) * W + l] = react2(w[l], n - 1, l);
      for (std::size_t i = n - 1; i-- > 0;) {
        for (std::size_t l = 0; l < W; ++l) {
          w[l] = rhs[i * W + l] - fc[i * W + l] * w[l];
          u[i * W + l] = react2(w[l], i, l);
        }
      }
    };

    bool all_uniform = true;
    for (std::size_t l = 0; l < W; ++l)
      if (!bws.lane_uniform[l]) all_uniform = false;
    double* g1 = bws.growth1.data();
    double* g2 = bws.growth2.data();
    const double* kk = bws.lane_k.data();
    for (std::size_t l = 0; l < W; ++l) {
      // One exp per x-uniform lane per substep, exactly the scalar hoist
      // (node 0's integrated rate is every node's integrated rate).
      if (bws.lane_uniform[l]) {
        g1[l] = std::exp(bws.rint_rows[l * n]);
        g2[l] = std::exp(bws.rt_rows[l * n]);
      }
    }
    if (all_uniform) {
      // Branch-free lane loops for the common all-temporal-rate group.
      fused(
          [&](double v, std::size_t, std::size_t l) {
            return detail::logistic_exact_with_growth(v, g1[l], kk[l]);
          },
          [&](double v, std::size_t, std::size_t l) {
            return detail::logistic_exact_with_growth(v, g2[l], kk[l]);
          });
    } else {
      fused(
          [&](double v, std::size_t i, std::size_t l) {
            return bws.lane_uniform[l]
                       ? detail::logistic_exact_with_growth(v, g1[l], kk[l])
                       : detail::logistic_exact(v, bws.rint_rows[l * n + i],
                                                kk[l]);
          },
          [&](double v, std::size_t i, std::size_t l) {
            return bws.lane_uniform[l]
                       ? detail::logistic_exact_with_growth(v, g2[l], kk[l])
                       : detail::logistic_exact(v, bws.rt_rows[l * n + i],
                                                kk[l]);
          });
    }
  };

  // Method of lines: num::rk4_step's stage expressions element-wise over
  // the SoA state, with the scalar reaction term per lane.
  const auto reaction = [&](double ts, const double* __restrict y,
                            double* __restrict dydt) {
    soa_laplacian(y, dydt);
    for (std::size_t l = 0; l < W; ++l)
      rates_lane(l, ts, lane_row(bws.rt_rows, l));
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t l = 0; l < W; ++l)
        dydt[i * W + l] =
            bws.lane_d[l] * dydt[i * W + l] +
            bws.rt_rows[l * n + i] * y[i * W + l] *
                (1.0 - y[i * W + l] / bws.lane_k[l]);
  };
  const auto step_rk4 = [&](double t, double h) {
    const std::size_t m = n * W;
    double* __restrict u = bws.u.data();
    double* __restrict u_next = bws.u_next.data();
    double* __restrict k1 = bws.k1.data();
    double* __restrict k2 = bws.k2.data();
    double* __restrict k3 = bws.k3.data();
    double* __restrict k4 = bws.k4.data();
    double* __restrict tmp = bws.tmp.data();
    reaction(t, u, k1);
    for (std::size_t j = 0; j < m; ++j) tmp[j] = u[j] + 0.5 * h * k1[j];
    reaction(t + 0.5 * h, tmp, k2);
    for (std::size_t j = 0; j < m; ++j) tmp[j] = u[j] + 0.5 * h * k2[j];
    reaction(t + 0.5 * h, tmp, k3);
    for (std::size_t j = 0; j < m; ++j) tmp[j] = u[j] + h * k3[j];
    reaction(t + h, tmp, k4);
    for (std::size_t j = 0; j < m; ++j)
      u_next[j] = u[j] + h / 6.0 * (k1[j] + 2.0 * k2[j] + 2.0 * k3[j] + k4[j]);
    bws.u.swap(bws.u_next);
  };

  // Shared record bookkeeping — the scalar path's, once for all lanes.
  const std::size_t total_steps = static_cast<std::size_t>(
      std::ceil((key.t_end - key.t0) / key.dt - 1e-12));
  std::size_t max_records = total_steps;
  if (key.record_dt > 0.0) {
    const double est = (key.t_end - key.t0) / key.record_dt;
    if (est < static_cast<double>(total_steps))
      max_records = static_cast<std::size_t>(est) + 1;
  }
  std::vector<double> times;
  times.reserve(max_records + 2);
  std::vector<trace_storage> traces;
  traces.reserve(W);
  for (std::size_t l = 0; l < W; ++l) {
    traces.emplace_back(n);
    traces.back().reserve(max_records + 2);
  }
  const auto record = [&]() {
    for (std::size_t l = 0; l < W; ++l) {
      for (std::size_t i = 0; i < n; ++i) bws.row[i] = bws.u[i * W + l];
      traces[l].append_row(bws.row);
    }
  };
  times.push_back(key.t0);
  record();
  double next_record = key.t0 + key.record_dt;

  for (std::size_t step = 0; step < total_steps; ++step) {
    const double t = key.t0 + static_cast<double>(step) * key.dt;
    const double h = std::min(key.dt, key.t_end - t);
    if (h <= 0.0) break;
    switch (key.scheme) {
      case dl_scheme::ftcs:
        step_ftcs(t, h);
        break;
      case dl_scheme::strang_cn:
        step_strang(t, h);
        break;
      case dl_scheme::mol_rk4:
        step_rk4(t, h);
        break;
      case dl_scheme::implicit_newton:
        break;  // never batched; routed to the scalar path by the caller
    }
    const double t_new = t + h;
    if (t_new + 1e-12 >= next_record || step + 1 == total_steps) {
      times.push_back(t_new);
      record();
      while (next_record <= t_new + 1e-12) next_record += key.record_dt;
    }
  }

  for (std::size_t l = 0; l < W; ++l)
    solved[members[l]] = dl_solution(grid, times, std::move(traces[l]));
}

}  // namespace

std::vector<dl_solution> solve_dl(std::span<const solve_request> requests,
                                  dl_batch_workspace& workspace) {
  const batch_guard guard(workspace);
  std::vector<std::optional<dl_solution>> solved(requests.size());

  // Index-stable grouping: groups form in first-occurrence order and
  // list members in request order, so results (and any exception) never
  // depend on how the caller interleaved compatible requests.
  struct group {
    group_key key;
    std::vector<std::size_t> members;
  };
  std::vector<group> groups;
  std::vector<std::size_t> scalar_lanes;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const solve_request& request = requests[i];
    if (request.params == nullptr)
      throw std::invalid_argument("solve_dl: request has no parameters");
    if (request.workspace != nullptr ||
        request.options.scheme == dl_scheme::implicit_newton ||
        !request.params->dom.is_line()) {
      // Non-line domains (2-D ADI, coupled communities) have their own
      // stepping loops; they run scalar rather than in SoA lockstep.
      scalar_lanes.push_back(i);
      continue;
    }
    const group_key key = key_of(request);
    const auto it = std::find_if(
        groups.begin(), groups.end(),
        [&](const group& g) { return g.key == key; });
    if (it == groups.end())
      groups.push_back({key, {i}});
    else
      it->members.push_back(i);
  }

  for (const group& g : groups) {
    switch (g.members.size()) {
      case 1:
        solved[g.members.front()] = detail::solve_request_scalar(
            requests[g.members.front()], workspace.scalar);
        break;
      case 2:
        solve_group<2>(requests, g.key, g.members, workspace, solved);
        break;
      case 4:
        solve_group<4>(requests, g.key, g.members, workspace, solved);
        break;
      case 8:
        solve_group<8>(requests, g.key, g.members, workspace, solved);
        break;
      default:
        solve_group<0>(requests, g.key, g.members, workspace, solved);
        break;
    }
  }
  for (const std::size_t i : scalar_lanes) {
    const solve_request& request = requests[i];
    solved[i] = detail::solve_request_scalar(
        request,
        request.workspace != nullptr ? *request.workspace : workspace.scalar);
  }

  std::vector<dl_solution> out;
  out.reserve(requests.size());
  for (std::optional<dl_solution>& s : solved) out.push_back(std::move(*s));
  return out;
}

std::vector<dl_solution> solve_dl(std::span<const solve_request> requests) {
  dl_batch_workspace& shared = thread_batch_workspace();
  if (shared.in_use) {
    // Reentrant batched solve (e.g. a custom rate field that itself runs
    // the solver): don't clobber the outer batch's live lanes.
    dl_batch_workspace local;
    return solve_dl(requests, local);
  }
  return solve_dl(requests, shared);
}

}  // namespace dlm::core
