#include "core/accuracy.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace dlm::core {

double relative_error(double predicted, double actual) {
  if (actual == 0.0)
    return predicted == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  return std::abs(predicted - actual) / std::abs(actual);
}

double prediction_accuracy(double predicted, double actual) {
  const double err = relative_error(predicted, actual);
  if (std::isinf(err)) return 0.0;
  return std::clamp(1.0 - err, 0.0, 1.0);
}

std::vector<double> accuracy_table::row_averages() const {
  std::vector<double> out(cells.size(), 0.0);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    double acc = 0.0;
    for (double v : cells[i]) acc += v;
    out[i] = cells[i].empty() ? 0.0 : acc / static_cast<double>(cells[i].size());
  }
  return out;
}

double accuracy_table::overall_average() const {
  double acc = 0.0;
  std::size_t count = 0;
  for (const auto& row : cells) {
    for (double v : row) {
      acc += v;
      ++count;
    }
  }
  return count > 0 ? acc / static_cast<double>(count) : 0.0;
}

double accuracy_table::column_average(std::size_t j) const {
  double acc = 0.0;
  std::size_t count = 0;
  for (const auto& row : cells) {
    if (j < row.size()) {
      acc += row[j];
      ++count;
    }
  }
  return count > 0 ? acc / static_cast<double>(count) : 0.0;
}

accuracy_table make_accuracy_table(
    std::span<const int> distances, std::span<const double> times,
    const std::vector<std::vector<double>>& predicted,
    const std::vector<std::vector<double>>& actual) {
  if (predicted.size() != distances.size() || actual.size() != distances.size())
    throw std::invalid_argument("make_accuracy_table: row count mismatch");
  accuracy_table table;
  table.distances.assign(distances.begin(), distances.end());
  table.times.assign(times.begin(), times.end());
  table.cells.resize(distances.size());
  for (std::size_t i = 0; i < distances.size(); ++i) {
    if (predicted[i].size() != times.size() || actual[i].size() != times.size())
      throw std::invalid_argument("make_accuracy_table: column count mismatch");
    table.cells[i].resize(times.size());
    for (std::size_t j = 0; j < times.size(); ++j)
      table.cells[i][j] = prediction_accuracy(predicted[i][j], actual[i][j]);
  }
  return table;
}

}  // namespace dlm::core
