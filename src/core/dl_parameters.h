// Parameter set of the Diffusive Logistic equation (paper Eq. 4,
// generalized to the §V spatio-temporal rate).
//
//   ∂I/∂t = d ∂²I/∂x² + r(x, t) I (1 − I/K),   x ∈ [l, L], t ≥ t0
//   ∂I/∂x = 0 at x = l and x = L               (Neumann / no-flux)
//
// d — diffusion rate (how fast influence travels across distances)
// K — carrying capacity (max density at any distance; percent scale)
// r — growth-rate field r(x, t) (core::rate_field; a plain growth_rate
//     converts implicitly, giving the paper's r(t)-only Eq. 4)
// [l, L] — distance domain bounds.
// dom — spatial-domain shape (core::domain): the default 1-D line, a 2-D
//     distance×interest grid, or K coupled communities.  The x axis above
//     is always the first axis; non-line shapes stack rows behind it.
#pragma once

#include <string>

#include "core/domain.h"
#include "core/rate_field.h"

namespace dlm::core {

/// Validated DL parameter set.
struct dl_parameters {
  double d = 0.01;                              ///< diffusion rate
  double k = 25.0;                              ///< carrying capacity
  rate_field r = growth_rate::paper_hops();     ///< growth-rate field r(x, t)
  double x_min = 1.0;                           ///< l: nearest distance
  double x_max = 5.0;                           ///< L: farthest distance
  domain dom{};                                 ///< domain shape (default: 1-D line)

  /// Paper §III.C values for the friendship-hop experiment on story s1:
  /// d = 0.01, K = 25, r(t) = 1.4·e^{−1.5(t−1)} + 0.25, x ∈ [1, L].
  [[nodiscard]] static dl_parameters paper_hops(double x_max = 6.0);

  /// Paper §III.C values for the shared-interest experiment:
  /// d = 0.05, K = 60, r(t) = 1.6·e^{−(t−1)} + 0.1, x ∈ [1, 5].
  [[nodiscard]] static dl_parameters paper_interest(double x_max = 5.0);

  /// Throws std::invalid_argument unless d ≥ 0, K > 0, x_min < x_max and
  /// the domain descriptor validates.
  void validate() const;

  [[nodiscard]] std::string describe() const;
};

}  // namespace dlm::core
