// Finite-difference solvers for the Diffusive Logistic equation.
//
// Four schemes, cross-checked against each other in the test suite:
//
//  * ftcs            — forward-time centred-space explicit scheme; simple,
//                      conditionally stable (dt ≤ dx²/(2d)).
//  * strang_cn       — Strang splitting: exact logistic half-step (the
//                      reaction ODE has a closed form given ∫r), implicit
//                      Crank–Nicolson diffusion full-step, logistic
//                      half-step.  Second order, unconditionally stable,
//                      positivity- and K-bound-preserving.  Default.
//  * implicit_newton — fully implicit backward Euler with a Newton solve
//                      (tridiagonal Jacobian) each step; most robust for
//                      stiff parameter regimes, first order in time.
//  * mol_rk4         — method of lines: spatial discretization + classical
//                      RK4 in time; high accuracy reference for smooth
//                      regimes.
//
// Space is discretized on a uniform grid over [l, L]; the Neumann no-flux
// boundaries use mirror ghost nodes (second-order one-sided Laplacian).
//
// All four schemes consume the growth rate as a spatio-temporal field
// r(x, t) (core::rate_field, paper §V): the reaction term — and, for
// strang_cn, the exact logistic substep's integrated rate — is evaluated
// per grid node.  Separable-form fields (every r(t)-only run) keep the
// original cost: the spatial profile is hoisted out of the time loop.
//
// The hot path is allocation-free: every scratch buffer lives in a
// core::dl_workspace (reused across solves — the plain overloads below
// borrow a thread-local one, or pass your own), the Strang–CN diffusion
// matrix is Thomas-factored once per run, and recorded snapshots land in
// one contiguous trace_storage buffer reserved up front.  A steady-state
// time step performs zero heap allocations.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/dl_parameters.h"
#include "core/initial_condition.h"
#include "core/trace_storage.h"
#include "numerics/grid.h"

namespace dlm::core {

struct dl_workspace;

/// Time-stepping scheme selector.
enum class dl_scheme { ftcs, strang_cn, implicit_newton, mol_rk4 };

[[nodiscard]] std::string to_string(dl_scheme scheme);

/// Solver options.
struct dl_solver_options {
  dl_scheme scheme = dl_scheme::strang_cn;
  /// Grid nodes per unit distance; integer distances land exactly on
  /// nodes when x_min is an integer.
  std::size_t points_per_unit = 20;
  double dt = 0.02;        ///< time step (hours)
  double record_dt = 1.0;  ///< interval between recorded snapshots
  int newton_max_iter = 16;
  double newton_tol = 1e-11;
};

/// A solved trajectory I(x, t).
class dl_solution {
 public:
  /// Snapshots packed row-major in `states` (one row per entry of
  /// `times`); this is what the solver produces.
  dl_solution(num::uniform_grid grid, std::vector<double> times,
              trace_storage states);

  /// Compatibility overload: per-snapshot vectors, packed on entry.
  dl_solution(num::uniform_grid grid, std::vector<double> times,
              const std::vector<std::vector<double>>& states);

  [[nodiscard]] const num::uniform_grid& grid() const noexcept { return grid_; }
  [[nodiscard]] const std::vector<double>& times() const noexcept {
    return times_;
  }
  /// Recorded snapshots: a random-access range of std::span rows over one
  /// contiguous buffer; states()[s][i] is node i of snapshot s.
  [[nodiscard]] const trace_storage& states() const noexcept {
    return states_;
  }

  /// I(x, t) by linear interpolation in both x (grid) and t (snapshots).
  /// Throws std::out_of_range outside the solved domain.
  [[nodiscard]] double at(double x, double t) const;

  /// Spatial profile at time `t` on the full grid (linear interp in t).
  [[nodiscard]] std::vector<double> profile_at(double t) const;

  /// Values at integer distances x = x_from..x_to at time t — the
  /// only points where density is meaningful in an OSN (paper §III.C).
  [[nodiscard]] std::vector<double> at_integer_distances(double t, int x_from,
                                                         int x_to) const;

  /// Allocation-free variant writing into `out` (size x_to − x_from + 1);
  /// the time bracket is computed once and shared across all distances.
  void at_integer_distances(double t, int x_from, int x_to,
                            std::span<double> out) const;

  /// Maximum of |I| over all snapshots — used by stability tests.
  [[nodiscard]] double max_abs() const;

 private:
  /// A time bracket: snapshot indices lo/hi and the interpolation weight
  /// of hi.  Computed once per query time, shared across nodes.
  struct time_bracket {
    std::size_t lo = 0;
    std::size_t hi = 0;
    double w = 0.0;
  };
  [[nodiscard]] time_bracket bracket_time(double t) const;
  [[nodiscard]] double value_at(double x, const time_bracket& b) const;

  num::uniform_grid grid_;
  std::vector<double> times_;
  trace_storage states_;
};

/// Solves the DL equation from φ over [t0, t_end].
/// φ is sampled on the grid implied by params.x_min/x_max and
/// options.points_per_unit.  Scratch buffers are borrowed from this
/// thread's shared workspace (see core/dl_workspace.h).
[[nodiscard]] dl_solution solve_dl(const dl_parameters& params,
                                   const initial_condition& phi, double t0,
                                   double t_end,
                                   const dl_solver_options& options = {});

/// Variant taking a raw initial profile already sampled on the solver grid
/// (size must equal the implied node count).
[[nodiscard]] dl_solution solve_dl_profile(const dl_parameters& params,
                                           std::span<const double> phi_samples,
                                           double t0, double t_end,
                                           const dl_solver_options& options = {});

/// Explicit-workspace overloads: identical results, but the caller owns
/// the scratch buffers (deterministic memory accounting, custom threading).
[[nodiscard]] dl_solution solve_dl(const dl_parameters& params,
                                   const initial_condition& phi, double t0,
                                   double t_end,
                                   const dl_solver_options& options,
                                   dl_workspace& workspace);

[[nodiscard]] dl_solution solve_dl_profile(const dl_parameters& params,
                                           std::span<const double> phi_samples,
                                           double t0, double t_end,
                                           const dl_solver_options& options,
                                           dl_workspace& workspace);

/// Mirror-ghost Neumann Laplacian of `u` scaled by 1/dx² into `out`
/// (exposed for tests).
void neumann_laplacian(std::span<const double> u, double dx,
                       std::span<double> out);

}  // namespace dlm::core
