// Finite-difference solvers for the Diffusive Logistic equation.
//
// Four schemes, cross-checked against each other in the test suite:
//
//  * ftcs            — forward-time centred-space explicit scheme; simple,
//                      conditionally stable (dt ≤ dx²/(2d)).
//  * strang_cn       — Strang splitting: exact logistic half-step (the
//                      reaction ODE has a closed form given ∫r), implicit
//                      Crank–Nicolson diffusion full-step, logistic
//                      half-step.  Second order, unconditionally stable,
//                      positivity- and K-bound-preserving.  Default.
//  * implicit_newton — fully implicit backward Euler with a Newton solve
//                      (tridiagonal Jacobian) each step; most robust for
//                      stiff parameter regimes, first order in time.
//  * mol_rk4         — method of lines: spatial discretization + classical
//                      RK4 in time; high accuracy reference for smooth
//                      regimes.
//
// Space is discretized on a uniform grid over [l, L]; the Neumann no-flux
// boundaries use mirror ghost nodes (second-order one-sided Laplacian).
//
// All four schemes consume the growth rate as a spatio-temporal field
// r(x, t) (core::rate_field, paper §V): the reaction term — and, for
// strang_cn, the exact logistic substep's integrated rate — is evaluated
// per grid node.  Separable-form fields (every r(t)-only run) keep the
// original cost: the spatial profile is hoisted out of the time loop.
//
// The hot path is allocation-free: every scratch buffer lives in a
// core::dl_workspace (reused across solves — the plain overloads below
// borrow a thread-local one, or pass your own), the Strang–CN diffusion
// matrix is Thomas-factored once per run, and recorded snapshots land in
// one contiguous trace_storage buffer reserved up front.  A steady-state
// time step performs zero heap allocations.
//
// Entry point: build a core::solve_request (params + initial data + window
// + options) and call solve_dl(request) — or hand a whole span of requests
// to solve_dl(span<const solve_request>), which advances compatible
// requests (same scheme/grid/dt/window) in lockstep over a
// structure-of-arrays dl_batch_workspace, one Strang–CN pass interleaving
// every lane's Thomas sweep.  Batched lanes are bitwise identical to the
// scalar path (solver_batch_test), so caches, golden fits and CSV output
// are unaffected by how requests are grouped.  The legacy four-overload
// surface at the bottom of this header is kept as thin shims for one
// release; see docs/solver_api.md for the migration mapping.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/dl_parameters.h"
#include "core/initial_condition.h"
#include "core/trace_storage.h"
#include "numerics/grid.h"

namespace dlm::core {

struct dl_workspace;
struct dl_batch_workspace;

/// Time-stepping scheme selector.
enum class dl_scheme { ftcs, strang_cn, implicit_newton, mol_rk4 };

[[nodiscard]] std::string to_string(dl_scheme scheme);

/// Solver options.
struct dl_solver_options {
  dl_scheme scheme = dl_scheme::strang_cn;
  /// Grid nodes per unit distance; integer distances land exactly on
  /// nodes when x_min is an integer.
  std::size_t points_per_unit = 20;
  double dt = 0.02;        ///< time step (hours)
  double record_dt = 1.0;  ///< interval between recorded snapshots
  int newton_max_iter = 16;
  double newton_tol = 1e-11;
};

/// A solved trajectory I(x, t) — or, on a non-line domain, I(x, ·, t)
/// with `blocks` rows (grid2d y nodes / communities) stacked behind the x
/// axis in each snapshot.  The interpolating accessors (at, profile_at,
/// at_integer_distances) reduce over blocks by averaging, so every 1-D
/// consumer — accuracy scoring, fit objectives, the service's predict —
/// reads any domain through the same x-indexed surface; states() exposes
/// the full per-block rows.
class dl_solution {
 public:
  /// Snapshots packed row-major in `states` (one row per entry of
  /// `times`, row width grid.points() × blocks); this is what the solver
  /// produces.
  dl_solution(num::uniform_grid grid, std::vector<double> times,
              trace_storage states, std::size_t blocks = 1);

  /// Compatibility overload: per-snapshot vectors, packed on entry.
  dl_solution(num::uniform_grid grid, std::vector<double> times,
              const std::vector<std::vector<double>>& states);

  [[nodiscard]] const num::uniform_grid& grid() const noexcept { return grid_; }
  /// Rows stacked behind the x axis (1 on the line domain).
  [[nodiscard]] std::size_t blocks() const noexcept { return blocks_; }
  [[nodiscard]] const std::vector<double>& times() const noexcept {
    return times_;
  }
  /// Recorded snapshots: a random-access range of std::span rows over one
  /// contiguous buffer; states()[s][i] is node i of snapshot s.
  [[nodiscard]] const trace_storage& states() const noexcept {
    return states_;
  }

  /// I(x, t) by linear interpolation in both x (grid) and t (snapshots).
  /// Throws std::out_of_range outside the solved domain.
  [[nodiscard]] double at(double x, double t) const;

  /// Spatial profile at time `t` on the full grid (linear interp in t).
  [[nodiscard]] std::vector<double> profile_at(double t) const;

  /// Values at integer distances x = x_from..x_to at time t — the
  /// only points where density is meaningful in an OSN (paper §III.C).
  [[nodiscard]] std::vector<double> at_integer_distances(double t, int x_from,
                                                         int x_to) const;

  /// Allocation-free variant writing into `out` (size x_to − x_from + 1);
  /// the time bracket is computed once and shared across all distances.
  void at_integer_distances(double t, int x_from, int x_to,
                            std::span<double> out) const;

  /// Maximum of |I| over all snapshots — used by stability tests.
  [[nodiscard]] double max_abs() const;

 private:
  /// A time bracket: snapshot indices lo/hi and the interpolation weight
  /// of hi.  Computed once per query time, shared across nodes.
  struct time_bracket {
    std::size_t lo = 0;
    std::size_t hi = 0;
    double w = 0.0;
  };
  [[nodiscard]] time_bracket bracket_time(double t) const;
  [[nodiscard]] double value_at(double x, const time_bracket& b) const;

  num::uniform_grid grid_;
  std::vector<double> times_;
  trace_storage states_;
  std::size_t blocks_ = 1;
};

/// What a solved request records.
enum class dl_output_mode {
  /// Snapshots every options.record_dt (plus the initial and final
  /// profiles) — the historical behaviour.
  snapshots,
  /// Only the initial and final profiles: a fit objective that reads one
  /// time never pays for intermediate rows.  Equivalent to snapshots with
  /// an infinite record_dt, which is exactly how it is implemented, so
  /// the recorded rows are bitwise identical to the matching snapshots.
  final_state,
};

/// One DL solve, fully described: the unified entry point of this module.
///
/// Exactly one of `phi` / `phi_samples` supplies the initial data:
///  * phi         — sampled on the implied grid, then clipped at zero
///                  (densities are non-negative; a cubic interpolant may
///                  undershoot between sparse knots);
///  * phi_samples — a raw profile already on the solver grid (size must
///                  equal the implied node count), used verbatim.
///
/// `params` and `phi` are captured by pointer, not copied: a request is a
/// cheap view meant to be built per call (calibration builds thousands),
/// so the pointees must outlive the solve_dl call consuming the request.
struct solve_request {
  const dl_parameters* params = nullptr;       ///< required
  const initial_condition* phi = nullptr;      ///< initial data, sampled
  std::span<const double> phi_samples{};       ///< or: pre-sampled profile
  double t0 = 1.0;                             ///< window start (hours)
  double t_end = 6.0;                          ///< window end
  dl_solver_options options{};                 ///< scheme / grid / dt
  dl_output_mode output = dl_output_mode::snapshots;
  /// Optional caller-owned scratch.  When set, this request always runs
  /// on the scalar path with exactly these buffers (deterministic memory
  /// accounting); when null, solve_dl borrows a thread-local workspace.
  dl_workspace* workspace = nullptr;
};

/// Solves one request.  Scratch is the request's workspace when set, else
/// this thread's shared one (see core/dl_workspace.h).
[[nodiscard]] dl_solution solve_dl(const solve_request& request);

/// Solves a span of requests, returning one solution per request in
/// request order.  Requests sharing a scheme, grid, dt, record cadence
/// and time window are grouped (index-stably, by first occurrence) and
/// advanced in lockstep over a structure-of-arrays batch workspace — the
/// ftcs / strang_cn / mol_rk4 schemes vectorize across lanes, and each
/// distinct diffusion coefficient's Crank–Nicolson factorization is
/// shared within the group.  Everything else (implicit_newton, explicit
/// per-request workspaces, groups of one) falls back to the scalar path.
/// Per-request results are bitwise identical either way.
///
/// Any invalid request throws the same exception its scalar solve would;
/// the span overload gives no partial results.
[[nodiscard]] std::vector<dl_solution> solve_dl(
    std::span<const solve_request> requests);

/// Explicit batch-workspace variant (deterministic memory accounting,
/// custom threading layers).
[[nodiscard]] std::vector<dl_solution> solve_dl(
    std::span<const solve_request> requests, dl_batch_workspace& workspace);

// ---------------------------------------------------------------------------
// Legacy surface — thin shims over solve_request, kept for one release.
// Deprecated: new code should build a solve_request (docs/solver_api.md
// has the 1:1 mapping).  Not marked [[deprecated]] so the tree stays
// -Werror clean while in-tree callers migrate.
// ---------------------------------------------------------------------------

/// Deprecated shim for solve_dl({.params=&p, .phi=&phi, ...}).
[[nodiscard]] dl_solution solve_dl(const dl_parameters& params,
                                   const initial_condition& phi, double t0,
                                   double t_end,
                                   const dl_solver_options& options = {});

/// Deprecated shim for solve_dl({.params=&p, .phi_samples=samples, ...}).
[[nodiscard]] dl_solution solve_dl_profile(const dl_parameters& params,
                                           std::span<const double> phi_samples,
                                           double t0, double t_end,
                                           const dl_solver_options& options = {});

/// Deprecated shim for a solve_request with .workspace set.
[[nodiscard]] dl_solution solve_dl(const dl_parameters& params,
                                   const initial_condition& phi, double t0,
                                   double t_end,
                                   const dl_solver_options& options,
                                   dl_workspace& workspace);

/// Deprecated shim for a solve_request with .workspace set.
[[nodiscard]] dl_solution solve_dl_profile(const dl_parameters& params,
                                           std::span<const double> phi_samples,
                                           double t0, double t_end,
                                           const dl_solver_options& options,
                                           dl_workspace& workspace);

/// Mirror-ghost Neumann Laplacian of `u` scaled by 1/dx² into `out`
/// (exposed for tests).
void neumann_laplacian(std::span<const double> u, double dx,
                       std::span<double> out);

}  // namespace dlm::core
