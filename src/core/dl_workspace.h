// Reusable scratch buffers for the DL solver hot path.
//
// A single solve_dl_profile call needs ~10 heap vectors (state, Laplacian,
// tridiagonal rhs/scratch, per-node rates and integrated rates, Newton
// Jacobian and residual, RK4 stages) plus the Crank–Nicolson matrices and
// their cached Thomas factorization.  A calibration sweep issues hundreds
// of solves back to back — on a handful of pool threads — so reallocating
// those buffers per solve is pure overhead.  dl_workspace owns all of
// them: prepare(n) sizes everything once, and a steady-state time step of
// any of the four schemes then performs zero heap allocations.
//
// Two ways to get one:
//
//  * do nothing — the plain solve_dl / solve_dl_profile overloads borrow
//    a thread-local workspace (thread_workspace()), so every caller —
//    including each engine pool worker running calibration probes —
//    reuses buffers across solves automatically;
//  * pass one explicitly to the workspace-taking overloads when you want
//    buffer lifetime under your control: deterministic memory accounting
//    in tests/benches, or a solver embedded in a custom threading layer
//    where thread identity is not a useful cache key.
//
// Reuse never changes results: a workspace-reusing solve is bitwise
// identical to a fresh-workspace solve (covered by solver_workspace_test).
#pragma once

#include <cstddef>
#include <vector>

#include "numerics/integrate.h"
#include "numerics/tridiagonal.h"

namespace dlm::core {

struct dl_workspace {
  // State vectors (size n, the grid node count).
  std::vector<double> u;       ///< current solution
  std::vector<double> u_next;  ///< next-step / Newton iterate
  std::vector<double> lap;     ///< discrete Laplacian
  std::vector<double> rhs;     ///< tridiagonal right-hand side
  std::vector<double> scratch; ///< Thomas-elimination scratch

  // Growth-rate plumbing (size n; rate_scratch sized per rate family).
  std::vector<double> node_x;        ///< grid node coordinates
  std::vector<double> mod;           ///< separable spatial profile m(x_i)
  std::vector<double> rt;            ///< r(x_i, t) per step
  std::vector<double> r_int;         ///< ∫ r(x_i, s) ds per substep
  std::vector<double> rt_react;      ///< rates inside the MOL reaction term
  std::vector<double> rate_scratch;  ///< per-group family's group table

  // Implicit-Newton scheme.
  num::tridiagonal_matrix jac;   ///< Jacobian, rebuilt per iteration
  std::vector<double> newton_g;  ///< Newton residual

  // Strang–CN scheme: matrices built once per run, LHS factored once.
  num::tridiagonal_matrix cn_lhs;
  num::tridiagonal_matrix cn_rhs;
  num::tridiagonal_factorization cn_factor;

  // Second-axis CN matrices for the 2-D ADI domain solver (the x-axis
  // pair above is resized to nx there).  Sized by that solver itself —
  // prepare() leaves them alone so the 1-D path is untouched.
  num::tridiagonal_matrix cn_lhs_y;
  num::tridiagonal_matrix cn_rhs_y;
  num::tridiagonal_factorization cn_factor_y;

  // Method-of-lines RK4 stage buffers.
  num::rk4_scratch rk4;

  /// True while a solve is running on this workspace.  The thread-local
  /// wrapper checks it so a reentrant solve (e.g. a custom rate field
  /// that itself solves a PDE) falls back to a private workspace instead
  /// of corrupting the outer solve's buffers.
  bool in_use = false;

  /// Sizes every per-node buffer to n.  Buffer *capacity* is kept across
  /// calls, so a workspace reused at a fixed grid size allocates nothing
  /// after its first solve.
  void prepare(std::size_t n);
};

/// This thread's shared workspace — what the plain solve_dl overloads use.
[[nodiscard]] dl_workspace& thread_workspace();

}  // namespace dlm::core
