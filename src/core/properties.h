// Verifiers for the DL model's theoretical properties (paper §II.C).
//
// The paper proves two properties that justify using the DL equation for
// cumulative influence:
//   * Unique property        — 0 ≤ I(x, t) ≤ K for all (x, t);
//   * Strictly increasing    — I is strictly increasing in t whenever φ is
//                              a lower time-independent solution, i.e.
//                              d·φ'' + r·φ·(1 − φ/K) ≥ 0 (Eq. 5/6).
// These functions check the discrete counterparts on solved trajectories
// and candidate initial conditions; the property test-suite exercises them
// across parameter sweeps.
#pragma once

#include "core/dl_parameters.h"
#include "core/dl_solver.h"
#include "core/initial_condition.h"

namespace dlm::core {

/// Result of the 0 ≤ I ≤ K bound check.
struct bounds_report {
  double min_value = 0.0;
  double max_value = 0.0;
  bool within = false;  ///< min ≥ −tol and max ≤ K + tol
};

/// Scans every recorded snapshot of `sol`.
[[nodiscard]] bounds_report check_bounds(const dl_solution& sol, double k,
                                         double tolerance = 1e-9);

/// Result of the monotone-growth check.
struct monotonicity_report {
  /// Most negative inter-snapshot increment found (≥ 0 when monotone).
  double worst_increment = 0.0;
  bool non_decreasing = false;
};

/// Verifies I(x, t+Δ) ≥ I(x, t) across consecutive snapshots.
[[nodiscard]] monotonicity_report check_monotonicity(const dl_solution& sol,
                                                     double tolerance = 1e-9);

/// The minimum over the domain of the lower-solution expression
/// d·φ''(x) + r(t0)·φ(x)·(1 − φ(x)/K)  (paper Eq. 6) sampled at `samples`
/// points.  Non-negative ⇒ φ is a lower time-independent solution ⇒ the
/// solution grows monotonically (paper's strictly-increasing property).
[[nodiscard]] double lower_solution_margin(const initial_condition& phi,
                                           const dl_parameters& params,
                                           double t0 = 1.0,
                                           std::size_t samples = 512);

}  // namespace dlm::core
