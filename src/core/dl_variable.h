// Variable-coefficient Diffusive Logistic equation (paper §V future work).
//
//   ∂I/∂t = ∂/∂x( d(x) ∂I/∂x ) + r(x, t)·I·(1 − I / K(x))
//
// The paper closes with: "Our future work lies in developing new models
// that consider diffusion rate, growth rate and carrying capacity as
// functions of time and distance" — motivated by the Table II
// distance-5 anomaly, where a single r(t) over-predicts the slow
// outermost interest group ("the model can be refined by choosing a
// function of both distance and time for growth rate r").  This module
// implements that refinement: all three coefficients may vary over the
// domain, the diffusion term is discretized in conservative (flux) form,
// and `fit_rate_profile` recovers the per-distance rate multipliers from
// an early observation window.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "core/dl_parameters.h"
#include "core/dl_solver.h"
#include "core/initial_condition.h"

namespace dlm::core {

/// Coefficient fields of the generalized DL equation.
struct dl_variable_parameters {
  /// Growth rate r(x, t).
  std::function<double(double x, double t)> r;
  /// Diffusion rate d(x) ≥ 0.
  std::function<double(double x)> d;
  /// Carrying capacity K(x) > 0.
  std::function<double(double x)> k;
  double x_min = 1.0;
  double x_max = 5.0;

  /// Lifts constant-coefficient parameters into the variable model
  /// (same dynamics as the plain solver; used for cross-checks).
  [[nodiscard]] static dl_variable_parameters from_constant(
      const dl_parameters& params);

  /// Throws std::invalid_argument on missing fields or a bad domain.
  void validate() const;
};

/// Solver options for the variable-coefficient equation (method of lines,
/// classical RK4; the conservative flux form keeps Neumann no-flux
/// boundaries exact for spatially varying d).
struct dl_variable_options {
  std::size_t points_per_unit = 20;
  double dt = 0.01;
  double record_dt = 1.0;
};

/// Solves the variable-coefficient DL equation from φ over [t0, t_end].
[[nodiscard]] dl_solution solve_dl_variable(
    const dl_variable_parameters& params, const initial_condition& phi,
    double t0, double t_end, const dl_variable_options& options = {});

/// Raw-profile variant (size must match the implied node count).
[[nodiscard]] dl_solution solve_dl_variable_profile(
    const dl_variable_parameters& params, std::span<const double> phi_samples,
    double t0, double t_end, const dl_variable_options& options = {});

/// Per-distance rate multipliers recovered from an early window.
///
/// For each integer distance x with observations, estimates m(x) such
/// that the data's realized log-growth over [t0, t_obs] matches
/// m(x)·∫r(t)dt after logistic-braking correction:
///
///   m(x) = log(I_obs(x,t_obs)/I_obs(x,t0)) / ∫_{t0}^{t_obs} r(s)(1−Ī/K) ds
///
/// with Ī the window-average density.  Returns one multiplier per
/// observation; combine with `base_rate` via `scaled_rate_field`.
[[nodiscard]] std::vector<double> fit_rate_profile(
    std::span<const double> initial, std::span<const double> observed_at_tobs,
    const growth_rate& base_rate, double k, double t0, double t_obs);

/// Builds r(x, t) = m(x)·base(t) with m linearly interpolated between the
/// integer-distance multipliers (m clamped to be non-negative).
[[nodiscard]] std::function<double(double, double)> scaled_rate_field(
    std::vector<double> multipliers, growth_rate base_rate, double x_min);

}  // namespace dlm::core
