#include "core/domain.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace dlm::core {
namespace {

// Full-precision decimal formatting (shortest round-trip %.17g), matching
// the engine's canonical-identity formatter so a domain label embedded in
// a cache key never depends on locale or stream state.
std::string fp(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

std::string join_fp(const std::vector<double>& values) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ',';
    out += fp(values[i]);
  }
  return out;
}

/// The single off-diagonal rate of a uniform K×K mixing matrix, or a
/// negative value when the matrix is not uniform.  Diagonal ignored.
double uniform_mixing_rate(const std::vector<double>& mixing, std::size_t k) {
  double rate = -1.0;
  for (std::size_t c = 0; c < k; ++c) {
    for (std::size_t c2 = 0; c2 < k; ++c2) {
      if (c == c2) continue;
      const double m = mixing[c * k + c2];
      if (rate < 0.0) rate = m;
      if (m != rate) return -1.0;
    }
  }
  return rate;
}

}  // namespace

std::string to_string(domain_kind kind) {
  switch (kind) {
    case domain_kind::line: return "line";
    case domain_kind::grid2d: return "grid2d";
    case domain_kind::communities: return "communities";
  }
  return "unknown";
}

std::size_t domain::blocks(std::size_t points_per_unit) const {
  switch (kind) {
    case domain_kind::line: return 1;
    case domain_kind::grid2d: {
      // Same rounding as the x axis (detail::node_count): intervals per
      // unit distance, so integer interest distances land on nodes.
      const double units = y_max - y_min;
      const auto intervals = static_cast<std::size_t>(
          std::lround(units * static_cast<double>(points_per_unit)));
      if (intervals == 0)
        throw std::invalid_argument("domain: y axis shorter than one cell");
      return intervals + 1;
    }
    case domain_kind::communities: return community_count;
  }
  return 1;
}

bool domain::has_mixing() const noexcept {
  if (kind != domain_kind::communities || mixing.empty()) return false;
  const std::size_t k = community_count;
  for (std::size_t c = 0; c < k; ++c)
    for (std::size_t c2 = 0; c2 < k; ++c2)
      if (c != c2 && mixing[c * k + c2] != 0.0) return true;
  return false;
}

std::string domain::label() const {
  switch (kind) {
    case domain_kind::line: return "line";
    case domain_kind::grid2d: return "grid2d:" + fp(y_min) + ',' + fp(y_max);
    case domain_kind::communities: {
      std::string out = "comm:" + std::to_string(community_count);
      if (has_mixing()) {
        const double rate = uniform_mixing_rate(mixing, community_count);
        out += "|mix=";
        out += rate >= 0.0 ? fp(rate) : join_fp(mixing);
      }
      bool scaled = false;
      for (double s : scales)
        if (s != 1.0) scaled = true;
      if (scaled) out += "|scale=" + join_fp(scales);
      return out;
    }
  }
  return "unknown";
}

void domain::validate() const {
  switch (kind) {
    case domain_kind::line: return;
    case domain_kind::grid2d:
      if (!std::isfinite(y_min) || !std::isfinite(y_max))
        throw std::invalid_argument("domain: grid2d bounds must be finite");
      if (!(y_min < y_max))
        throw std::invalid_argument("domain: require y_min < y_max");
      return;
    case domain_kind::communities: {
      const std::size_t k = community_count;
      if (k == 0)
        throw std::invalid_argument("domain: need at least one community");
      if (!mixing.empty()) {
        if (mixing.size() != k * k)
          throw std::invalid_argument(
              "domain: mixing matrix must be K*K (" +
              std::to_string(k * k) + " entries for K=" + std::to_string(k) +
              "), got " + std::to_string(mixing.size()));
        for (double m : mixing)
          if (!std::isfinite(m) || m < 0.0)
            throw std::invalid_argument(
                "domain: mixing rates must be finite and >= 0");
      }
      if (!scales.empty()) {
        if (scales.size() != k)
          throw std::invalid_argument(
              "domain: need one scale per community (K=" + std::to_string(k) +
              "), got " + std::to_string(scales.size()));
        for (double s : scales)
          if (!std::isfinite(s) || s < 0.0)
            throw std::invalid_argument(
                "domain: scales must be finite and >= 0");
      }
      return;
    }
  }
}

domain domain::grid(double y_min, double y_max) {
  domain d;
  d.kind = domain_kind::grid2d;
  d.y_min = y_min;
  d.y_max = y_max;
  d.validate();
  return d;
}

domain domain::coupled(std::size_t k, double mix_rate) {
  domain d;
  d.kind = domain_kind::communities;
  d.community_count = k;
  if (mix_rate != 0.0) {
    d.mixing.assign(k * k, mix_rate);
    for (std::size_t c = 0; c < k; ++c) d.mixing[c * k + c] = 0.0;
  }
  d.validate();
  return d;
}

domain domain::coupled(std::size_t k, std::vector<double> mixing,
                       std::vector<double> scales) {
  domain d;
  d.kind = domain_kind::communities;
  d.community_count = k;
  d.mixing = std::move(mixing);
  d.scales = std::move(scales);
  d.validate();
  return d;
}

}  // namespace dlm::core
