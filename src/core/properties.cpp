#include "core/properties.h"

#include <algorithm>
#include <limits>

#include "numerics/grid.h"

namespace dlm::core {

bounds_report check_bounds(const dl_solution& sol, double k,
                           double tolerance) {
  bounds_report report;
  report.min_value = std::numeric_limits<double>::infinity();
  report.max_value = -std::numeric_limits<double>::infinity();
  for (const auto& state : sol.states()) {
    for (double v : state) {
      report.min_value = std::min(report.min_value, v);
      report.max_value = std::max(report.max_value, v);
    }
  }
  report.within = report.min_value >= -tolerance &&
                  report.max_value <= k + tolerance;
  return report;
}

monotonicity_report check_monotonicity(const dl_solution& sol,
                                       double tolerance) {
  monotonicity_report report;
  report.worst_increment = std::numeric_limits<double>::infinity();
  const auto& states = sol.states();
  if (states.size() < 2) {
    report.worst_increment = 0.0;
    report.non_decreasing = true;
    return report;
  }
  for (std::size_t s = 1; s < states.size(); ++s) {
    for (std::size_t i = 0; i < states[s].size(); ++i) {
      report.worst_increment =
          std::min(report.worst_increment, states[s][i] - states[s - 1][i]);
    }
  }
  report.non_decreasing = report.worst_increment >= -tolerance;
  return report;
}

double lower_solution_margin(const initial_condition& phi,
                             const dl_parameters& params, double t0,
                             std::size_t samples) {
  params.validate();
  double margin = std::numeric_limits<double>::infinity();
  const std::vector<double> xs =
      num::linspace(params.x_min, params.x_max, std::max<std::size_t>(samples, 2));
  for (double x : xs) {
    const double p = phi(x);
    const double value = params.d * phi.second_derivative(x) +
                         params.r(x, t0) * p * (1.0 - p / params.k);
    margin = std::min(margin, value);
  }
  return margin;
}

}  // namespace dlm::core
