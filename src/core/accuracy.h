// Prediction-accuracy metrics (paper Eq. 8, Tables I & II).
//
// ERRATUM HANDLED: the paper's Eq. 8 literally reads
//   "Prediction accuracy = |predicted − actual| / actual"
// which is the relative *error*; the values reported in Tables I/II
// (92–99%) are plainly 1 − that quantity.  Both are exposed here;
// `prediction_accuracy` returns the paper's reported convention
// (1 − relative error, clamped below at 0).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dlm::core {

/// |predicted − actual| / |actual|; +inf when actual == 0 and
/// predicted != 0, zero when both are 0.
[[nodiscard]] double relative_error(double predicted, double actual);

/// 1 − relative_error, clamped into [0, 1] (the paper's table values).
[[nodiscard]] double prediction_accuracy(double predicted, double actual);

/// A distance × time accuracy table in the paper's Table I/II layout.
struct accuracy_table {
  std::vector<int> distances;       ///< row labels (x values)
  std::vector<double> times;        ///< column labels (t values)
  /// cells[i][j] = prediction_accuracy at (distances[i], times[j]).
  std::vector<std::vector<double>> cells;

  /// Per-distance average across times (the paper's "Average" column).
  [[nodiscard]] std::vector<double> row_averages() const;

  /// Mean of all cells (the paper's "overall average prediction accuracy
  /// across all distances").
  [[nodiscard]] double overall_average() const;

  /// Mean of the cells at a single time column.
  [[nodiscard]] double column_average(std::size_t j) const;
};

/// Builds the table from predicted/actual surfaces laid out as
/// [distance index][time index] (equal shapes, matching the label spans).
[[nodiscard]] accuracy_table make_accuracy_table(
    std::span<const int> distances, std::span<const double> times,
    const std::vector<std::vector<double>>& predicted,
    const std::vector<std::vector<double>>& actual);

}  // namespace dlm::core
