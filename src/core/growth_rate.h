// Growth-rate functions r(t) for the DL equation.
//
// The paper observes (Fig. 4) that density increments shrink hour over
// hour and therefore makes r a *decreasing function of time*; its Eq. 7
// instance is r(t) = 1.4·e^{−1.5(t−1)} + 0.25 (Fig. 6).  The model also
// admits constant rates and arbitrary callables.  growth_rate is the
// purely-temporal building block; the solver consumes the §V
// spatio-temporal field core::rate_field (see core/rate_field.h), into
// which a growth_rate lifts implicitly as r(x, t) = r(t).
#pragma once

#include <functional>
#include <string>

namespace dlm::core {

/// A growth-rate function of time.
class growth_rate {
 public:
  /// Constant rate r(t) = value.
  static growth_rate constant(double value);

  /// Decaying exponential r(t) = amplitude·e^{−decay (t−1)} + floor
  /// (the paper's family; Eq. 7 is amplitude 1.4, decay 1.5, floor 0.25).
  static growth_rate exponential_decay(double amplitude, double decay,
                                       double floor);

  /// The exact paper Eq. 7 rate used for the friendship-hop experiments.
  static growth_rate paper_hops();

  /// The rate used for the shared-interest experiments
  /// (§III.C: r(t) = 1.6·e^{−(t−1)} + 0.1).
  static growth_rate paper_interest();

  /// Arbitrary callable.
  static growth_rate custom(std::function<double(double)> fn,
                            std::string label = "custom");

  [[nodiscard]] double operator()(double t) const { return fn_(t); }
  [[nodiscard]] const std::string& label() const noexcept { return label_; }

  /// ∫ r(s) ds over [t0, t1], exact for the built-in families and Simpson
  /// quadrature for custom callables.  The Strang-split solver consumes
  /// integrated rates (the logistic substep is exact given ∫r).
  [[nodiscard]] double integral(double t0, double t1) const;

 private:
  growth_rate(std::function<double(double)> fn,
              std::function<double(double, double)> integral,
              std::string label);

  std::function<double(double)> fn_;
  std::function<double(double, double)> integral_;
  std::string label_;
};

}  // namespace dlm::core
