#include "core/dl_parameters.h"

#include <sstream>
#include <stdexcept>

namespace dlm::core {

dl_parameters dl_parameters::paper_hops(double x_max) {
  dl_parameters p;
  p.d = 0.01;
  p.k = 25.0;
  p.r = growth_rate::paper_hops();
  p.x_min = 1.0;
  p.x_max = x_max;
  p.validate();
  return p;
}

dl_parameters dl_parameters::paper_interest(double x_max) {
  dl_parameters p;
  p.d = 0.05;
  p.k = 60.0;
  p.r = growth_rate::paper_interest();
  p.x_min = 1.0;
  p.x_max = x_max;
  p.validate();
  return p;
}

void dl_parameters::validate() const {
  if (d < 0.0) throw std::invalid_argument("dl_parameters: d must be >= 0");
  if (!(k > 0.0)) throw std::invalid_argument("dl_parameters: K must be > 0");
  if (!(x_min < x_max))
    throw std::invalid_argument("dl_parameters: require x_min < x_max");
  dom.validate();
}

std::string dl_parameters::describe() const {
  std::ostringstream out;
  out << "DL{d=" << d << ", K=" << k << ", r=" << r.label() << ", x=["
      << x_min << "," << x_max << "]";
  if (!dom.is_line()) out << ", dom=" << dom.label();
  out << "}";
  return out.str();
}

}  // namespace dlm::core
