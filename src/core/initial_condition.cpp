#include "core/initial_condition.h"

#include <algorithm>
#include <stdexcept>

#include "numerics/grid.h"

namespace dlm::core {
namespace {

num::cubic_spline build_spline(std::span<const double> distances,
                               std::span<const double> density) {
  if (distances.size() != density.size())
    throw std::invalid_argument("initial_condition: size mismatch");
  if (distances.size() < 2)
    throw std::invalid_argument("initial_condition: need >= 2 observations");
  for (double v : density) {
    if (v < 0.0)
      throw std::invalid_argument("initial_condition: negative density");
  }
  num::cubic_spline spline = num::cubic_spline::flat_ends(distances, density);
  spline.set_extrapolation(num::spline_extrapolation::clamp_flat);
  return spline;
}

}  // namespace

initial_condition::initial_condition(std::span<const double> distances,
                                     std::span<const double> density)
    : spline_(build_spline(distances, density)) {}

initial_condition::initial_condition(std::span<const double> density)
    : spline_(build_spline(
          [&] {
            std::vector<double> xs(density.size());
            for (std::size_t i = 0; i < xs.size(); ++i)
              xs[i] = static_cast<double>(i + 1);
            return xs;
          }(),
          density)) {}

std::vector<double> initial_condition::sample(double x_min, double x_max,
                                              std::size_t n) const {
  const std::vector<double> xs = num::linspace(x_min, x_max, n);
  return spline_.sample(xs);
}

}  // namespace dlm::core
