// Initial density function φ(x) construction (paper §II.D).
//
// The DL model needs a twice-continuously-differentiable φ with flat ends
// (φ'(l) = φ'(L) = 0) built from the *discrete* densities observed at
// integer distances during the first hour.  The paper interpolates with
// cubic splines and "sets the two ends to be flat"; here that is a clamped
// spline with zero end slopes.  The third requirement — the
// lower-solution inequality d·φ'' + r·φ·(1 − φ/K) ≥ 0 (Eq. 6), which
// guarantees the strictly-increasing property — is checked by
// `lower_solution_margin` in core/properties.h.
#pragma once

#include <span>
#include <vector>

#include "numerics/cubic_spline.h"

namespace dlm::core {

/// The constructed initial condition.
class initial_condition {
 public:
  /// Builds φ from discrete observations: `density[i]` observed at
  /// distance `distances[i]` (strictly increasing, typically 1, 2, 3, …).
  /// Requires ≥ 2 points and non-negative densities.
  initial_condition(std::span<const double> distances,
                    std::span<const double> density);

  /// Convenience: observations at integer distances 1..density.size().
  explicit initial_condition(std::span<const double> density);

  /// φ(x); flat (boundary value) outside the observed range.
  [[nodiscard]] double operator()(double x) const noexcept {
    return spline_(x);
  }

  /// φ'(x) / φ''(x) of the interpolant.
  [[nodiscard]] double derivative(double x) const noexcept {
    return spline_.derivative(x);
  }
  [[nodiscard]] double second_derivative(double x) const noexcept {
    return spline_.second_derivative(x);
  }

  /// Samples φ on `n` uniform points covering [x_min, x_max].
  [[nodiscard]] std::vector<double> sample(double x_min, double x_max,
                                           std::size_t n) const;

  [[nodiscard]] double x_min() const noexcept { return spline_.x_min(); }
  [[nodiscard]] double x_max() const noexcept { return spline_.x_max(); }

  /// Minimum of φ over the observed range — must be ≥ 0 for a valid
  /// density (checked at construction with a small tolerance; splines can
  /// undershoot between sparse knots, in which case construction clips by
  /// re-interpolating with the offending knot values raised to zero).
  [[nodiscard]] double min_value() const { return spline_.min_value(); }

  /// The underlying spline (e.g. for plotting).
  [[nodiscard]] const num::cubic_spline& spline() const noexcept {
    return spline_;
  }

 private:
  num::cubic_spline spline_;
};

}  // namespace dlm::core
