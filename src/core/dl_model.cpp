#include "core/dl_model.h"

#include <cmath>
#include <stdexcept>

namespace dlm::core {

initial_condition dl_model::build_initial(const dl_parameters& params,
                                          std::span<const double> observed) {
  params.validate();
  const auto expected = static_cast<std::size_t>(
      std::lround(params.x_max - params.x_min)) + 1;
  if (observed.size() != expected)
    throw std::invalid_argument(
        "dl_model: observation count must match integer distances in "
        "[x_min, x_max]");
  std::vector<double> xs(observed.size());
  for (std::size_t i = 0; i < xs.size(); ++i)
    xs[i] = params.x_min + static_cast<double>(i);
  return initial_condition(xs, observed);
}

dl_model::dl_model(dl_parameters params,
                   std::span<const double> observed_initial, double t0,
                   double t_max, dl_solver_options options)
    : params_(std::move(params)), t0_(t0), t_max_(t_max),
      phi_(build_initial(params_, observed_initial)),
      solution_(solve_dl({.params = &params_,
                          .phi = &phi_,
                          .t0 = t0,
                          .t_end = t_max,
                          .options = options})) {}

double dl_model::predict(int x, double t) const {
  return solution_.at(static_cast<double>(x), t);
}

std::vector<double> dl_model::predict_profile(double t) const {
  const int lo = static_cast<int>(std::lround(params_.x_min));
  const int hi = static_cast<int>(std::lround(params_.x_max));
  return solution_.at_integer_distances(t, lo, hi);
}

void dl_model::predict_profile_into(double t, std::span<double> out) const {
  const int lo = static_cast<int>(std::lround(params_.x_min));
  const int hi = static_cast<int>(std::lround(params_.x_max));
  solution_.at_integer_distances(t, lo, hi, out);
}

std::vector<std::vector<double>> dl_model::predict_surface(
    std::span<const double> times) const {
  const int lo = static_cast<int>(std::lround(params_.x_min));
  const int hi = static_cast<int>(std::lround(params_.x_max));
  std::vector<std::vector<double>> out(
      static_cast<std::size_t>(hi - lo + 1),
      std::vector<double>(times.size(), 0.0));
  std::vector<double> profile(static_cast<std::size_t>(hi - lo + 1));
  for (std::size_t j = 0; j < times.size(); ++j) {
    solution_.at_integer_distances(times[j], lo, hi, profile);
    for (std::size_t i = 0; i < profile.size(); ++i) out[i][j] = profile[i];
  }
  return out;
}

}  // namespace dlm::core
