#include "core/trace_storage.h"

#include <stdexcept>

namespace dlm::core {

trace_storage::trace_storage(std::size_t cols) : cols_(cols) {
  if (cols == 0)
    throw std::invalid_argument("trace_storage: cols must be >= 1");
}

trace_storage::trace_storage(std::size_t cols, std::vector<double> data)
    : cols_(cols), data_(std::move(data)) {
  if (cols == 0)
    throw std::invalid_argument("trace_storage: cols must be >= 1");
  if (data_.size() % cols != 0)
    throw std::invalid_argument(
        "trace_storage: buffer size is not a multiple of the row width");
}

void trace_storage::append_row(std::span<const double> row) {
  if (cols_ == 0 || row.size() != cols_)
    throw std::invalid_argument("trace_storage: row width mismatch");
  data_.insert(data_.end(), row.begin(), row.end());
}

}  // namespace dlm::core
