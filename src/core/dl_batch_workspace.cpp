#include "core/dl_batch_workspace.h"

namespace dlm::core {

void dl_batch_workspace::prepare(std::size_t n, std::size_t width,
                                 dl_scheme scheme) {
  const std::size_t soa = n * width;
  u.resize(soa);
  lap.resize(soa);
  rhs.resize(soa);

  lane_d.resize(width);
  lane_k.resize(width);
  v_prev.resize(width);
  v_cur.resize(width);
  v_next.resize(width);
  w.resize(width);
  lane_factored.resize(width);
  lane_uniform.resize(width);

  mod_rows.resize(soa);
  rt_rows.resize(soa);
  rint_rows.resize(soa);

  node_x.resize(n);
  row.resize(n);

  if (scheme == dl_scheme::strang_cn) {
    const std::size_t off = (n - 1) * width;
    cn_dm.resize(soa);
    cn_fp.resize(soa);
    cn_lm.resize(off);
    cn_um.resize(off);
    cn_fl.resize(off);
    cn_fc.resize(off);
    growth1.resize(width);
    growth2.resize(width);
  }
  if (scheme == dl_scheme::mol_rk4) {
    u_next.resize(soa);
    k1.resize(soa);
    k2.resize(soa);
    k3.resize(soa);
    k4.resize(soa);
    tmp.resize(soa);
  }
}

dl_batch_workspace& thread_batch_workspace() {
  thread_local dl_batch_workspace workspace;
  return workspace;
}

}  // namespace dlm::core
