// High-level DL prediction pipeline (paper §III.C).
//
// Wraps the full workflow: take the densities observed at integer
// distances during the first hour, build φ by clamped cubic spline,
// solve the DL equation forward, and read predictions back at integer
// distances — the paper's "given the initial spreading phase of a story,
// predict the density at distance x and time t".
#pragma once

#include <span>
#include <vector>

#include "core/dl_parameters.h"
#include "core/dl_solver.h"
#include "core/initial_condition.h"

namespace dlm::core {

/// A fitted/predicting DL model instance for one story.
class dl_model {
 public:
  /// `observed_initial[i]` is the density at distance x_min + i observed
  /// at time `t0` (hour 1 in the paper).  The spatial domain is
  /// [params.x_min, params.x_max]; observations must cover it (their count
  /// must equal x_max − x_min + 1 for integer-spaced observations).
  /// The model solves forward to `t_max` immediately.
  dl_model(dl_parameters params, std::span<const double> observed_initial,
           double t0 = 1.0, double t_max = 50.0,
           dl_solver_options options = {});

  /// The φ a dl_model builds from integer-distance observations: clamped
  /// cubic spline through (x_min + i, observed_initial[i]).  Exposed so
  /// batch callers (the sweep adapter) can build the same initial
  /// condition once and hand it to many solve_requests.  Throws when the
  /// observation count does not cover [x_min, x_max].
  [[nodiscard]] static initial_condition build_initial(
      const dl_parameters& params, std::span<const double> observed_initial);

  /// Predicted density at integer distance x (x_min ≤ x ≤ x_max), time t.
  [[nodiscard]] double predict(int x, double t) const;

  /// Predicted densities at all integer distances at time t.
  [[nodiscard]] std::vector<double> predict_profile(double t) const;

  /// Allocation-free variant writing into `out` (x_max − x_min + 1
  /// values) — the shape repeated callers (calibration objectives, sweep
  /// adapters) should use with a reused buffer.
  void predict_profile_into(double t, std::span<double> out) const;

  /// Predicted surface over integer distances × the given times;
  /// result[i][j] = prediction at distances[i], times[j].
  [[nodiscard]] std::vector<std::vector<double>> predict_surface(
      std::span<const double> times) const;

  [[nodiscard]] const dl_parameters& parameters() const noexcept {
    return params_;
  }
  [[nodiscard]] const initial_condition& phi() const noexcept { return phi_; }
  [[nodiscard]] const dl_solution& solution() const noexcept {
    return solution_;
  }
  [[nodiscard]] double t0() const noexcept { return t0_; }
  [[nodiscard]] double t_max() const noexcept { return t_max_; }

 private:
  dl_parameters params_;
  double t0_;
  double t_max_;
  initial_condition phi_;
  dl_solution solution_;
};

}  // namespace dlm::core
