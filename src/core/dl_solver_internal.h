// Shared internals of the scalar and batched DL solvers.
//
// The batched SoA solver (dl_batch_solver.cpp) must be *bitwise identical*
// per lane to the scalar path (dl_solver.cpp): every per-node expression —
// the exact logistic propagator, the Crank–Nicolson matrix entries, the
// node-count rounding — has to be the same IEEE operation sequence in both
// translation units.  Keeping them as shared inline helpers makes that a
// structural property instead of a copy-paste invariant.
//
// Not part of the public API: include only from src/core solver sources
// (and white-box tests).
#pragma once

#include <cmath>
#include <cstddef>
#include <stdexcept>

#include "core/dl_parameters.h"
#include "core/dl_solver.h"
#include "numerics/tridiagonal.h"

namespace dlm::core {

struct dl_workspace;

namespace detail {

/// Request options with the output mode folded in (final_state becomes an
/// infinite record_dt).  Defined in dl_solver.cpp.
[[nodiscard]] dl_solver_options effective_options(const solve_request& request);

/// Solves one request on the scalar path with the given workspace —
/// exactly what solve_dl(request) does after choosing scratch, and what
/// the batched solver uses for its non-batchable lanes.
[[nodiscard]] dl_solution solve_request_scalar(const solve_request& request,
                                               dl_workspace& ws);

/// Exact logistic propagator: N ← K·N·e^R / (K + N·(e^R − 1)) where R is
/// the integrated rate over the step.  Maps [0, K] into [0, K] for R ≥ 0.
inline double logistic_exact(double n, double integrated_rate, double k) {
  if (n <= 0.0) return n;
  const double growth = std::exp(integrated_rate);
  return k * n * growth / (k + n * (growth - 1.0));
}

/// Same propagator with e^R precomputed — for fields constant in x, every
/// node shares one integrated rate, so the exp is hoisted out of the node
/// loop (bitwise identical: exp of the same value is the same value).
/// Spelled as a select rather than an early return so the batched solver's
/// W-lane loops stay if-convertible (and therefore vectorizable); for
/// n ≤ 0 the speculative IEEE division is well-defined and discarded, and
/// the n > 0 expression is the same operation sequence either way.
inline double logistic_exact_with_growth(double n, double growth, double k) {
  const double propagated = k * n * growth / (k + n * (growth - 1.0));
  return n <= 0.0 ? n : propagated;
}

/// Grid node count implied by the domain and resolution.
inline std::size_t node_count(const dl_parameters& params,
                              const dl_solver_options& options) {
  const double units = params.x_max - params.x_min;
  const auto intervals = static_cast<std::size_t>(
      std::lround(units * static_cast<double>(options.points_per_unit)));
  if (intervals == 0)
    throw std::invalid_argument("dl_solver: domain shorter than one cell");
  return intervals + 1;
}

/// CN diffusion matrices: lhs = I − (λ/2)A, rhs-matrix = I + (λ/2)A with
/// the mirror-ghost Neumann Laplacian A (dx² folded into λ).
inline void build_cn_matrices(std::size_t n, double lambda,
                              num::tridiagonal_matrix& lhs,
                              num::tridiagonal_matrix& rhs) {
  for (std::size_t i = 0; i < n; ++i) {
    double off_l = 1.0, off_r = 1.0;
    if (i == 0) off_r = 2.0;
    if (i + 1 == n) off_l = 2.0;
    lhs.diag[i] = 1.0 + lambda;
    rhs.diag[i] = 1.0 - lambda;
    if (i + 1 < n) {
      lhs.upper[i] = -0.5 * lambda * off_r;
      rhs.upper[i] = 0.5 * lambda * off_r;
    }
    if (i > 0) {
      lhs.lower[i - 1] = -0.5 * lambda * off_l;
      rhs.lower[i - 1] = 0.5 * lambda * off_l;
    }
  }
}

}  // namespace detail
}  // namespace dlm::core
