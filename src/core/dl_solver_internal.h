// Shared internals of the scalar, batched and domain DL solvers.
//
// The batched SoA solver (dl_batch_solver.cpp) must be *bitwise identical*
// per lane to the scalar path (dl_solver.cpp), and the coupled-community
// domain solver (dl_domain_solver.cpp) must be bitwise identical to the
// plain 1-D line at K = 1: every per-node expression — the exact logistic
// propagator, the Crank–Nicolson matrix entries, the fused Strang–CN
// sweep, the per-node rate evaluation, the node-count rounding — has to
// be the same IEEE operation sequence in every translation unit.  Keeping
// them as shared inline helpers makes that a structural property instead
// of a copy-paste invariant.
//
// Not part of the public API: include only from src/core solver sources
// (and white-box tests).
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/dl_parameters.h"
#include "core/dl_solver.h"
#include "numerics/tridiagonal.h"

namespace dlm::core {

struct dl_workspace;

namespace detail {

/// Request options with the output mode folded in (final_state becomes an
/// infinite record_dt).  Defined in dl_solver.cpp.
[[nodiscard]] dl_solver_options effective_options(const solve_request& request);

/// Solves one request on the scalar path with the given workspace —
/// exactly what solve_dl(request) does after choosing scratch, and what
/// the batched solver uses for its non-batchable lanes.
[[nodiscard]] dl_solution solve_request_scalar(const solve_request& request,
                                               dl_workspace& ws);

/// Exact logistic propagator: N ← K·N·e^R / (K + N·(e^R − 1)) where R is
/// the integrated rate over the step.  Maps [0, K] into [0, K] for R ≥ 0.
inline double logistic_exact(double n, double integrated_rate, double k) {
  if (n <= 0.0) return n;
  const double growth = std::exp(integrated_rate);
  return k * n * growth / (k + n * (growth - 1.0));
}

/// Same propagator with e^R precomputed — for fields constant in x, every
/// node shares one integrated rate, so the exp is hoisted out of the node
/// loop (bitwise identical: exp of the same value is the same value).
/// Spelled as a select rather than an early return so the batched solver's
/// W-lane loops stay if-convertible (and therefore vectorizable); for
/// n ≤ 0 the speculative IEEE division is well-defined and discarded, and
/// the n > 0 expression is the same operation sequence either way.
inline double logistic_exact_with_growth(double n, double growth, double k) {
  const double propagated = k * n * growth / (k + n * (growth - 1.0));
  return n <= 0.0 ? n : propagated;
}

/// Grid node count implied by the domain and resolution.
inline std::size_t node_count(const dl_parameters& params,
                              const dl_solver_options& options) {
  const double units = params.x_max - params.x_min;
  const auto intervals = static_cast<std::size_t>(
      std::lround(units * static_cast<double>(options.points_per_unit)));
  if (intervals == 0)
    throw std::invalid_argument("dl_solver: domain shorter than one cell");
  return intervals + 1;
}

/// CN diffusion matrices: lhs = I − (λ/2)A, rhs-matrix = I + (λ/2)A with
/// the mirror-ghost Neumann Laplacian A (dx² folded into λ).
inline void build_cn_matrices(std::size_t n, double lambda,
                              num::tridiagonal_matrix& lhs,
                              num::tridiagonal_matrix& rhs) {
  for (std::size_t i = 0; i < n; ++i) {
    double off_l = 1.0, off_r = 1.0;
    if (i == 0) off_r = 2.0;
    if (i + 1 == n) off_l = 2.0;
    lhs.diag[i] = 1.0 + lambda;
    rhs.diag[i] = 1.0 - lambda;
    if (i + 1 < n) {
      lhs.upper[i] = -0.5 * lambda * off_r;
      rhs.upper[i] = 0.5 * lambda * off_r;
    }
    if (i > 0) {
      lhs.lower[i - 1] = -0.5 * lambda * off_l;
      rhs.lower[i - 1] = 0.5 * lambda * off_l;
    }
  }
}

/// Marks a workspace busy for the duration of a solve, so the
/// thread-local wrapper can detect reentrancy and fall back to a private
/// workspace instead of clobbering live buffers.
class workspace_guard {
 public:
  explicit workspace_guard(bool& in_use) : in_use_(in_use) { in_use_ = true; }
  ~workspace_guard() { in_use_ = false; }
  workspace_guard(const workspace_guard&) = delete;
  workspace_guard& operator=(const workspace_guard&) = delete;

 private:
  bool& in_use_;
};

/// Per-node growth-rate evaluation with the separable-form hoist.  The
/// scalar solver's time loop and the domain solvers all sample r(x_i, t)
/// and ∫ r(x_i, s) ds through this one struct, so a K = 1 community run
/// evaluates exactly the operation sequence of the plain 1-D path.
class rate_sampler {
 public:
  /// `node_x` are the x coordinates to sample at; `mod` is caller scratch
  /// of the same size (the hoisted spatial profile m(x_i) of a
  /// separable-form field); `scratch` backs the per-group family's table.
  rate_sampler(const rate_field& rate, std::span<const double> node_x,
               std::span<double> mod, std::vector<double>& scratch)
      : rate_(rate),
        node_x_(node_x),
        mod_(mod),
        scratch_(scratch),
        factored_(rate.separable_form()),
        uniform_(!rate.spatial()) {
    if (factored_) {
      for (std::size_t i = 0; i < node_x_.size(); ++i)
        mod_[i] = rate_.modulation(node_x_[i]);
    }
  }

  /// True when every node shares one rate (the temporal family), so the
  /// Strang logistic substep computes a single exp per substep.
  [[nodiscard]] bool uniform() const noexcept { return uniform_; }

  /// r(x_i, t) for every node into `out`.
  void rates_at(double t, std::span<double> out) const {
    if (factored_) {
      const double base = rate_.base()(t);
      for (std::size_t i = 0; i < node_x_.size(); ++i) out[i] = mod_[i] * base;
    } else {
      rate_.profile(t, node_x_, out, scratch_);
    }
  }

  /// ∫ r(x_i, s) ds over [from, to] for every node into `out`.
  void integrals_over(double from, double to, std::span<double> out) const {
    if (factored_) {
      const double base = rate_.base().integral(from, to);
      for (std::size_t i = 0; i < node_x_.size(); ++i) out[i] = mod_[i] * base;
    } else {
      rate_.integral_profile(from, to, node_x_, out, scratch_);
    }
  }

 private:
  const rate_field& rate_;
  std::span<const double> node_x_;
  std::span<double> mod_;
  std::vector<double>& scratch_;
  bool factored_ = false;
  bool uniform_ = false;
};

/// One fused Strang–CN step over an n-node line, in place on `u` with
/// `rhs` as elimination scratch (size ≥ n).  Logically: reaction
/// half-step (react1) — Crank–Nicolson diffusion full step against the
/// rhs matrix and the cached Thomas factorization of the lhs — reaction
/// half-step (react2).  The forward pass computes react1 into rolling
/// registers, forms the CN rhs row from them and eliminates it in place;
/// the backward pass back-substitutes and applies react2 to each node as
/// it is finalized.  Every individual expression — logistic propagator,
/// rhs-row accumulation order, elimination, substitution — is the
/// unfused form's operation sequence, so results are bitwise identical
/// to stepping the substeps separately; fusing only removes the extra
/// sweeps over the grid between them.
template <class React1, class React2>
inline void strang_cn_fused_step(std::size_t n, double* u, double* rhs,
                                 const num::tridiagonal_matrix& rhs_m,
                                 const num::tridiagonal_factorization& factor,
                                 React1&& react1, React2&& react2) {
  const std::vector<double>& dm = rhs_m.diag;
  const std::vector<double>& lm = rhs_m.lower;
  const std::vector<double>& um = rhs_m.upper;
  const std::vector<double>& fl = factor.lower();
  const std::vector<double>& fp = factor.pivots();
  const std::vector<double>& fc = factor.c_star();
  // The recurrence value is carried in a register (`w`) and the reaction
  // values roll through three registers, so each logistic is computed
  // exactly once and the serial elimination chain never waits on a
  // store/reload; the backward pass stores nothing but the finished
  // state.  Instantiated per reaction flavour so the node loops stay
  // branch-free.
  double v_prev;
  double v_cur = react1(u[0], std::size_t{0});
  double v_next = react1(u[1], std::size_t{1});
  double w;
  {
    double acc = dm[0] * v_cur;
    acc += um[0] * v_next;
    w = acc / fp[0];
    rhs[0] = w;
  }
  for (std::size_t i = 1; i + 1 < n; ++i) {
    v_prev = v_cur;
    v_cur = v_next;
    v_next = react1(u[i + 1], i + 1);
    double acc = dm[i] * v_cur;
    acc += lm[i - 1] * v_prev;
    acc += um[i] * v_next;
    w = (acc - fl[i - 1] * w) / fp[i];
    rhs[i] = w;
  }
  {
    v_prev = v_cur;
    v_cur = v_next;
    double acc = dm[n - 1] * v_cur;
    acc += lm[n - 2] * v_prev;
    w = (acc - fl[n - 2] * w) / fp[n - 1];
  }
  // Backward pass: back substitution + second reaction half-step.
  u[n - 1] = react2(w, n - 1);
  for (std::size_t i = n - 1; i-- > 0;) {
    w = rhs[i] - fc[i] * w;
    u[i] = react2(w, i);
  }
}

/// The fused step with the reaction flavour chosen from the rate shape:
/// one shared exp per substep when the rate is uniform in x, the per-node
/// exact logistic otherwise.  `r_int` / `rt` are the integrated rates of
/// the first / second half-step over the n nodes.
inline void strang_cn_step(std::size_t n, double* u, double* rhs,
                           const num::tridiagonal_matrix& rhs_m,
                           const num::tridiagonal_factorization& factor,
                           bool uniform, const double* r_int, const double* rt,
                           double kk) {
  if (uniform) {
    const double growth1 = std::exp(r_int[0]);
    const double growth2 = std::exp(rt[0]);
    strang_cn_fused_step(
        n, u, rhs, rhs_m, factor,
        [&](double v, std::size_t) {
          return logistic_exact_with_growth(v, growth1, kk);
        },
        [&](double v, std::size_t) {
          return logistic_exact_with_growth(v, growth2, kk);
        });
  } else {
    strang_cn_fused_step(
        n, u, rhs, rhs_m, factor,
        [&](double v, std::size_t i) {
          return logistic_exact(v, r_int[i], kk);
        },
        [&](double v, std::size_t i) { return logistic_exact(v, rt[i], kk); });
  }
}

/// Non-line domain solvers (dl_domain_solver.cpp): Peaceman–Rachford ADI
/// on the 2-D grid, fused Strang–CN per community plus the explicit
/// mixing substep on coupled communities.  Dispatched to by
/// solve_dl_profile; both accept only dl_scheme::strang_cn.
[[nodiscard]] dl_solution solve_dl_grid2d(const dl_parameters& params,
                                          std::span<const double> phi_samples,
                                          double t0, double t_end,
                                          const dl_solver_options& options,
                                          dl_workspace& ws);
[[nodiscard]] dl_solution solve_dl_communities(
    const dl_parameters& params, std::span<const double> phi_samples,
    double t0, double t_end, const dl_solver_options& options,
    dl_workspace& ws);

/// Broadcasts a sampled x-profile across a non-line domain's blocks:
/// replicated per grid2d row, scaled per community (clipped at zero).
[[nodiscard]] std::vector<double> broadcast_profile(
    const dl_parameters& params, std::span<const double> x_profile,
    const dl_solver_options& options);

}  // namespace detail
}  // namespace dlm::core
