// String-keyed factory registry for diffusion models.
//
// The registry is how sweeps, CSV records and CLI flags refer to models:
// a stable name ("dl", "heat", …) maps to a factory producing a fresh
// adapter instance.  `default_registry` carries the five built-in model
// families; user code can extend a copy with custom models.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/diffusion_model.h"

namespace dlm::engine {

class model_registry {
 public:
  using factory = std::function<std::unique_ptr<diffusion_model>()>;

  /// Registers `make` under `name`.  Throws std::invalid_argument on an
  /// empty name, a null factory, or a duplicate registration.
  void register_model(const std::string& name, factory make);

  [[nodiscard]] bool contains(const std::string& name) const;

  /// Creates a fresh instance.  Throws std::invalid_argument for unknown
  /// names, listing the registered ones in the message.
  [[nodiscard]] std::unique_ptr<diffusion_model> make(
      const std::string& name) const;

  /// Registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

  [[nodiscard]] std::size_t size() const noexcept { return factories_.size(); }

 private:
  std::map<std::string, factory> factories_;
};

/// Registers the five built-in families: "dl" (reaction-diffusion,
/// all four schemes), "heat" (diffusion-only, r = 0), "logistic" (one
/// global logistic curve, d = 0 and no spatial structure),
/// "per_distance_logistic" (independent logistic per group, d = 0) and
/// "si" (SI epidemic on the explicit follower graph).
void register_builtin_models(model_registry& registry);

/// The process-wide registry holding exactly the built-ins.
[[nodiscard]] const model_registry& default_registry();

}  // namespace dlm::engine
