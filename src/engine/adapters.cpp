#include "engine/adapters.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <stdexcept>

#include "core/dl_model.h"
#include "core/initial_condition.h"
#include "models/heat_model.h"
#include "models/logistic.h"
#include "models/per_distance_logistic.h"
#include "models/si_epidemic.h"
#include "numerics/rng.h"

namespace dlm::engine {

std::vector<model_trace> diffusion_model::solve_batch(
    std::span<const scenario> scenarios, const dataset_slice& slice) const {
  std::vector<model_trace> traces;
  traces.reserve(scenarios.size());
  for (const scenario& sc : scenarios) traces.push_back(solve(sc, slice));
  return traces;
}

std::vector<double> diffusion_model::evaluation_times(
    const scenario& sc, const dataset_slice& slice) {
  const int first = static_cast<int>(std::floor(sc.t0)) + 1;
  const int last =
      std::min(static_cast<int>(std::floor(sc.t_end)), slice.horizon_hours);
  std::vector<double> times;
  for (int t = first; t <= last; ++t) times.push_back(static_cast<double>(t));
  if (times.empty())
    throw std::invalid_argument(
        "diffusion_model: empty evaluation window (t0 >= t_end?)");
  return times;
}

namespace {

model_trace make_trace(const scenario& sc, const dataset_slice& slice) {
  model_trace trace;
  for (int x = 1; x <= slice.max_distance; ++x) trace.distances.push_back(x);
  trace.times = diffusion_model::evaluation_times(sc, slice);
  trace.predicted.assign(trace.distances.size(),
                         std::vector<double>(trace.times.size(), 0.0));
  return trace;
}

}  // namespace

model_trace dl_adapter::solve(const scenario& sc,
                              const dataset_slice& slice) const {
  return std::move(solve_batch({&sc, 1}, slice).front());
}

std::vector<model_trace> dl_adapter::solve_batch(
    std::span<const scenario> scenarios, const dataset_slice& slice) const {
  const std::size_t count = scenarios.size();
  std::vector<model_trace> traces;
  traces.reserve(count);
  // Requests hold pointers into these, so both are sized exactly up front.
  std::vector<core::dl_parameters> params;
  params.reserve(count);
  std::vector<core::initial_condition> phis;
  phis.reserve(count);
  std::vector<core::solve_request> requests;
  requests.reserve(count);

  for (const scenario& sc : scenarios) {
    traces.push_back(make_trace(sc, slice));
    model_trace& trace = traces.back();

    params.push_back(slice.base_params);
    core::dl_parameters& p = params.back();
    p.r = make_rate(sc.rate, slice.metric);
    p.dom = make_domain(sc.domain);
    trace.domain = p.dom.label();
    if (!std::isnan(sc.d_override)) p.d = sc.d_override;
    if (!std::isnan(sc.k_override)) p.k = sc.k_override;

    core::dl_solver_options options;
    options.scheme = sc.scheme;
    options.points_per_unit = sc.points_per_unit;
    options.dt = sc.dt;
    if (sc.scheme == core::dl_scheme::ftcs && p.d > 0.0) {
      // FTCS is conditionally stable (dt <= dx²/(2d)); clamp so fine-grid
      // sweep points stay finite instead of blowing up.
      const double dx = 1.0 / static_cast<double>(sc.points_per_unit);
      options.dt = std::min(options.dt, 0.9 * dx * dx / (2.0 * p.d));
    }
    trace.effective_dt = options.dt;

    phis.push_back(core::dl_model::build_initial(
        p, slice.profile_at(static_cast<int>(sc.t0))));
    requests.push_back({.params = &p,
                        .phi = &phis.back(),
                        .t0 = sc.t0,
                        .t_end = trace.times.back(),
                        .options = options});
  }

  // One call advances every compatible scenario in lockstep (batch
  // workspaces are thread-local, so each pool worker reuses its own SoA
  // buffers across chunks); incompatible or singleton requests take the
  // scalar path inside.  Either way each trace is bitwise identical to a
  // per-scenario solve.
  const std::vector<core::dl_solution> solutions = core::solve_dl(requests);

  for (std::size_t s = 0; s < count; ++s) {
    model_trace& trace = traces[s];
    const int lo = static_cast<int>(std::lround(params[s].x_min));
    const int hi = static_cast<int>(std::lround(params[s].x_max));
    std::vector<double> profile(trace.distances.size());
    for (std::size_t j = 0; j < trace.times.size(); ++j) {
      solutions[s].at_integer_distances(trace.times[j], lo, hi, profile);
      for (std::size_t i = 0; i < trace.distances.size(); ++i)
        trace.predicted[i][j] = profile[i];
    }
  }
  return traces;
}

model_trace heat_adapter::solve(const scenario& sc,
                                const dataset_slice& slice) const {
  model_trace trace = make_trace(sc, slice);
  if (sc.points_per_unit == 0)
    throw std::invalid_argument("heat_adapter: points_per_unit must be > 0");
  const double lower = 1.0;
  const double upper = static_cast<double>(slice.max_distance);

  const core::initial_condition phi(slice.profile_at(static_cast<int>(sc.t0)));
  const std::size_t nodes =
      static_cast<std::size_t>(slice.max_distance - 1) * sc.points_per_unit + 1;
  const std::vector<double> samples = phi.sample(lower, upper, nodes);

  for (std::size_t j = 0; j < trace.times.size(); ++j) {
    const std::vector<double> profile = models::heat_neumann_series(
        samples, lower, upper, slice.base_params.d, trace.times[j] - sc.t0);
    for (std::size_t i = 0; i < trace.distances.size(); ++i)
      trace.predicted[i][j] = profile[i * sc.points_per_unit];
  }
  return trace;
}

model_trace global_logistic_adapter::solve(const scenario& sc,
                                           const dataset_slice& slice) const {
  model_trace trace = make_trace(sc, slice);
  const core::rate_field rate = make_rate(sc.rate, slice.metric);
  if (rate.spatial())
    throw std::invalid_argument(
        "global_logistic: spatial rate spec '" + sc.rate +
        "' has no meaning for a space-free model (expand_sweep collapses "
        "spatial specs to their temporal base for this model)");
  const std::vector<double> hour0 =
      slice.profile_at(static_cast<int>(sc.t0));
  const double n0 =
      std::accumulate(hour0.begin(), hour0.end(), 0.0) /
      static_cast<double>(hour0.size());

  for (std::size_t j = 0; j < trace.times.size(); ++j) {
    const double integrated =
        rate.integral(sc.t0, trace.times[j], slice.base_params.x_min);
    const double value =
        models::logistic_step(n0, integrated, slice.base_params.k);
    for (std::size_t i = 0; i < trace.distances.size(); ++i)
      trace.predicted[i][j] = value;
  }
  return trace;
}

model_trace per_distance_logistic_adapter::solve(
    const scenario& sc, const dataset_slice& slice) const {
  model_trace trace = make_trace(sc, slice);
  // One rate callable per distance group: r(x_i, t).  A temporal field
  // collapses to the single shared callable (one Simpson integral).  The
  // field is shared across the lambdas — capturing it by value would
  // deep-copy its growth_rate table once per group.
  const auto rate = std::make_shared<const core::rate_field>(
      make_rate(sc.rate, slice.metric));
  std::vector<models::rate_fn> rates;
  const std::size_t groups =
      rate->spatial() ? static_cast<std::size_t>(slice.max_distance) : 1;
  for (std::size_t i = 0; i < groups; ++i) {
    const double x = slice.base_params.x_min + static_cast<double>(i);
    rates.push_back([rate, x](double t) { return (*rate)(x, t); });
  }
  const models::per_distance_logistic model(
      slice.profile_at(static_cast<int>(sc.t0)), sc.t0, slice.base_params.k,
      std::move(rates));

  for (std::size_t j = 0; j < trace.times.size(); ++j) {
    const std::vector<double> profile = model.predict(trace.times[j]);
    for (std::size_t i = 0; i < trace.distances.size(); ++i)
      trace.predicted[i][j] = profile[i];
  }
  return trace;
}

model_trace si_adapter::solve(const scenario& sc,
                              const dataset_slice& slice) const {
  if (slice.followers == nullptr || slice.partition == nullptr)
    throw std::invalid_argument("si_adapter: slice '" + slice.name +
                                "' has no follower graph / partition");
  model_trace trace = make_trace(sc, slice);

  models::si_params params;
  params.beta = beta;
  params.steps = static_cast<int>(trace.times.back());
  num::rng rand(sc.seed);
  const models::si_trace si =
      models::run_si(*slice.followers, slice.initiator, params, rand);
  const std::vector<std::vector<double>> density =
      models::si_density_by_distance(si, *slice.partition, params.steps);

  for (std::size_t i = 0; i < trace.distances.size(); ++i) {
    if (i >= density.size()) break;  // partition may cover fewer groups
    for (std::size_t j = 0; j < trace.times.size(); ++j) {
      const auto step = static_cast<std::size_t>(trace.times[j]) - 1;
      if (step < density[i].size()) trace.predicted[i][j] = density[i][step];
    }
  }
  return trace;
}

}  // namespace dlm::engine
