#include "engine/scenario.h"

#include <algorithm>
#include <charconv>
#include <stdexcept>
#include <utility>

#include "engine/format.h"
#include "social/density.h"
#include "social/network.h"

namespace dlm::engine {
namespace {

/// Copies rows 1..max_d, hours 1..horizon of a density field.
std::vector<std::vector<double>> surface_of(const social::density_field& field,
                                            int max_d) {
  std::vector<std::vector<double>> surface;
  surface.reserve(static_cast<std::size_t>(max_d));
  for (int x = 1; x <= max_d; ++x) {
    std::vector<double> row;
    row.reserve(static_cast<std::size_t>(field.hours()));
    for (int t = 1; t <= field.hours(); ++t) row.push_back(field.at(x, t));
    surface.push_back(std::move(row));
  }
  return surface;
}

std::uint64_t fnv1a(std::uint64_t hash, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

/// Content fingerprint of a validated slice (see dataset_slice docs).
std::uint64_t slice_fingerprint(const dataset_slice& slice) {
  std::uint64_t hash = 14695981039346656037ULL;
  const auto mix = [&hash](const auto& value) {
    hash = fnv1a(hash, &value, sizeof(value));
  };
  mix(static_cast<int>(slice.metric));
  mix(slice.max_distance);
  mix(slice.horizon_hours);
  for (const auto& row : slice.actual)
    for (const double value : row) mix(value);
  mix(slice.base_params.d);
  mix(slice.base_params.k);
  mix(slice.base_params.x_min);
  mix(slice.base_params.x_max);
  const std::string& label = slice.base_params.r.label();
  hash = fnv1a(hash, label.data(), label.size());
  // Graph-driven inputs by cheap structural invariants, not by address:
  // the fingerprint is part of every on-disk cache key (engine/cache_io.h),
  // so it must be identical across processes — a pointer value is not.
  // Hashing full graph content would rehash whole graphs per slice;
  // node/edge counts plus the partition's group sizes are O(groups) and
  // separate any two datasets that differ in shape.
  mix(slice.followers != nullptr);
  if (slice.followers != nullptr) {
    mix(slice.followers->node_count());
    mix(slice.followers->edge_count());
  }
  mix(slice.partition != nullptr);
  if (slice.partition != nullptr) {
    mix(static_cast<int>(slice.partition->metric));
    for (const std::size_t size : slice.partition->sizes) mix(size);
  }
  mix(slice.initiator);
  return hash;
}

/// 1-based character position of a token inside its spec — every
/// rejection names where the offending token starts, not just which spec
/// failed, so a bad entry in a long multiplier or mixing list is
/// attributable at a glance.
std::string at_position(std::size_t offset) {
  return " at position " + std::to_string(offset + 1);
}

/// Fails a make_rate parse: the reason, the offending token's position,
/// the spec verbatim, and the full accepted grammar (failures usually
/// surface deep inside a sweep, where "unknown spec" alone is not
/// attributable).
[[noreturn]] void bad_rate_spec(const std::string& spec,
                                const std::string& reason,
                                std::size_t offset = 0) {
  throw std::invalid_argument("make_rate: " + reason + at_position(offset) +
                              " in spec '" + spec + "'\n" +
                              rate_spec_grammar());
}

double parse_double(std::string_view text, const std::string& spec,
                    std::size_t offset) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size())
    bad_rate_spec(spec, "bad number '" + std::string(text) + "'", offset);
  return value;
}

/// The temporal subset of the grammar ("preset" resolved per metric).
/// `offset` is where `body` starts inside `spec` (0 for a bare temporal
/// spec, past the prefix for one nested in a spatial form).
core::growth_rate make_temporal_rate(const std::string& body,
                                     social::distance_metric metric,
                                     const std::string& spec,
                                     std::size_t offset) {
  if (body == "preset" || body == "-") {
    return metric == social::distance_metric::friendship_hops
               ? core::growth_rate::paper_hops()
               : core::growth_rate::paper_interest();
  }
  if (body == "paper_hops") return core::growth_rate::paper_hops();
  if (body == "paper_interest") return core::growth_rate::paper_interest();
  if (body.starts_with("constant:")) {
    const std::size_t at = sizeof("constant:") - 1;
    const double value =
        parse_double(std::string_view(body).substr(at), spec, offset + at);
    if (value < 0.0)
      bad_rate_spec(spec, "negative constant rate", offset + at);
    return core::growth_rate::constant(value);
  }
  if (body.starts_with("decay:")) {
    const std::size_t at = sizeof("decay:") - 1;
    const std::string_view params = std::string_view(body).substr(at);
    const std::size_t first = params.find(',');
    const std::size_t second =
        first == std::string_view::npos ? first : params.find(',', first + 1);
    if (first == std::string_view::npos || second == std::string_view::npos)
      bad_rate_spec(spec, "decay form needs 3 comma-separated numbers",
                    offset + at);
    const double a = parse_double(params.substr(0, first), spec, offset + at);
    const double b = parse_double(params.substr(first + 1, second - first - 1),
                                  spec, offset + at + first + 1);
    const double c =
        parse_double(params.substr(second + 1), spec, offset + at + second + 1);
    if (a < 0.0 || b <= 0.0 || c < 0.0)
      bad_rate_spec(spec, "decay form needs a >= 0, b > 0, c >= 0",
                    offset + at);
    return core::growth_rate::exponential_decay(a, b, c);
  }
  if (body.starts_with("calibrate"))
    bad_rate_spec(spec,
                  "'" + body +
                      "' is a calibration spec, not a concrete rate; it is "
                      "resolved by engine::run_sweep before models solve",
                  offset);
  if (body.starts_with("spatial:") || body.starts_with("per-hop:"))
    bad_rate_spec(spec, "spatial forms cannot nest ('" + body + "')", offset);
  bad_rate_spec(spec, "unknown growth-rate form '" + body + "'", offset);
}

/// Fails a make_domain parse, mirroring bad_rate_spec.
[[noreturn]] void bad_domain_spec(const std::string& spec,
                                  const std::string& reason,
                                  std::size_t offset = 0) {
  throw std::invalid_argument("make_domain: " + reason + at_position(offset) +
                              " in spec '" + spec + "'\n" +
                              domain_spec_grammar());
}

double parse_domain_double(std::string_view text, const std::string& spec,
                           std::size_t offset) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size())
    bad_domain_spec(spec, "bad number '" + std::string(text) + "'", offset);
  return value;
}

/// Comma-separated doubles starting at `offset` inside `spec`.
std::vector<double> parse_domain_list(std::string_view text,
                                      const std::string& spec,
                                      std::size_t offset) {
  std::vector<double> values;
  std::size_t at = 0;
  while (true) {
    const std::size_t comma = text.find(',', at);
    const std::string_view piece = text.substr(
        at, comma == std::string_view::npos ? comma : comma - at);
    if (piece.empty())
      bad_domain_spec(spec, "empty list entry", offset + at);
    values.push_back(parse_domain_double(piece, spec, offset + at));
    if (comma == std::string_view::npos) break;
    at = comma + 1;
  }
  return values;
}

}  // namespace

double dataset_slice::actual_at(int x, int t) const {
  if (x < 1 || x > max_distance || t < 1 || t > horizon_hours)
    throw std::out_of_range("dataset_slice: (x, t) outside the surface");
  return actual[static_cast<std::size_t>(x - 1)][static_cast<std::size_t>(t - 1)];
}

std::vector<double> dataset_slice::profile_at(int t) const {
  std::vector<double> profile;
  profile.reserve(static_cast<std::size_t>(max_distance));
  for (int x = 1; x <= max_distance; ++x) profile.push_back(actual_at(x, t));
  return profile;
}

std::size_t scenario_context::add_slice(dataset_slice slice) {
  if (slice.actual.empty() || slice.actual.front().empty())
    throw std::invalid_argument("scenario_context: empty surface in slice '" +
                                slice.name + "'");
  slice.max_distance = static_cast<int>(slice.actual.size());
  slice.horizon_hours = static_cast<int>(slice.actual.front().size());
  for (const auto& row : slice.actual) {
    if (row.size() != slice.actual.front().size())
      throw std::invalid_argument(
          "scenario_context: ragged surface in slice '" + slice.name + "'");
  }
  for (const auto& existing : slices_) {
    if (existing.name == slice.name)
      throw std::invalid_argument("scenario_context: duplicate slice name '" +
                                  slice.name + "'");
  }
  slice.fingerprint = slice_fingerprint(slice);
  slices_.push_back(std::move(slice));
  return slices_.size() - 1;
}

const dataset_slice& scenario_context::slice(std::size_t index) const {
  if (index >= slices_.size())
    throw std::out_of_range("scenario_context: slice index out of range");
  return slices_[index];
}

const dataset_slice& scenario_context::slice(const std::string& name) const {
  for (const auto& s : slices_) {
    if (s.name == name) return s;
  }
  throw std::invalid_argument("scenario_context: unknown slice '" + name +
                              "'");
}

std::vector<std::string> scenario_context::slice_names() const {
  std::vector<std::string> names;
  names.reserve(slices_.size());
  for (const auto& s : slices_) names.push_back(s.name);
  return names;
}

scenario_context scenario_context::from_dataset(digg::digg_dataset data,
                                                int max_hops) {
  scenario_context ctx;
  ctx.data_ = std::make_shared<digg::digg_dataset>(std::move(data));
  const digg::digg_dataset& d = *ctx.data_;
  const int horizon = d.config.horizon_hours;
  for (std::size_t i = 0; i < d.flagship_ids.size(); ++i) {
    const std::string story = d.config.stories[i].name;

    const social::density_field hop_field(d.network, d.flagship_ids[i],
                                          d.hop_partitions[i], horizon);
    const int hop_max = std::min(max_hops, hop_field.max_distance());
    dataset_slice hops;
    hops.name = story + "/hops";
    hops.story = story;
    hops.metric = social::distance_metric::friendship_hops;
    hops.actual = surface_of(hop_field, hop_max);
    hops.base_params = core::dl_parameters::paper_hops(hop_max);
    hops.followers = &d.network.followers();
    hops.initiator = d.initiators[i];
    hops.partition = &d.hop_partitions[i];
    ctx.add_slice(std::move(hops));

    const social::density_field int_field(d.network, d.flagship_ids[i],
                                          d.interest_partitions[i], horizon);
    const int int_max =
        std::min(static_cast<int>(d.config.interest_groups),
                 int_field.max_distance());
    dataset_slice interests;
    interests.name = story + "/interests";
    interests.story = story;
    interests.metric = social::distance_metric::shared_interests;
    interests.actual = surface_of(int_field, int_max);
    interests.base_params = core::dl_parameters::paper_interest(int_max);
    interests.followers = &d.network.followers();
    interests.initiator = d.initiators[i];
    interests.partition = &d.interest_partitions[i];
    ctx.add_slice(std::move(interests));
  }
  return ctx;
}

scenario_context scenario_context::from_cascade(
    graph::digraph followers, graph::node_id initiator,
    const std::vector<social::vote>& votes, int horizon_hours, int max_hops) {
  scenario_context ctx;
  ctx.graphs_.push_back(std::make_unique<graph::digraph>(std::move(followers)));
  const graph::digraph& g = *ctx.graphs_.back();

  social::social_network_builder builder(g, 1);
  for (const auto& v : votes) builder.add_vote(v.user, v.story, v.time);
  const social::social_network net = builder.build();

  ctx.partitions_.push_back(std::make_unique<social::distance_partition>(
      social::partition_by_hops(net, initiator, max_hops)));
  const social::distance_partition& partition = *ctx.partitions_.back();

  const int max_d = std::min(max_hops, partition.max_distance());
  const social::density_field field(net, 0, partition, horizon_hours);

  dataset_slice slice;
  slice.name = "cascade/hops";
  slice.story = "cascade";
  slice.metric = social::distance_metric::friendship_hops;
  slice.actual = surface_of(field, std::min(max_d, field.max_distance()));
  slice.base_params = core::dl_parameters::paper_hops(
      static_cast<double>(slice.actual.size()));
  slice.followers = &g;
  slice.initiator = initiator;
  slice.partition = &partition;
  ctx.add_slice(std::move(slice));
  return ctx;
}

scenario_context scenario_context::from_surface(
    std::string name, social::distance_metric metric,
    std::vector<std::vector<double>> actual, core::dl_parameters params) {
  scenario_context ctx;
  dataset_slice slice;
  slice.name = std::move(name);
  slice.story = slice.name;
  slice.metric = metric;
  slice.actual = std::move(actual);
  slice.base_params = params;
  ctx.add_slice(std::move(slice));
  return ctx;
}

const std::string& rate_spec_grammar() {
  static const std::string grammar =
      "accepted growth-rate specs:\n"
      "  preset | paper_hops | paper_interest\n"
      "  constant:<v>\n"
      "  decay:<a>,<b>,<c>\n"
      "  spatial:<base>|<m1>,<m2>,...   (base = any temporal form above)\n"
      "  per-hop:<spec1>;<spec2>;...    (one temporal form per group)\n"
      "  calibrate[:<H>] | calibrate-fixed[:<H>] | calibrate-spatial[:<H>]\n"
      "    (calibration specs; resolved by engine::run_sweep, not "
      "make_rate)";
  return grammar;
}

bool is_spatial_rate_spec(const std::string& spec) {
  return spec.starts_with("spatial:") || spec.starts_with("per-hop:");
}

std::string spatial_base_spec(const std::string& spec) {
  if (spec.starts_with("spatial:")) {
    const std::size_t at = sizeof("spatial:") - 1;
    const std::string_view body = std::string_view(spec).substr(at);
    const std::size_t bar = body.find('|');
    if (bar == std::string_view::npos)
      bad_rate_spec(spec, "spatial form needs '<base>|<m1>,<m2>,...'", at);
    return std::string(body.substr(0, bar));
  }
  if (spec.starts_with("per-hop:")) return "preset";
  return spec;
}

core::rate_field make_rate(const std::string& spec,
                           social::distance_metric metric) {
  if (spec.starts_with("spatial:")) {
    const std::size_t at = sizeof("spatial:") - 1;
    const std::string_view body = std::string_view(spec).substr(at);
    const std::size_t bar = body.find('|');
    if (bar == std::string_view::npos)
      bad_rate_spec(spec, "spatial form needs '<base>|<m1>,<m2>,...'", at);
    const std::string base(body.substr(0, bar));
    if (base.empty())
      bad_rate_spec(spec, "spatial form has an empty base", at);
    const std::vector<std::string> pieces =
        split_keep_empty(body.substr(bar + 1), ',');
    std::vector<double> multipliers;
    multipliers.reserve(pieces.size());
    std::size_t piece_at = at + bar + 1;
    for (const std::string& piece : pieces) {
      if (piece.empty()) bad_rate_spec(spec, "empty multiplier", piece_at);
      const double m = parse_double(piece, spec, piece_at);
      if (m < 0.0)
        bad_rate_spec(spec, "negative multiplier " + piece, piece_at);
      multipliers.push_back(m);
      piece_at += piece.size() + 1;
    }
    return core::rate_field::separable(
        make_temporal_rate(base, metric, spec, at), std::move(multipliers));
  }
  if (spec.starts_with("per-hop:")) {
    const std::size_t at = sizeof("per-hop:") - 1;
    const std::vector<std::string> pieces =
        split_keep_empty(std::string_view(spec).substr(at), ';');
    std::vector<core::growth_rate> rates;
    rates.reserve(pieces.size());
    std::size_t piece_at = at;
    for (const std::string& piece : pieces) {
      if (piece.empty()) bad_rate_spec(spec, "empty per-hop entry", piece_at);
      rates.push_back(make_temporal_rate(piece, metric, spec, piece_at));
      piece_at += piece.size() + 1;
    }
    return core::rate_field::per_group(std::move(rates));
  }
  return make_temporal_rate(spec, metric, spec, 0);
}

const std::string& domain_spec_grammar() {
  static const std::string grammar =
      "accepted domain specs:\n"
      "  line                                1-D distance axis (default)\n"
      "  grid2d:<y_min>,<y_max>              2-D distance x interest sheet "
      "(ADI)\n"
      "  comm:<K>                            K uncoupled per-community "
      "lines\n"
      "  comm:<K>|mix=<rate>                 uniform cross-community "
      "mixing\n"
      "  comm:<K>|mix=<m11>,...,<mKK>        full K*K mixing matrix "
      "(row-major)\n"
      "  comm:<K>|...|scale=<s1>,...,<sK>    per-community initial-mass "
      "scales\n"
      "  (non-line domains solve with the strang-cn scheme only)";
  return grammar;
}

core::domain make_domain(const std::string& spec) {
  if (spec.empty() || spec == "line" || spec == "-")
    return core::domain::line();
  if (spec.starts_with("grid2d:")) {
    const std::size_t at = sizeof("grid2d:") - 1;
    const std::string_view body = std::string_view(spec).substr(at);
    const std::size_t comma = body.find(',');
    if (comma == std::string_view::npos)
      bad_domain_spec(spec, "grid2d form needs '<y_min>,<y_max>'", at);
    const double y_min = parse_domain_double(body.substr(0, comma), spec, at);
    const double y_max =
        parse_domain_double(body.substr(comma + 1), spec, at + comma + 1);
    if (!(y_min < y_max))
      bad_domain_spec(spec, "grid2d needs y_min < y_max", at);
    core::domain dom = core::domain::grid(y_min, y_max);
    dom.validate();
    return dom;
  }
  if (spec.starts_with("comm:")) {
    const std::size_t at = sizeof("comm:") - 1;
    const std::string_view body = std::string_view(spec).substr(at);
    const std::size_t first_bar = body.find('|');
    const std::string_view count_text = body.substr(0, first_bar);
    unsigned long k = 0;
    const auto [ptr, ec] = std::from_chars(
        count_text.data(), count_text.data() + count_text.size(), k);
    if (ec != std::errc{} || ptr != count_text.data() + count_text.size() ||
        k == 0)
      bad_domain_spec(
          spec, "bad community count '" + std::string(count_text) + "'", at);
    core::domain dom = core::domain::coupled(k);
    // Optional |mix=... / |scale=... segments, in any order.
    std::size_t seg_at = first_bar;
    while (seg_at != std::string_view::npos) {
      seg_at += 1;  // past the '|'
      const std::size_t next_bar = body.find('|', seg_at);
      const std::string_view segment = body.substr(
          seg_at, next_bar == std::string_view::npos ? next_bar
                                                     : next_bar - seg_at);
      if (segment.empty()) {
        bad_domain_spec(spec, "empty segment", at + seg_at);
      } else if (segment.starts_with("mix=")) {
        const std::size_t val_at = seg_at + sizeof("mix=") - 1;
        const std::vector<double> values =
            parse_domain_list(segment.substr(sizeof("mix=") - 1), spec,
                              at + val_at);
        if (values.size() == 1) {
          if (!(values[0] >= 0.0))
            bad_domain_spec(spec, "mixing rate must be >= 0", at + val_at);
          // Only the mixing matrix: a scale= segment parsed earlier in
          // the spec must survive.
          dom.mixing = core::domain::coupled(k, values[0]).mixing;
        } else if (values.size() == k * k) {
          dom.mixing = values;
        } else {
          bad_domain_spec(spec,
                          "mix= needs 1 rate or " + std::to_string(k * k) +
                              " entries (K=" + std::to_string(k) + "), got " +
                              std::to_string(values.size()),
                          at + val_at);
        }
      } else if (segment.starts_with("scale=")) {
        const std::size_t val_at = seg_at + sizeof("scale=") - 1;
        const std::vector<double> values = parse_domain_list(
            segment.substr(sizeof("scale=") - 1), spec, at + val_at);
        if (values.size() != k)
          bad_domain_spec(spec,
                          "scale= needs one entry per community (K=" +
                              std::to_string(k) + "), got " +
                              std::to_string(values.size()),
                          at + val_at);
        dom.scales = values;
      } else {
        bad_domain_spec(spec,
                        "unknown segment '" + std::string(segment) + "'",
                        at + seg_at);
      }
      seg_at = next_bar;
    }
    dom.validate();
    return dom;
  }
  bad_domain_spec(spec, "unknown domain form '" + spec + "'");
}

}  // namespace dlm::engine
