#include "engine/scenario.h"

#include <algorithm>
#include <charconv>
#include <stdexcept>
#include <utility>

#include "engine/format.h"
#include "social/density.h"
#include "social/network.h"

namespace dlm::engine {
namespace {

/// Copies rows 1..max_d, hours 1..horizon of a density field.
std::vector<std::vector<double>> surface_of(const social::density_field& field,
                                            int max_d) {
  std::vector<std::vector<double>> surface;
  surface.reserve(static_cast<std::size_t>(max_d));
  for (int x = 1; x <= max_d; ++x) {
    std::vector<double> row;
    row.reserve(static_cast<std::size_t>(field.hours()));
    for (int t = 1; t <= field.hours(); ++t) row.push_back(field.at(x, t));
    surface.push_back(std::move(row));
  }
  return surface;
}

std::uint64_t fnv1a(std::uint64_t hash, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

/// Content fingerprint of a validated slice (see dataset_slice docs).
std::uint64_t slice_fingerprint(const dataset_slice& slice) {
  std::uint64_t hash = 14695981039346656037ULL;
  const auto mix = [&hash](const auto& value) {
    hash = fnv1a(hash, &value, sizeof(value));
  };
  mix(static_cast<int>(slice.metric));
  mix(slice.max_distance);
  mix(slice.horizon_hours);
  for (const auto& row : slice.actual)
    for (const double value : row) mix(value);
  mix(slice.base_params.d);
  mix(slice.base_params.k);
  mix(slice.base_params.x_min);
  mix(slice.base_params.x_max);
  const std::string& label = slice.base_params.r.label();
  hash = fnv1a(hash, label.data(), label.size());
  // Graph-driven inputs by cheap structural invariants, not by address:
  // the fingerprint is part of every on-disk cache key (engine/cache_io.h),
  // so it must be identical across processes — a pointer value is not.
  // Hashing full graph content would rehash whole graphs per slice;
  // node/edge counts plus the partition's group sizes are O(groups) and
  // separate any two datasets that differ in shape.
  mix(slice.followers != nullptr);
  if (slice.followers != nullptr) {
    mix(slice.followers->node_count());
    mix(slice.followers->edge_count());
  }
  mix(slice.partition != nullptr);
  if (slice.partition != nullptr) {
    mix(static_cast<int>(slice.partition->metric));
    for (const std::size_t size : slice.partition->sizes) mix(size);
  }
  mix(slice.initiator);
  return hash;
}

/// Fails a make_rate parse: the reason, the offending spec verbatim, and
/// the full accepted grammar (failures usually surface deep inside a
/// sweep, where "unknown spec" alone is not attributable).
[[noreturn]] void bad_rate_spec(const std::string& spec,
                                const std::string& reason) {
  throw std::invalid_argument("make_rate: " + reason + " in spec '" + spec +
                              "'\n" + rate_spec_grammar());
}

double parse_double(std::string_view text, const std::string& spec) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size())
    bad_rate_spec(spec, "bad number '" + std::string(text) + "'");
  return value;
}

/// The temporal subset of the grammar ("preset" resolved per metric).
core::growth_rate make_temporal_rate(const std::string& body,
                                     social::distance_metric metric,
                                     const std::string& spec) {
  if (body == "preset" || body == "-") {
    return metric == social::distance_metric::friendship_hops
               ? core::growth_rate::paper_hops()
               : core::growth_rate::paper_interest();
  }
  if (body == "paper_hops") return core::growth_rate::paper_hops();
  if (body == "paper_interest") return core::growth_rate::paper_interest();
  if (body.starts_with("constant:")) {
    const double value = parse_double(
        std::string_view(body).substr(sizeof("constant:") - 1), spec);
    if (value < 0.0) bad_rate_spec(spec, "negative constant rate");
    return core::growth_rate::constant(value);
  }
  if (body.starts_with("decay:")) {
    const std::string_view params =
        std::string_view(body).substr(sizeof("decay:") - 1);
    const std::size_t first = params.find(',');
    const std::size_t second =
        first == std::string_view::npos ? first : params.find(',', first + 1);
    if (first == std::string_view::npos || second == std::string_view::npos)
      bad_rate_spec(spec, "decay form needs 3 comma-separated numbers");
    const double a = parse_double(params.substr(0, first), spec);
    const double b =
        parse_double(params.substr(first + 1, second - first - 1), spec);
    const double c = parse_double(params.substr(second + 1), spec);
    if (a < 0.0 || b <= 0.0 || c < 0.0)
      bad_rate_spec(spec, "decay form needs a >= 0, b > 0, c >= 0");
    return core::growth_rate::exponential_decay(a, b, c);
  }
  if (body.starts_with("calibrate"))
    bad_rate_spec(spec,
                  "'" + body +
                      "' is a calibration spec, not a concrete rate; it is "
                      "resolved by engine::run_sweep before models solve");
  if (body.starts_with("spatial:") || body.starts_with("per-hop:"))
    bad_rate_spec(spec, "spatial forms cannot nest ('" + body + "')");
  bad_rate_spec(spec, "unknown growth-rate form '" + body + "'");
}

}  // namespace

double dataset_slice::actual_at(int x, int t) const {
  if (x < 1 || x > max_distance || t < 1 || t > horizon_hours)
    throw std::out_of_range("dataset_slice: (x, t) outside the surface");
  return actual[static_cast<std::size_t>(x - 1)][static_cast<std::size_t>(t - 1)];
}

std::vector<double> dataset_slice::profile_at(int t) const {
  std::vector<double> profile;
  profile.reserve(static_cast<std::size_t>(max_distance));
  for (int x = 1; x <= max_distance; ++x) profile.push_back(actual_at(x, t));
  return profile;
}

std::size_t scenario_context::add_slice(dataset_slice slice) {
  if (slice.actual.empty() || slice.actual.front().empty())
    throw std::invalid_argument("scenario_context: empty surface in slice '" +
                                slice.name + "'");
  slice.max_distance = static_cast<int>(slice.actual.size());
  slice.horizon_hours = static_cast<int>(slice.actual.front().size());
  for (const auto& row : slice.actual) {
    if (row.size() != slice.actual.front().size())
      throw std::invalid_argument(
          "scenario_context: ragged surface in slice '" + slice.name + "'");
  }
  for (const auto& existing : slices_) {
    if (existing.name == slice.name)
      throw std::invalid_argument("scenario_context: duplicate slice name '" +
                                  slice.name + "'");
  }
  slice.fingerprint = slice_fingerprint(slice);
  slices_.push_back(std::move(slice));
  return slices_.size() - 1;
}

const dataset_slice& scenario_context::slice(std::size_t index) const {
  if (index >= slices_.size())
    throw std::out_of_range("scenario_context: slice index out of range");
  return slices_[index];
}

const dataset_slice& scenario_context::slice(const std::string& name) const {
  for (const auto& s : slices_) {
    if (s.name == name) return s;
  }
  throw std::invalid_argument("scenario_context: unknown slice '" + name +
                              "'");
}

std::vector<std::string> scenario_context::slice_names() const {
  std::vector<std::string> names;
  names.reserve(slices_.size());
  for (const auto& s : slices_) names.push_back(s.name);
  return names;
}

scenario_context scenario_context::from_dataset(digg::digg_dataset data,
                                                int max_hops) {
  scenario_context ctx;
  ctx.data_ = std::make_shared<digg::digg_dataset>(std::move(data));
  const digg::digg_dataset& d = *ctx.data_;
  const int horizon = d.config.horizon_hours;
  for (std::size_t i = 0; i < d.flagship_ids.size(); ++i) {
    const std::string story = d.config.stories[i].name;

    const social::density_field hop_field(d.network, d.flagship_ids[i],
                                          d.hop_partitions[i], horizon);
    const int hop_max = std::min(max_hops, hop_field.max_distance());
    dataset_slice hops;
    hops.name = story + "/hops";
    hops.story = story;
    hops.metric = social::distance_metric::friendship_hops;
    hops.actual = surface_of(hop_field, hop_max);
    hops.base_params = core::dl_parameters::paper_hops(hop_max);
    hops.followers = &d.network.followers();
    hops.initiator = d.initiators[i];
    hops.partition = &d.hop_partitions[i];
    ctx.add_slice(std::move(hops));

    const social::density_field int_field(d.network, d.flagship_ids[i],
                                          d.interest_partitions[i], horizon);
    const int int_max =
        std::min(static_cast<int>(d.config.interest_groups),
                 int_field.max_distance());
    dataset_slice interests;
    interests.name = story + "/interests";
    interests.story = story;
    interests.metric = social::distance_metric::shared_interests;
    interests.actual = surface_of(int_field, int_max);
    interests.base_params = core::dl_parameters::paper_interest(int_max);
    interests.followers = &d.network.followers();
    interests.initiator = d.initiators[i];
    interests.partition = &d.interest_partitions[i];
    ctx.add_slice(std::move(interests));
  }
  return ctx;
}

scenario_context scenario_context::from_cascade(
    graph::digraph followers, graph::node_id initiator,
    const std::vector<social::vote>& votes, int horizon_hours, int max_hops) {
  scenario_context ctx;
  ctx.graphs_.push_back(std::make_unique<graph::digraph>(std::move(followers)));
  const graph::digraph& g = *ctx.graphs_.back();

  social::social_network_builder builder(g, 1);
  for (const auto& v : votes) builder.add_vote(v.user, v.story, v.time);
  const social::social_network net = builder.build();

  ctx.partitions_.push_back(std::make_unique<social::distance_partition>(
      social::partition_by_hops(net, initiator, max_hops)));
  const social::distance_partition& partition = *ctx.partitions_.back();

  const int max_d = std::min(max_hops, partition.max_distance());
  const social::density_field field(net, 0, partition, horizon_hours);

  dataset_slice slice;
  slice.name = "cascade/hops";
  slice.story = "cascade";
  slice.metric = social::distance_metric::friendship_hops;
  slice.actual = surface_of(field, std::min(max_d, field.max_distance()));
  slice.base_params = core::dl_parameters::paper_hops(
      static_cast<double>(slice.actual.size()));
  slice.followers = &g;
  slice.initiator = initiator;
  slice.partition = &partition;
  ctx.add_slice(std::move(slice));
  return ctx;
}

scenario_context scenario_context::from_surface(
    std::string name, social::distance_metric metric,
    std::vector<std::vector<double>> actual, core::dl_parameters params) {
  scenario_context ctx;
  dataset_slice slice;
  slice.name = std::move(name);
  slice.story = slice.name;
  slice.metric = metric;
  slice.actual = std::move(actual);
  slice.base_params = params;
  ctx.add_slice(std::move(slice));
  return ctx;
}

const std::string& rate_spec_grammar() {
  static const std::string grammar =
      "accepted growth-rate specs:\n"
      "  preset | paper_hops | paper_interest\n"
      "  constant:<v>\n"
      "  decay:<a>,<b>,<c>\n"
      "  spatial:<base>|<m1>,<m2>,...   (base = any temporal form above)\n"
      "  per-hop:<spec1>;<spec2>;...    (one temporal form per group)\n"
      "  calibrate[:<H>] | calibrate-fixed[:<H>] | calibrate-spatial[:<H>]\n"
      "    (calibration specs; resolved by engine::run_sweep, not "
      "make_rate)";
  return grammar;
}

bool is_spatial_rate_spec(const std::string& spec) {
  return spec.starts_with("spatial:") || spec.starts_with("per-hop:");
}

std::string spatial_base_spec(const std::string& spec) {
  if (spec.starts_with("spatial:")) {
    const std::string_view body =
        std::string_view(spec).substr(sizeof("spatial:") - 1);
    const std::size_t bar = body.find('|');
    if (bar == std::string_view::npos)
      bad_rate_spec(spec, "spatial form needs '<base>|<m1>,<m2>,...'");
    return std::string(body.substr(0, bar));
  }
  if (spec.starts_with("per-hop:")) return "preset";
  return spec;
}

core::rate_field make_rate(const std::string& spec,
                           social::distance_metric metric) {
  if (spec.starts_with("spatial:")) {
    const std::string_view body =
        std::string_view(spec).substr(sizeof("spatial:") - 1);
    const std::size_t bar = body.find('|');
    if (bar == std::string_view::npos)
      bad_rate_spec(spec, "spatial form needs '<base>|<m1>,<m2>,...'");
    const std::string base(body.substr(0, bar));
    if (base.empty()) bad_rate_spec(spec, "spatial form has an empty base");
    const std::vector<std::string> pieces =
        split_keep_empty(body.substr(bar + 1), ',');
    std::vector<double> multipliers;
    multipliers.reserve(pieces.size());
    for (const std::string& piece : pieces) {
      if (piece.empty()) bad_rate_spec(spec, "empty multiplier");
      const double m = parse_double(piece, spec);
      if (m < 0.0) bad_rate_spec(spec, "negative multiplier " + piece);
      multipliers.push_back(m);
    }
    return core::rate_field::separable(
        make_temporal_rate(base, metric, spec), std::move(multipliers));
  }
  if (spec.starts_with("per-hop:")) {
    const std::vector<std::string> pieces = split_keep_empty(
        std::string_view(spec).substr(sizeof("per-hop:") - 1), ';');
    std::vector<core::growth_rate> rates;
    rates.reserve(pieces.size());
    for (const std::string& piece : pieces) {
      if (piece.empty()) bad_rate_spec(spec, "empty per-hop entry");
      rates.push_back(make_temporal_rate(piece, metric, spec));
    }
    return core::rate_field::per_group(std::move(rates));
  }
  return make_temporal_rate(spec, metric, spec);
}

}  // namespace dlm::engine
