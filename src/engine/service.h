// Resident sweep service: the long-running server mode of the engine.
//
// A production predictor answers most queries from a warm cache; a
// process that re-pays every cold solve per invocation cannot.
// dl_service keeps one solve_cache and one calibration thread pool
// alive across requests: a background accept worker listens on a local
// (AF_UNIX) stream socket and answers solve / predict / calibrate
// requests — each connection served on its own thread, all of them
// sharing the warm cache — until a graceful shutdown flushes the cache
// to disk.
//
// Wire protocol (see docs/solve_cache.md for the full specification):
// every frame is a u32 little-endian payload length followed by that
// many payload bytes, both directions.  Requests are single-line text,
// "<verb> key=value ...":
//
//   ping                          → "ok pong"
//   slices                        → "ok slices <name> ..."
//   stats                         → "ok stats hits=... misses=...
//                                    evictions=... load_rejected=...
//                                    merged=... merge_conflicts=...
//                                    entries=... requests=..."
//   solve model=dl slice=<name> [scheme= grid= dt= rate= t0= t_end=
//         seed= d= k=]            → "ok trace rows=R cols=C
//                                    effective_dt=E\nx ...\nt ...\n
//                                    p <row 0>\n..." (full %.17g
//                                    precision: byte-deterministic)
//   predict <solve args> x=<int> t=<hour>
//                                 → "ok <density>"
//   calibrate <solve args>        → "ok fit d=... k=... a=... b=...
//                                    c=... m=... sse=... evals=...
//                                    rate=<resolved>"
//   flush                         → saves the cache file now
//   shutdown                      → "ok shutting down", then the
//                                    service drains in-flight requests,
//                                    flushes the cache and stops
//
// Every malformed request — unknown verb, bad key, unparsable value,
// unknown slice or model — is answered with an "err <reason>" frame and
// the connection stays usable.  A frame whose declared length exceeds
// max_frame_bytes is drained and answered with an error frame, so one
// oversized request cannot desynchronize the stream.  Responses never
// include timings: a response is a pure function of the request and the
// slice data, so concurrent clients always read deterministic bytes.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "engine/cache_io.h"
#include "engine/model_registry.h"
#include "engine/scenario.h"
#include "engine/solve_cache.h"
#include "engine/thread_pool.h"
#include "fit/calibrate.h"

namespace dlm::engine {

/// Default frame-size cap: far above any request and any trace response
/// the engine produces, far below a resource-exhaustion payload.
inline constexpr std::size_t kDefaultMaxFrameBytes = 1 << 20;

struct service_options {
  /// AF_UNIX socket path to listen on (required; a stale socket file
  /// from a crashed predecessor is replaced).
  std::string socket_path;
  /// Cache persistence: loaded on start, flushed on shutdown and by the
  /// "flush" verb.  Empty → in-memory only.
  std::string cache_file;
  /// Calibration pool width; 0 → hardware concurrency.
  std::size_t threads = 0;
  /// Frames with a larger declared payload are rejected with an error
  /// frame (the connection survives).
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// LRU cap of the resident cache; 0 → unbounded.
  std::size_t cache_max_entries = 0;
  /// Box bounds / lattice resolution for "calibrate" requests.
  fit::calibration_options calibration{};
  /// Model registry; null → default_registry().
  const model_registry* registry = nullptr;
  /// Per-connection socket I/O timeout in seconds (SO_RCVTIMEO /
  /// SO_SNDTIMEO on each accepted connection): a client that stalls
  /// mid-frame is dropped instead of pinning its worker thread forever.
  /// 0 disables (the historical blocking behaviour).  Note the receive
  /// timeout also bounds *idle* time between requests — pick a value
  /// comfortably above the client's think time, or have clients
  /// reconnect (engine::remote_options does, transparently).
  double io_timeout_sec = 0.0;
  /// Write-ahead journal the resident cache to "<cache_file>.wal" (see
  /// engine/cache_journal.h): a SIGKILLed service loses at most the
  /// in-flight record instead of everything since the last flush.
  bool journal = false;
  /// Auto-checkpoint threshold for the journal (journal_options
  /// semantics); 0 disables auto-compaction.
  std::uint64_t journal_compact_bytes = 4ull << 20;
};

// --------------------------------------------------------------- framing
//
// Shared by the service, the bundled client and the protocol tests.

enum class frame_status {
  ok,        ///< payload read completely
  closed,    ///< clean EOF (or EOF mid-frame: peer went away)
  oversized  ///< declared length > max_frame_bytes; payload drained
};

/// Reads one length-prefixed frame from `fd` into `payload`.  Blocks.
/// Throws std::runtime_error on socket errors (EINTR is retried).
[[nodiscard]] frame_status read_frame(int fd, std::string& payload,
                                      std::size_t max_frame_bytes);

/// Writes one length-prefixed frame.  Throws std::runtime_error on
/// socket errors or a payload above u32 range.
void write_frame(int fd, std::string_view payload);

/// Blocking convenience client for the protocol above.
class service_client {
 public:
  /// Connects to a dl_service socket.  Throws std::runtime_error when
  /// the connection fails.
  explicit service_client(const std::string& socket_path);
  ~service_client();
  service_client(const service_client&) = delete;
  service_client& operator=(const service_client&) = delete;

  /// One framed round-trip.  Throws std::runtime_error when the server
  /// closes the connection before responding.
  [[nodiscard]] std::string request(std::string_view payload);

  /// The raw connected socket — protocol tests poke malformed bytes
  /// through this.
  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  int fd_ = -1;
};

// --------------------------------------------------------------- service

class dl_service {
 public:
  /// Takes ownership of the slice context, loads the cache file (when
  /// configured), binds the socket and starts the background accept
  /// worker.  Throws std::runtime_error when the socket cannot be
  /// bound; a rejected cache file is *not* an error (the service starts
  /// cold — see startup_load()).
  dl_service(scenario_context context, service_options options);

  /// Equivalent to stop().
  ~dl_service();

  dl_service(const dl_service&) = delete;
  dl_service& operator=(const dl_service&) = delete;

  /// Graceful shutdown: stop accepting, let every in-flight request
  /// finish and its response flush out, close the connections, save the
  /// cache file, remove the socket.  Idempotent and safe to call
  /// concurrently; returns once the service has fully stopped.
  void stop();

  [[nodiscard]] bool stopped() const;

  [[nodiscard]] const std::string& socket_path() const noexcept {
    return options_.socket_path;
  }
  /// The resident cache (shared with in-flight requests; the cache is
  /// internally synchronized).
  [[nodiscard]] solve_cache& cache() noexcept { return cache_; }
  [[nodiscard]] cache_stats stats() const { return cache_.stats(); }
  /// What loading options.cache_file on start saw.
  [[nodiscard]] const cache_load_result& startup_load() const noexcept {
    return startup_load_;
  }
  /// Frames answered so far (including error frames).
  [[nodiscard]] std::size_t requests_served() const noexcept {
    return requests_.load();
  }
  /// Connections dropped on a socket error or I/O timeout (not clean
  /// client EOFs) — surfaced in the "stats" verb as dropped=N.
  [[nodiscard]] std::size_t connections_dropped() const noexcept {
    return dropped_.load();
  }

 private:
  struct connection {
    int fd = -1;
    std::thread worker;
  };

  void accept_loop();
  void lifecycle_loop();
  void serve_connection(connection* conn);
  void request_stop();
  void do_stop();
  [[nodiscard]] std::string handle_request(const std::string& payload,
                                           bool& shutdown_after_reply);

  scenario_context context_;
  service_options options_;
  solve_cache cache_;
  cache_load_result startup_load_;
  std::unique_ptr<thread_pool> pool_;

  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::thread lifecycle_thread_;

  mutable std::mutex conn_mutex_;
  std::vector<std::unique_ptr<connection>> connections_;

  mutable std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  /// Atomic so the accept loop can poll it under conn_mutex_ alone.
  std::atomic<bool> stop_requested_{false};
  bool stopped_ = false;

  std::mutex flush_mutex_;  ///< serializes "flush" verb vs shutdown flush
  std::atomic<std::size_t> requests_{0};
  std::atomic<std::size_t> dropped_{0};
  /// Live WAL when options_.journal is on (null otherwise); the cache's
  /// write observer holds a raw pointer into it, so do_stop() clears
  /// the observer before this member dies.
  std::unique_ptr<cache_journal> journal_;
};

}  // namespace dlm::engine
