#include "engine/scenario_runner.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "core/accuracy.h"
#include "engine/calibration.h"
#include "engine/thread_pool.h"
#include "social/distance.h"

namespace dlm::engine {
namespace {

using clock = std::chrono::steady_clock;

double elapsed_ms(clock::time_point start) {
  return std::chrono::duration<double, std::milli>(clock::now() - start)
      .count();
}

/// Solves through the cache when one is provided (the stored trace is
/// keyed on the scenario's canonical identity, so a repeat — in this
/// sweep or a later one — skips the PDE entirely).
model_trace solve_with_cache(const diffusion_model& model, const scenario& sc,
                             const dataset_slice& slice, solve_cache* cache) {
  if (cache == nullptr) return model.solve(sc, slice);
  const std::string key = scenario_cache_key(sc, slice, model);
  if (const std::shared_ptr<const model_trace> hit = cache->find_trace(key))
    return *hit;
  model_trace trace = model.solve(sc, slice);
  cache->store_trace(key, trace);
  return trace;
}

/// Everything that must match for two scenarios to share a lockstep
/// chunk.  The rate spec may differ (lanes share grid/dt, not rates) and
/// d/K overrides may differ (per-lane CN factorizations); seeds are
/// ignored because batch-capable models are deterministic PDE solves.
struct batch_key {
  std::string model;
  std::size_t slice = 0;
  core::dl_scheme scheme = core::dl_scheme::strang_cn;
  std::size_t points_per_unit = 0;
  double dt = 0.0;
  double t0 = 0.0;
  double t_end = 0.0;
  std::string domain;

  bool operator==(const batch_key&) const = default;
};

}  // namespace

std::pair<double, std::size_t> score_trace(const model_trace& trace,
                                           const dataset_slice& slice) {
  double sum = 0.0;
  std::size_t cells = 0;
  for (std::size_t i = 0; i < trace.distances.size(); ++i) {
    for (std::size_t j = 0; j < trace.times.size(); ++j) {
      const double actual = slice.actual_at(trace.distances[i],
                                            static_cast<int>(trace.times[j]));
      if (actual <= 0.0) continue;
      sum += core::prediction_accuracy(trace.predicted[i][j], actual);
      ++cells;
    }
  }
  return {cells == 0 ? 0.0 : sum / static_cast<double>(cells), cells};
}

std::vector<std::vector<std::size_t>> batch_sweep(
    std::span<const scenario> scenarios, const model_registry& registry,
    std::size_t batch_width) {
  const std::size_t width =
      batch_width == 0 ? kDefaultBatchWidth : batch_width;

  std::vector<std::vector<std::size_t>> chunks;
  if (width <= 1) {
    // Batching off: one chunk per scenario, already index-ordered.
    for (std::size_t i = 0; i < scenarios.size(); ++i) chunks.push_back({i});
    return chunks;
  }

  // First pass: index-stable grouping.  Groups form in first-occurrence
  // order and accumulate members in ascending index order, so nothing
  // downstream depends on how the sweep interleaved compatible
  // scenarios.  Non-batchable scenarios become chunks of one directly.
  struct group {
    batch_key key;
    std::vector<std::size_t> members;
  };
  std::vector<group> groups;
  std::vector<std::pair<std::string, bool>> capability_memo;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const scenario& sc = scenarios[i];
    bool batchable = false;
    const auto memo = std::find_if(
        capability_memo.begin(), capability_memo.end(),
        [&](const auto& entry) { return entry.first == sc.model; });
    if (memo != capability_memo.end()) {
      batchable = memo->second;
    } else {
      try {
        batchable = registry.make(sc.model)->supports_batch();
      } catch (...) {
        // Unknown model: leave it a chunk of one so run_sweep reports the
        // failure with the scenario's identity, as the scalar path does.
        batchable = false;
      }
      capability_memo.emplace_back(sc.model, batchable);
    }
    // Calibrate specs fit per scenario before solving; keep them scalar.
    if (batchable && is_calibrate_spec(sc.rate)) batchable = false;
    if (!batchable) {
      chunks.push_back({i});
      continue;
    }
    const batch_key key{sc.model, sc.slice, sc.scheme, sc.points_per_unit,
                        sc.dt,    sc.t0,    sc.t_end,  sc.domain};
    const auto it = std::find_if(
        groups.begin(), groups.end(),
        [&](const group& g) { return g.key == key; });
    if (it == groups.end())
      groups.push_back({key, {i}});
    else
      it->members.push_back(i);
  }

  // Second pass: split each group into width-sized chunks, then order
  // all chunks by first member so the work queue itself is index-stable.
  for (const group& g : groups) {
    for (std::size_t from = 0; from < g.members.size(); from += width) {
      const std::size_t to = std::min(from + width, g.members.size());
      chunks.emplace_back(g.members.begin() + static_cast<std::ptrdiff_t>(from),
                          g.members.begin() + static_cast<std::ptrdiff_t>(to));
    }
  }
  std::sort(chunks.begin(), chunks.end(),
            [](const std::vector<std::size_t>& a,
               const std::vector<std::size_t>& b) {
              return a.front() < b.front();
            });
  return chunks;
}

std::vector<scenario> expand_sweep(const sweep_spec& spec,
                                   const scenario_context& context,
                                   const model_registry& registry) {
  if (spec.models.empty())
    throw std::invalid_argument("expand_sweep: no models in sweep");
  if (spec.schemes.empty() || spec.grid.empty() || spec.dts.empty() ||
      spec.rates.empty() || spec.domains.empty())
    throw std::invalid_argument("expand_sweep: empty sweep axis");

  std::vector<std::size_t> slices = spec.slices;
  if (slices.empty()) {
    for (std::size_t i = 0; i < context.slice_count(); ++i)
      slices.push_back(i);
  }
  if (slices.empty())
    throw std::invalid_argument("expand_sweep: context has no slices");
  for (const std::size_t s : slices) (void)context.slice(s);  // bounds check

  // Canonical single values for the axes a model ignores, so the cross
  // product never enqueues duplicate work.
  const std::vector<core::dl_scheme> no_scheme = {core::dl_scheme::strang_cn};
  const std::vector<std::size_t> no_grid = {0};
  const std::vector<double> no_dt = {0.0};

  std::vector<scenario> scenarios;
  for (const std::string& model_name : spec.models) {
    const std::unique_ptr<diffusion_model> model = registry.make(model_name);
    const auto& schemes = model->uses_scheme() ? spec.schemes : no_scheme;
    const auto& grids = model->uses_grid() ? spec.grid : no_grid;
    const auto& dts = model->uses_scheme() ? spec.dts : no_dt;
    // The rate axis, with calibrate specs collapsed to "preset" for
    // rate-using models that cannot calibrate and spatial forms collapsed
    // to their temporal base for models without a spatial-rate axis (then
    // deduplicated, so {"preset", "calibrate"} does not enqueue the
    // preset run twice).
    std::vector<std::string> rates;
    if (!model->uses_rate()) {
      rates = {"-"};
    } else {
      for (const std::string& rate : spec.rates) {
        std::string resolved =
            is_calibrate_spec(rate) && !model->supports_calibration()
                ? "preset"
                : rate;
        if (is_spatial_rate_spec(resolved) && !model->supports_spatial_rate())
          resolved = spatial_base_spec(resolved);
        if (std::find(rates.begin(), rates.end(), resolved) == rates.end())
          rates.push_back(std::move(resolved));
      }
    }
    // The domain axis: collapsed to {"line"} for models without a domain
    // axis, otherwise validated eagerly (a bad spec fails the expansion,
    // not a pool worker mid-sweep) and deduplicated — every line-spelling
    // ("line", "", "-") canonicalizes to "line".
    std::vector<std::string> domains;
    for (const std::string& dom : model->supports_domain()
                                      ? spec.domains
                                      : std::vector<std::string>{"line"}) {
      std::string resolved = make_domain(dom).is_line() ? "line" : dom;
      if (std::find(domains.begin(), domains.end(), resolved) ==
          domains.end())
        domains.push_back(std::move(resolved));
    }
    for (const std::size_t slice : slices) {
      for (const core::dl_scheme scheme : schemes) {
        for (const std::size_t grid : grids) {
          for (const double dt : dts) {
            for (const std::string& rate : rates) {
              for (const std::string& dom : domains) {
                // Non-line domains solve with strang-cn only; skip the
                // combos other schemes would reject instead of enqueuing
                // guaranteed failures.
                if (dom != "line" &&
                    scheme != core::dl_scheme::strang_cn)
                  continue;
                scenario sc;
                sc.model = model_name;
                sc.slice = slice;
                sc.scheme = scheme;
                sc.points_per_unit = grid;
                sc.dt = dt;
                sc.rate = rate;
                sc.domain = dom;
                sc.t0 = spec.t0;
                sc.t_end = spec.t_end;
                sc.seed = spec.seed;
                scenarios.push_back(std::move(sc));
              }
            }
          }
        }
      }
    }
  }
  return scenarios;
}

sweep_result run_sweep(const scenario_context& context,
                       std::span<const scenario> scenarios,
                       const runner_options& options) {
  const model_registry& registry =
      options.registry != nullptr ? *options.registry : default_registry();
  const clock::time_point sweep_start = clock::now();

  // The explicit grouping step: every chunk runs as one pool task, so
  // compatible scenarios of batch-capable models advance in lockstep on
  // one worker while everything else stays a chunk of one.  With a
  // non-trivial shard spec only the chunks this shard owns run — whole
  // chunks, so the lockstep grouping inside the shard is exactly the
  // unsharded run's.
  const std::vector<std::vector<std::size_t>> chunks = shard_chunks(
      batch_sweep(scenarios, registry, options.batch_width), options.shard);

  // Owned global indices (ascending) and the global→row-slot mapping.
  // Rows keep their global sweep index, so shard tables merge back into
  // the unsharded table byte-identically (engine::merge_tables).
  std::vector<std::size_t> owned;
  for (const std::vector<std::size_t>& chunk : chunks)
    owned.insert(owned.end(), chunk.begin(), chunk.end());
  std::sort(owned.begin(), owned.end());
  std::vector<std::size_t> local(scenarios.size(), 0);
  for (std::size_t slot = 0; slot < owned.size(); ++slot)
    local[owned[slot]] = slot;

  sweep_result result;
  std::vector<result_row> rows(owned.size());
  if (options.keep_traces) result.traces.resize(owned.size());

  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::size_t first_error_index = 0;

  {
    thread_pool pool(options.threads);

    const auto record_error = [&](std::size_t i) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      // Keep the failure of the lowest scenario index so the error —
      // like the rows — is deterministic across thread schedules.
      if (!first_error || i < first_error_index) {
        first_error = std::current_exception();
        first_error_index = i;
      }
    };

    // Row fields shared by both paths; the fit_* columns are written by
    // the scalar path only (calibrate specs never batch).
    const auto fill_row = [&](std::size_t i, const scenario& sc,
                              const scenario& solved, bool calibrated,
                              const diffusion_model& model,
                              const dataset_slice& slice, model_trace& trace,
                              double wall) {
      const auto [accuracy, cells] = score_trace(trace, slice);
      result_row& row = rows[local[i]];
      row.index = i;
      row.model = sc.model;
      row.slice = slice.name;
      row.story = slice.story;
      row.metric = social::to_string(slice.metric);
      row.scheme = model.uses_scheme() ? core::to_string(sc.scheme) : "-";
      row.points_per_unit = model.uses_grid() ? sc.points_per_unit : 0;
      // The dt actually used, so rows stay truthful when a scheme
      // clamps for stability (FTCS on fine grids).
      row.dt = model.uses_scheme() ? trace.effective_dt : 0.0;
      row.rate = model.uses_rate() ? sc.rate : "-";
      row.resolved_rate =
          model.uses_rate()
              ? (calibrated ? solved.rate
                            : resolve_rate_spec(sc.rate, slice.metric))
              : "-";
      row.t0 = sc.t0;
      row.t_end = sc.t_end;
      row.domain = trace.domain;
      row.cells = cells;
      row.accuracy = accuracy;
      row.wall_ms = wall;
      if (options.keep_traces) result.traces[local[i]] = std::move(trace);
    };

    const auto solve_one = [&](std::size_t i) {
      const scenario& sc = scenarios[i];
      const dataset_slice& slice = context.slice(sc.slice);
      const std::unique_ptr<diffusion_model> model = registry.make(sc.model);

      const clock::time_point start = clock::now();
      result_row& row = rows[local[i]];

      // Calibrate rate specs: fit first, then solve the rewritten
      // scenario (resolved rate + fitted d/K overrides).  The coarse
      // lattice fans back out over this same pool — run_batch has
      // the submitting worker participate, so a nested batch cannot
      // deadlock even with every worker busy calibrating.
      scenario solved = sc;
      const bool calibrated = model->uses_rate() && is_calibrate_spec(sc.rate);
      if (calibrated) {
        if (!model->supports_calibration())
          throw std::invalid_argument("run_sweep: model '" + sc.model +
                                      "' does not support calibrate rate "
                                      "specs");
        if (sc.rate.starts_with("calibrate-spatial") &&
            !model->supports_spatial_rate())
          throw std::invalid_argument("run_sweep: model '" + sc.model +
                                      "' does not support spatial rate specs");
        const scenario_calibration cal = calibrate_scenario(
            sc, slice, options.calibration, options.cache, &pool);
        solved.rate = cal.resolved_rate;
        solved.d_override = cal.fit.params.d;
        solved.k_override = cal.fit.params.k;
        row.fit_d = cal.fit.params.d;
        row.fit_k = cal.fit.params.k;
        row.fit_a = cal.fit_a;
        row.fit_b = cal.fit_b;
        row.fit_c = cal.fit_c;
        row.fit_m = cal.multipliers;
        row.fit_sse = cal.fit.sse;
        row.fit_evals = cal.fit.evaluations;
        row.fit_solves = cal.fit.pde_solves;
        row.fit_hits = cal.fit.cache_hits;
      }

      model_trace trace =
          solve_with_cache(*model, solved, slice, options.cache);
      fill_row(i, sc, solved, calibrated, *model, slice, trace,
               elapsed_ms(start));
    };

    const auto run_scalar = [&](std::size_t i) {
      try {
        solve_one(i);
      } catch (...) {
        record_error(i);
      }
    };

    // A multi-lane chunk: resolve cached traces per member, hand the
    // misses to the model's lockstep solve_batch in one call, and charge
    // every lane an equal share of the chunk's wall time.  Any failure
    // falls back to per-member scalar solves so the error is attributed
    // to the exact scenario and healthy lanes still produce rows.
    const auto run_chunk = [&](const std::vector<std::size_t>& chunk) {
      if (chunk.size() == 1) {
        run_scalar(chunk.front());
        return;
      }
      try {
        const scenario& first = scenarios[chunk.front()];
        const dataset_slice& slice = context.slice(first.slice);
        const std::unique_ptr<diffusion_model> model =
            registry.make(first.model);
        const clock::time_point start = clock::now();

        std::vector<std::shared_ptr<const model_trace>> cached(chunk.size());
        std::vector<std::string> keys(chunk.size());
        std::vector<scenario> misses;
        std::vector<std::size_t> miss_pos;
        for (std::size_t m = 0; m < chunk.size(); ++m) {
          const scenario& sc = scenarios[chunk[m]];
          if (options.cache != nullptr) {
            keys[m] = scenario_cache_key(sc, slice, *model);
            cached[m] = options.cache->find_trace(keys[m]);
          }
          if (cached[m] == nullptr) {
            misses.push_back(sc);
            miss_pos.push_back(m);
          }
        }

        std::vector<model_trace> fresh;
        if (!misses.empty()) fresh = model->solve_batch(misses, slice);
        if (options.cache != nullptr)
          for (std::size_t t = 0; t < miss_pos.size(); ++t)
            options.cache->store_trace(keys[miss_pos[t]], fresh[t]);

        const double wall =
            elapsed_ms(start) / static_cast<double>(chunk.size());
        std::size_t next = 0;
        for (std::size_t m = 0; m < chunk.size(); ++m) {
          const scenario& sc = scenarios[chunk[m]];
          model_trace trace =
              cached[m] != nullptr ? *cached[m] : std::move(fresh[next++]);
          fill_row(chunk[m], sc, sc, false, *model, slice, trace, wall);
        }
      } catch (...) {
        for (const std::size_t i : chunk) run_scalar(i);
      }
    };

    for (std::size_t c = 0; c < chunks.size(); ++c)
      pool.submit([&, c] {
        if (options.on_chunk_start) options.on_chunk_start(c);
        run_chunk(chunks[c]);
      });
    pool.wait();
  }
  if (first_error) {
    const scenario& sc = scenarios[first_error_index];
    std::string slice_name = "<bad slice index " +
                             std::to_string(sc.slice) + ">";
    if (sc.slice < context.slice_count())
      slice_name = context.slice(sc.slice).name;
    try {
      std::rethrow_exception(first_error);
    } catch (const std::exception& e) {
      // Wrap with the failing scenario's identity so a 1-in-500 sweep
      // failure is diagnosable; non-std exceptions propagate unwrapped.
      throw std::runtime_error(
          "run_sweep: scenario #" + std::to_string(first_error_index) +
          " (model '" + sc.model + "', slice '" + slice_name +
          "') failed: " + e.what());
    }
  }

  result.table = result_table(std::move(rows));
  result.wall_ms = elapsed_ms(sweep_start);
  return result;
}

sweep_result run_sweep(const scenario_context& context, const sweep_spec& spec,
                       const runner_options& options) {
  const model_registry& registry =
      options.registry != nullptr ? *options.registry : default_registry();
  const std::vector<scenario> scenarios =
      expand_sweep(spec, context, registry);
  return run_sweep(context, scenarios, options);
}

}  // namespace dlm::engine
