#include "engine/fault.h"

#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string_view>
#include <thread>

namespace dlm::engine {
namespace {

/// Fails a parse_fault_plan parse, mirroring parse_shard_spec: the
/// reason, the offending token's 1-based character position, the plan
/// verbatim, and the full accepted grammar.
[[noreturn]] void bad_fault_plan(const std::string& spec,
                                 const std::string& reason,
                                 std::size_t offset = 0) {
  throw std::invalid_argument("parse_fault_plan: " + reason + " at position " +
                              std::to_string(offset + 1) + " in fault plan '" +
                              spec + "'\n" + fault_plan_grammar());
}

std::size_t parse_fault_size(std::string_view text, const std::string& spec,
                             const std::string& what, std::size_t offset) {
  std::size_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size() || text.empty())
    bad_fault_plan(spec, "bad " + what + " '" + std::string(text) + "'",
                   offset);
  return value;
}

/// Parses one ';'-separated piece of the plan; `base` is the piece's
/// offset in the full spec, so rejection positions stay global.
fault_point parse_one_fault(std::string_view piece, const std::string& spec,
                            std::size_t base) {
  if (piece.empty()) bad_fault_plan(spec, "empty fault", base);

  fault_point point;
  const std::size_t colon = piece.find(':');
  if (colon == std::string_view::npos)
    bad_fault_plan(spec, "missing ':' between fault kind and subject", base);
  const std::string_view kind = piece.substr(0, colon);
  if (kind == "crash") {
    point.kind = fault_kind::crash;
  } else if (kind == "hang") {
    point.kind = fault_kind::hang;
  } else if (kind == "torn-write") {
    point.kind = fault_kind::torn_write;
  } else {
    bad_fault_plan(spec, "unknown fault kind '" + std::string(kind) + "'",
                   base);
  }

  std::string_view body = piece.substr(colon + 1);
  std::size_t body_base = base + colon + 1;
  // Optional "|tries=<n>" suffix, shared by every kind.
  const std::size_t bar = body.find('|');
  if (bar != std::string_view::npos) {
    const std::string_view suffix = body.substr(bar + 1);
    const std::size_t suffix_base = body_base + bar + 1;
    if (!suffix.starts_with("tries="))
      bad_fault_plan(spec,
                     "unknown fault option '" + std::string(suffix) + "'",
                     suffix_base);
    point.tries = parse_fault_size(suffix.substr(6), spec, "tries count",
                                   suffix_base + 6);
    if (point.tries == 0)
      bad_fault_plan(spec, "tries count must be positive", suffix_base + 6);
    body = body.substr(0, bar);
  }

  const std::size_t at = body.find('@');
  if (at == std::string_view::npos)
    bad_fault_plan(spec, "missing '@' between fault subject and site",
                   body_base);
  const std::string_view subject = body.substr(0, at);
  const std::string_view site = body.substr(at + 1);
  const std::size_t site_base = body_base + at + 1;

  if (point.kind == fault_kind::torn_write) {
    if (subject != "journal")
      bad_fault_plan(
          spec, "torn-write subject must be 'journal', got '" +
                    std::string(subject) + "'",
          body_base);
    if (!site.starts_with("rec"))
      bad_fault_plan(spec,
                     "torn-write site must be 'rec<k>', got '" +
                         std::string(site) + "'",
                     site_base);
    point.site =
        parse_fault_size(site.substr(3), spec, "record index", site_base + 3);
    return point;
  }

  if (!subject.starts_with("worker"))
    bad_fault_plan(spec,
                   "fault subject must be 'worker<i>', got '" +
                       std::string(subject) + "'",
                   body_base);
  point.worker = parse_fault_size(subject.substr(6), spec, "worker index",
                                  body_base + 6);
  if (!site.starts_with("chunk"))
    bad_fault_plan(spec,
                   "fault site must be 'chunk<j>', got '" + std::string(site) +
                       "'",
                   site_base);
  point.site =
      parse_fault_size(site.substr(5), spec, "chunk index", site_base + 5);
  return point;
}

bool armed(const fault_point& point, std::size_t attempt) {
  return point.tries == 0 || attempt <= point.tries;
}

}  // namespace

std::string fault_plan::label() const {
  std::string out;
  for (const fault_point& point : points_) {
    if (!out.empty()) out += ';';
    switch (point.kind) {
      case fault_kind::crash:
        out += "crash:worker" + std::to_string(point.worker) + "@chunk" +
               std::to_string(point.site);
        break;
      case fault_kind::hang:
        out += "hang:worker" + std::to_string(point.worker) + "@chunk" +
               std::to_string(point.site);
        break;
      case fault_kind::torn_write:
        out += "torn-write:journal@rec" + std::to_string(point.site);
        break;
    }
    if (point.tries != 0) out += "|tries=" + std::to_string(point.tries);
  }
  return out;
}

bool fault_plan::should_crash(std::size_t worker, std::size_t chunk,
                              std::size_t attempt) const {
  for (const fault_point& point : points_)
    if (point.kind == fault_kind::crash && point.worker == worker &&
        point.site == chunk && armed(point, attempt))
      return true;
  return false;
}

bool fault_plan::should_hang(std::size_t worker, std::size_t chunk,
                             std::size_t attempt) const {
  for (const fault_point& point : points_)
    if (point.kind == fault_kind::hang && point.worker == worker &&
        point.site == chunk && armed(point, attempt))
      return true;
  return false;
}

std::optional<std::uint64_t> fault_plan::torn_write_record(
    std::size_t attempt) const {
  for (const fault_point& point : points_)
    if (point.kind == fault_kind::torn_write && armed(point, attempt))
      return point.site;
  return std::nullopt;
}

const std::string& fault_plan_grammar() {
  static const std::string grammar =
      "accepted fault plan forms (';'-separated, each optionally "
      "'|tries=<n>' to fire on attempts 1..n only):\n"
      "  crash:worker<i>@chunk<j>      worker of shard i aborts (SIGABRT) "
      "when starting its j-th chunk (0-based)\n"
      "  hang:worker<i>@chunk<j>       worker of shard i sleeps instead of "
      "running the chunk, until the supervisor timeout kills it\n"
      "  torn-write:journal@rec<k>     the cache journal writes half of its "
      "k-th appended record (0-based) and latches a write error";
  return grammar;
}

fault_plan parse_fault_plan(const std::string& spec) {
  if (spec.empty()) bad_fault_plan(spec, "empty fault plan");
  std::vector<fault_point> points;
  std::size_t start = 0;
  while (true) {
    const std::size_t semi = spec.find(';', start);
    const std::size_t len =
        (semi == std::string::npos ? spec.size() : semi) - start;
    points.push_back(
        parse_one_fault(std::string_view(spec).substr(start, len), spec,
                        start));
    if (semi == std::string::npos) break;
    start = semi + 1;
  }
  return fault_plan(std::move(points));
}

std::size_t worker_attempt_from_env() {
  const char* text = std::getenv(kWorkerAttemptEnv);
  if (text == nullptr) return 1;
  std::size_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text, text + std::string_view(text).size(), value);
  if (ec != std::errc{} || *ptr != '\0' || value == 0) return 1;
  return value;
}

std::function<void(std::size_t)> make_fault_hook(fault_plan plan,
                                                 std::size_t worker,
                                                 std::size_t attempt,
                                                 double hang_seconds) {
  bool relevant = false;
  for (const fault_point& point : plan.points())
    if (point.kind != fault_kind::torn_write && point.worker == worker &&
        armed(point, attempt))
      relevant = true;
  if (!relevant) return {};
  return [plan = std::move(plan), worker, attempt,
          hang_seconds](std::size_t chunk) {
    if (plan.should_crash(worker, chunk, attempt)) {
      std::fprintf(stderr,
                   "fault: worker %zu crashing at chunk %zu (attempt %zu)\n",
                   worker, chunk, attempt);
      std::fflush(stderr);
      std::abort();
    }
    if (plan.should_hang(worker, chunk, attempt)) {
      std::fprintf(stderr,
                   "fault: worker %zu hanging at chunk %zu (attempt %zu)\n",
                   worker, chunk, attempt);
      std::fflush(stderr);
      // Sleep in slices so the worker stays killable and a forgotten
      // timeout eventually unwedges itself.
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(hang_seconds));
      while (std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  };
}

}  // namespace dlm::engine
