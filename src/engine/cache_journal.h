// Append-only write-ahead journal for engine::solve_cache.
//
// The snapshot format (engine/cache_io.h) is save-on-exit: a process
// SIGKILLed mid-sweep loses every solve since startup.  The journal
// closes that window — every winning cache insert is appended to a WAL
// beside the snapshot file as it happens, so a crash loses at most the
// record being written.  On the next start the snapshot is loaded
// first, then the WAL replayed on top (first insert wins, so a record
// that also made it into a snapshot is a benign duplicate), and the
// warm sweep re-runs with zero PDE solves for every journaled entry.
//
// File layout (integers little-endian, as in the snapshot format):
//
//   header : magic "DLMCJRNL" (8) · format version u32
//   record : kind u32 (1 = trace, 2 = value) · payload bytes u64 ·
//            FNV-1a-64 checksum of the payload u64 · payload
//
// Record payloads reuse the snapshot's per-entry byte layout exactly
// (encode_trace_entry / encode_value_entry in engine/cache_io.h), so
// the journal format version tracks kCacheFormatVersion.
//
// Replay is adversarial like the snapshot loader, but with the opposite
// tail policy: a snapshot is all-or-nothing (it was written atomically,
// so any defect means corruption), while a journal's last record is
// *expected* to be torn when the writer died mid-append.  Replay
// therefore applies the longest valid record prefix and reports the
// tail; opening the journal for appending truncates that tail so new
// records land on a clean boundary.  A file whose *header* is wrong
// (bad magic, wrong version) is rejected wholesale — and never
// truncated, because a foreign file is not ours to destroy.
//
// Compaction: checkpoint() holds the append lock while the caller
// writes a fresh snapshot, then resets the WAL to an empty header.
// Crash before the snapshot rename → the old snapshot + full WAL still
// replay; crash between rename and reset → the WAL's records are
// already in the snapshot and replay as duplicates.  No ordering loses
// an entry.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "engine/solve_cache.h"

namespace dlm::engine {

/// 8-byte journal magic ("DLM Cache JouRNaL").
inline constexpr std::string_view kJournalMagic = "DLMCJRNL";

/// Journal format version.  Record payloads are snapshot v2 entries, so
/// this tracks kCacheFormatVersion (engine/cache_io.h).
inline constexpr std::uint32_t kJournalFormatVersion = 2;

/// Outcome of replay_journal.
struct journal_replay_result {
  /// True iff the header was accepted (or the file is missing/empty —
  /// both are a normal cold start) and the valid record prefix was
  /// imported.  False only for a rejected header or unreadable file.
  bool replayed = false;
  /// True when the file simply does not exist.
  bool file_missing = false;
  std::size_t traces = 0;  ///< trace records imported
  std::size_t values = 0;  ///< value records imported
  /// True when trailing bytes after the valid prefix were ignored (a
  /// torn final record — the expected shape after a crash mid-append).
  bool torn_tail = false;
  /// Bytes of the valid prefix (header + whole records); what the
  /// journal truncates to before appending.
  std::uint64_t valid_bytes = 0;
  /// Total file bytes observed.
  std::uint64_t file_bytes = 0;
  /// Why the file was rejected (replayed == false), or what the torn
  /// tail's defect was (replayed == true, torn_tail == true).
  std::string error;
};

/// Loads the WAL at `path` into `cache`: header verified, then every
/// record applied in order through import_trace/import_value (first
/// insert wins) until the first torn or corrupt record, whose tail is
/// reported but not imported.  A missing or empty file replays as
/// clean-and-empty.  A bad header counts cache_stats::load_rejected and
/// leaves the cache untouched.  Never modifies the file.
journal_replay_result replay_journal(solve_cache& cache,
                                     const std::filesystem::path& path);

/// The appender.  One instance owns the WAL file of one process;
/// appends are serialized internally and flushed to the OS per record
/// (surviving process death; machine-crash durability would need
/// fsync_each).
class cache_journal {
 public:
  struct options {
    /// fsync after every record: durable against power loss, not just
    /// process death.  Off by default — the failure domain this layer
    /// hardens is crashed/killed processes, and per-record fsync costs
    /// milliseconds on spinning disks.
    bool fsync_each = false;
    /// Fault injection (engine/fault.h, "torn-write:journal@rec<k>"):
    /// write only the first half of the k-th appended record (0-based,
    /// this instance), flush it, and latch write_error().
    std::optional<std::uint64_t> torn_write_record;
  };

  /// Opens `path` for appending: a missing or empty file gets a fresh
  /// header; an existing journal has its torn tail truncated so new
  /// records start on a clean boundary.  Throws std::runtime_error on
  /// an unopenable path or a file whose header is not a journal (a
  /// foreign file must not be appended to, let alone truncated).
  explicit cache_journal(std::filesystem::path path)
      : cache_journal(std::move(path), options()) {}
  cache_journal(std::filesystem::path path, options opt);
  ~cache_journal();
  cache_journal(const cache_journal&) = delete;
  cache_journal& operator=(const cache_journal&) = delete;

  /// Appends one record.  Failures latch write_error() and turn further
  /// appends into no-ops — a sick journal must not take the sweep down
  /// with it (the snapshot save-on-exit still runs).
  void append_trace(std::string_view key, const model_trace& trace);
  void append_value(std::string_view key, double value);

  /// Current file size (header + records), in bytes.
  [[nodiscard]] std::uint64_t bytes() const;
  /// Records appended by this instance (excludes pre-existing ones).
  [[nodiscard]] std::size_t appended_records() const;
  /// First append failure, or empty.  Latching: once set, the journal
  /// is dead for this process.
  [[nodiscard]] std::string write_error() const;
  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return path_;
  }

  /// Compaction barrier: runs `write_snapshot` (the caller's
  /// save_cache) under the append lock, then resets the WAL to an empty
  /// header.  Every record is in the snapshot or in the post-reset WAL
  /// — never lost (see the crash-ordering note in the file comment).
  /// Throws whatever `write_snapshot` throws, leaving the WAL intact.
  void checkpoint(const std::function<void()>& write_snapshot);

 private:
  void append_record(std::uint32_t kind, const std::string& payload);

  mutable std::mutex mutex_;
  std::filesystem::path path_;
  options opt_;
  int fd_ = -1;
  std::uint64_t bytes_ = 0;
  std::size_t appended_ = 0;
  std::string write_error_;
};

}  // namespace dlm::engine
