#include "engine/shard.h"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cmath>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string_view>
#include <thread>
#include <utility>

#include "core/dl_solver.h"
#include "engine/calibration.h"
#include "engine/format.h"
#include "engine/scenario_runner.h"
#include "engine/service.h"
#include "engine/solve_cache.h"
#include "social/distance.h"

namespace dlm::engine {
namespace {

/// Fails a parse_shard_spec parse, mirroring make_rate/make_domain: the
/// reason, the offending token's 1-based character position, the spec
/// verbatim, and the full accepted grammar.
[[noreturn]] void bad_shard_spec(const std::string& spec,
                                 const std::string& reason,
                                 std::size_t offset = 0) {
  throw std::invalid_argument("parse_shard_spec: " + reason +
                              " at position " + std::to_string(offset + 1) +
                              " in shard spec '" + spec + "'\n" +
                              shard_spec_grammar());
}

std::size_t parse_shard_size(std::string_view text, const std::string& spec,
                             const std::string& what, std::size_t offset) {
  std::size_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size())
    bad_shard_spec(spec, "bad " + what + " '" + std::string(text) + "'",
                   offset);
  return value;
}

// ------------------------------------------------- remote reply parsing
//
// Every double on the wire went through format_full_precision (%.17g),
// so parsing it back recovers the exact bits the server computed —
// which is what keeps remote rows byte-identical to local ones.

std::vector<std::string> split_ws(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && text[i] == ' ') ++i;
    std::size_t j = i;
    while (j < text.size() && text[j] != ' ') ++j;
    if (j > i) out.emplace_back(text.substr(i, j - i));
    i = j;
  }
  return out;
}

[[noreturn]] void bad_reply(const std::string& reply) {
  throw std::runtime_error("run_shard_remote: malformed server reply '" +
                           reply + "'");
}

double parse_wire_double(std::string_view text, const std::string& reply) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) bad_reply(reply);
  return value;
}

std::size_t parse_wire_size(std::string_view text, const std::string& reply) {
  std::size_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) bad_reply(reply);
  return value;
}

/// The value of the "key=" token among `tokens`, or nullopt.
std::optional<std::string_view> find_field(
    const std::vector<std::string>& tokens, std::string_view key) {
  for (const std::string& token : tokens) {
    if (token.size() > key.size() && token.compare(0, key.size(), key) == 0 &&
        token[key.size()] == '=')
      return std::string_view(token).substr(key.size() + 1);
  }
  return std::nullopt;
}

std::string_view require_field(const std::vector<std::string>& tokens,
                               std::string_view key, const std::string& reply) {
  const std::optional<std::string_view> value = find_field(tokens, key);
  if (!value) bad_reply(reply);
  return *value;
}

/// Parses a "solve" reply (service.cpp's format_trace) back into a
/// model_trace.
model_trace parse_trace_reply(const std::string& reply) {
  std::vector<std::string_view> lines;
  {
    std::string_view rest = reply;
    while (!rest.empty()) {
      const std::size_t nl = rest.find('\n');
      lines.push_back(rest.substr(0, nl));
      if (nl == std::string_view::npos) break;
      rest = rest.substr(nl + 1);
    }
  }
  if (lines.size() < 3) bad_reply(reply);
  const std::vector<std::string> head = split_ws(lines[0]);
  if (head.size() < 2 || head[0] != "ok" || head[1] != "trace")
    bad_reply(reply);
  const std::size_t rows = parse_wire_size(require_field(head, "rows", reply),
                                           reply);
  const std::size_t cols = parse_wire_size(require_field(head, "cols", reply),
                                           reply);
  model_trace trace;
  trace.effective_dt =
      parse_wire_double(require_field(head, "effective_dt", reply), reply);
  if (const std::optional<std::string_view> dom = find_field(head, "domain"))
    trace.domain = std::string(*dom);
  if (lines.size() != 3 + rows) bad_reply(reply);

  const std::vector<std::string> xs = split_ws(lines[1]);
  if (xs.size() != rows + 1 || xs[0] != "x") bad_reply(reply);
  for (std::size_t i = 1; i < xs.size(); ++i)
    trace.distances.push_back(
        static_cast<int>(parse_wire_double(xs[i], reply)));

  const std::vector<std::string> ts = split_ws(lines[2]);
  if (ts.size() != cols + 1 || ts[0] != "t") bad_reply(reply);
  for (std::size_t j = 1; j < ts.size(); ++j)
    trace.times.push_back(parse_wire_double(ts[j], reply));

  for (std::size_t r = 0; r < rows; ++r) {
    const std::vector<std::string> ps = split_ws(lines[3 + r]);
    if (ps.size() != cols + 1 || ps[0] != "p") bad_reply(reply);
    std::vector<double> row;
    row.reserve(cols);
    for (std::size_t j = 1; j < ps.size(); ++j)
      row.push_back(parse_wire_double(ps[j], reply));
    trace.predicted.push_back(std::move(row));
  }
  return trace;
}

/// A parsed "calibrate" reply ("ok fit d=... k=... ... rate=...").
struct fit_reply {
  double d = 0.0;
  double k = 0.0;
  double a = 0.0;
  double b = 0.0;
  double c = 0.0;
  std::vector<double> multipliers;
  double sse = 0.0;
  std::size_t evals = 0;
  std::string rate;
};

fit_reply parse_fit_reply(const std::string& reply) {
  const std::vector<std::string> tokens = split_ws(reply);
  if (tokens.size() < 2 || tokens[0] != "ok" || tokens[1] != "fit")
    bad_reply(reply);
  fit_reply fit;
  fit.d = parse_wire_double(require_field(tokens, "d", reply), reply);
  fit.k = parse_wire_double(require_field(tokens, "k", reply), reply);
  fit.a = parse_wire_double(require_field(tokens, "a", reply), reply);
  fit.b = parse_wire_double(require_field(tokens, "b", reply), reply);
  fit.c = parse_wire_double(require_field(tokens, "c", reply), reply);
  fit.sse = parse_wire_double(require_field(tokens, "sse", reply), reply);
  fit.evals = parse_wire_size(require_field(tokens, "evals", reply), reply);
  fit.rate = std::string(require_field(tokens, "rate", reply));
  const std::string_view m = require_field(tokens, "m", reply);
  if (m != "-") {
    for (const std::string& piece : split_keep_empty(m, ','))
      fit.multipliers.push_back(parse_wire_double(piece, reply));
  }
  return fit;
}

/// The request tail shared by solve and calibrate: the axes the model
/// consumes, spelled exactly as run_sweep's cache keys and CSV spell
/// them.
std::string request_tail(const scenario& sc, const dataset_slice& slice,
                         const diffusion_model& model) {
  std::string req = " model=" + sc.model + " slice=" + slice.name;
  if (model.uses_scheme()) {
    req += " scheme=" + core::to_string(sc.scheme);
    req += " dt=" + format_full_precision(sc.dt);
  }
  if (model.uses_grid()) req += " grid=" + std::to_string(sc.points_per_unit);
  req += " t0=" + format_full_precision(sc.t0) +
         " t_end=" + format_full_precision(sc.t_end) +
         " seed=" + std::to_string(sc.seed);
  if (model.supports_domain() && !make_domain(sc.domain).is_line())
    req += " domain=" + sc.domain;
  return req;
}

}  // namespace

void shard_spec::validate() const {
  if (count == 0)
    throw std::invalid_argument("shard_spec: shard count must be positive");
  if (index >= count)
    throw std::invalid_argument(
        "shard_spec: shard index " + std::to_string(index) +
        " out of range for " + std::to_string(count) + " shards");
}

std::string shard_spec::label() const {
  std::string out = std::to_string(index) + "/" + std::to_string(count);
  if (policy == shard_policy::strided) out += ":strided";
  return out;
}

const std::string& shard_spec_grammar() {
  static const std::string grammar =
      "accepted shard spec forms:\n"
      "  <i>/<N>             shard i of N (0-based, 0 <= i < N), contiguous "
      "chunk ranges\n"
      "  <i>/<N>:contiguous  the contiguous policy, spelled out\n"
      "  <i>/<N>:strided     round-robin chunk assignment (chunk c -> shard "
      "c mod N)";
  return grammar;
}

shard_spec parse_shard_spec(const std::string& spec) {
  if (spec.empty()) bad_shard_spec(spec, "empty shard spec");
  const std::size_t slash = spec.find('/');
  if (slash == std::string::npos)
    bad_shard_spec(spec, "missing '/' between shard index and count");
  const std::size_t colon = spec.find(':', slash + 1);
  const std::string_view text(spec);

  shard_spec shard;
  shard.index =
      parse_shard_size(text.substr(0, slash), spec, "shard index", 0);
  const std::size_t count_end =
      (colon == std::string::npos ? spec.size() : colon);
  shard.count = parse_shard_size(
      text.substr(slash + 1, count_end - slash - 1), spec, "shard count",
      slash + 1);
  if (shard.count == 0)
    bad_shard_spec(spec, "shard count must be positive", slash + 1);
  if (shard.index >= shard.count)
    bad_shard_spec(spec,
                   "shard index " + std::to_string(shard.index) +
                       " out of range for " + std::to_string(shard.count) +
                       " shards");
  if (colon != std::string::npos) {
    const std::string_view policy = text.substr(colon + 1);
    if (policy == "contiguous") {
      shard.policy = shard_policy::contiguous;
    } else if (policy == "strided") {
      shard.policy = shard_policy::strided;
    } else {
      bad_shard_spec(spec,
                     "unknown shard policy '" + std::string(policy) + "'",
                     colon + 1);
    }
  }
  return shard;
}

std::vector<std::vector<std::size_t>> shard_chunks(
    const std::vector<std::vector<std::size_t>>& chunks,
    const shard_spec& shard) {
  shard.validate();
  if (shard.is_all()) return chunks;
  std::size_t total = 0;
  for (const std::vector<std::size_t>& chunk : chunks) total += chunk.size();
  std::vector<std::vector<std::size_t>> mine;
  if (total == 0) return mine;
  std::size_t offset = 0;  // cumulative scenario count before this chunk
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    const std::size_t owner = shard.policy == shard_policy::strided
                                  ? c % shard.count
                                  : offset * shard.count / total;
    if (owner == shard.index) mine.push_back(chunks[c]);
    offset += chunks[c].size();
  }
  return mine;
}

std::vector<std::size_t> shard_scenarios(std::span<const scenario> scenarios,
                                         const shard_spec& shard,
                                         const model_registry& registry,
                                         std::size_t batch_width) {
  const std::vector<std::vector<std::size_t>> mine =
      shard_chunks(batch_sweep(scenarios, registry, batch_width), shard);
  std::vector<std::size_t> owned;
  for (const std::vector<std::size_t>& chunk : mine)
    owned.insert(owned.end(), chunk.begin(), chunk.end());
  std::sort(owned.begin(), owned.end());
  return owned;
}

result_table run_shard_remote(const scenario_context& context,
                              std::span<const scenario> scenarios,
                              std::span<const std::size_t> owned,
                              const std::string& socket_path,
                              const model_registry& registry,
                              const remote_options& remote) {
  using clock = std::chrono::steady_clock;

  // Lazily (re)connected so a connection-level failure — including the
  // very first connect — retries with backoff.  "err" replies return
  // normally and are never retried (see remote_options).  A re-sent
  // request is safe by the protocol's purity: the reply depends only on
  // the request and the slice data.
  std::unique_ptr<service_client> client;
  const auto request = [&](const std::string& payload) -> std::string {
    double backoff = remote.backoff_initial_ms;
    for (std::size_t attempt = 0;; ++attempt) {
      try {
        if (client == nullptr)
          client = std::make_unique<service_client>(socket_path);
        return client->request(payload);
      } catch (const std::exception& e) {
        client.reset();  // the connection is suspect: reconnect next try
        if (attempt >= remote.retries) throw;
        std::fprintf(stderr,
                     "run_shard_remote: %s; retrying in %.0f ms "
                     "(attempt %zu of %zu)\n",
                     e.what(), backoff, attempt + 1, remote.retries + 1);
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(backoff));
        backoff *= remote.backoff_multiplier;
      }
    }
  };

  // Model instances memoized per name: only capability flags are needed.
  std::vector<std::pair<std::string, std::unique_ptr<diffusion_model>>> models;
  const auto model_for = [&](const std::string& name) -> const diffusion_model& {
    for (const auto& [n, m] : models)
      if (n == name) return *m;
    models.emplace_back(name, registry.make(name));
    return *models.back().second;
  };

  std::vector<result_row> rows;
  rows.reserve(owned.size());
  for (const std::size_t i : owned) {
    if (i >= scenarios.size())
      throw std::invalid_argument(
          "run_shard_remote: owned index " + std::to_string(i) +
          " out of range for " + std::to_string(scenarios.size()) +
          " scenarios");
    const scenario& sc = scenarios[i];
    const dataset_slice& slice = context.slice(sc.slice);
    const diffusion_model& model = model_for(sc.model);
    const clock::time_point start = clock::now();

    result_row row;
    row.index = i;

    const auto fail = [&](const std::string& reply) -> void {
      throw std::runtime_error(
          "run_shard_remote: scenario #" + std::to_string(i) + " (model '" +
          sc.model + "', slice '" + slice.name + "') failed: " + reply);
    };

    // Calibrate specs: fit on the server first, then solve the rewritten
    // scenario (resolved rate + fitted d/K overrides) — run_sweep's exact
    // order of operations, so cache keys and CSV fields agree.
    const bool calibrated = model.uses_rate() && is_calibrate_spec(sc.rate);
    std::string solve_req = "solve" + request_tail(sc, slice, model);
    if (calibrated) {
      const std::string reply = request(
          "calibrate rate=" + sc.rate + request_tail(sc, slice, model));
      if (reply.starts_with("err")) fail(reply);
      const fit_reply fit = parse_fit_reply(reply);
      solve_req += " rate=" + fit.rate +
                   " d=" + format_full_precision(fit.d) +
                   " k=" + format_full_precision(fit.k);
      row.resolved_rate = fit.rate;
      row.fit_d = fit.d;
      row.fit_k = fit.k;
      row.fit_a = fit.a;
      row.fit_b = fit.b;
      row.fit_c = fit.c;
      row.fit_m = fit.multipliers;
      row.fit_sse = fit.sse;
      row.fit_evals = fit.evals;
    } else if (model.uses_rate()) {
      solve_req += " rate=" + sc.rate;
      if (!std::isnan(sc.d_override))
        solve_req += " d=" + format_full_precision(sc.d_override);
      if (!std::isnan(sc.k_override))
        solve_req += " k=" + format_full_precision(sc.k_override);
    }

    const std::string reply = request(solve_req);
    if (reply.starts_with("err")) fail(reply);
    const model_trace trace = parse_trace_reply(reply);
    const auto [accuracy, cells] = score_trace(trace, slice);

    row.model = sc.model;
    row.slice = slice.name;
    row.story = slice.story;
    row.metric = social::to_string(slice.metric);
    row.scheme = model.uses_scheme() ? core::to_string(sc.scheme) : "-";
    row.points_per_unit = model.uses_grid() ? sc.points_per_unit : 0;
    row.dt = model.uses_scheme() ? trace.effective_dt : 0.0;
    row.rate = model.uses_rate() ? sc.rate : "-";
    if (!calibrated)
      row.resolved_rate =
          model.uses_rate() ? resolve_rate_spec(sc.rate, slice.metric) : "-";
    row.t0 = sc.t0;
    row.t_end = sc.t_end;
    row.domain = trace.domain;
    row.cells = cells;
    row.accuracy = accuracy;
    row.wall_ms =
        std::chrono::duration<double, std::milli>(clock::now() - start)
            .count();
    rows.push_back(std::move(row));
  }
  return result_table(std::move(rows));
}

}  // namespace dlm::engine
