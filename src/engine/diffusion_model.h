// The unified diffusion-model interface of the batch engine.
//
// Every predictor in the repo — the paper's DL reaction-diffusion model
// and all baselines (heat equation, global logistic, per-distance
// logistic, SI epidemic) — is wrapped behind this one polymorphic
// interface so sweeps can treat "a model" as data: look it up by name in
// the registry, hand it a scenario + dataset slice, get back a predicted
// density trace scored uniformly by the runner.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "engine/scenario.h"

namespace dlm::engine {

/// A model's predicted density surface over integer distances × hours.
struct model_trace {
  std::vector<int> distances;  ///< 1..max_distance of the slice
  std::vector<double> times;   ///< evaluated hours (t0+1 .. t_end)
  /// predicted[i][j]: predicted density at distances[i], times[j].
  std::vector<std::vector<double>> predicted;
  /// Time step the solver actually used — differs from scenario.dt when a
  /// scheme clamps for stability (FTCS).  0 for models without a dt.
  double effective_dt = 0.0;
  /// Canonical label of the domain the model solved on ("line" unless the
  /// model supports domains and the scenario asked for another one).
  std::string domain = "line";
};

/// Abstract diffusion predictor.  Implementations must be stateless and
/// const-thread-safe: `solve` runs concurrently from the pool workers.
class diffusion_model {
 public:
  virtual ~diffusion_model() = default;

  /// Registry key / display name.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Which sweep axes the model consumes; `expand_sweep` collapses the
  /// others so a sweep never enqueues duplicate work.
  [[nodiscard]] virtual bool uses_scheme() const { return false; }
  [[nodiscard]] virtual bool uses_grid() const { return false; }
  [[nodiscard]] virtual bool uses_rate() const { return false; }

  /// Whether spatial rate specs ("spatial:...", "per-hop:...",
  /// "calibrate-spatial") are meaningful: the model evaluates the rate
  /// per distance.  Rate-using models that return false have a spatial
  /// spec collapsed to its temporal base by `expand_sweep` (the
  /// space-free global logistic cannot honour r(x, t)).
  [[nodiscard]] virtual bool supports_spatial_rate() const { return false; }

  /// Whether "calibrate" rate specs apply: the runner fits (d, K[, r])
  /// on the slice's early window before solving.  Only meaningful for
  /// models that honour scenario d/k overrides and the fitted rate —
  /// the DL adapter.  Rate-using models that return false run their
  /// preset rate when a sweep lists a calibrate spec.
  [[nodiscard]] virtual bool supports_calibration() const { return false; }

  /// Whether non-line domain specs ("grid2d:...", "comm:...") are
  /// meaningful: the model solves on the requested core::domain.
  /// `expand_sweep` collapses the domain axis to {"line"} for models that
  /// return false, and non-line domains only pair with the strang-cn
  /// scheme (the only one the domain solvers implement).
  [[nodiscard]] virtual bool supports_domain() const { return false; }

  /// Solves the scenario on the slice and returns the predicted trace at
  /// integer distances 1..slice.max_distance and integer hours
  /// floor(t0)+1 .. min(floor(t_end), slice.horizon_hours).
  [[nodiscard]] virtual model_trace solve(const scenario& sc,
                                          const dataset_slice& slice) const = 0;

  /// Whether solve_batch advances multiple scenarios in one pass (the DL
  /// adapter's lockstep SoA solve).  The runner only groups scenarios of
  /// models that return true; for everything else batching would just
  /// serialize independent solves onto one worker.
  [[nodiscard]] virtual bool supports_batch() const { return false; }

  /// Solves several scenarios of this model against one slice, returning
  /// traces in scenario order.  Every trace is bitwise identical to the
  /// corresponding solve() — batch-capable models dispatch to a lockstep
  /// solver with that exact contract; the default implementation simply
  /// loops solve().  All scenarios must reference the given slice.
  [[nodiscard]] virtual std::vector<model_trace> solve_batch(
      std::span<const scenario> scenarios, const dataset_slice& slice) const;

  /// The evaluation hours shared by every adapter (see `solve`).
  [[nodiscard]] static std::vector<double> evaluation_times(
      const scenario& sc, const dataset_slice& slice);
};

}  // namespace dlm::engine
