#include "engine/model_registry.h"

#include <stdexcept>
#include <utility>

#include "engine/adapters.h"

namespace dlm::engine {

void model_registry::register_model(const std::string& name, factory make) {
  if (name.empty())
    throw std::invalid_argument("model_registry: empty model name");
  if (!make)
    throw std::invalid_argument("model_registry: null factory for '" + name +
                                "'");
  if (factories_.contains(name))
    throw std::invalid_argument("model_registry: duplicate registration of '" +
                                name + "'");
  factories_.emplace(name, std::move(make));
}

bool model_registry::contains(const std::string& name) const {
  return factories_.contains(name);
}

std::unique_ptr<diffusion_model> model_registry::make(
    const std::string& name) const {
  const auto it = factories_.find(name);
  if (it == factories_.end()) {
    std::string message = "model_registry: unknown model '" + name +
                          "'; registered models:";
    for (const auto& [key, unused] : factories_) message += " " + key;
    throw std::invalid_argument(message);
  }
  return it->second();
}

std::vector<std::string> model_registry::names() const {
  std::vector<std::string> result;
  result.reserve(factories_.size());
  for (const auto& [key, unused] : factories_) result.push_back(key);
  return result;  // std::map iterates sorted
}

void register_builtin_models(model_registry& registry) {
  registry.register_model("dl", [] { return std::make_unique<dl_adapter>(); });
  registry.register_model("heat",
                          [] { return std::make_unique<heat_adapter>(); });
  registry.register_model(
      "logistic", [] { return std::make_unique<global_logistic_adapter>(); });
  registry.register_model("per_distance_logistic", [] {
    return std::make_unique<per_distance_logistic_adapter>();
  });
  registry.register_model("si", [] { return std::make_unique<si_adapter>(); });
}

const model_registry& default_registry() {
  static const model_registry registry = [] {
    model_registry r;
    register_builtin_models(r);
    return r;
  }();
  return registry;
}

}  // namespace dlm::engine
