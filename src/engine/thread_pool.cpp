#include "engine/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <stdexcept>
#include <utility>

namespace dlm::engine {

thread_pool::thread_pool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

thread_pool::~thread_pool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void thread_pool::submit(std::function<void()> task) {
  if (!task) throw std::invalid_argument("thread_pool: null task");
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void thread_pool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void thread_pool::run_batch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  for (const auto& task : tasks) {
    if (!task) throw std::invalid_argument("thread_pool: null task in batch");
  }

  // Shared by the caller and any helper tasks; helpers may outlive this
  // call (they can be popped from the queue after the batch has drained),
  // so the state is reference-counted.
  struct batch_state {
    std::vector<std::function<void()>> tasks;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex mutex;
    std::condition_variable all_done;
    std::exception_ptr error;
    std::size_t error_index = 0;
  };
  auto state = std::make_shared<batch_state>();
  state->tasks = std::move(tasks);
  const std::size_t total = state->tasks.size();

  const auto drain = [state, total] {
    for (;;) {
      const std::size_t i = state->next.fetch_add(1);
      if (i >= total) return;
      try {
        state->tasks[i]();
      } catch (...) {
        const std::lock_guard<std::mutex> lock(state->mutex);
        if (!state->error || i < state->error_index) {
          state->error = std::current_exception();
          state->error_index = i;
        }
      }
      if (state->done.fetch_add(1) + 1 == total) {
        const std::lock_guard<std::mutex> lock(state->mutex);
        state->all_done.notify_all();
      }
    }
  };

  // The caller always participates and waits for every task to finish
  // before unwinding — helpers reference the shared state, but the task
  // closures' own captures may point into the caller's stack frame.
  const auto finish = [&] {
    drain();
    std::unique_lock<std::mutex> lock(state->mutex);
    state->all_done.wait(lock, [&] { return state->done.load() == total; });
  };

  // One helper per worker (capped at the batch size); the caller claims
  // tasks too, so progress never depends on a helper being scheduled.
  const std::size_t helpers = std::min(workers_.size(), total - 1);
  try {
    for (std::size_t h = 0; h < helpers; ++h) submit(drain);
  } catch (...) {
    // submit can fail mid-loop (allocation); helpers already enqueued may
    // be running tasks, so complete the batch before propagating.
    finish();
    throw;
  }
  finish();
  if (state->error) std::rethrow_exception(state->error);
}

void thread_pool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace dlm::engine
