#include "engine/thread_pool.h"

#include <stdexcept>
#include <utility>

namespace dlm::engine {

thread_pool::thread_pool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

thread_pool::~thread_pool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void thread_pool::submit(std::function<void()> task) {
  if (!task) throw std::invalid_argument("thread_pool: null task");
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void thread_pool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void thread_pool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace dlm::engine
