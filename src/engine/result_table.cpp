#include "engine/result_table.h"

#include <algorithm>
#include <charconv>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "engine/format.h"
#include "eval/table.h"

namespace dlm::engine {
namespace {

const std::vector<std::string>& base_columns() {
  static const std::vector<std::string> columns{
      "index",  "model", "slice", "story",    "metric",  "scheme",
      "points_per_unit", "dt",    "rate",     "resolved_rate", "t0",
      "t_end",  "cells", "accuracy", "fit_d", "fit_k",   "fit_a",
      "fit_b",  "fit_c", "fit_m", "fit_sse",  "fit_evals"};
  return columns;
}

constexpr std::string_view kCacheColumns[] = {"fit_solves", "fit_hits"};
constexpr std::string_view kTimingColumn = "wall_ms";
/// Emitted right after the base columns, but only when some row solved a
/// non-line domain — line-only sweeps keep their historical byte-exact
/// CSV (and existing files stay parseable).
constexpr std::string_view kDomainColumn = "domain";

/// RFC-4180 quoting: quote when the field contains a comma, a quote or a
/// line break; embedded quotes double.  Everything else passes through,
/// so quoting is canonical and round-trips byte-identically.
std::string csv_field(std::string_view field) {
  if (field.find_first_of(",\"\r\n") == std::string_view::npos)
    return std::string(field);
  std::string quoted = "\"";
  for (const char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

/// One-pass RFC-4180 reader: records of fields, quote-aware (embedded
/// commas, doubled quotes and line breaks inside quoted fields).  Blank
/// records (trailing newline, empty lines) are dropped.
std::vector<std::vector<std::string>> parse_csv(std::string_view csv) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  const auto end_record = [&] {
    fields.push_back(std::move(current));
    current.clear();
    if (fields.size() > 1 || !fields.front().empty())
      records.push_back(std::move(fields));
    fields.clear();
  };
  for (std::size_t i = 0; i < csv.size(); ++i) {
    const char c = csv[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < csv.size() && csv[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\n') {
      end_record();
    } else if (c != '\r') {
      current += c;
    }
  }
  if (in_quotes)
    throw std::invalid_argument("result_table: unterminated quote in CSV");
  if (!current.empty() || !fields.empty()) end_record();
  return records;
}

double parse_csv_double(const std::string& field) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc{} || ptr != field.data() + field.size())
    throw std::invalid_argument("result_table: bad number '" + field + "'");
  return value;
}

std::vector<double> parse_multipliers(const std::string& field) {
  std::vector<double> out;
  if (field.empty()) return out;
  for (const std::string& piece : split_keep_empty(field, ','))
    out.push_back(parse_csv_double(piece));
  return out;
}

std::size_t parse_csv_size(const std::string& field) {
  std::size_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc{} || ptr != field.data() + field.size())
    throw std::invalid_argument("result_table: bad count '" + field + "'");
  return value;
}

std::string join_fields(const std::vector<std::string>& fields) {
  std::string joined;
  for (const std::string& field : fields) {
    if (!joined.empty()) joined += ',';
    joined += field;
  }
  return joined;
}

}  // namespace

bool result_row::same_result(const result_row& other) const {
  return index == other.index && model == other.model &&
         slice == other.slice && story == other.story &&
         metric == other.metric && scheme == other.scheme &&
         points_per_unit == other.points_per_unit && dt == other.dt &&
         rate == other.rate && resolved_rate == other.resolved_rate &&
         t0 == other.t0 && t_end == other.t_end && cells == other.cells &&
         accuracy == other.accuracy && fit_d == other.fit_d &&
         fit_k == other.fit_k && fit_a == other.fit_a &&
         fit_b == other.fit_b && fit_c == other.fit_c &&
         fit_m == other.fit_m && fit_sse == other.fit_sse &&
         fit_evals == other.fit_evals && domain == other.domain;
}

result_table::result_table(std::vector<result_row> rows)
    : rows_(std::move(rows)) {}

const result_row& result_table::row(std::size_t i) const {
  if (i >= rows_.size())
    throw std::out_of_range("result_table: row index out of range");
  return rows_[i];
}

const result_row& result_table::best() const {
  if (rows_.empty()) throw std::out_of_range("result_table: empty table");
  const auto it = std::max_element(
      rows_.begin(), rows_.end(), [](const result_row& a, const result_row& b) {
        return a.accuracy < b.accuracy;
      });
  return *it;
}

double result_table::total_wall_ms() const {
  double total = 0.0;
  for (const result_row& r : rows_) total += r.wall_ms;
  return total;
}

std::string result_table::to_csv(const csv_options& options) const {
  const bool with_domain =
      std::any_of(rows_.begin(), rows_.end(),
                  [](const result_row& r) { return r.domain != "line"; });
  std::string out;
  for (const std::string& column : base_columns()) {
    if (!out.empty()) out += ',';
    out += column;
  }
  if (with_domain) {
    out += ',';
    out += kDomainColumn;
  }
  if (options.include_cache_stats) {
    for (const std::string_view column : kCacheColumns) {
      out += ',';
      out += column;
    }
  }
  if (options.include_timing) {
    out += ',';
    out += kTimingColumn;
  }
  out += '\n';
  for (const result_row& r : rows_) {
    out += std::to_string(r.index);
    out += ',' + csv_field(r.model) + ',' + csv_field(r.slice) + ',' +
           csv_field(r.story) + ',' + csv_field(r.metric) + ',' +
           csv_field(r.scheme);
    out += ',' + std::to_string(r.points_per_unit);
    out += ',' + format_full_precision(r.dt);
    out += ',' + csv_field(r.rate);
    out += ',' + csv_field(r.resolved_rate);
    out += ',' + format_full_precision(r.t0);
    out += ',' + format_full_precision(r.t_end);
    out += ',' + std::to_string(r.cells);
    out += ',' + format_full_precision(r.accuracy);
    out += ',' + format_full_precision(r.fit_d);
    out += ',' + format_full_precision(r.fit_k);
    out += ',' + format_full_precision(r.fit_a);
    out += ',' + format_full_precision(r.fit_b);
    out += ',' + format_full_precision(r.fit_c);
    out += ',' + csv_field(join_full_precision(r.fit_m));
    out += ',' + format_full_precision(r.fit_sse);
    out += ',' + std::to_string(r.fit_evals);
    if (with_domain) out += ',' + csv_field(r.domain);
    if (options.include_cache_stats) {
      out += ',' + std::to_string(r.fit_solves);
      out += ',' + std::to_string(r.fit_hits);
    }
    if (options.include_timing) out += ',' + format_full_precision(r.wall_ms);
    out += '\n';
  }
  return out;
}

void result_table::write_csv(std::ostream& out,
                             const csv_options& options) const {
  out << to_csv(options);
}

result_table result_table::from_csv(std::string_view csv) {
  const std::vector<std::vector<std::string>> records = parse_csv(csv);
  if (records.empty())
    throw std::invalid_argument("result_table: empty CSV");

  // Header: the base columns, optionally followed by the cache-stat pair
  // and/or the timing column.
  const std::vector<std::string>& base = base_columns();
  const std::vector<std::string>& header = records.front();
  const auto bad_header = [&] {
    return std::invalid_argument("result_table: unrecognized CSV header '" +
                                 join_fields(header) + "'");
  };
  if (header.size() < base.size() ||
      !std::equal(base.begin(), base.end(), header.begin()))
    throw bad_header();
  std::size_t at = base.size();
  bool with_domain = false;
  if (at < header.size() && header[at] == kDomainColumn) {
    with_domain = true;
    ++at;
  }
  bool with_cache = false;
  if (at + 1 < header.size() && header[at] == kCacheColumns[0] &&
      header[at + 1] == kCacheColumns[1]) {
    with_cache = true;
    at += 2;
  }
  bool with_timing = false;
  if (at < header.size() && header[at] == kTimingColumn) {
    with_timing = true;
    ++at;
  }
  if (at != header.size()) throw bad_header();
  const std::size_t expected_fields = at;

  std::vector<result_row> rows;
  for (std::size_t i = 1; i < records.size(); ++i) {
    const std::vector<std::string>& f = records[i];
    if (f.size() != expected_fields)
      throw std::invalid_argument("result_table: malformed CSV line '" +
                                  join_fields(f) + "'");
    result_row r;
    r.index = parse_csv_size(f[0]);
    r.model = f[1];
    r.slice = f[2];
    r.story = f[3];
    r.metric = f[4];
    r.scheme = f[5];
    r.points_per_unit = parse_csv_size(f[6]);
    r.dt = parse_csv_double(f[7]);
    r.rate = f[8];
    r.resolved_rate = f[9];
    r.t0 = parse_csv_double(f[10]);
    r.t_end = parse_csv_double(f[11]);
    r.cells = parse_csv_size(f[12]);
    r.accuracy = parse_csv_double(f[13]);
    r.fit_d = parse_csv_double(f[14]);
    r.fit_k = parse_csv_double(f[15]);
    r.fit_a = parse_csv_double(f[16]);
    r.fit_b = parse_csv_double(f[17]);
    r.fit_c = parse_csv_double(f[18]);
    r.fit_m = parse_multipliers(f[19]);
    r.fit_sse = parse_csv_double(f[20]);
    r.fit_evals = parse_csv_size(f[21]);
    std::size_t next = 22;
    if (with_domain) r.domain = f[next++];
    if (with_cache) {
      r.fit_solves = parse_csv_size(f[next]);
      r.fit_hits = parse_csv_size(f[next + 1]);
      next += 2;
    }
    if (with_timing) r.wall_ms = parse_csv_double(f[next]);
    rows.push_back(std::move(r));
  }
  return result_table(std::move(rows));
}

std::string result_table::to_text() const {
  // Like the CSV, the text rendering only grows a domain column when some
  // row solved a non-line domain — line-only tables keep the historical
  // layout.
  const bool with_domain =
      std::any_of(rows_.begin(), rows_.end(),
                  [](const result_row& r) { return r.domain != "line"; });
  std::vector<std::string> header{"#",     "model",    "slice", "scheme",
                                  "pts/u", "dt",       "rate",  "accuracy",
                                  "cells", "fit sse",  "evals", "ms"};
  if (with_domain) header.insert(header.begin() + 7, "domain");
  eval::text_table table(header);
  for (const result_row& r : rows_) {
    const bool calibrated = r.fit_evals > 0;
    std::vector<std::string> fields{
        std::to_string(r.index), r.model, r.slice, r.scheme,
        r.points_per_unit == 0 ? std::string("-")
                               : std::to_string(r.points_per_unit),
        r.dt == 0.0 ? std::string("-") : eval::text_table::num(r.dt),
        r.rate, eval::text_table::pct(r.accuracy),
        std::to_string(r.cells),
        calibrated ? eval::text_table::num(r.fit_sse, 4) : std::string("-"),
        calibrated ? std::to_string(r.fit_evals) : std::string("-"),
        eval::text_table::num(r.wall_ms, 2)};
    if (with_domain) fields.insert(fields.begin() + 7, r.domain);
    table.add_row(std::move(fields));
  }
  return table.str();
}

result_table merge_tables(std::span<const result_table> shards) {
  std::size_t total = 0;
  for (const result_table& shard : shards) total += shard.size();
  std::vector<result_row> rows;
  rows.reserve(total);
  for (const result_table& shard : shards)
    rows.insert(rows.end(), shard.rows().begin(), shard.rows().end());
  std::sort(rows.begin(), rows.end(),
            [](const result_row& a, const result_row& b) {
              return a.index < b.index;
            });
  // A valid partition sorts to exactly 0..total−1; the first slot that
  // does not match pinpoints either an overlap or a gap.
  for (std::size_t k = 0; k < rows.size(); ++k) {
    if (rows[k].index == k) continue;
    if (k > 0 && rows[k].index == rows[k - 1].index)
      throw std::invalid_argument(
          "merge_tables: scenario index " + std::to_string(rows[k].index) +
          " appears in more than one shard");
    throw std::invalid_argument(
        "merge_tables: scenario index " + std::to_string(k) +
        " is missing from the merged shards (dropped or truncated shard "
        "table?)");
  }
  return result_table(std::move(rows));
}

partial_merge merge_tables_partial(std::span<const result_table> shards,
                                   std::size_t total) {
  std::size_t present = 0;
  for (const result_table& shard : shards) present += shard.size();
  std::vector<result_row> rows;
  rows.reserve(present);
  for (const result_table& shard : shards)
    rows.insert(rows.end(), shard.rows().begin(), shard.rows().end());
  std::sort(rows.begin(), rows.end(),
            [](const result_row& a, const result_row& b) {
              return a.index < b.index;
            });
  partial_merge out;
  std::size_t next = 0;  // the smallest index not yet accounted for
  for (std::size_t k = 0; k < rows.size(); ++k) {
    if (k > 0 && rows[k].index == rows[k - 1].index)
      throw std::invalid_argument(
          "merge_tables_partial: scenario index " +
          std::to_string(rows[k].index) + " appears in more than one shard");
    if (rows[k].index >= total)
      throw std::invalid_argument(
          "merge_tables_partial: scenario index " +
          std::to_string(rows[k].index) + " is out of range for a sweep of " +
          std::to_string(total) + " scenarios");
    for (; next < rows[k].index; ++next) out.missing.push_back(next);
    next = rows[k].index + 1;
  }
  for (; next < total; ++next) out.missing.push_back(next);
  out.table = result_table(std::move(rows));
  return out;
}

}  // namespace dlm::engine
