#include "engine/result_table.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "eval/table.h"

namespace dlm::engine {
namespace {

constexpr std::string_view kHeader =
    "index,model,slice,story,metric,scheme,points_per_unit,dt,rate,t0,t_end,"
    "cells,accuracy";
constexpr std::string_view kTimingColumn = ",wall_ms";

/// Shortest decimal form that round-trips a double exactly.
std::string format_double(double value) {
  char buffer[32];
  const int written = std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return std::string(buffer, static_cast<std::size_t>(written));
}

std::vector<std::string_view> split(std::string_view line, char sep) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  for (;;) {
    const std::size_t pos = line.find(sep, start);
    if (pos == std::string_view::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
}

double parse_csv_double(std::string_view field) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc{} || ptr != field.data() + field.size())
    throw std::invalid_argument("result_table: bad number '" +
                                std::string(field) + "'");
  return value;
}

std::size_t parse_csv_size(std::string_view field) {
  std::size_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc{} || ptr != field.data() + field.size())
    throw std::invalid_argument("result_table: bad count '" +
                                std::string(field) + "'");
  return value;
}

}  // namespace

bool result_row::same_result(const result_row& other) const {
  return index == other.index && model == other.model &&
         slice == other.slice && story == other.story &&
         metric == other.metric && scheme == other.scheme &&
         points_per_unit == other.points_per_unit && dt == other.dt &&
         rate == other.rate && t0 == other.t0 && t_end == other.t_end &&
         cells == other.cells && accuracy == other.accuracy;
}

result_table::result_table(std::vector<result_row> rows)
    : rows_(std::move(rows)) {}

const result_row& result_table::row(std::size_t i) const {
  if (i >= rows_.size())
    throw std::out_of_range("result_table: row index out of range");
  return rows_[i];
}

const result_row& result_table::best() const {
  if (rows_.empty()) throw std::out_of_range("result_table: empty table");
  const auto it = std::max_element(
      rows_.begin(), rows_.end(), [](const result_row& a, const result_row& b) {
        return a.accuracy < b.accuracy;
      });
  return *it;
}

double result_table::total_wall_ms() const {
  double total = 0.0;
  for (const result_row& r : rows_) total += r.wall_ms;
  return total;
}

std::string result_table::to_csv(const csv_options& options) const {
  std::string out(kHeader);
  if (options.include_timing) out += kTimingColumn;
  out += '\n';
  for (const result_row& r : rows_) {
    out += std::to_string(r.index);
    out += ',' + r.model + ',' + r.slice + ',' + r.story + ',' + r.metric +
           ',' + r.scheme;
    out += ',' + std::to_string(r.points_per_unit);
    out += ',' + format_double(r.dt);
    out += ',' + r.rate;
    out += ',' + format_double(r.t0);
    out += ',' + format_double(r.t_end);
    out += ',' + std::to_string(r.cells);
    out += ',' + format_double(r.accuracy);
    if (options.include_timing) out += ',' + format_double(r.wall_ms);
    out += '\n';
  }
  return out;
}

void result_table::write_csv(std::ostream& out,
                             const csv_options& options) const {
  out << to_csv(options);
}

result_table result_table::from_csv(std::string_view csv) {
  std::vector<std::string_view> lines;
  for (std::string_view rest = csv; !rest.empty();) {
    const std::size_t pos = rest.find('\n');
    if (pos == std::string_view::npos) {
      lines.push_back(rest);
      break;
    }
    if (pos > 0) lines.push_back(rest.substr(0, pos));
    rest = rest.substr(pos + 1);
  }
  if (lines.empty())
    throw std::invalid_argument("result_table: empty CSV");

  bool with_timing = false;
  if (lines.front() == std::string(kHeader) + std::string(kTimingColumn)) {
    with_timing = true;
  } else if (lines.front() != kHeader) {
    throw std::invalid_argument("result_table: unrecognized CSV header '" +
                                std::string(lines.front()) + "'");
  }
  const std::size_t expected_fields = with_timing ? 14 : 13;

  std::vector<result_row> rows;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::vector<std::string_view> f = split(lines[i], ',');
    if (f.size() != expected_fields)
      throw std::invalid_argument("result_table: malformed CSV line '" +
                                  std::string(lines[i]) + "'");
    result_row r;
    r.index = parse_csv_size(f[0]);
    r.model = std::string(f[1]);
    r.slice = std::string(f[2]);
    r.story = std::string(f[3]);
    r.metric = std::string(f[4]);
    r.scheme = std::string(f[5]);
    r.points_per_unit = parse_csv_size(f[6]);
    r.dt = parse_csv_double(f[7]);
    r.rate = std::string(f[8]);
    r.t0 = parse_csv_double(f[9]);
    r.t_end = parse_csv_double(f[10]);
    r.cells = parse_csv_size(f[11]);
    r.accuracy = parse_csv_double(f[12]);
    if (with_timing) r.wall_ms = parse_csv_double(f[13]);
    rows.push_back(std::move(r));
  }
  return result_table(std::move(rows));
}

std::string result_table::to_text() const {
  eval::text_table table({"#", "model", "slice", "scheme", "pts/u", "dt",
                          "rate", "accuracy", "cells", "ms"});
  for (const result_row& r : rows_) {
    table.add_row({std::to_string(r.index), r.model, r.slice, r.scheme,
                   r.points_per_unit == 0 ? std::string("-")
                                          : std::to_string(r.points_per_unit),
                   r.dt == 0.0 ? std::string("-") : eval::text_table::num(r.dt),
                   r.rate, eval::text_table::pct(r.accuracy),
                   std::to_string(r.cells),
                   eval::text_table::num(r.wall_ms, 2)});
  }
  return table.str();
}

}  // namespace dlm::engine
