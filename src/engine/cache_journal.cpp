#include "engine/cache_journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <iterator>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "engine/cache_io.h"

namespace dlm::engine {
namespace {

constexpr std::uint32_t kTraceRecord = 1;
constexpr std::uint32_t kValueRecord = 2;
constexpr std::size_t kHeaderBytes = 12;      // magic (8) + version u32
constexpr std::size_t kRecordHeaderBytes = 20;  // kind u32 + len u64 + sum u64

void put_u32(std::string& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8)
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8)
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
}

std::uint32_t get_u32(std::string_view bytes, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(bytes[at + i]))
         << (8 * i);
  return v;
}

std::uint64_t get_u64(std::string_view bytes, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(bytes[at + i]))
         << (8 * i);
  return v;
}

std::string fresh_header() {
  std::string out;
  out.reserve(kHeaderBytes);
  out.append(kJournalMagic);
  put_u32(out, kJournalFormatVersion);
  return out;
}

/// One verified record of a scan.
struct scanned_record {
  std::uint32_t kind = 0;
  std::string_view payload;
};

/// Outcome of scanning a journal's bytes.
struct scan_result {
  /// False iff the header itself is wrong (bad magic / version on a
  /// complete header) — the file is not ours.
  bool header_ok = false;
  /// Valid prefix length (header + whole verified records).  For an
  /// empty file this is 0 with header_ok true (clean cold journal).
  std::uint64_t valid_bytes = 0;
  std::vector<scanned_record> records;
  /// True when bytes beyond valid_bytes exist (a torn/corrupt tail).
  bool torn_tail = false;
  /// The header defect (header_ok false) or the tail defect (torn_tail).
  std::string error;
};

scan_result scan_journal(std::string_view bytes) {
  scan_result scan;
  if (bytes.empty()) {
    scan.header_ok = true;  // a zero-length WAL is a clean cold journal
    return scan;
  }
  if (bytes.size() < kHeaderBytes) {
    // A torn header: the writer died inside the initial 12 bytes.  When
    // whatever magic bytes are present match ours (a 9..11-byte prefix
    // holds the whole magic plus part of the version), the file cannot
    // be a foreign one — treat it as ours and truncate to empty.
    const std::size_t check = std::min(bytes.size(), kJournalMagic.size());
    if (bytes.substr(0, check) != kJournalMagic.substr(0, check)) {
      scan.error = "bad magic";
      return scan;
    }
    scan.header_ok = true;
    scan.torn_tail = true;
    scan.error = "torn header";
    return scan;
  }
  if (bytes.substr(0, kJournalMagic.size()) != kJournalMagic) {
    scan.error = "bad magic";
    return scan;
  }
  const std::uint32_t version = get_u32(bytes, kJournalMagic.size());
  if (version != kJournalFormatVersion) {
    scan.error = "unsupported journal version " + std::to_string(version) +
                 " (expected " + std::to_string(kJournalFormatVersion) + ")";
    return scan;
  }
  scan.header_ok = true;
  scan.valid_bytes = kHeaderBytes;

  std::size_t at = kHeaderBytes;
  while (at < bytes.size()) {
    if (bytes.size() - at < kRecordHeaderBytes) {
      scan.torn_tail = true;
      scan.error = "torn record header";
      break;
    }
    const std::uint32_t kind = get_u32(bytes, at);
    const std::uint64_t payload_bytes = get_u64(bytes, at + 4);
    const std::uint64_t checksum = get_u64(bytes, at + 12);
    if (kind != kTraceRecord && kind != kValueRecord) {
      scan.torn_tail = true;
      scan.error = "unknown record kind " + std::to_string(kind);
      break;
    }
    if (payload_bytes > bytes.size() - at - kRecordHeaderBytes) {
      scan.torn_tail = true;
      scan.error = "torn record payload";
      break;
    }
    const std::string_view payload =
        bytes.substr(at + kRecordHeaderBytes,
                     static_cast<std::size_t>(payload_bytes));
    if (cache_checksum(payload) != checksum) {
      scan.torn_tail = true;
      scan.error = "record checksum mismatch";
      break;
    }
    scan.records.push_back({kind, payload});
    at += kRecordHeaderBytes + static_cast<std::size_t>(payload_bytes);
    scan.valid_bytes = at;
  }
  return scan;
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

journal_replay_result replay_journal(solve_cache& cache,
                                     const std::filesystem::path& path) {
  journal_replay_result result;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    result.replayed = true;  // a missing WAL is a normal cold start
    result.file_missing = true;
    return result;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    cache.count_load_rejected();
    result.error = "read of '" + path.string() + "' failed";
    return result;
  }
  result.file_bytes = bytes.size();

  const scan_result scan = scan_journal(bytes);
  if (!scan.header_ok) {
    cache.count_load_rejected();
    result.error = scan.error;
    return result;
  }
  result.valid_bytes = scan.valid_bytes;
  result.torn_tail = scan.torn_tail;
  result.error = scan.error;

  // Decode every verified record before applying any: a record whose
  // payload fails to parse despite its checksum is corruption mid-file,
  // and the records after it must not apply out of order.  Everything
  // from the first defect on is reported as the (un-replayed) tail.
  std::vector<std::pair<std::string, model_trace>> traces;
  std::vector<std::pair<std::string, double>> values;
  std::vector<std::uint32_t> order;  // kinds, in record order
  std::uint64_t applied_bytes = kHeaderBytes;
  for (const scanned_record& record : scan.records) {
    std::string key;
    std::string error;
    if (record.kind == kTraceRecord) {
      model_trace trace;
      error = decode_trace_entry(record.payload, key, trace);
      if (error.empty()) traces.emplace_back(std::move(key), std::move(trace));
    } else {
      double value = 0.0;
      error = decode_value_entry(record.payload, key, value);
      if (error.empty()) values.emplace_back(std::move(key), value);
    }
    if (!error.empty()) {
      result.torn_tail = true;
      result.error = error;
      result.valid_bytes = applied_bytes;
      break;
    }
    order.push_back(record.kind);
    applied_bytes += kRecordHeaderBytes + record.payload.size();
  }

  result.replayed = true;
  result.traces = traces.size();
  result.values = values.size();
  for (auto& [key, trace] : traces)
    cache.import_trace(key,
                       std::make_shared<const model_trace>(std::move(trace)));
  for (const auto& [key, value] : values) cache.import_value(key, value);
  return result;
}

cache_journal::cache_journal(std::filesystem::path path, options opt)
    : path_(std::move(path)), opt_(opt) {
  // Scan whatever exists so a torn tail is truncated before appending;
  // a file that is not a journal at all must be left alone.
  std::string existing;
  {
    std::ifstream in(path_, std::ios::binary);
    if (in)
      existing.assign((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  }
  const scan_result scan = scan_journal(existing);
  if (!scan.header_ok)
    throw std::runtime_error("cache_journal: '" + path_.string() +
                             "' is not a cache journal (" + scan.error + ")");

  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd_ < 0)
    throw_errno("cache_journal: cannot open '" + path_.string() + "'");
  if (scan.valid_bytes < kHeaderBytes) {
    // Empty (or torn-header) file: start from a fresh header.
    if (::ftruncate(fd_, 0) != 0)
      throw_errno("cache_journal: truncate '" + path_.string() + "'");
    const std::string header = fresh_header();
    if (::write(fd_, header.data(), header.size()) !=
        static_cast<ssize_t>(header.size()))
      throw_errno("cache_journal: write header to '" + path_.string() + "'");
    bytes_ = header.size();
  } else {
    // Truncate the torn tail (no-op when the file is clean) and append
    // after the valid prefix.
    if (::ftruncate(fd_, static_cast<off_t>(scan.valid_bytes)) != 0)
      throw_errno("cache_journal: truncate '" + path_.string() + "'");
    if (::lseek(fd_, 0, SEEK_END) < 0)
      throw_errno("cache_journal: seek '" + path_.string() + "'");
    bytes_ = scan.valid_bytes;
  }
}

cache_journal::~cache_journal() {
  if (fd_ >= 0) ::close(fd_);
}

void cache_journal::append_record(std::uint32_t kind,
                                  const std::string& payload) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!write_error_.empty()) return;  // latched: the journal is dead

  std::string record;
  record.reserve(kRecordHeaderBytes + payload.size());
  put_u32(record, kind);
  put_u64(record, payload.size());
  put_u64(record, cache_checksum(payload));
  record.append(payload);

  std::size_t write_bytes = record.size();
  const bool torn = opt_.torn_write_record.has_value() &&
                    *opt_.torn_write_record == appended_;
  if (torn) write_bytes = record.size() / 2;  // fault: die mid-append

  std::size_t written = 0;
  while (written < write_bytes) {
    const ssize_t n =
        ::write(fd_, record.data() + written, write_bytes - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      write_error_ = "cache_journal: write to '" + path_.string() +
                     "' failed: " + std::strerror(errno);
      return;
    }
    written += static_cast<std::size_t>(n);
  }
  bytes_ += written;
  if (torn) {
    if (opt_.fsync_each) ::fsync(fd_);
    write_error_ = "fault injection: torn write at record " +
                   std::to_string(appended_);
    return;
  }
  if (opt_.fsync_each && ::fsync(fd_) != 0) {
    write_error_ = "cache_journal: fsync of '" + path_.string() +
                   "' failed: " + std::strerror(errno);
    return;
  }
  ++appended_;
}

void cache_journal::append_trace(std::string_view key,
                                 const model_trace& trace) {
  std::string payload;
  try {
    payload = encode_trace_entry(key, trace);
  } catch (const std::exception& e) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (write_error_.empty()) write_error_ = e.what();
    return;
  }
  append_record(kTraceRecord, payload);
}

void cache_journal::append_value(std::string_view key, double value) {
  append_record(kValueRecord, encode_value_entry(key, value));
}

std::uint64_t cache_journal::bytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

std::size_t cache_journal::appended_records() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return appended_;
}

std::string cache_journal::write_error() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return write_error_;
}

void cache_journal::checkpoint(const std::function<void()>& write_snapshot) {
  // The append lock is held across snapshot + reset: a concurrent
  // insert either lands in the snapshot (its WAL record then replays as
  // a benign duplicate) or appends to the fresh WAL after the reset —
  // never between, never lost.
  const std::lock_guard<std::mutex> lock(mutex_);
  write_snapshot();
  if (::ftruncate(fd_, 0) != 0 || ::lseek(fd_, 0, SEEK_SET) < 0) {
    if (write_error_.empty())
      write_error_ = "cache_journal: reset of '" + path_.string() +
                     "' failed: " + std::strerror(errno);
    return;
  }
  const std::string header = fresh_header();
  if (::write(fd_, header.data(), header.size()) !=
      static_cast<ssize_t>(header.size())) {
    if (write_error_.empty())
      write_error_ = "cache_journal: reset of '" + path_.string() +
                     "' failed: " + std::strerror(errno);
    return;
  }
  bytes_ = header.size();
}

}  // namespace dlm::engine
