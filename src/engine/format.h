// Full-precision number formatting shared by the engine's identity
// strings.
//
// Cache-key identity and CSV identity must agree byte for byte (a
// calibrated row's resolved_rate is both recorded in the CSV and folded
// into cache keys), so every engine component formats doubles through
// this one helper.
#pragma once

#include <cstdio>
#include <string>

namespace dlm::engine {

/// %.17g — the shortest decimal form guaranteed to round-trip a double
/// exactly through from_chars.
[[nodiscard]] inline std::string format_full_precision(double value) {
  char buffer[32];
  const int written = std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return std::string(buffer, static_cast<std::size_t>(written));
}

}  // namespace dlm::engine
