// Full-precision number formatting shared by the engine's identity
// strings.
//
// Cache-key identity and CSV identity must agree byte for byte (a
// calibrated row's resolved_rate is both recorded in the CSV and folded
// into cache keys), so every engine component formats doubles through
// this one helper.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace dlm::engine {

/// %.17g — the shortest decimal form guaranteed to round-trip a double
/// exactly through from_chars.
[[nodiscard]] inline std::string format_full_precision(double value) {
  char buffer[32];
  const int written = std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return std::string(buffer, static_cast<std::size_t>(written));
}

/// Separator-joined full-precision values: the fit_m CSV field and the
/// multiplier list of a resolved "spatial:..." spec share this form.
[[nodiscard]] inline std::string join_full_precision(
    const std::vector<double>& values, char sep = ',') {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += sep;
    out += format_full_precision(values[i]);
  }
  return out;
}

/// Splits `text` on `sep`, keeping empty pieces — callers reject or
/// preserve them deliberately (spec parsers quote the empty piece in
/// their error, the CSV reader must keep empty fields positional).
[[nodiscard]] inline std::vector<std::string> split_keep_empty(
    std::string_view text, char sep) {
  std::vector<std::string> pieces;
  std::size_t start = 0;
  while (true) {
    const std::size_t at = text.find(sep, start);
    if (at == std::string_view::npos) {
      pieces.emplace_back(text.substr(start));
      return pieces;
    }
    pieces.emplace_back(text.substr(start, at - start));
    start = at + 1;
  }
}

}  // namespace dlm::engine
