// The calibration workload of the batch engine.
//
// A sweep opts into calibration through the `rates` axis: a spec of the
// form
//
//   "calibrate"            fit (d, K, a, b, c) with r(t) = a·e^{−b(t−1)} + c
//   "calibrate:<H>"        same, fit window capped at hour H
//   "calibrate-fixed"      keep the slice's preset r(t); fit (d, K) only
//   "calibrate-fixed:<H>"  same, fit window capped at hour H
//   "calibrate-spatial"    fit (d, K) plus one rate multiplier per
//                          distance group: the solved rate is the
//                          separable field m(x)·preset(t) (paper §V)
//   "calibrate-spatial:<H>"  same, fit window capped at hour H
//
// runs fit::calibrate_dl on the scenario's early observation window —
// hours floor(t0)+1 .. H, where H defaults to the midpoint
// ceil((t0 + t_end)/2) of the evaluation window — before the scenario
// solves.  The fitted parameters are applied as (d, K) overrides plus a
// concrete resolved rate spec ("decay:<a>,<b>,<c>" or the preset name),
// the coarse calibration lattice fans out over the engine thread pool,
// and every objective evaluation is memoized in the solve cache so
// repeated probes of the same parameter vector — dozens per Nelder–Mead
// refinement, and everything on a warm repeat of the sweep — skip the
// PDE solve entirely.
#pragma once

#include <string>
#include <vector>

#include "engine/scenario.h"
#include "engine/solve_cache.h"
#include "engine/thread_pool.h"
#include "fit/calibrate.h"

namespace dlm::engine {

/// True for "calibrate" / "calibrate-fixed" / "calibrate-spatial" specs
/// (with or without the ":<hour>" suffix).  Purely syntactic — parse
/// errors surface later.
[[nodiscard]] bool is_calibrate_spec(const std::string& spec);

/// A parsed calibration spec, with the fit window resolved against a
/// concrete scenario.
struct calibrate_spec {
  bool fit_rate = true;  ///< false for "calibrate-fixed" / "-spatial"
  /// True for "calibrate-spatial": fit one per-group rate multiplier on
  /// top of the slice's preset r(t).
  bool fit_spatial = false;
  /// Last observed hour used for fitting (inclusive); always in
  /// [floor(t0)+1, min(floor(t_end), horizon)].
  int fit_end = 0;
};

/// Parses `spec` and resolves the fit window for a scenario with the
/// given t0/t_end on a slice with `horizon_hours`.  Throws
/// std::invalid_argument for malformed specs or an empty fit window.
[[nodiscard]] calibrate_spec parse_calibrate_spec(const std::string& spec,
                                                  double t0, double t_end,
                                                  int horizon_hours);

/// Outcome of calibrating one scenario.
struct scenario_calibration {
  fit::calibration_result fit;  ///< fitted params + SSE + solve counts
  /// The concrete rate spec the fitted model uses: "decay:<a>,<b>,<c>"
  /// (full %.17g precision, so it re-parses exactly) for "calibrate",
  /// the canonical preset name for "calibrate-fixed", and
  /// "spatial:<preset>|<m1>,<m2>,..." for "calibrate-spatial".
  std::string resolved_rate;
  double fit_a = 0.0, fit_b = 0.0, fit_c = 0.0;  ///< 0 when !fit_rate
  /// Fitted per-group multipliers; empty unless "calibrate-spatial".
  std::vector<double> multipliers;
};

/// Runs the calibration behind `sc.rate` (which must satisfy
/// `is_calibrate_spec`) on the slice's observation window.  `base`
/// carries the box bounds / lattice resolution / refinement cap; its
/// solver options and fit_rate flag are overwritten from the scenario
/// and the spec.  `cache` (nullable) memoizes objective values keyed on
/// the scenario identity + probed parameter vector; `pool` (nullable)
/// runs the coarse lattice as one batch.
[[nodiscard]] scenario_calibration calibrate_scenario(
    const scenario& sc, const dataset_slice& slice,
    const fit::calibration_options& base, solve_cache* cache,
    thread_pool* pool);

}  // namespace dlm::engine
