#include "engine/calibration.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <span>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "engine/format.h"

namespace dlm::engine {
namespace {

constexpr std::string_view kCalibrate = "calibrate";

/// "v=<d>,<K>[,<a>,<b>,<c>]" at full precision — the per-probe part of a
/// value-cache key.
std::string vector_suffix(std::span<const double> v) {
  std::string out = "|v=";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ',';
    out += format_full_precision(v[i]);
  }
  return out;
}

}  // namespace

bool is_calibrate_spec(const std::string& spec) {
  if (!spec.starts_with(kCalibrate)) return false;
  std::string_view rest = std::string_view(spec).substr(kCalibrate.size());
  if (rest.starts_with("-fixed")) {
    rest = rest.substr(sizeof("-fixed") - 1);
  } else if (rest.starts_with("-spatial")) {
    rest = rest.substr(sizeof("-spatial") - 1);
  }
  return rest.empty() || rest.front() == ':';
}

calibrate_spec parse_calibrate_spec(const std::string& spec, double t0,
                                    double t_end, int horizon_hours) {
  if (!is_calibrate_spec(spec))
    throw std::invalid_argument("parse_calibrate_spec: '" + spec +
                                "' is not a calibration spec");
  calibrate_spec info;
  std::string_view rest = std::string_view(spec).substr(kCalibrate.size());
  if (rest.starts_with("-fixed")) {
    info.fit_rate = false;
    rest = rest.substr(sizeof("-fixed") - 1);
  } else if (rest.starts_with("-spatial")) {
    // Per-hop multipliers on top of the preset r(t): the temporal factor
    // is kept, space is fitted.
    info.fit_rate = false;
    info.fit_spatial = true;
    rest = rest.substr(sizeof("-spatial") - 1);
  }

  const int first_hour = static_cast<int>(std::floor(t0)) + 1;
  const int last_hour =
      std::min(static_cast<int>(std::floor(t_end)), horizon_hours);
  if (first_hour > last_hour)
    throw std::invalid_argument(
        "parse_calibrate_spec: no observed hours in (t0, t_end] for '" + spec +
        "'");

  if (rest.empty()) {
    // Auto split: fit on the first half of the evaluation window.
    info.fit_end = std::clamp(
        static_cast<int>(std::ceil((t0 + t_end) / 2.0)), first_hour, last_hour);
    return info;
  }

  const std::string_view digits = rest.substr(1);  // skip ':'
  int hour = 0;
  const auto [ptr, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), hour);
  if (ec != std::errc{} || ptr != digits.data() + digits.size())
    throw std::invalid_argument(
        "parse_calibrate_spec: bad fit-window hour in '" + spec + "'");
  if (hour < first_hour || hour > last_hour)
    throw std::invalid_argument(
        "parse_calibrate_spec: fit-window hour " + std::to_string(hour) +
        " outside observed hours [" + std::to_string(first_hour) + ", " +
        std::to_string(last_hour) + "] for '" + spec + "'");
  info.fit_end = hour;
  return info;
}

scenario_calibration calibrate_scenario(const scenario& sc,
                                        const dataset_slice& slice,
                                        const fit::calibration_options& base,
                                        solve_cache* cache, thread_pool* pool) {
  const calibrate_spec info =
      parse_calibrate_spec(sc.rate, sc.t0, sc.t_end, slice.horizon_hours);

  // The early observation window: hour-t0 profile plus every observed
  // hour up to the fit split.
  fit::observation_window window;
  window.t0 = sc.t0;
  window.initial = slice.profile_at(static_cast<int>(sc.t0));
  const int first_hour = static_cast<int>(std::floor(sc.t0)) + 1;
  for (int t = first_hour; t <= info.fit_end; ++t)
    window.times.push_back(static_cast<double>(t));
  window.observed.resize(window.initial.size());
  for (int x = 1; x <= slice.max_distance; ++x) {
    for (int t = first_hour; t <= info.fit_end; ++t)
      window.observed[static_cast<std::size_t>(x - 1)].push_back(
          slice.actual_at(x, t));
  }

  fit::calibration_options options = base;
  options.fit_rate = info.fit_rate;
  options.spatial_groups =
      info.fit_spatial ? static_cast<std::size_t>(slice.max_distance) : 0;
  // The solver configuration comes from the scenario; calibrate_dl
  // applies the same per-d FTCS stability clamp the adapter will use for
  // the final solve, so fitted parameters and fit_sse describe the
  // discretization the row actually runs.
  options.solver = core::dl_solver_options{};
  options.solver.scheme = sc.scheme;
  options.solver.points_per_unit = sc.points_per_unit;
  options.solver.dt = sc.dt;

  if (cache != nullptr) {
    // Objective values depend on the slice, the solver configuration and
    // the fit window — everything below — plus the probed vector, which
    // each hook appends.
    std::string prefix = "cal|slice=" + slice.name + '#' +
                         std::to_string(slice.fingerprint) +
                         "|model=" + sc.model;
    prefix += "|scheme=" + core::to_string(sc.scheme);
    prefix += "|grid=" + std::to_string(sc.points_per_unit);
    prefix += "|dt=" + format_full_precision(options.solver.dt);
    // Distinguish the three fit families: their probe vectors have
    // different layouts (and, for -fixed vs -spatial, different models
    // behind equal-length (d, K) lattice prefixes).
    if (info.fit_rate) {
      prefix += "|rate=fit";
    } else if (info.fit_spatial) {
      prefix += "|rate=fit-m:" + resolve_rate_spec("preset", slice.metric);
    } else {
      prefix += "|rate=" + resolve_rate_spec("preset", slice.metric);
    }
    prefix += "|t0=" + format_full_precision(sc.t0);
    prefix += "|fit_end=" + std::to_string(info.fit_end);
    // Same convention as scenario_cache_key: non-line domains suffix
    // their canonical label, line keys stay byte-identical to before the
    // domain axis existed.
    {
      const core::domain dom = make_domain(sc.domain);
      if (!dom.is_line()) prefix += "|domain=" + dom.label();
    }
    options.cache_find = [cache, prefix](std::span<const double> v) {
      return cache->find_value(prefix + vector_suffix(v));
    };
    options.cache_store = [cache, prefix](std::span<const double> v,
                                          double value) {
      cache->store_value(prefix + vector_suffix(v), value);
    };
  }
  if (pool != nullptr) {
    options.run_batch = [pool](std::vector<std::function<void()>> tasks) {
      pool->run_batch(std::move(tasks));
    };
  }

  // Start from the slice's base parameters, but fit against the rate the
  // engine solve will actually use: dl_adapter always derives the rate
  // from the spec, so a custom base_params.r never reaches the solve and
  // must not steer the (d, K) fit either.
  core::dl_parameters start = slice.base_params;
  if (!info.fit_rate) start.r = make_rate("preset", slice.metric);
  start.dom = make_domain(sc.domain);

  scenario_calibration result;
  result.fit = fit::calibrate_dl(window, start, options);
  if (info.fit_rate) {
    result.fit_a = result.fit.x[2];
    result.fit_b = result.fit.x[3];
    result.fit_c = result.fit.x[4];
    result.resolved_rate = "decay:" + format_full_precision(result.fit_a) + ',' +
                           format_full_precision(result.fit_b) + ',' +
                           format_full_precision(result.fit_c);
  } else if (info.fit_spatial) {
    // The fitted separable field as a concrete spec: full precision so
    // the re-parsed rate — and the cache key built from it — is exact.
    result.multipliers.assign(result.fit.x.begin() + 2, result.fit.x.end());
    result.resolved_rate = "spatial:" +
                           resolve_rate_spec("preset", slice.metric) + '|' +
                           join_full_precision(result.multipliers);
  } else {
    result.resolved_rate = resolve_rate_spec("preset", slice.metric);
  }
  return result;
}

}  // namespace dlm::engine
