// Supervised process fan-out for sharded sweeps.
//
// The original dl_shard driver spawned one worker per shard and did a
// blocking waitpid on each in order: a crashed worker surfaced as a bare
// exit status, a hung worker blocked the driver forever, and siblings of
// a failed worker kept burning CPU on a sweep whose merge was already
// doomed.  The supervisor replaces that loop with a real failure domain:
//
//  * every worker runs under a per-attempt wall-clock timeout — a hung
//    worker is SIGKILLed and reported as such, never waited on forever;
//  * a crashed worker's diagnostic names the signal (strsignal) and the
//    worker's label, not just a raw wait status;
//  * failures are retried up to max_retries times with exponential
//    backoff, and the attempt number is exported to the child through
//    the DLM_WORKER_ATTEMPT environment variable (engine/fault.h reads
//    it back, so injected faults can be armed per attempt);
//  * with fail_fast (the default) the first worker to exhaust its
//    retries takes the rest down: siblings are SIGKILLed and reaped —
//    no orphans, no zombies; with fail_fast off the survivors run to
//    completion and the report says exactly who finished, so the caller
//    can merge the completed subset (dl_shard --allow-partial).
//
// Determinism note: supervision changes *scheduling*, never *bytes*.  A
// worker either completes its shard (whose output is deterministic) or
// contributes nothing; retries re-run the identical command.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace dlm::engine {

/// One worker process to supervise.
struct worker_command {
  /// Executable path (execv'd, not PATH-searched).
  std::string exe;
  /// Arguments *after* argv[0] (argv[0] is `exe`).
  std::vector<std::string> args;
  /// Extra environment, as "KEY=VALUE" pairs, set in the child between
  /// fork and exec.  DLM_WORKER_ATTEMPT is always set on top.
  std::vector<std::string> env;
  /// Human-readable name used in diagnostics ("worker 1/3").
  std::string label;
};

struct supervisor_options {
  /// Per-attempt wall-clock timeout in seconds; 0 disables (a worker
  /// may then legitimately run forever, as the old driver allowed).
  double timeout_sec = 0.0;
  /// Retries after the first failed attempt (so max_retries = 2 means
  /// up to 3 attempts).
  std::size_t max_retries = 0;
  /// Backoff before retry r is initial * multiplier^(r-1) milliseconds.
  double backoff_initial_ms = 100.0;
  double backoff_multiplier = 2.0;
  /// First worker to exhaust its retries SIGKILLs and reaps all other
  /// running workers (their outcome reports the termination).  Off for
  /// --allow-partial, where survivors should finish and be merged.
  bool fail_fast = true;
  /// Reap/timeout poll granularity.
  double poll_interval_ms = 10.0;
};

/// Final state of one supervised worker.
struct worker_outcome {
  std::string label;
  bool succeeded = false;
  /// Attempts actually started (1-based; 0 only for a worker terminated
  /// by fail_fast before its first attempt could be judged — it still
  /// records the attempts it ran).
  std::size_t attempts = 0;
  /// True when the last attempt hit the wall-clock timeout.
  bool timed_out = false;
  /// Why the worker failed — names the signal, exit status, timeout, or
  /// fail-fast termination.  Empty on success.
  std::string diagnostic;
};

struct supervision_report {
  /// One outcome per input command, in input order.
  std::vector<worker_outcome> outcomes;

  [[nodiscard]] bool all_succeeded() const {
    for (const worker_outcome& o : outcomes)
      if (!o.succeeded) return false;
    return true;
  }
  /// Outcomes of the workers that failed, in input order.
  [[nodiscard]] std::vector<worker_outcome> failures() const {
    std::vector<worker_outcome> out;
    for (const worker_outcome& o : outcomes)
      if (!o.succeeded) out.push_back(o);
    return out;
  }
};

/// Environment variable carrying the 1-based attempt number to workers.
/// (Also declared in engine/fault.h as kWorkerAttemptEnv — one name,
/// two layers.)
inline constexpr const char* kSupervisorAttemptEnv = "DLM_WORKER_ATTEMPT";

/// Runs every command to completion (or exhausted retries / fail-fast
/// termination) and reports per-worker outcomes.  All workers of a
/// round run concurrently; a retry waits out its backoff without
/// blocking siblings.  Throws std::runtime_error only for supervisor
/// bookkeeping failures (fork failing outright), never for worker
/// failures — those are data, in the report.
supervision_report supervise(std::span<const worker_command> commands,
                             const supervisor_options& options);

}  // namespace dlm::engine
