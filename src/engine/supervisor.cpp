#include "engine/supervisor.h"

#include <signal.h>
#include <string.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <thread>

namespace dlm::engine {
namespace {

using clock = std::chrono::steady_clock;

/// Live supervision state of one worker.
struct worker_state {
  const worker_command* command = nullptr;
  pid_t pid = -1;  ///< -1 while not running
  std::size_t attempts = 0;
  clock::time_point deadline;  ///< per-attempt timeout (when enabled)
  clock::time_point retry_at;  ///< earliest next launch (backoff)
  bool waiting_retry = false;
  bool done = false;
  worker_outcome outcome;
};

pid_t launch(const worker_command& command, std::size_t attempt) {
  const pid_t pid = ::fork();
  if (pid < 0)
    throw std::runtime_error("supervise: fork failed for " + command.label +
                             ": " + ::strerror(errno));
  if (pid > 0) return pid;

  // Child.  Only async-signal-safe-ish work before exec; on any failure
  // _exit (never return into the parent's stack).
  for (const std::string& pair : command.env) {
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos) continue;
    ::setenv(pair.substr(0, eq).c_str(), pair.c_str() + eq + 1, 1);
  }
  ::setenv(kSupervisorAttemptEnv, std::to_string(attempt).c_str(), 1);

  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(command.exe.c_str()));
  for (const std::string& arg : command.args)
    argv.push_back(const_cast<char*>(arg.c_str()));
  argv.push_back(nullptr);
  ::execv(command.exe.c_str(), argv.data());
  std::fprintf(stderr, "supervise: exec '%s' failed: %s\n",
               command.exe.c_str(), ::strerror(errno));
  ::_exit(127);
}

std::string describe_wait_status(int status) {
  if (WIFEXITED(status))
    return "exited with status " + std::to_string(WEXITSTATUS(status));
  if (WIFSIGNALED(status)) {
    const int sig = WTERMSIG(status);
    const char* name = ::strsignal(sig);
    return "killed by signal " + std::to_string(sig) + " (" +
           (name != nullptr ? name : "unknown") + ")";
  }
  return "ended with wait status " + std::to_string(status);
}

/// SIGKILLs a running worker and reaps it (blocking — the kill makes
/// the wait prompt).
void kill_and_reap(worker_state& w) {
  if (w.pid < 0) return;
  ::kill(w.pid, SIGKILL);
  int status = 0;
  while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
  }
  w.pid = -1;
}

}  // namespace

supervision_report supervise(std::span<const worker_command> commands,
                             const supervisor_options& options) {
  std::vector<worker_state> workers(commands.size());
  for (std::size_t i = 0; i < commands.size(); ++i) {
    workers[i].command = &commands[i];
    workers[i].outcome.label = commands[i].label;
  }

  const auto start_attempt = [&options](worker_state& w) {
    ++w.attempts;
    w.outcome.attempts = w.attempts;
    w.pid = launch(*w.command, w.attempts);
    w.waiting_retry = false;
    if (options.timeout_sec > 0)
      w.deadline = clock::now() + std::chrono::duration_cast<clock::duration>(
                                      std::chrono::duration<double>(
                                          options.timeout_sec));
  };

  // A failed attempt either schedules a retry or finalizes the outcome.
  // Returns true when the worker is finally failed (retries exhausted).
  const auto attempt_failed = [&options](worker_state& w,
                                         std::string diagnostic,
                                         bool timed_out) {
    w.pid = -1;
    w.outcome.timed_out = timed_out;
    if (w.attempts <= options.max_retries) {
      double backoff = options.backoff_initial_ms;
      for (std::size_t r = 1; r < w.attempts; ++r)
        backoff *= options.backoff_multiplier;
      std::fprintf(stderr,
                   "supervise: %s %s (attempt %zu); retrying in %.0f ms\n",
                   w.command->label.c_str(), diagnostic.c_str(), w.attempts,
                   backoff);
      w.retry_at = clock::now() + std::chrono::duration_cast<clock::duration>(
                                      std::chrono::duration<double,
                                                            std::milli>(
                                          backoff));
      w.waiting_retry = true;
      return false;
    }
    w.done = true;
    w.outcome.succeeded = false;
    w.outcome.diagnostic = std::move(diagnostic) + " (attempt " +
                           std::to_string(w.attempts) + " of " +
                           std::to_string(options.max_retries + 1) + ")";
    return true;
  };

  // Take every still-live worker down after a fail-fast trigger.
  const auto terminate_survivors = [&workers](const std::string& culprit) {
    for (worker_state& w : workers) {
      if (w.done) continue;
      kill_and_reap(w);
      w.done = true;
      w.outcome.succeeded = false;
      w.outcome.diagnostic =
          "terminated: sibling worker " + culprit + " failed";
    }
  };

  for (worker_state& w : workers) start_attempt(w);

  const auto poll_sleep = std::chrono::duration<double, std::milli>(
      options.poll_interval_ms > 0 ? options.poll_interval_ms : 10.0);
  while (true) {
    bool any_live = false;
    for (worker_state& w : workers) {
      if (w.done) continue;
      any_live = true;

      if (w.waiting_retry) {
        if (clock::now() >= w.retry_at) start_attempt(w);
        continue;
      }

      int status = 0;
      const pid_t reaped = ::waitpid(w.pid, &status, WNOHANG);
      if (reaped == w.pid) {
        if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
          w.pid = -1;
          w.done = true;
          w.outcome.succeeded = true;
          continue;
        }
        if (attempt_failed(w, describe_wait_status(status),
                           /*timed_out=*/false) &&
            options.fail_fast) {
          terminate_survivors(w.command->label);
          break;
        }
        continue;
      }
      if (reaped < 0 && errno != EINTR && errno != EAGAIN) {
        // Lost track of the child (should not happen): fail the worker
        // rather than spin forever.
        if (attempt_failed(w, std::string("waitpid failed: ") +
                                  ::strerror(errno),
                           /*timed_out=*/false) &&
            options.fail_fast) {
          terminate_survivors(w.command->label);
          break;
        }
        continue;
      }

      if (options.timeout_sec > 0 && clock::now() >= w.deadline) {
        kill_and_reap(w);
        char buf[64];
        std::snprintf(buf, sizeof buf, "timed out after %g s (killed)",
                      options.timeout_sec);
        if (attempt_failed(w, buf, /*timed_out=*/true) && options.fail_fast) {
          terminate_survivors(w.command->label);
          break;
        }
      }
    }
    if (!any_live) break;
    std::this_thread::sleep_for(poll_sleep);
  }

  supervision_report report;
  report.outcomes.reserve(workers.size());
  for (worker_state& w : workers) report.outcomes.push_back(w.outcome);
  return report;
}

}  // namespace dlm::engine
