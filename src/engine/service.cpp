#include "engine/service.h"

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <utility>

#include "engine/calibration.h"
#include "engine/format.h"

namespace dlm::engine {
namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

/// Reads exactly `n` bytes.  Returns false on EOF (clean or mid-read:
/// either way the peer is gone); throws on socket errors.
bool read_exact(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<unsigned char*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, p + got, n - got, 0);
    if (r == 0) return false;
    if (r < 0) {
      if (errno == EINTR) continue;
      // SO_RCVTIMEO expiry: the peer stalled mid-frame (or went idle
      // past the configured window) — drop it rather than pin the
      // worker thread.
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        throw std::runtime_error("dl_service: recv timed out");
      throw_errno("dl_service: recv");
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

void write_all(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(buf);
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a peer that vanished mid-response must surface as
    // EPIPE here, not kill the process with SIGPIPE.
    const ssize_t r = ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        throw std::runtime_error("dl_service: send timed out");
      throw_errno("dl_service: send");
    }
    sent += static_cast<std::size_t>(r);
  }
}

std::vector<std::string> tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
    std::size_t start = i;
    while (i < text.size() && text[i] != ' ' && text[i] != '\t') ++i;
    if (i > start) tokens.push_back(text.substr(start, i - start));
  }
  return tokens;
}

bool parse_double(std::string_view text, double& out) {
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, out);
  return ec == std::errc() && ptr == end;
}

bool parse_size(std::string_view text, std::size_t& out) {
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, out);
  return ec == std::errc() && ptr == end;
}

bool parse_scheme(std::string_view text, core::dl_scheme& out) {
  for (const core::dl_scheme scheme :
       {core::dl_scheme::ftcs, core::dl_scheme::strang_cn,
        core::dl_scheme::implicit_newton, core::dl_scheme::mol_rk4}) {
    if (text == core::to_string(scheme)) {
      out = scheme;
      return true;
    }
  }
  return false;
}

/// Parsed key=value arguments of a solve / predict / calibrate request.
struct request_args {
  scenario sc;
  std::string slice_name;
  bool have_model = false;
  bool have_slice = false;
  int x = 0;
  double t = 0.0;
  bool have_x = false;
  bool have_t = false;
};

/// Fills `args` from the tokens after the verb.  Returns an "err ..."
/// string on the first malformed token, empty on success.
std::string parse_request_args(const std::vector<std::string>& tokens,
                               request_args& args) {
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0)
      return "err malformed token '" + token + "' (expected key=value)";
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    const auto bad_value = [&] {
      return "err cannot parse " + key + "='" + value + "'";
    };
    if (key == "model") {
      args.sc.model = value;
      args.have_model = true;
    } else if (key == "slice") {
      args.slice_name = value;
      args.have_slice = true;
    } else if (key == "scheme") {
      if (!parse_scheme(value, args.sc.scheme))
        return "err unknown scheme '" + value +
               "' (ftcs, strang-cn, implicit-newton, mol-rk4)";
    } else if (key == "grid") {
      if (!parse_size(value, args.sc.points_per_unit)) return bad_value();
    } else if (key == "dt") {
      if (!parse_double(value, args.sc.dt)) return bad_value();
    } else if (key == "rate") {
      args.sc.rate = value;
    } else if (key == "domain") {
      args.sc.domain = value;
    } else if (key == "t0") {
      if (!parse_double(value, args.sc.t0)) return bad_value();
    } else if (key == "t_end") {
      if (!parse_double(value, args.sc.t_end)) return bad_value();
    } else if (key == "seed") {
      std::size_t seed = 0;
      if (!parse_size(value, seed)) return bad_value();
      args.sc.seed = seed;
    } else if (key == "d") {
      if (!parse_double(value, args.sc.d_override)) return bad_value();
    } else if (key == "k") {
      if (!parse_double(value, args.sc.k_override)) return bad_value();
    } else if (key == "x") {
      double x = 0.0;
      if (!parse_double(value, x) || x != std::floor(x)) return bad_value();
      args.x = static_cast<int>(x);
      args.have_x = true;
    } else if (key == "t") {
      if (!parse_double(value, args.t)) return bad_value();
      args.have_t = true;
    } else {
      return "err unknown key '" + key + "'";
    }
  }
  return {};
}

/// Deterministic textual rendering of a trace (the "solve" response
/// body): every double through format_full_precision, so two identical
/// requests always read identical bytes.
std::string format_trace(const model_trace& trace) {
  std::string out = "ok trace rows=" + std::to_string(trace.distances.size()) +
                    " cols=" + std::to_string(trace.times.size()) +
                    " effective_dt=" + format_full_precision(trace.effective_dt);
  // Appended only for non-line domains, so line responses keep their
  // historical byte-exact shape.
  if (trace.domain != "line") out += " domain=" + trace.domain;
  out += "\nx";
  for (const int d : trace.distances) out += ' ' + std::to_string(d);
  out += "\nt";
  for (const double t : trace.times) out += ' ' + format_full_precision(t);
  for (const std::vector<double>& row : trace.predicted) {
    out += "\np";
    for (const double v : row) out += ' ' + format_full_precision(v);
  }
  return out;
}

}  // namespace

// ----------------------------------------------------------------- frames

frame_status read_frame(int fd, std::string& payload,
                        std::size_t max_frame_bytes) {
  unsigned char header[4];
  if (!read_exact(fd, header, sizeof(header))) return frame_status::closed;
  const std::uint32_t length =
      static_cast<std::uint32_t>(header[0]) |
      (static_cast<std::uint32_t>(header[1]) << 8) |
      (static_cast<std::uint32_t>(header[2]) << 16) |
      (static_cast<std::uint32_t>(header[3]) << 24);
  if (length > max_frame_bytes) {
    // Drain the declared payload so the next frame starts on a frame
    // boundary: the oversized request is rejected, the stream survives.
    char sink[4096];
    std::uint64_t left = length;
    while (left > 0) {
      const std::size_t chunk = static_cast<std::size_t>(
          std::min<std::uint64_t>(left, sizeof(sink)));
      if (!read_exact(fd, sink, chunk)) return frame_status::closed;
      left -= chunk;
    }
    return frame_status::oversized;
  }
  payload.resize(length);
  if (length > 0 && !read_exact(fd, payload.data(), length))
    return frame_status::closed;
  return frame_status::ok;
}

void write_frame(int fd, std::string_view payload) {
  if (payload.size() > std::numeric_limits<std::uint32_t>::max())
    throw std::runtime_error("dl_service: frame payload exceeds u32 range");
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  const unsigned char header[4] = {
      static_cast<unsigned char>(length & 0xFF),
      static_cast<unsigned char>((length >> 8) & 0xFF),
      static_cast<unsigned char>((length >> 16) & 0xFF),
      static_cast<unsigned char>((length >> 24) & 0xFF)};
  write_all(fd, header, sizeof(header));
  if (!payload.empty()) write_all(fd, payload.data(), payload.size());
}

// ----------------------------------------------------------------- client

service_client::service_client(const std::string& socket_path) {
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("service_client: socket");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("service_client: socket path too long: " +
                             socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno(("service_client: connect to '" + socket_path + "'").c_str());
  }
}

service_client::~service_client() {
  if (fd_ >= 0) ::close(fd_);
}

std::string service_client::request(std::string_view payload) {
  write_frame(fd_, payload);
  std::string reply;
  const frame_status status = read_frame(
      fd_, reply, std::numeric_limits<std::uint32_t>::max());
  if (status != frame_status::ok)
    throw std::runtime_error(
        "service_client: server closed the connection before responding");
  return reply;
}

// ---------------------------------------------------------------- service

dl_service::dl_service(scenario_context context, service_options options)
    : context_(std::move(context)),
      options_(std::move(options)),
      cache_(options_.cache_max_entries) {
  if (options_.socket_path.empty())
    throw std::invalid_argument("dl_service: socket_path is required");
  if (!options_.cache_file.empty()) {
    startup_load_ = load_cache(cache_, options_.cache_file);
    if (options_.journal) {
      // Snapshot first, WAL on top (first insert wins), then journal
      // every winning insert from here on — the same crash-safety
      // wiring as persistent_cache (engine/cache_io.h).
      const std::filesystem::path wal =
          cache_journal_path(options_.cache_file);
      replay_journal(cache_, wal);
      try {
        journal_ = std::make_unique<cache_journal>(wal);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "dl_service: %s — journaling disabled\n",
                     e.what());
      }
      if (journal_ != nullptr) {
        cache_journal* jrnl = journal_.get();
        const std::uint64_t compact = options_.journal_compact_bytes;
        solve_cache* cache = &cache_;
        const std::string snapshot = options_.cache_file;
        cache_.set_write_observer([jrnl, compact, cache, snapshot](
                                      const std::string& key,
                                      const model_trace* trace,
                                      const double* value) {
          if (trace != nullptr) jrnl->append_trace(key, *trace);
          if (value != nullptr) jrnl->append_value(key, *value);
          if (compact != 0 && jrnl->bytes() > compact &&
              jrnl->write_error().empty()) {
            try {
              jrnl->checkpoint([cache, &snapshot] {
                save_cache(*cache, snapshot);
              });
            } catch (const std::exception& e) {
              std::fprintf(stderr,
                           "dl_service: auto-checkpoint of '%s' failed: %s\n",
                           snapshot.c_str(), e.what());
            }
          }
        });
      }
    }
  }
  pool_ = std::make_unique<thread_pool>(options_.threads);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("dl_service: socket");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    ::close(listen_fd_);
    throw std::runtime_error("dl_service: socket path too long: " +
                             options_.socket_path);
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);
  ::unlink(options_.socket_path.c_str());  // replace a stale socket file
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    const int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    throw_errno(("dl_service: bind '" + options_.socket_path + "'").c_str());
  }
  if (::listen(listen_fd_, 64) < 0) {
    const int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    throw_errno("dl_service: listen");
  }
  accept_thread_ = std::thread(&dl_service::accept_loop, this);
  lifecycle_thread_ = std::thread(&dl_service::lifecycle_loop, this);
}

dl_service::~dl_service() {
  stop();
  if (lifecycle_thread_.joinable()) lifecycle_thread_.join();
}

void dl_service::accept_loop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket shut down: the service is stopping
    }
    if (options_.io_timeout_sec > 0) {
      timeval tv{};
      tv.tv_sec = static_cast<time_t>(options_.io_timeout_sec);
      tv.tv_usec = static_cast<suseconds_t>(
          (options_.io_timeout_sec - static_cast<double>(tv.tv_sec)) * 1e6);
      // Best effort: a kernel that refuses the option leaves the
      // historical blocking behaviour.
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    if (stop_requested_.load()) {
      ::close(fd);
      continue;
    }
    auto conn = std::make_unique<connection>();
    conn->fd = fd;
    connection* raw = conn.get();
    conn->worker = std::thread([this, raw] { serve_connection(raw); });
    connections_.push_back(std::move(conn));
  }
}

void dl_service::serve_connection(connection* conn) {
  std::string payload;
  while (true) {
    frame_status status;
    try {
      status = read_frame(conn->fd, payload, options_.max_frame_bytes);
    } catch (...) {
      // Socket error or I/O timeout: drop the connection (a clean EOF
      // is frame_status::closed below and is not a drop).
      dropped_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    if (status == frame_status::closed) break;
    std::string reply;
    bool shutdown_after_reply = false;
    if (status == frame_status::oversized)
      reply = "err frame exceeds max_frame_bytes=" +
              std::to_string(options_.max_frame_bytes);
    else
      reply = handle_request(payload, shutdown_after_reply);
    try {
      write_frame(conn->fd, reply);
    } catch (...) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    requests_.fetch_add(1, std::memory_order_relaxed);
    // The shutdown verb's reply has flushed out; the lifecycle thread
    // now shuts this (and every) connection's read side down, so the
    // next read_frame sees EOF and the loop exits cleanly.
    if (shutdown_after_reply) request_stop();
  }
  const std::lock_guard<std::mutex> lock(conn_mutex_);
  ::close(conn->fd);
  conn->fd = -1;
}

std::string dl_service::handle_request(const std::string& payload,
                                       bool& shutdown_after_reply) {
  try {
    const std::vector<std::string> tokens = tokenize(payload);
    if (tokens.empty()) return "err empty request";
    const std::string& verb = tokens[0];

    if (verb == "ping" || verb == "health" || verb == "slices" ||
        verb == "stats" || verb == "flush" || verb == "shutdown") {
      if (tokens.size() > 1)
        return "err verb '" + verb + "' takes no arguments";
      if (verb == "ping") return "ok pong";
      if (verb == "health") {
        // Liveness for supervisors: a reply at all means the accept and
        // worker machinery is up; the journal state distinguishes
        // healthy from degraded-but-serving.
        if (journal_ != nullptr && !journal_->write_error().empty())
          return "ok degraded journal_error=" + journal_->write_error();
        return "ok healthy";
      }
      if (verb == "slices") {
        std::string reply = "ok slices";
        for (const std::string& name : context_.slice_names())
          reply += ' ' + name;
        return reply;
      }
      if (verb == "stats") {
        const cache_stats stats = cache_.stats();
        return "ok stats hits=" + std::to_string(stats.hits) +
               " misses=" + std::to_string(stats.misses) +
               " evictions=" + std::to_string(stats.evictions) +
               " load_rejected=" + std::to_string(stats.load_rejected) +
               " merged=" + std::to_string(stats.merged_entries) +
               " merge_conflicts=" + std::to_string(stats.merge_conflicts) +
               " entries=" + std::to_string(cache_.size()) +
               " requests=" + std::to_string(requests_.load()) +
               " dropped=" + std::to_string(dropped_.load());
      }
      if (verb == "flush") {
        if (options_.cache_file.empty())
          return "err no cache file configured";
        const std::lock_guard<std::mutex> lock(flush_mutex_);
        if (journal_ != nullptr)
          journal_->checkpoint(
              [this] { save_cache(cache_, options_.cache_file); });
        else
          save_cache(cache_, options_.cache_file);
        return "ok flushed " + std::to_string(cache_.size()) +
               " entries to " + options_.cache_file;
      }
      shutdown_after_reply = true;
      return "ok shutting down";
    }

    if (verb != "solve" && verb != "predict" && verb != "calibrate")
      return "err unknown verb '" + verb +
             "' (ping, health, slices, stats, solve, predict, calibrate, "
             "flush, shutdown)";

    request_args args;
    if (std::string error = parse_request_args(tokens, args); !error.empty())
      return error;
    if (!args.have_model) return "err missing model=";
    if (!args.have_slice) return "err missing slice=";
    if (verb == "predict" && (!args.have_x || !args.have_t))
      return "err predict requires x= and t=";

    std::size_t slice_index = context_.slice_count();
    for (std::size_t i = 0; i < context_.slice_count(); ++i) {
      if (context_.slice(i).name == args.slice_name) {
        slice_index = i;
        break;
      }
    }
    if (slice_index == context_.slice_count())
      return "err unknown slice '" + args.slice_name + "'";
    args.sc.slice = slice_index;
    const dataset_slice& slice = context_.slice(slice_index);

    const model_registry& registry =
        options_.registry != nullptr ? *options_.registry : default_registry();
    const std::unique_ptr<diffusion_model> model = registry.make(args.sc.model);

    // Calibrate specs resolve exactly as in run_sweep: fit on the early
    // window (lattice fanned out over the resident pool, every probe
    // memoized in the resident cache), then solve the rewritten scenario.
    scenario solved = args.sc;
    scenario_calibration cal;
    const bool calibrated =
        model->uses_rate() && is_calibrate_spec(args.sc.rate);
    if (verb == "calibrate" && !calibrated)
      return "err calibrate requires a calibrate rate spec (rate='" +
             args.sc.rate + "')";
    if (calibrated) {
      if (!model->supports_calibration())
        return "err model '" + args.sc.model +
               "' does not support calibrate rate specs";
      if (args.sc.rate.starts_with("calibrate-spatial") &&
          !model->supports_spatial_rate())
        return "err model '" + args.sc.model +
               "' does not support spatial rate specs";
      cal = calibrate_scenario(args.sc, slice, options_.calibration, &cache_,
                               pool_.get());
      solved.rate = cal.resolved_rate;
      solved.d_override = cal.fit.params.d;
      solved.k_override = cal.fit.params.k;
    }

    if (verb == "calibrate")
      return "ok fit d=" + format_full_precision(cal.fit.params.d) +
             " k=" + format_full_precision(cal.fit.params.k) +
             " a=" + format_full_precision(cal.fit_a) +
             " b=" + format_full_precision(cal.fit_b) +
             " c=" + format_full_precision(cal.fit_c) + " m=" +
             (cal.multipliers.empty() ? std::string("-")
                                      : join_full_precision(cal.multipliers)) +
             " sse=" + format_full_precision(cal.fit.sse) +
             " evals=" + std::to_string(cal.fit.evaluations) +
             " rate=" + cal.resolved_rate;

    // Solve through the resident cache: a repeated request — from this
    // client or any other — is a pure lookup.
    const std::string key = scenario_cache_key(solved, slice, *model);
    std::shared_ptr<const model_trace> trace = cache_.find_trace(key);
    if (trace == nullptr) {
      cache_.store_trace(key, model->solve(solved, slice));
      trace = cache_.find_trace(key);
    }

    if (verb == "solve") return format_trace(*trace);

    // predict: one cell of the trace.
    std::size_t row = trace->distances.size();
    for (std::size_t i = 0; i < trace->distances.size(); ++i)
      if (trace->distances[i] == args.x) row = i;
    std::size_t col = trace->times.size();
    for (std::size_t j = 0; j < trace->times.size(); ++j)
      if (std::fabs(trace->times[j] - args.t) < 1e-9) col = j;
    if (row == trace->distances.size() || col == trace->times.size())
      return "err predict (x=" + std::to_string(args.x) +
             ", t=" + format_full_precision(args.t) +
             ") is outside the evaluated trace";
    return "ok " + format_full_precision(trace->predicted[row][col]);
  } catch (const std::exception& e) {
    return std::string("err ") + e.what();
  }
}

void dl_service::request_stop() {
  {
    const std::lock_guard<std::mutex> lock(stop_mutex_);
    if (stop_requested_.load()) return;
    stop_requested_.store(true);
  }
  stop_cv_.notify_all();
}

void dl_service::lifecycle_loop() {
  {
    std::unique_lock<std::mutex> lock(stop_mutex_);
    stop_cv_.wait(lock, [this] { return stop_requested_.load(); });
  }
  do_stop();
  {
    const std::lock_guard<std::mutex> lock(stop_mutex_);
    stopped_ = true;
  }
  stop_cv_.notify_all();
}

void dl_service::do_stop() {
  // Break the accept loop first: no new connections from here on.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  // Shut the read side of every live connection: a blocked read_frame
  // sees EOF and its loop exits, while a response in flight still
  // writes out (only reads are shut down) — an in-flight request
  // finishes and answers before the connection closes.
  {
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    for (const std::unique_ptr<connection>& conn : connections_)
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RD);
  }
  // Safe outside the lock: the accept thread is joined, so nothing
  // appends to connections_ anymore.
  for (const std::unique_ptr<connection>& conn : connections_)
    if (conn->worker.joinable()) conn->worker.join();

  ::unlink(options_.socket_path.c_str());

  // Every request has drained: flush the warm cache to disk (a journal
  // checkpoint when journaling, so the WAL resets alongside).
  if (!options_.cache_file.empty()) {
    const std::lock_guard<std::mutex> lock(flush_mutex_);
    try {
      if (journal_ != nullptr)
        journal_->checkpoint(
            [this] { save_cache(cache_, options_.cache_file); });
      else
        save_cache(cache_, options_.cache_file);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "dl_service: cache flush to '%s' failed: %s\n",
                   options_.cache_file.c_str(), e.what());
    }
  }
  // The observer holds a raw pointer into journal_; nothing inserts
  // after the drain, but uninstall it anyway before the member dies.
  cache_.set_write_observer({});
}

void dl_service::stop() {
  request_stop();
  std::unique_lock<std::mutex> lock(stop_mutex_);
  stop_cv_.wait(lock, [this] { return stopped_; });
}

bool dl_service::stopped() const {
  const std::lock_guard<std::mutex> lock(stop_mutex_);
  return stopped_;
}

}  // namespace dlm::engine
