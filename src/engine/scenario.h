// Declarative scenario descriptions for the batch engine.
//
// A `scenario` names everything one model run needs — which model, which
// dataset slice, solver scheme / grid resolution / growth-rate preset and
// the evaluation window — as plain data, so sweeps can be expanded,
// queued, executed on a thread pool and reproduced from their CSV record.
// A `dataset_slice` is the engine's dataset abstraction: the observed
// density surface of one story under one distance metric plus the paper
// parameter preset for that metric, with optional graph/partition handles
// for models (SI) that spread on the explicit follower graph.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/dl_parameters.h"
#include "core/dl_solver.h"
#include "digg/simulator.h"
#include "graph/digraph.h"
#include "social/distance.h"
#include "social/story.h"

namespace dlm::engine {

/// One story × distance-metric view of a dataset: the observed density
/// surface (percent scale) plus everything a model adapter may consume.
struct dataset_slice {
  std::string name;    ///< unique key, e.g. "s1/hops"
  std::string story;   ///< story label, e.g. "s1"
  social::distance_metric metric = social::distance_metric::friendship_hops;
  int max_distance = 0;    ///< spatial domain bound L (groups 1..L)
  int horizon_hours = 0;   ///< temporal extent (hours 1..horizon)
  /// actual[x-1][t-1]: observed density of group x at hour t.
  std::vector<std::vector<double>> actual;
  /// The paper's parameter preset for this metric with x_max = max_distance
  /// (the growth rate may be overridden per scenario).
  core::dl_parameters base_params;

  /// Follower graph / initiator / partition for graph-driven models.
  /// Null for slices built from a bare surface; adapters that need them
  /// throw std::invalid_argument when absent.
  const graph::digraph* followers = nullptr;
  graph::node_id initiator = 0;
  const social::distance_partition* partition = nullptr;

  /// Content fingerprint, computed by scenario_context::add_slice: a hash
  /// of the metric, surface, base parameters and cheap structural
  /// invariants of the graph handles (node/edge counts, partition group
  /// sizes).  Folded into solve-cache keys so two contexts that reuse a
  /// slice *name* for different data never share cache entries.  Stable
  /// across processes — the persistent cache (engine/cache_io.h) depends
  /// on a rebuilt context hashing to the same fingerprint.
  std::uint64_t fingerprint = 0;

  /// Observed density at group x (1-based), hour t (1-based).
  /// Throws std::out_of_range outside the surface.
  [[nodiscard]] double actual_at(int x, int t) const;

  /// Observed profile at hour t over groups 1..max_distance.
  [[nodiscard]] std::vector<double> profile_at(int t) const;
};

/// An immutable collection of slices plus ownership of the backing data
/// (dataset / graphs / partitions the slices point into).  Move-only.
class scenario_context {
 public:
  scenario_context() = default;
  scenario_context(scenario_context&&) = default;
  scenario_context& operator=(scenario_context&&) = default;
  scenario_context(const scenario_context&) = delete;
  scenario_context& operator=(const scenario_context&) = delete;

  /// Adds a slice; returns its index.  Throws std::invalid_argument on a
  /// duplicate name or an empty/ragged surface.
  std::size_t add_slice(dataset_slice slice);

  [[nodiscard]] std::size_t slice_count() const noexcept {
    return slices_.size();
  }
  [[nodiscard]] const dataset_slice& slice(std::size_t index) const;
  /// Lookup by name; throws std::invalid_argument for unknown names.
  [[nodiscard]] const dataset_slice& slice(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> slice_names() const;

  /// Builds one hop slice and one interest slice per flagship story of a
  /// calibrated dataset (hops truncated at `max_hops`).  Takes ownership.
  [[nodiscard]] static scenario_context from_dataset(digg::digg_dataset data,
                                                     int max_hops = 6);

  /// Builds a single hop slice from an organic cascade: the vote stream of
  /// one story on an explicit follower graph.
  [[nodiscard]] static scenario_context from_cascade(
      graph::digraph followers, graph::node_id initiator,
      const std::vector<social::vote>& votes, int horizon_hours,
      int max_hops = 6);

  /// Builds a single slice from a bare density surface (no graph) —
  /// handy for tests and solver-convergence studies.
  [[nodiscard]] static scenario_context from_surface(
      std::string name, social::distance_metric metric,
      std::vector<std::vector<double>> actual, core::dl_parameters params);

 private:
  std::vector<dataset_slice> slices_;
  // Backing stores the slices point into (heap-stable across moves).
  std::shared_ptr<digg::digg_dataset> data_;
  std::vector<std::unique_ptr<graph::digraph>> graphs_;
  std::vector<std::unique_ptr<social::distance_partition>> partitions_;
};

/// One work item of a sweep: everything `scenario_runner` needs to solve
/// and score a single model on a single slice.
struct scenario {
  std::string model;            ///< registry key, e.g. "dl"
  std::size_t slice = 0;        ///< index into the scenario_context
  core::dl_scheme scheme = core::dl_scheme::strang_cn;
  std::size_t points_per_unit = 20;  ///< grid resolution (grid models)
  double dt = 0.02;                  ///< solver time step (DL)
  std::string rate = "preset";       ///< growth-rate spec (see make_rate)
  std::string domain = "line";       ///< domain spec (see make_domain)
  double t0 = 1.0;              ///< observation hour (initial profile)
  double t_end = 6.0;           ///< last evaluated hour
  std::uint64_t seed = 20090601;  ///< RNG seed for stochastic models
  /// Optional overrides of the slice's base (d, K) — NaN keeps the base
  /// value.  Set by the runner when a "calibrate" rate spec resolves, so
  /// the solved scenario (and its cache key) records the fitted values.
  double d_override = std::numeric_limits<double>::quiet_NaN();
  double k_override = std::numeric_limits<double>::quiet_NaN();
};

/// Declarative sweep: the cross product of the axes below over the chosen
/// slices, with axes a model does not consume collapsed to one canonical
/// value (a heat run is not duplicated per scheme, an SI run not per rate).
struct sweep_spec {
  std::vector<std::string> models;
  /// Slice indices; empty means every slice in the context.
  std::vector<std::size_t> slices;
  std::vector<core::dl_scheme> schemes = {core::dl_scheme::strang_cn};
  std::vector<std::size_t> grid = {20};  ///< points_per_unit values
  std::vector<double> dts = {0.02};
  std::vector<std::string> rates = {"preset"};
  /// Domain specs (see make_domain).  Collapsed to {"line"} for models
  /// without a domain axis; non-line domains pair only with strang_cn.
  std::vector<std::string> domains = {"line"};
  double t0 = 1.0;
  double t_end = 6.0;
  std::uint64_t seed = 20090601;
};

/// Growth-rate spec parser.  Accepted forms (temporal):
///   "preset"           — the paper rate matching the slice metric
///   "paper_hops"       — r(t) = 1.4·e^{−1.5(t−1)} + 0.25
///   "paper_interest"   — r(t) = 1.6·e^{−(t−1)} + 0.1
///   "constant:<v>"     — r(t) = v
///   "decay:<a>,<b>,<c>" — r(t) = a·e^{−b(t−1)} + c
/// and spatial (r varies with distance, paper §V):
///   "spatial:<base>|<m1>,<m2>,..." — r(x, t) = m(x)·base(t): <base> is
///       any temporal form above, m_i applies at distance i, linearly
///       interpolated between integer distances and clamped outside (a
///       short list extends its last multiplier to farther groups);
///   "per-hop:<spec1>;<spec2>;..." — one temporal form per distance
///       group, values and integrals interpolated across groups.
/// Calibration specs ("calibrate", "calibrate-fixed", "calibrate-spatial",
/// optionally with a ":<hour>" fit-window suffix — see
/// engine/calibration.h) are not concrete rates: the scenario runner
/// resolves them to a concrete form before any model solves, so passing
/// one here throws std::invalid_argument.  Every rejection quotes the
/// offending spec and lists this grammar.
[[nodiscard]] core::rate_field make_rate(const std::string& spec,
                                         social::distance_metric metric);

/// The accepted `make_rate` grammar, one form per line — appended to
/// every make_rate rejection so a failure deep inside a sweep is
/// attributable without source-diving.
[[nodiscard]] const std::string& rate_spec_grammar();

/// True for the concrete spatial forms ("spatial:...", "per-hop:...").
/// Purely syntactic; parse errors surface in make_rate.
[[nodiscard]] bool is_spatial_rate_spec(const std::string& spec);

/// The temporal spec a spatial form collapses to for models without a
/// spatial-rate axis: the <base> of a "spatial:..." spec, "preset" for
/// "per-hop:...".  Non-spatial specs pass through unchanged.
[[nodiscard]] std::string spatial_base_spec(const std::string& spec);

/// Domain spec parser (core::domain, see core/domain.h).  Accepted forms:
///   "line" (or "" / "-")           — the classic 1-D distance axis
///   "grid2d:<y_min>,<y_max>"       — 2-D distance × interest sheet,
///       solved by the Peaceman–Rachford ADI variant of strang-cn
///   "comm:<K>"                     — K uncoupled per-community 1-D lines
///   "comm:<K>|mix=<rate>"          — uniform cross-community mixing
///   "comm:<K>|mix=<m11>,...,<mKK>" — full K×K mixing matrix (row-major;
///       entry (c,c2) is the flow rate from community c2 into c)
///   "comm:<K>|...|scale=<s1>,...,<sK>" — per-community initial-profile
///       scales (mix= and scale= segments compose in any order)
/// Every rejection names the offending token's 1-based position, quotes
/// the spec and lists this grammar (see domain_spec_grammar).
[[nodiscard]] core::domain make_domain(const std::string& spec);

/// The accepted `make_domain` grammar, one form per line — appended to
/// every make_domain rejection.
[[nodiscard]] const std::string& domain_spec_grammar();

}  // namespace dlm::engine
