#include "engine/solve_cache.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>

#include "engine/format.h"

namespace dlm::engine {
namespace {

/// Bitwise double equality — the determinism contract is about bits,
/// and NaN payloads must compare equal to themselves.
bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

bool bits_equal(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!bits_equal(a[i], b[i])) return false;
  return true;
}

bool traces_bitwise_equal(const model_trace& a, const model_trace& b) {
  if (a.domain != b.domain || a.distances != b.distances ||
      !bits_equal(a.effective_dt, b.effective_dt) ||
      !bits_equal(a.times, b.times) ||
      a.predicted.size() != b.predicted.size())
    return false;
  for (std::size_t i = 0; i < a.predicted.size(); ++i)
    if (!bits_equal(a.predicted[i], b.predicted[i])) return false;
  return true;
}

}  // namespace

void solve_cache::evict_overflow() {
  if (max_entries_ == 0) return;
  while (traces_.size() + values_.size() > max_entries_ && !lru_.empty()) {
    const auto& [kind, key] = lru_.back();
    if (kind == entry_kind::trace) {
      traces_.erase(key);
    } else {
      values_.erase(key);
    }
    lru_.pop_back();
    ++stats_.evictions;
  }
}

std::shared_ptr<const model_trace> solve_cache::find_trace(
    const std::string& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = traces_.find(key);
  if (it == traces_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.second);  // refresh recency
  return it->second.first;
}

void solve_cache::store_trace(const std::string& key, model_trace trace) {
  import_trace(key, std::make_shared<const model_trace>(std::move(trace)));
}

void solve_cache::import_trace(const std::string& key,
                               std::shared_ptr<const model_trace> trace) {
  std::shared_ptr<const model_trace> inserted = std::move(trace);
  std::shared_ptr<const write_observer> observer;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (traces_.contains(key)) return;  // first insert wins
    lru_.emplace_front(entry_kind::trace, key);
    traces_.emplace(key, std::make_pair(inserted, lru_.begin()));
    evict_overflow();
    observer = observer_;
  }
  // Outside the lock (see set_write_observer): even an entry the LRU cap
  // evicted immediately is still observed — journaling it is harmless,
  // replay re-applies the cap.
  if (observer != nullptr) (*observer)(key, inserted.get(), nullptr);
}

std::optional<double> solve_cache::find_value(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = values_.find(key);
  if (it == values_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.second);  // refresh recency
  return it->second.first;
}

void solve_cache::store_value(const std::string& key, double value) {
  import_value(key, value);
}

void solve_cache::import_value(const std::string& key, double value) {
  std::shared_ptr<const write_observer> observer;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (values_.contains(key)) return;  // first insert wins
    lru_.emplace_front(entry_kind::value, key);
    values_.emplace(key, std::make_pair(value, lru_.begin()));
    evict_overflow();
    observer = observer_;
  }
  if (observer != nullptr) (*observer)(key, nullptr, &value);
}

std::vector<solve_cache::trace_export> solve_cache::export_traces() const {
  std::vector<trace_export> out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(traces_.size());
    for (const auto& [key, entry] : traces_)
      out.push_back({key, entry.first});
  }
  std::sort(out.begin(), out.end(),
            [](const trace_export& a, const trace_export& b) {
              return a.key < b.key;
            });
  return out;
}

std::vector<solve_cache::value_export> solve_cache::export_values() const {
  std::vector<value_export> out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(values_.size());
    for (const auto& [key, entry] : values_)
      out.push_back({key, entry.first});
  }
  std::sort(out.begin(), out.end(),
            [](const value_export& a, const value_export& b) {
              return a.key < b.key;
            });
  return out;
}

solve_cache::merge_outcome solve_cache::merge_trace(
    const std::string& key, std::shared_ptr<const model_trace> trace) {
  std::shared_ptr<const model_trace> inserted = std::move(trace);
  std::shared_ptr<const write_observer> observer;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = traces_.find(key);
    if (it != traces_.end()) {
      if (traces_bitwise_equal(*it->second.first, *inserted))
        return merge_outcome::duplicate;
      ++stats_.merge_conflicts;
      return merge_outcome::conflict;
    }
    lru_.emplace_front(entry_kind::trace, key);
    traces_.emplace(key, std::make_pair(inserted, lru_.begin()));
    ++stats_.merged_entries;
    evict_overflow();
    observer = observer_;
  }
  if (observer != nullptr) (*observer)(key, inserted.get(), nullptr);
  return merge_outcome::inserted;
}

solve_cache::merge_outcome solve_cache::merge_value(const std::string& key,
                                                    double value) {
  std::shared_ptr<const write_observer> observer;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = values_.find(key);
    if (it != values_.end()) {
      if (bits_equal(it->second.first, value)) return merge_outcome::duplicate;
      ++stats_.merge_conflicts;
      return merge_outcome::conflict;
    }
    lru_.emplace_front(entry_kind::value, key);
    values_.emplace(key, std::make_pair(value, lru_.begin()));
    ++stats_.merged_entries;
    evict_overflow();
    observer = observer_;
  }
  if (observer != nullptr) (*observer)(key, nullptr, &value);
  return merge_outcome::inserted;
}

void solve_cache::set_write_observer(write_observer observer) {
  auto shared =
      observer ? std::make_shared<const write_observer>(std::move(observer))
               : std::shared_ptr<const write_observer>();
  const std::lock_guard<std::mutex> lock(mutex_);
  observer_ = std::move(shared);
}

void solve_cache::count_load_rejected() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.load_rejected;
}

cache_stats solve_cache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t solve_cache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return traces_.size() + values_.size();
}

void solve_cache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  traces_.clear();
  values_.clear();
  lru_.clear();
  stats_ = cache_stats{};
}

std::string resolve_rate_spec(const std::string& spec,
                              social::distance_metric metric) {
  const auto resolve_temporal = [metric](const std::string& body) {
    if (body == "preset")
      return metric == social::distance_metric::friendship_hops
                 ? std::string("paper_hops")
                 : std::string("paper_interest");
    return body;
  };
  if (spec.starts_with("spatial:")) {
    // Canonicalize the base so "spatial:preset|..." on a hop slice and
    // "spatial:paper_hops|..." share one cache entry.
    const std::string body = spec.substr(sizeof("spatial:") - 1);
    const std::size_t bar = body.find('|');
    if (bar == std::string::npos) return spec;  // malformed; make_rate throws
    return "spatial:" + resolve_temporal(body.substr(0, bar)) +
           body.substr(bar);
  }
  if (spec.starts_with("per-hop:")) {
    std::string out = "per-hop:";
    std::string body = spec.substr(sizeof("per-hop:") - 1);
    std::size_t start = 0;
    while (true) {
      const std::size_t at = body.find(';', start);
      out += resolve_temporal(body.substr(
          start, at == std::string::npos ? at : at - start));
      if (at == std::string::npos) break;
      out += ';';
      start = at + 1;
    }
    return out;
  }
  return resolve_temporal(spec);
}

std::string scenario_cache_key(const scenario& sc, const dataset_slice& slice,
                               const diffusion_model& model) {
  // Name + content fingerprint: a colliding slice name in another
  // context must not alias this slice's entries.
  std::string key = "slice=" + slice.name + '#' +
                    std::to_string(slice.fingerprint) + "|model=" + sc.model;
  key += "|scheme=";
  key += model.uses_scheme() ? core::to_string(sc.scheme) : "-";
  key += "|grid=";
  key += model.uses_grid() ? std::to_string(sc.points_per_unit) : "0";
  key += "|dt=";
  key += model.uses_scheme() ? format_full_precision(sc.dt) : "0";
  key += "|rate=";
  key += model.uses_rate() ? resolve_rate_spec(sc.rate, slice.metric) : "-";
  key += "|t0=" + format_full_precision(sc.t0) + "|t_end=" + format_full_precision(sc.t_end);
  key += "|seed=" + std::to_string(sc.seed);
  key += "|d=";
  key += std::isnan(sc.d_override) ? "-" : format_full_precision(sc.d_override);
  key += "|k=";
  key += std::isnan(sc.k_override) ? "-" : format_full_precision(sc.k_override);
  // Canonical domain label, appended only for a non-line domain on a
  // domain-capable model — 1-D keys stay byte-identical to every release
  // before the domain axis existed, so persistent caches keep hitting.
  if (model.supports_domain()) {
    const core::domain dom = make_domain(sc.domain);
    if (!dom.is_line()) key += "|domain=" + dom.label();
  }
  return key;
}

}  // namespace dlm::engine
