#include "engine/solve_cache.h"

#include <cmath>

#include "engine/format.h"

namespace dlm::engine {

std::shared_ptr<const model_trace> solve_cache::find_trace(
    const std::string& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = traces_.find(key);
  if (it == traces_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return it->second;
}

void solve_cache::store_trace(const std::string& key, model_trace trace) {
  auto stored = std::make_shared<const model_trace>(std::move(trace));
  const std::lock_guard<std::mutex> lock(mutex_);
  traces_.emplace(key, std::move(stored));  // first insert wins
}

std::optional<double> solve_cache::find_value(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = values_.find(key);
  if (it == values_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  return it->second;
}

void solve_cache::store_value(const std::string& key, double value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  values_.emplace(key, value);  // first insert wins
}

cache_stats solve_cache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t solve_cache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return traces_.size() + values_.size();
}

void solve_cache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  traces_.clear();
  values_.clear();
  stats_ = cache_stats{};
}

std::string resolve_rate_spec(const std::string& spec,
                              social::distance_metric metric) {
  if (spec == "preset")
    return metric == social::distance_metric::friendship_hops
               ? "paper_hops"
               : "paper_interest";
  return spec;
}

std::string scenario_cache_key(const scenario& sc, const dataset_slice& slice,
                               const diffusion_model& model) {
  // Name + content fingerprint: a colliding slice name in another
  // context must not alias this slice's entries.
  std::string key = "slice=" + slice.name + '#' +
                    std::to_string(slice.fingerprint) + "|model=" + sc.model;
  key += "|scheme=";
  key += model.uses_scheme() ? core::to_string(sc.scheme) : "-";
  key += "|grid=";
  key += model.uses_grid() ? std::to_string(sc.points_per_unit) : "0";
  key += "|dt=";
  key += model.uses_scheme() ? format_full_precision(sc.dt) : "0";
  key += "|rate=";
  key += model.uses_rate() ? resolve_rate_spec(sc.rate, slice.metric) : "-";
  key += "|t0=" + format_full_precision(sc.t0) + "|t_end=" + format_full_precision(sc.t_end);
  key += "|seed=" + std::to_string(sc.seed);
  key += "|d=";
  key += std::isnan(sc.d_override) ? "-" : format_full_precision(sc.d_override);
  key += "|k=";
  key += std::isnan(sc.k_override) ? "-" : format_full_precision(sc.k_override);
  return key;
}

}  // namespace dlm::engine
