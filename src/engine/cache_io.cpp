#include "engine/cache_io.h"

#include <bit>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <limits>
#include <memory>
#include <stdexcept>
#include <system_error>
#include <utility>
#include <vector>

namespace dlm::engine {
namespace {

constexpr std::uint32_t kTraceSectionTag = 1;
constexpr std::uint32_t kValueSectionTag = 2;
constexpr std::uint32_t kSectionCount = 2;

// ----------------------------------------------------------- LE writing

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8)
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
}

void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_i32(std::string& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_string(std::string& out, std::string_view s) {
  if (s.size() > std::numeric_limits<std::uint32_t>::max())
    throw std::runtime_error("cache_io: key too long to serialize");
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

// ------------------------------------------------------------ LE reader
//
// Every read is bounds checked against the remaining bytes; the first
// failed read latches ok() false and all further reads return zeros, so
// parsing code can stay linear and check ok() at section boundaries.

class reader {
 public:
  explicit reader(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - pos_;
  }
  [[nodiscard]] bool at_end() const noexcept { return pos_ == bytes_.size(); }

  std::uint32_t get_u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    pos_ += 4;
    return v;
  }

  std::uint64_t get_u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    pos_ += 8;
    return v;
  }

  double get_f64() { return std::bit_cast<double>(get_u64()); }

  std::int32_t get_i32() { return static_cast<std::int32_t>(get_u32()); }

  std::string_view get_bytes(std::size_t n) {
    if (!need(n)) return {};
    const std::string_view v = bytes_.substr(pos_, n);
    pos_ += n;
    return v;
  }

 private:
  bool need(std::size_t n) {
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Parsed-but-not-yet-committed file content: nothing touches the cache
/// until every section verified and parsed cleanly.
struct parsed_file {
  std::vector<std::pair<std::string, model_trace>> traces;
  std::vector<std::pair<std::string, double>> values;
};

/// Parses one trace entry at `r`'s cursor — the shared step of the
/// snapshot section parser and the journal record decoder
/// (decode_trace_entry).  Returns an error message or empty.
std::string parse_one_trace(reader& r, std::string& key, model_trace& trace) {
  const std::uint32_t key_len = r.get_u32();
  if (key_len > r.remaining()) return "trace key overruns section";
  key = std::string(r.get_bytes(key_len));
  const std::uint32_t domain_len = r.get_u32();
  if (!r.ok() || domain_len > r.remaining())
    return "trace domain overruns section";
  trace.domain = std::string(r.get_bytes(domain_len));
  const std::uint32_t n_dist = r.get_u32();
  if (!r.ok() || n_dist > r.remaining() / 4)
    return "trace distance count overruns section";
  trace.distances.reserve(n_dist);
  for (std::uint32_t d = 0; d < n_dist; ++d)
    trace.distances.push_back(r.get_i32());
  const std::uint32_t n_times = r.get_u32();
  if (!r.ok() || n_times > r.remaining() / 8)
    return "trace time count overruns section";
  trace.times.reserve(n_times);
  for (std::uint32_t t = 0; t < n_times; ++t)
    trace.times.push_back(r.get_f64());
  trace.effective_dt = r.get_f64();
  const std::uint64_t cells =
      static_cast<std::uint64_t>(n_dist) * static_cast<std::uint64_t>(n_times);
  if (!r.ok() || cells > r.remaining() / 8)
    return "trace blob overruns section";
  trace.predicted.resize(n_dist);
  for (std::uint32_t d = 0; d < n_dist; ++d) {
    trace.predicted[d].reserve(n_times);
    for (std::uint32_t t = 0; t < n_times; ++t)
      trace.predicted[d].push_back(r.get_f64());
  }
  if (!r.ok()) return "truncated trace entry";
  return {};
}

std::string parse_one_value(reader& r, std::string& key, double& value) {
  const std::uint32_t key_len = r.get_u32();
  if (key_len > r.remaining()) return "value key overruns section";
  key = std::string(r.get_bytes(key_len));
  value = r.get_f64();
  if (!r.ok()) return "truncated value entry";
  return {};
}

/// Parses the trace section payload.  Returns an error message or empty.
std::string parse_trace_section(std::string_view payload, parsed_file& out) {
  reader r(payload);
  const std::uint64_t count = r.get_u64();
  // A trace entry occupies at least key length + domain length + distance
  // count + time count + effective_dt = 24 bytes; a declared count the
  // remaining bytes cannot possibly hold is rejected before any
  // allocation.
  if (count > r.remaining() / 24)
    return "trace count " + std::to_string(count) +
           " exceeds section capacity";
  out.traces.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string key;
    model_trace trace;
    if (std::string error = parse_one_trace(r, key, trace); !error.empty())
      return error;
    out.traces.emplace_back(std::move(key), std::move(trace));
  }
  if (!r.at_end()) return "trailing bytes in trace section";
  return {};
}

std::string parse_value_section(std::string_view payload, parsed_file& out) {
  reader r(payload);
  const std::uint64_t count = r.get_u64();
  // Minimum value entry: key length + value = 12 bytes.
  if (count > r.remaining() / 12)
    return "value count " + std::to_string(count) +
           " exceeds section capacity";
  out.values.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string key;
    double value = 0.0;
    if (std::string error = parse_one_value(r, key, value); !error.empty())
      return error;
    out.values.emplace_back(std::move(key), value);
  }
  if (!r.at_end()) return "trailing bytes in value section";
  return {};
}

cache_load_result reject(solve_cache& cache, std::string error) {
  cache.count_load_rejected();
  cache_load_result result;
  result.error = std::move(error);
  return result;
}

}  // namespace

std::uint64_t cache_checksum(std::string_view bytes) {
  std::uint64_t hash = 1469598103934665603ULL;  // FNV-1a 64 offset basis
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;  // FNV-1a 64 prime
  }
  return hash;
}

std::string encode_trace_entry(std::string_view key,
                               const model_trace& trace) {
  if (trace.predicted.size() != trace.distances.size())
    throw std::runtime_error("cache_io: trace '" + std::string(key) +
                             "' has a ragged predicted surface");
  std::string out;
  put_string(out, key);
  put_string(out, trace.domain);
  put_u32(out, static_cast<std::uint32_t>(trace.distances.size()));
  for (const int d : trace.distances) put_i32(out, d);
  put_u32(out, static_cast<std::uint32_t>(trace.times.size()));
  for (const double t : trace.times) put_f64(out, t);
  put_f64(out, trace.effective_dt);
  for (const std::vector<double>& row : trace.predicted) {
    if (row.size() != trace.times.size())
      throw std::runtime_error("cache_io: trace '" + std::string(key) +
                               "' has a ragged predicted surface");
    for (const double v : row) put_f64(out, v);
  }
  return out;
}

std::string encode_value_entry(std::string_view key, double value) {
  std::string out;
  put_string(out, key);
  put_f64(out, value);
  return out;
}

std::string decode_trace_entry(std::string_view payload, std::string& key,
                               model_trace& trace) {
  reader r(payload);
  trace = model_trace{};
  if (std::string error = parse_one_trace(r, key, trace); !error.empty())
    return error;
  if (!r.at_end()) return "trailing bytes after trace entry";
  return {};
}

std::string decode_value_entry(std::string_view payload, std::string& key,
                               double& value) {
  reader r(payload);
  if (std::string error = parse_one_value(r, key, value); !error.empty())
    return error;
  if (!r.at_end()) return "trailing bytes after value entry";
  return {};
}

std::string serialize_cache(const solve_cache& cache) {
  std::string traces;
  const std::vector<solve_cache::trace_export> trace_entries =
      cache.export_traces();
  put_u64(traces, trace_entries.size());
  for (const solve_cache::trace_export& entry : trace_entries)
    traces += encode_trace_entry(entry.key, *entry.trace);

  std::string values;
  const std::vector<solve_cache::value_export> value_entries =
      cache.export_values();
  put_u64(values, value_entries.size());
  for (const solve_cache::value_export& entry : value_entries)
    values += encode_value_entry(entry.key, entry.value);

  std::string out;
  out.reserve(24 + 40 + traces.size() + values.size());
  out.append(kCacheMagic);
  put_u32(out, kCacheFormatVersion);
  put_u32(out, kSectionCount);
  const auto append_section = [&out](std::uint32_t tag,
                                     const std::string& payload) {
    put_u32(out, tag);
    put_u64(out, payload.size());
    put_u64(out, cache_checksum(payload));
    out.append(payload);
  };
  append_section(kTraceSectionTag, traces);
  append_section(kValueSectionTag, values);
  return out;
}

cache_load_result deserialize_cache(solve_cache& cache,
                                    std::string_view bytes) {
  reader r(bytes);
  const std::string_view magic = r.get_bytes(kCacheMagic.size());
  if (!r.ok()) return reject(cache, "file shorter than the header");
  if (magic != kCacheMagic) return reject(cache, "bad magic");
  const std::uint32_t version = r.get_u32();
  const std::uint32_t sections = r.get_u32();
  if (!r.ok()) return reject(cache, "file shorter than the header");
  if (version != kCacheFormatVersion)
    return reject(cache, "unsupported format version " +
                             std::to_string(version) + " (expected " +
                             std::to_string(kCacheFormatVersion) + ")");
  if (sections != kSectionCount)
    return reject(cache,
                  "unexpected section count " + std::to_string(sections));

  parsed_file parsed;
  for (const std::uint32_t expected_tag :
       {kTraceSectionTag, kValueSectionTag}) {
    const std::uint32_t tag = r.get_u32();
    const std::uint64_t payload_bytes = r.get_u64();
    const std::uint64_t checksum = r.get_u64();
    if (!r.ok()) return reject(cache, "truncated section header");
    if (tag != expected_tag)
      return reject(cache, "unexpected section tag " + std::to_string(tag));
    if (payload_bytes > r.remaining())
      return reject(cache, "section payload overruns file");
    const std::string_view payload =
        r.get_bytes(static_cast<std::size_t>(payload_bytes));
    if (cache_checksum(payload) != checksum)
      return reject(cache, "section checksum mismatch");
    const std::string error = tag == kTraceSectionTag
                                  ? parse_trace_section(payload, parsed)
                                  : parse_value_section(payload, parsed);
    if (!error.empty()) return reject(cache, error);
  }
  if (!r.at_end()) return reject(cache, "trailing bytes after last section");

  // Whole file verified: commit.  Everything before this line must not
  // have touched the cache.
  cache_load_result result;
  result.loaded = true;
  result.traces = parsed.traces.size();
  result.values = parsed.values.size();
  for (auto& [key, trace] : parsed.traces)
    cache.import_trace(key,
                       std::make_shared<const model_trace>(std::move(trace)));
  for (const auto& [key, value] : parsed.values)
    cache.import_value(key, value);
  return result;
}

void save_cache(const solve_cache& cache, const std::filesystem::path& path) {
  const std::string bytes = serialize_cache(cache);
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
      throw std::runtime_error("cache_io: cannot open '" + tmp.string() +
                               "' for writing");
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out)
      throw std::runtime_error("cache_io: write to '" + tmp.string() +
                               "' failed");
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    throw std::runtime_error("cache_io: cannot move cache into place at '" +
                             path.string() + "'");
  }
}

cache_load_result load_cache(solve_cache& cache,
                             const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    // A missing file is a normal cold start, not a corrupt cache.
    cache_load_result result;
    result.file_missing = true;
    return result;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof())
    return reject(cache, "read of '" + path.string() + "' failed");
  return deserialize_cache(cache, bytes);
}

std::string probe_cache_writable(const std::filesystem::path& path) {
  // Probe the exact file save_cache will write (the ".tmp" sibling) so a
  // pass here means the later atomic save can at least open its target.
  const std::filesystem::path tmp = path.string() + ".tmp";
  std::error_code ec;
  const bool existed = std::filesystem::exists(tmp, ec);
  {
    // Append mode: an existing .tmp (a concurrent writer's in-flight
    // save) is left intact, not truncated.
    std::ofstream out(tmp, std::ios::binary | std::ios::app);
    if (!out)
      return "cache file '" + path.string() + "' is not writable (cannot "
             "open '" + tmp.string() + "')";
  }
  if (!existed) std::filesystem::remove(tmp, ec);
  return {};
}

cache_merge_result merge_cache_files(
    solve_cache& into, std::span<const std::filesystem::path> paths) {
  // Load every input into a scratch cache first: any missing or corrupt
  // file aborts the whole merge before `into` is touched, mirroring the
  // loader's own all-or-nothing contract.
  std::vector<std::unique_ptr<solve_cache>> scratch;
  cache_merge_result result;
  for (const std::filesystem::path& path : paths) {
    auto cache = std::make_unique<solve_cache>();
    cache_load_result load = load_cache(*cache, path);
    if (!load.loaded) {
      if (load.file_missing)
        throw std::runtime_error("merge_cache_files: input '" + path.string() +
                                 "' does not exist");
      throw std::runtime_error("merge_cache_files: input '" + path.string() +
                               "' rejected: " + load.error);
    }
    result.loads.push_back(std::move(load));
    scratch.push_back(std::move(cache));
  }

  for (const std::unique_ptr<solve_cache>& cache : scratch) {
    for (solve_cache::trace_export& entry : cache->export_traces()) {
      switch (into.merge_trace(entry.key, std::move(entry.trace))) {
        case solve_cache::merge_outcome::inserted: ++result.merged_traces; break;
        case solve_cache::merge_outcome::duplicate: ++result.duplicates; break;
        case solve_cache::merge_outcome::conflict: ++result.conflicts; break;
      }
    }
    for (const solve_cache::value_export& entry : cache->export_values()) {
      switch (into.merge_value(entry.key, entry.value)) {
        case solve_cache::merge_outcome::inserted: ++result.merged_values; break;
        case solve_cache::merge_outcome::duplicate: ++result.duplicates; break;
        case solve_cache::merge_outcome::conflict: ++result.conflicts; break;
      }
    }
  }
  return result;
}

std::filesystem::path cache_journal_path(
    const std::filesystem::path& snapshot_path) {
  return snapshot_path.string() + ".wal";
}

persistent_cache::persistent_cache(std::filesystem::path path,
                                   std::size_t max_entries,
                                   journal_options journal)
    : path_(std::move(path)),
      cache_(max_entries),
      journal_options_(journal) {
  load_ = load_cache(cache_, path_);
  write_error_ = probe_cache_writable(path_);
  if (!write_error_.empty())
    std::fprintf(stderr,
                 "persistent_cache: %s — the save-on-exit will fail\n",
                 write_error_.c_str());
  if (!journal_options_.enabled) return;

  // Snapshot first, then the WAL on top: records that made it into a
  // snapshot before a crash replay as benign first-insert-wins
  // duplicates.
  const std::filesystem::path wal = cache_journal_path(path_);
  replay_ = replay_journal(cache_, wal);
  try {
    cache_journal::options jopt;
    jopt.fsync_each = journal_options_.fsync_each;
    jopt.torn_write_record = journal_options_.torn_write_record;
    journal_ = std::make_unique<cache_journal>(wal, jopt);
  } catch (const std::exception& e) {
    // A journal that cannot open degrades to the plain save-on-exit
    // wrapper — surfaced, not fatal.
    if (write_error_.empty()) write_error_ = e.what();
    std::fprintf(stderr, "persistent_cache: %s — journaling disabled\n",
                 e.what());
    return;
  }
  // Observe every winning insert from here on.  The observer runs
  // outside the cache mutex (see solve_cache::set_write_observer), so
  // the auto-checkpoint below may serialize the cache safely.
  cache_journal* jrnl = journal_.get();
  const std::uint64_t compact_bytes = journal_options_.compact_bytes;
  solve_cache* cache = &cache_;
  const std::filesystem::path snapshot = path_;
  cache_.set_write_observer([jrnl, compact_bytes, cache, snapshot](
                                const std::string& key,
                                const model_trace* trace,
                                const double* value) {
    if (trace != nullptr) jrnl->append_trace(key, *trace);
    if (value != nullptr) jrnl->append_value(key, *value);
    if (compact_bytes != 0 && jrnl->bytes() > compact_bytes &&
        jrnl->write_error().empty()) {
      try {
        jrnl->checkpoint([cache, &snapshot] { save_cache(*cache, snapshot); });
      } catch (const std::exception& e) {
        std::fprintf(stderr,
                     "persistent_cache: auto-checkpoint of '%s' failed: %s\n",
                     snapshot.string().c_str(), e.what());
      }
    }
  });
}

void persistent_cache::flush() {
  if (journal_ != nullptr) {
    journal_->checkpoint([this] { save_cache(cache_, path_); });
    return;
  }
  save_cache(cache_, path_);
}

persistent_cache::~persistent_cache() {
  try {
    flush();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "persistent_cache: save to '%s' failed: %s\n",
                 path_.string().c_str(), e.what());
  }
  // The observer holds the raw journal pointer; drop it before the
  // journal member destructs.
  cache_.set_write_observer({});
}

}  // namespace dlm::engine
