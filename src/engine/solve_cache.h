// Memoizing solve cache keyed on canonical scenario identity.
//
// A sweep frequently re-solves identical work: the same scenario repeated
// across sweeps, the reference scenario of an ablation, and — dominating
// everything — the dozens to hundreds of PDE solves a calibration run
// spends probing the same parameter vectors.  The cache stores both kinds
// of payload under one canonical string key:
//
//  * traces  — the model_trace of a full scenario solve, keyed by
//              `scenario_cache_key` (slice name + content fingerprint +
//              model + scheme + grid + dt + resolved rate + window + seed
//              + parameter overrides: the fields the result-table CSV
//              records, so cache identity == CSV identity, plus the
//              fingerprint guarding against name collisions when one
//              cache is shared across contexts);
//  * values  — scalar objective values (calibration SSE), keyed by the
//              scenario key extended with the probed parameter vector.
//
// Lookups are thread-safe; hit/miss counts are tracked so calibration can
// report how many PDE solves were real vs served from cache.  The cache
// is unbounded by default; constructing it with `max_entries > 0` caps
// the combined trace + value count with least-recently-used eviction
// (finds refresh recency, evictions are counted in the stats).
#pragma once

#include <cstddef>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/diffusion_model.h"
#include "engine/scenario.h"

namespace dlm::engine {

/// Cumulative lookup statistics (traces + values combined).
struct cache_stats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  /// Entries dropped by the LRU cap (0 while unbounded).
  std::size_t evictions = 0;
  /// Rejected on-disk load attempts (bad magic / version / checksum /
  /// truncation — see engine/cache_io.h).  Every rejection leaves the
  /// cache exactly as it was: no partial load, just this counter.
  std::size_t load_rejected = 0;
  /// Entries inserted by merge_trace/merge_value (shard-cache merging —
  /// see merge_cache_files in engine/cache_io.h).  Duplicates with a
  /// bitwise-identical payload move neither counter.
  std::size_t merged_entries = 0;
  /// Merge collisions where the same canonical key carried a bitwise
  /// *different* payload.  Always 0 for shards of one deterministic
  /// sweep; nonzero means the merged caches came from diverging builds
  /// or inputs (the first-inserted payload is kept).
  std::size_t merge_conflicts = 0;
};

class solve_cache {
 public:
  /// Unbounded cache (the pre-cap behaviour).
  solve_cache() = default;
  /// Caps the combined number of stored traces + values; the least
  /// recently used entry is evicted when an insert overflows the cap.
  /// 0 means unbounded.
  explicit solve_cache(std::size_t max_entries) : max_entries_(max_entries) {}
  solve_cache(const solve_cache&) = delete;
  solve_cache& operator=(const solve_cache&) = delete;

  /// Returns the cached trace or null (counting a hit/miss).
  [[nodiscard]] std::shared_ptr<const model_trace> find_trace(
      const std::string& key);

  /// Stores a trace under `key`.  A concurrent duplicate insert is benign:
  /// the first stored trace wins and later ones are dropped (both were
  /// computed from identical inputs).
  void store_trace(const std::string& key, model_trace trace);

  /// Returns the cached scalar or nullopt (counting a hit/miss).
  [[nodiscard]] std::optional<double> find_value(const std::string& key);

  /// Stores a scalar under `key` (first insert wins, as for traces).
  void store_value(const std::string& key, double value);

  [[nodiscard]] cache_stats stats() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t max_entries() const noexcept {
    return max_entries_;
  }
  void clear();

  /// One exported trace entry.  The shared_ptr aliases the live cache
  /// entry, so snapshotting copies keys but no trace data.
  struct trace_export {
    std::string key;
    std::shared_ptr<const model_trace> trace;
  };
  struct value_export {
    std::string key;
    double value = 0.0;
  };

  /// Key-sorted snapshots of the cache content for serialization
  /// (engine/cache_io.h): sorting makes identical content produce
  /// identical file bytes regardless of insertion order.
  [[nodiscard]] std::vector<trace_export> export_traces() const;
  [[nodiscard]] std::vector<value_export> export_values() const;

  /// Bulk-inserts a loaded entry.  Same semantics as the store_*
  /// methods (first insert wins, the LRU cap applies) but takes the
  /// shared trace directly — loading a file is not a hit or a miss, so
  /// no lookup statistic moves.
  void import_trace(const std::string& key,
                    std::shared_ptr<const model_trace> trace);
  void import_value(const std::string& key, double value);

  /// Counts one rejected load attempt (see cache_stats::load_rejected);
  /// called by the cache_io loader, never by the cache itself.
  void count_load_rejected();

  /// Outcome of merging one entry from another cache.
  enum class merge_outcome {
    inserted,   ///< key was new: entry adopted, merged_entries counted
    duplicate,  ///< key present with a bitwise-identical payload: no-op
    conflict    ///< key present with a different payload: first insert
                ///< kept, merge_conflicts counted
  };

  /// Inserts an entry from another shard's cache.  Unlike import_trace,
  /// the merge distinguishes a benign duplicate (both shards solved the
  /// same scenario — payloads bitwise equal, by the determinism
  /// contract) from a conflict (same key, different bits), and counts
  /// merged_entries / merge_conflicts accordingly.  The LRU cap applies
  /// to inserted entries as usual.
  merge_outcome merge_trace(const std::string& key,
                            std::shared_ptr<const model_trace> trace);
  merge_outcome merge_value(const std::string& key, double value);

  /// Write observation hook — the wiring the cache journal
  /// (engine/cache_journal.h) uses to append every winning insert as it
  /// happens.  Called once per *new* entry (store/import/merge alike;
  /// duplicates and conflicts do not fire), with exactly one of `trace`
  /// / `value` non-null.  Invoked *outside* the cache mutex, so the
  /// observer may call back into the cache (e.g. a journal checkpoint
  /// serializing it) without deadlocking; consequently two concurrent
  /// inserts may observe in either order — the journal replays through
  /// first-insert-wins imports, so order does not matter.  Pass an
  /// empty function to uninstall.
  using write_observer = std::function<void(
      const std::string& key, const model_trace* trace, const double* value)>;
  void set_write_observer(write_observer observer);

 private:
  /// Recency list: most recently used at the front.  Each node remembers
  /// which map owns its key so eviction can erase the right entry.
  enum class entry_kind { trace, value };
  using lru_list = std::list<std::pair<entry_kind, std::string>>;

  /// Drops least-recently-used entries until the cap holds.  Caller must
  /// hold the mutex.
  void evict_overflow();

  mutable std::mutex mutex_;
  std::size_t max_entries_ = 0;
  lru_list lru_;
  std::unordered_map<std::string,
                     std::pair<std::shared_ptr<const model_trace>,
                               lru_list::iterator>>
      traces_;
  std::unordered_map<std::string, std::pair<double, lru_list::iterator>>
      values_;
  cache_stats stats_;
  /// Swapped atomically under the mutex, invoked outside it: an insert
  /// snapshots the shared_ptr while locked and calls through it after
  /// unlocking, so set_write_observer never races a running callback's
  /// destruction.
  std::shared_ptr<const write_observer> observer_;
};

/// Resolves a growth-rate spec to its canonical form: "preset" names the
/// paper rate of the slice's metric, so a hop-slice "preset" and an
/// explicit "paper_hops" share one cache entry.  The base of a
/// "spatial:<base>|..." spec and every entry of a "per-hop:..." spec are
/// canonicalized the same way.  Calibrate specs and every other form are
/// already canonical and returned unchanged.
[[nodiscard]] std::string resolve_rate_spec(const std::string& spec,
                                            social::distance_metric metric);

/// Canonical identity of one scenario solve — the axes `model` consumes
/// (the collapsed ones render as their "n/a" values, mirroring the CSV)
/// plus the (d, K) overrides, so a calibrated solve never collides with a
/// plain solve that happens to share the same resolved rate.
[[nodiscard]] std::string scenario_cache_key(const scenario& sc,
                                             const dataset_slice& slice,
                                             const diffusion_model& model);

}  // namespace dlm::engine
