// On-disk persistence for engine::solve_cache.
//
// The cache dies with the process, so every CLI run and CI job re-pays
// every cold solve.  This module gives it a compact versioned binary
// format — magic + format version + a canonical-key index with each
// trace stored as one contiguous row-major blob + per-section checksums
// — so a second process's warm sweep performs zero PDE solves.  Every
// double round-trips through its raw IEEE-754 bits: a trace loaded from
// disk is bitwise identical to the one the writing process solved, so
// cache identity still equals CSV identity across processes.
//
// File layout (all integers little-endian, doubles as little-endian
// IEEE-754 bit patterns; see docs/solve_cache.md for the full diagram):
//
//   header   : magic "DLMCACHE" (8) · format version u32 · section count
//              u32 (always 2)
//   section  : tag u32 (1 = traces, 2 = values) · payload bytes u64 ·
//              FNV-1a-64 checksum of the payload u64 · payload
//   traces   : entry count u64, then per entry: key (u32 length +
//              bytes) · distances (u32 count + i32 each) · times (u32
//              count + f64 each) · effective_dt f64 · predicted blob
//              (count(distances) × count(times) f64, row-major)
//   values   : entry count u64, then per entry: key (u32 length +
//              bytes) · value f64
//
// The loader is adversarial by construction: every read is bounds
// checked, declared counts are validated against the bytes that are
// actually present before anything is allocated, checksums are verified
// before a section is parsed, and nothing is imported into the cache
// until the whole file has parsed cleanly — a corrupt file degrades to
// a clean cold cache with cache_stats::load_rejected counted, never to
// a crash or a partial load.  Keys are exported sorted, so identical
// cache content serializes to identical bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "engine/cache_journal.h"
#include "engine/solve_cache.h"

namespace dlm::engine {

/// Format version written by serialize_cache.  The loader accepts
/// exactly this version: older or newer files are rejected (a format
/// bump is cheap — the cache is a cache — and silent cross-version
/// reinterpretation is how caches corrupt).
/// v2: each trace entry carries its domain label after the key (the
/// core::domain axis); v1 files load as a clean cold cache.
inline constexpr std::uint32_t kCacheFormatVersion = 2;

/// 8-byte file magic.
inline constexpr std::string_view kCacheMagic = "DLMCACHE";

/// FNV-1a 64-bit checksum used for the per-section checksums — exposed
/// so tests can re-seal deliberately corrupted payloads.
[[nodiscard]] std::uint64_t cache_checksum(std::string_view bytes);

// ------------------------------------------------------- entry codecs
//
// The per-entry byte layout of the two snapshot sections, exposed as
// standalone codecs so the cache journal (engine/cache_journal.h) can
// carry the identical bytes per record — one codec, one set of
// corruption tests, no format drift between WAL and snapshot.

/// One trace entry in the trace section's per-entry layout (key ·
/// domain · distances · times · effective_dt · predicted blob).
[[nodiscard]] std::string encode_trace_entry(std::string_view key,
                                             const model_trace& trace);

/// One value entry (key · value f64).
[[nodiscard]] std::string encode_value_entry(std::string_view key,
                                             double value);

/// Parses one trace entry occupying exactly `payload`.  Bounds-checked
/// like the snapshot loader.  Returns an error message, empty on
/// success.
[[nodiscard]] std::string decode_trace_entry(std::string_view payload,
                                             std::string& key,
                                             model_trace& trace);

[[nodiscard]] std::string decode_value_entry(std::string_view payload,
                                             std::string& key, double& value);

/// Outcome of a load attempt.
struct cache_load_result {
  /// True iff the file parsed cleanly and every entry was imported.
  bool loaded = false;
  /// True when the file simply does not exist — a normal cold start,
  /// not a rejection (load_rejected is not counted).
  bool file_missing = false;
  std::size_t traces = 0;  ///< trace entries imported
  std::size_t values = 0;  ///< value entries imported
  /// Why the file was rejected; empty on success or a missing file.
  std::string error;
};

/// Serializes the cache content (key-sorted) to the format above.
[[nodiscard]] std::string serialize_cache(const solve_cache& cache);

/// Parses `bytes` and imports every entry into `cache` (first insert
/// wins, the LRU cap applies).  All-or-nothing: on any defect the cache
/// is left exactly as it was, load_rejected is counted, and the result
/// names the defect.
cache_load_result deserialize_cache(solve_cache& cache,
                                    std::string_view bytes);

/// Writes the cache to `path` atomically (temp file + rename), so a
/// reader never observes a half-written cache.  Throws
/// std::runtime_error on I/O failure.
void save_cache(const solve_cache& cache, const std::filesystem::path& path);

/// Reads `path` and imports it into `cache` (see deserialize_cache).  A
/// missing file reports file_missing without counting a rejection.
cache_load_result load_cache(solve_cache& cache,
                             const std::filesystem::path& path);

/// Checks that save_cache(path) would succeed *now*, by opening (and, if
/// newly created, removing) the same "<path>.tmp" file save_cache
/// writes.  Returns an empty string when writable, otherwise a
/// diagnostic naming the path — so a tool can refuse a doomed
/// --cache-file at startup instead of discovering the unwritable
/// directory after a long sweep.
[[nodiscard]] std::string probe_cache_writable(
    const std::filesystem::path& path);

/// Outcome of merge_cache_files.
struct cache_merge_result {
  std::size_t merged_traces = 0;  ///< trace entries newly adopted
  std::size_t merged_values = 0;  ///< value entries newly adopted
  /// Entries present in more than one input with bitwise-identical
  /// payloads — the expected overlap between shards of one sweep.
  std::size_t duplicates = 0;
  /// Same-key different-bits collisions (first input wins; see
  /// cache_stats::merge_conflicts).
  std::size_t conflicts = 0;
  /// Per-input load outcomes, in input order.
  std::vector<cache_load_result> loads;
};

/// Merges the cache files of N sweep shards into `into`, in input
/// order: every file is loaded and verified *first* (checksums, bounds —
/// the usual adversarial loader), then entries are merged through
/// solve_cache::merge_trace/merge_value with canonical-key dedup and
/// bitwise conflict detection.  All-or-nothing across files: a missing
/// or rejected input throws std::runtime_error naming it, with `into`
/// untouched.  Because shard caches hold exactly the entries their
/// shard's scenarios produced — under canonical keys, serialized
/// key-sorted — merging every shard of a partition reproduces the
/// unsharded run's cache file byte for byte.
cache_merge_result merge_cache_files(
    solve_cache& into, std::span<const std::filesystem::path> paths);

/// Journal configuration for persistent_cache (see
/// engine/cache_journal.h and docs/robustness.md).
struct journal_options {
  /// Write-ahead journal every winning cache insert to "<path>.wal"
  /// beside the snapshot, replayed over the snapshot on the next start
  /// — a killed process loses at most the in-flight record instead of
  /// every solve since startup.
  bool enabled = false;
  /// Auto-checkpoint (snapshot save + WAL reset) once the WAL exceeds
  /// this many bytes; 0 disables auto-compaction (flush() and the
  /// destructor still compact).
  std::uint64_t compact_bytes = 4ull << 20;
  /// fsync per record (cache_journal::options::fsync_each).
  bool fsync_each = false;
  /// Fault-injection passthrough (engine/fault.h):
  /// fault_plan::torn_write_record.
  std::optional<std::uint64_t> torn_write_record;
};

/// Load-on-construction / save-on-destruction wrapper: the wiring the
/// sweep runner examples and tools use for `--cache-file`.  The
/// destructor swallows save failures (a best-effort flush must not
/// throw out of scope exit) — call flush() directly when the caller
/// wants the error.  The constructor probes writability up front
/// (probe_cache_writable) and reports the problem on stderr *and*
/// through write_error(), so callers can exit nonzero immediately
/// instead of silently losing the save-on-exit after a long sweep.
///
/// With journal_options::enabled the constructor additionally replays
/// "<path>.wal" over the loaded snapshot and installs a cache write
/// observer that appends every winning insert to the WAL as it
/// happens; flush() becomes a checkpoint (snapshot + WAL reset).
class persistent_cache {
 public:
  explicit persistent_cache(std::filesystem::path path,
                            std::size_t max_entries = 0,
                            journal_options journal = {});
  ~persistent_cache();
  persistent_cache(const persistent_cache&) = delete;
  persistent_cache& operator=(const persistent_cache&) = delete;

  [[nodiscard]] solve_cache& cache() noexcept { return cache_; }
  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return path_;
  }
  /// What the constructor's load saw.
  [[nodiscard]] const cache_load_result& startup_load() const noexcept {
    return load_;
  }
  /// What the constructor's WAL replay saw (all-defaults when the
  /// journal is disabled).
  [[nodiscard]] const journal_replay_result& startup_replay() const noexcept {
    return replay_;
  }
  /// The live journal, or null when disabled (or when opening the WAL
  /// failed — reported through write_error()).
  [[nodiscard]] cache_journal* journal() noexcept { return journal_.get(); }

  /// Why the constructor's writability probe (or WAL open) failed;
  /// empty when the cache file is writable.  Callers treating
  /// --cache-file as a contract (not best-effort) should check this
  /// and exit nonzero.
  [[nodiscard]] const std::string& write_error() const noexcept {
    return write_error_;
  }

  /// Saves now — a plain snapshot save, or a journal checkpoint when
  /// journaling.  Throws std::runtime_error on I/O failure.
  void flush();

 private:
  std::filesystem::path path_;
  solve_cache cache_;
  cache_load_result load_;
  journal_replay_result replay_;
  std::unique_ptr<cache_journal> journal_;
  journal_options journal_options_;
  std::string write_error_;
};

/// The WAL path persistent_cache uses for a given snapshot path.
[[nodiscard]] std::filesystem::path cache_journal_path(
    const std::filesystem::path& snapshot_path);

}  // namespace dlm::engine
