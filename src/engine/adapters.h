// Adapters wrapping every predictor in the repo behind `diffusion_model`.
//
// Each adapter translates the declarative scenario (scheme, grid, rate,
// window, seed) into the wrapped component's native API and returns the
// predicted density surface at integer distances × hours.  All adapters
// are stateless; `solve` is safe to call concurrently.
#pragma once

#include "engine/diffusion_model.h"

namespace dlm::engine {

/// The paper's DL model via core::dl_solver — consumes every axis:
/// scheme, grid resolution, dt and growth rate, plus the scenario's
/// optional (d, K) overrides (set when a calibrate rate spec resolves).
/// For the conditionally stable FTCS scheme the time step is clamped to
/// 90% of the stability bound dx²/(2d) so fine-grid sweep points stay
/// finite.
class dl_adapter final : public diffusion_model {
 public:
  [[nodiscard]] std::string name() const override { return "dl"; }
  [[nodiscard]] bool uses_scheme() const override { return true; }
  [[nodiscard]] bool uses_grid() const override { return true; }
  [[nodiscard]] bool uses_rate() const override { return true; }
  [[nodiscard]] bool supports_calibration() const override { return true; }
  [[nodiscard]] bool supports_spatial_rate() const override { return true; }
  [[nodiscard]] bool supports_domain() const override { return true; }
  [[nodiscard]] bool supports_batch() const override { return true; }
  [[nodiscard]] model_trace solve(const scenario& sc,
                                  const dataset_slice& slice) const override;
  /// Lockstep SoA solve of compatible scenarios via
  /// core::solve_dl(span<const solve_request>); traces are bitwise
  /// identical to per-scenario solve() calls.  solve() itself is a
  /// batch of one.
  [[nodiscard]] std::vector<model_trace> solve_batch(
      std::span<const scenario> scenarios,
      const dataset_slice& slice) const override;
};

/// Diffusion-only ablation (r = 0): closed-form Neumann cosine series of
/// models::heat_model, sampled at the scenario's grid resolution.
class heat_adapter final : public diffusion_model {
 public:
  [[nodiscard]] std::string name() const override { return "heat"; }
  [[nodiscard]] bool uses_grid() const override { return true; }
  [[nodiscard]] model_trace solve(const scenario& sc,
                                  const dataset_slice& slice) const override;
};

/// Global logistic baseline: one logistic curve (exact propagator of
/// models::logistic under the scenario rate) grown from the mean hour-t0
/// density and predicted identically at every distance — no spatial
/// structure at all.
class global_logistic_adapter final : public diffusion_model {
 public:
  [[nodiscard]] std::string name() const override { return "logistic"; }
  [[nodiscard]] bool uses_rate() const override { return true; }
  [[nodiscard]] model_trace solve(const scenario& sc,
                                  const dataset_slice& slice) const override;
};

/// Temporal-only ablation (d = 0): models::per_distance_logistic, one
/// independent logistic per distance group under the scenario rate —
/// per-group rates r(x_i, t) when the spec is a spatial form.
class per_distance_logistic_adapter final : public diffusion_model {
 public:
  [[nodiscard]] std::string name() const override {
    return "per_distance_logistic";
  }
  [[nodiscard]] bool uses_rate() const override { return true; }
  [[nodiscard]] bool supports_spatial_rate() const override { return true; }
  [[nodiscard]] model_trace solve(const scenario& sc,
                                  const dataset_slice& slice) const override;
};

/// Link-driven related work: models::si_epidemic run on the slice's
/// follower graph (one step per hour, seeded from scenario.seed so runs
/// are reproducible regardless of thread schedule).  Requires a slice
/// with graph + partition handles; throws std::invalid_argument otherwise.
class si_adapter final : public diffusion_model {
 public:
  /// P(infect one follower per step); fixed across sweeps for now.
  static constexpr double beta = 0.01;

  [[nodiscard]] std::string name() const override { return "si"; }
  [[nodiscard]] model_trace solve(const scenario& sc,
                                  const dataset_slice& slice) const override;
};

}  // namespace dlm::engine
