// Parallel batch execution of scenario sweeps.
//
// `expand_sweep` turns a declarative sweep_spec into a concrete work
// queue (the capability-aware cross product of its axes); `run_sweep`
// executes the queue on a thread pool and aggregates index-ordered
// results into a result_table.  Every scenario is solved and scored
// independently and deterministically, so the table — and its CSV —
// is identical at any thread count.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "engine/diffusion_model.h"
#include "engine/model_registry.h"
#include "engine/result_table.h"
#include "engine/scenario.h"
#include "engine/shard.h"
#include "engine/solve_cache.h"
#include "fit/calibrate.h"

namespace dlm::engine {

/// Lanes per batch chunk when runner_options::batch_width is 0 (auto).
/// Eight covers one or two SIMD vectors of lanes with enough slack to
/// amortize the per-chunk setup, without starving a small pool of chunks.
inline constexpr std::size_t kDefaultBatchWidth = 8;

struct runner_options {
  /// Worker threads; 0 → std::thread::hardware_concurrency.
  std::size_t threads = 0;
  /// Model registry to resolve scenario.model against; null → the
  /// built-in default_registry().
  const model_registry* registry = nullptr;
  /// Also keep every scenario's predicted trace (index-aligned with the
  /// result rows) — needed by convergence studies; off by default to
  /// keep big sweeps lean.
  bool keep_traces = false;
  /// Memoizing solve cache (see engine/solve_cache.h); null → every
  /// solve runs.  Shared across run_sweep calls by the caller: a warm
  /// repeat of a sweep performs zero additional PDE solves, and the
  /// table CSV is byte-identical to the cold run's.
  solve_cache* cache = nullptr;
  /// Box bounds / lattice resolution / refinement cap for "calibrate"
  /// rate specs.  The solver options and fit_rate flag inside are
  /// ignored — they come from each scenario and its spec.
  fit::calibration_options calibration{};
  /// Scenario batching (every batching knob lives here, not in extra
  /// run_sweep parameters): compatible scenarios of a batch-capable
  /// model — same model, slice, scheme, grid, dt and window, and not a
  /// "calibrate" spec — are grouped into chunks of this many lanes, each
  /// advanced in lockstep by one pool worker (see batch_sweep).
  /// 0 → auto (kDefaultBatchWidth); 1 → batching off (pure scalar path);
  /// N → fixed width N.  Results are bitwise identical at any width.
  std::size_t batch_width = 0;
  /// The shard axis (engine/shard.h): run only the batch_sweep chunks
  /// shard_chunks assigns to this shard.  Rows keep their *global* sweep
  /// indices, so the N shard tables of a partition recombine through
  /// engine::merge_tables into a table byte-identical to the unsharded
  /// run.  Default 0/1: the whole sweep, sharding off.
  shard_spec shard{};
  /// Called on the executing pool thread just before each chunk runs,
  /// with the chunk's 0-based position in this run's chunk list.  The
  /// fault-injection harness (engine/fault.h) hangs its crash/hang
  /// hooks here; anything else (progress reporting) works too.  Must be
  /// thread-safe — chunks run concurrently.
  std::function<void(std::size_t)> on_chunk_start;
};

struct sweep_result {
  /// One row per executed scenario.  Unsharded, row i is scenario i; a
  /// sharded run holds only the owned scenarios (ascending), each row
  /// still carrying its global index.
  result_table table;
  /// Present iff runner_options::keep_traces; traces[i] belongs to
  /// table.row(i).
  std::vector<model_trace> traces;
  /// End-to-end wall time of the parallel run (vs table.total_wall_ms(),
  /// the serial sum).
  double wall_ms = 0.0;
};

/// Mean prediction accuracy of a trace against the slice's observed
/// surface, over cells with a nonzero observation (paper Eq. 8
/// convention; zero-density cells carry no signal).  Returns
/// {accuracy, scored cell count}.  Exposed for the remote-shard executor
/// (engine/shard.h), which scores server-solved traces locally.
[[nodiscard]] std::pair<double, std::size_t> score_trace(
    const model_trace& trace, const dataset_slice& slice);

/// Expands the sweep into scenarios: slices × models × (the axes each
/// model consumes).  Axes a model ignores are collapsed and recorded as
/// canonical "n/a" values, so no duplicate work is enqueued; "calibrate"
/// rate specs additionally collapse to "preset" for rate-using models
/// that do not support calibration (duplicates removed).  Throws on
/// unknown models/slices or empty axes.
[[nodiscard]] std::vector<scenario> expand_sweep(
    const sweep_spec& spec, const scenario_context& context,
    const model_registry& registry = default_registry());

/// The explicit index-stable grouping step between expand_sweep and
/// run_sweep: partitions scenario indices into the chunks run_sweep
/// hands to pool workers.  Invariants (these are what keep the result
/// table — and its CSV — byte-identical to the scalar path regardless of
/// how a sweep interleaved compatible scenarios):
///  * the chunks partition 0..scenarios.size()−1 exactly;
///  * every chunk lists its members in ascending index order;
///  * chunks are ordered by their first member.
/// Scenarios group only when they share model, slice, scheme, grid
/// resolution, dt and time window, the model supports_batch(), and the
/// rate spec is not a "calibrate" form (calibration fits per scenario
/// before solving, so those stay scalar); everything else becomes a
/// chunk of one.  `batch_width` as in runner_options (0 → auto).
[[nodiscard]] std::vector<std::vector<std::size_t>> batch_sweep(
    std::span<const scenario> scenarios,
    const model_registry& registry = default_registry(),
    std::size_t batch_width = 0);

/// Executes the scenarios on a worker pool.  Compatible scenarios of
/// batch-capable models are advanced in lockstep per worker (see
/// batch_sweep and runner_options::batch_width); per-scenario rows,
/// traces and cache entries are bitwise identical either way.  Scenarios whose rate spec
/// is a "calibrate" form are fitted first (see engine/calibration.h) —
/// the fitted parameters land in the row's fit_* columns and the solved
/// scenario records the resolved rate.  The failure of lowest scenario
/// index is rethrown here after the queue drains, wrapped in a
/// std::runtime_error naming the scenario's index, model and slice.
[[nodiscard]] sweep_result run_sweep(const scenario_context& context,
                                     std::span<const scenario> scenarios,
                                     const runner_options& options = {});

/// Convenience: expand + run.
[[nodiscard]] sweep_result run_sweep(const scenario_context& context,
                                     const sweep_spec& spec,
                                     const runner_options& options = {});

}  // namespace dlm::engine
