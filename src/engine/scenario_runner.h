// Parallel batch execution of scenario sweeps.
//
// `expand_sweep` turns a declarative sweep_spec into a concrete work
// queue (the capability-aware cross product of its axes); `run_sweep`
// executes the queue on a thread pool and aggregates index-ordered
// results into a result_table.  Every scenario is solved and scored
// independently and deterministically, so the table — and its CSV —
// is identical at any thread count.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "engine/diffusion_model.h"
#include "engine/model_registry.h"
#include "engine/result_table.h"
#include "engine/scenario.h"
#include "engine/solve_cache.h"
#include "fit/calibrate.h"

namespace dlm::engine {

struct runner_options {
  /// Worker threads; 0 → std::thread::hardware_concurrency.
  std::size_t threads = 0;
  /// Model registry to resolve scenario.model against; null → the
  /// built-in default_registry().
  const model_registry* registry = nullptr;
  /// Also keep every scenario's predicted trace (index-aligned with the
  /// result rows) — needed by convergence studies; off by default to
  /// keep big sweeps lean.
  bool keep_traces = false;
  /// Memoizing solve cache (see engine/solve_cache.h); null → every
  /// solve runs.  Shared across run_sweep calls by the caller: a warm
  /// repeat of a sweep performs zero additional PDE solves, and the
  /// table CSV is byte-identical to the cold run's.
  solve_cache* cache = nullptr;
  /// Box bounds / lattice resolution / refinement cap for "calibrate"
  /// rate specs.  The solver options and fit_rate flag inside are
  /// ignored — they come from each scenario and its spec.
  fit::calibration_options calibration{};
};

struct sweep_result {
  result_table table;
  /// Present iff runner_options::keep_traces; traces[i] belongs to
  /// table.row(i).
  std::vector<model_trace> traces;
  /// End-to-end wall time of the parallel run (vs table.total_wall_ms(),
  /// the serial sum).
  double wall_ms = 0.0;
};

/// Expands the sweep into scenarios: slices × models × (the axes each
/// model consumes).  Axes a model ignores are collapsed and recorded as
/// canonical "n/a" values, so no duplicate work is enqueued; "calibrate"
/// rate specs additionally collapse to "preset" for rate-using models
/// that do not support calibration (duplicates removed).  Throws on
/// unknown models/slices or empty axes.
[[nodiscard]] std::vector<scenario> expand_sweep(
    const sweep_spec& spec, const scenario_context& context,
    const model_registry& registry = default_registry());

/// Executes the scenarios on a worker pool.  Scenarios whose rate spec
/// is a "calibrate" form are fitted first (see engine/calibration.h) —
/// the fitted parameters land in the row's fit_* columns and the solved
/// scenario records the resolved rate.  The failure of lowest scenario
/// index is rethrown here after the queue drains, wrapped in a
/// std::runtime_error naming the scenario's index, model and slice.
[[nodiscard]] sweep_result run_sweep(const scenario_context& context,
                                     std::span<const scenario> scenarios,
                                     const runner_options& options = {});

/// Convenience: expand + run.
[[nodiscard]] sweep_result run_sweep(const scenario_context& context,
                                     const sweep_spec& spec,
                                     const runner_options& options = {});

}  // namespace dlm::engine
