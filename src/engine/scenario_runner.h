// Parallel batch execution of scenario sweeps.
//
// `expand_sweep` turns a declarative sweep_spec into a concrete work
// queue (the capability-aware cross product of its axes); `run_sweep`
// executes the queue on a thread pool and aggregates index-ordered
// results into a result_table.  Every scenario is solved and scored
// independently and deterministically, so the table — and its CSV —
// is identical at any thread count.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "engine/diffusion_model.h"
#include "engine/model_registry.h"
#include "engine/result_table.h"
#include "engine/scenario.h"

namespace dlm::engine {

struct runner_options {
  /// Worker threads; 0 → std::thread::hardware_concurrency.
  std::size_t threads = 0;
  /// Model registry to resolve scenario.model against; null → the
  /// built-in default_registry().
  const model_registry* registry = nullptr;
  /// Also keep every scenario's predicted trace (index-aligned with the
  /// result rows) — needed by convergence studies; off by default to
  /// keep big sweeps lean.
  bool keep_traces = false;
};

struct sweep_result {
  result_table table;
  /// Present iff runner_options::keep_traces; traces[i] belongs to
  /// table.row(i).
  std::vector<model_trace> traces;
  /// End-to-end wall time of the parallel run (vs table.total_wall_ms(),
  /// the serial sum).
  double wall_ms = 0.0;
};

/// Expands the sweep into scenarios: slices × models × (the axes each
/// model consumes).  Axes a model ignores are collapsed and recorded as
/// canonical "n/a" values, so no duplicate work is enqueued.  Throws on
/// unknown models/slices or empty axes.
[[nodiscard]] std::vector<scenario> expand_sweep(
    const sweep_spec& spec, const scenario_context& context,
    const model_registry& registry = default_registry());

/// Executes the scenarios on a worker pool.  The first exception thrown
/// by any scenario is rethrown here after the queue drains.
[[nodiscard]] sweep_result run_sweep(const scenario_context& context,
                                     std::span<const scenario> scenarios,
                                     const runner_options& options = {});

/// Convenience: expand + run.
[[nodiscard]] sweep_result run_sweep(const scenario_context& context,
                                     const sweep_spec& spec,
                                     const runner_options& options = {});

}  // namespace dlm::engine
