// The shard axis: partitioning one deterministic sweep across processes.
//
// Scenario expansion (expand_sweep) is already a deterministic indexed
// list and batch_sweep groups it into index-stable chunks; sharding
// simply assigns every chunk to exactly one of N shards.  Each shard
// process runs only its chunks — with global scenario indices preserved
// in its result_table rows — so N shard tables recombine
// (engine::merge_tables) into a table whose CSV is byte-identical to
// the unsharded run, and N shard cache files union (merge_cache_files)
// into the unsharded run's cache file bytes.
//
// The partition is **batch-chunk-aligned**: shards own whole batch_sweep
// chunks, never split ones, so the lockstep grouping inside a shard is
// exactly the grouping the unsharded run would have used and per-lane
// traces stay bitwise identical.
//
//   contiguous (default) — a chunk starting at cumulative scenario
//     offset p of S total goes to shard floor(p·N / S): shards own
//     runs of consecutive chunks, balanced by scenario count.
//   strided — chunk c goes to shard c mod N: round-robin over the
//     chunk list, interleaving expensive scenario regions (calibrate
//     blocks) across shards.
//
// Either policy covers every chunk exactly once; which one merely
// trades locality against load balance, and the merged output is
// byte-identical regardless.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "engine/model_registry.h"
#include "engine/result_table.h"
#include "engine/scenario.h"

namespace dlm::engine {

enum class shard_policy { contiguous, strided };

/// One shard of an N-way sweep partition.  The default (0 of 1) owns
/// everything — sharding off.
struct shard_spec {
  std::size_t index = 0;
  std::size_t count = 1;
  shard_policy policy = shard_policy::contiguous;

  /// True when this spec is the whole sweep (no partitioning).
  [[nodiscard]] bool is_all() const noexcept { return count <= 1; }

  /// Throws std::invalid_argument unless 0 <= index < count.
  void validate() const;

  /// Canonical "i/N[:strided]" rendering (contiguous stays implicit).
  [[nodiscard]] std::string label() const;

  bool operator==(const shard_spec&) const = default;
};

/// The accepted forms of a textual shard spec, one per line — appended
/// verbatim to every parse_shard_spec rejection.
[[nodiscard]] const std::string& shard_spec_grammar();

/// Parses "i/N", "i/N:contiguous" or "i/N:strided" (0-based shard index,
/// 0 <= i < N).  Rejections follow the make_rate/make_domain style: the
/// reason, the offending token's 1-based character position, the spec
/// verbatim, and the grammar above.
[[nodiscard]] shard_spec parse_shard_spec(const std::string& spec);

/// Selects the batch_sweep chunks `shard` owns, preserving chunk order
/// and content.  The S in the contiguous policy's floor(p·N / S) is the
/// total scenario count summed over `chunks` (batch_sweep chunks
/// partition the sweep exactly).  Across shards 0..N−1 every chunk is
/// returned exactly once; shard 0 of 1 returns `chunks` unchanged.
[[nodiscard]] std::vector<std::vector<std::size_t>> shard_chunks(
    const std::vector<std::vector<std::size_t>>& chunks,
    const shard_spec& shard);

/// Convenience: the ascending global scenario indices `shard` owns, via
/// batch_sweep + shard_chunks (`batch_width` as in runner_options; the
/// width must match the one the runs use for the partition to be
/// chunk-aligned with them).
[[nodiscard]] std::vector<std::size_t> shard_scenarios(
    std::span<const scenario> scenarios, const shard_spec& shard,
    const model_registry& registry = default_registry(),
    std::size_t batch_width = 0);

/// Connection-resilience knobs for run_shard_remote.
struct remote_options {
  /// Retries after a *connection-level* failure (connect refused, server
  /// closed mid-request, I/O timeout) — each retry reconnects and
  /// re-sends.  Safe to repeat: a reply is a pure function of the
  /// request, so a re-send can only reproduce the same bytes.  "err"
  /// replies are protocol answers, not connection failures, and are
  /// never retried.  0 (default): the historical fail-on-first-error.
  std::size_t retries = 0;
  /// Backoff before retry r is initial * multiplier^(r-1) milliseconds.
  double backoff_initial_ms = 50.0;
  double backoff_multiplier = 2.0;
};

/// Executes the owned scenarios of one shard against a resident
/// dl_serve server (engine/service.h) instead of solving locally: each
/// scenario becomes one "solve" request — calibrate specs first issue a
/// "calibrate" request and re-solve with the fitted overrides, exactly
/// run_sweep's order of operations — and the returned trace is scored
/// locally.  Because every double crosses the wire through
/// format_full_precision (exact round-trip), the resulting rows are
/// byte-identical to a local run's, so remote shards merge with local
/// ones transparently.  Note the server's calibration options must
/// match the local runner_options::calibration for calibrate rows to
/// agree.  `owned` lists ascending global scenario indices (from
/// shard_scenarios).  Throws std::runtime_error naming the scenario on
/// any "err" reply or connection failure.
[[nodiscard]] result_table run_shard_remote(
    const scenario_context& context, std::span<const scenario> scenarios,
    std::span<const std::size_t> owned, const std::string& socket_path,
    const model_registry& registry = default_registry(),
    const remote_options& remote = {});

}  // namespace dlm::engine
