// Deterministic fault injection for the failure-domain layer.
//
// Robustness code that only runs when hardware actually fails is
// robustness code that has never run.  A fault_plan is a parsed,
// deterministic schedule of failures — "crash worker 2 when it starts
// its chunk 3", "hang worker 1 at chunk 0", "tear the 5th journal
// record" — threaded through the supervisor (engine/supervisor.h), the
// cache journal (engine/cache_journal.h) and the shard driver
// (tools/dl_shard --fault) so every recovery path is exercised by tests
// on every CI run, not hoped-for.
//
// Spec grammar (one or more faults, ';'-separated):
//
//   crash:worker<i>@chunk<j>[|tries=<n>]
//       the worker running shard i calls std::abort() (SIGABRT) when it
//       starts the j-th chunk it owns (0-based, submission order);
//   hang:worker<i>@chunk<j>[|tries=<n>]
//       the worker sleeps instead of running the chunk — the shape a
//       wedged NFS mount or a livelocked dependency presents — until
//       the supervisor's per-shard timeout kills it;
//   torn-write:journal@rec<k>[|tries=<n>]
//       the cache journal writes only the first half of the k-th record
//       it appends (0-based, per journal instance), flushes, and latches
//       its write error — the on-disk shape a power cut mid-append
//       leaves behind.
//
// `tries=<n>` arms the fault on attempts 1..n only (the supervisor
// numbers attempts from 1 and exports the current attempt to workers in
// the DLM_WORKER_ATTEMPT environment variable), so a retried worker
// succeeds — the knob that makes retry-with-backoff testable.  Without
// it a fault fires on every attempt.
//
// Parsing follows the repo's spec-grammar convention (make_rate,
// make_domain, parse_shard_spec): rejections name the reason, the
// offending token's 1-based character position in the full plan string,
// the spec verbatim, and the accepted grammar.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace dlm::engine {

enum class fault_kind { crash, hang, torn_write };

/// One scheduled failure.
struct fault_point {
  fault_kind kind = fault_kind::crash;
  /// crash/hang: the 0-based shard (worker) index.  Unused for
  /// torn_write (the journal is per process).
  std::size_t worker = 0;
  /// crash/hang: the 0-based chunk ordinal within the worker's own chunk
  /// list.  torn_write: the 0-based record ordinal within the journal
  /// instance's appends.
  std::size_t site = 0;
  /// Fire on attempts 1..tries only; 0 = every attempt.
  std::size_t tries = 0;

  bool operator==(const fault_point&) const = default;
};

/// A parsed fault schedule.  Default-constructed: no faults.
class fault_plan {
 public:
  fault_plan() = default;
  explicit fault_plan(std::vector<fault_point> points)
      : points_(std::move(points)) {}

  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }
  [[nodiscard]] const std::vector<fault_point>& points() const noexcept {
    return points_;
  }

  /// Canonical rendering — parse_fault_plan(label()) round-trips.
  [[nodiscard]] std::string label() const;

  /// True when a crash/hang fault is armed for (worker, chunk) at the
  /// given 1-based attempt.
  [[nodiscard]] bool should_crash(std::size_t worker, std::size_t chunk,
                                  std::size_t attempt) const;
  [[nodiscard]] bool should_hang(std::size_t worker, std::size_t chunk,
                                 std::size_t attempt) const;

  /// The record ordinal of an armed torn-write fault at the given
  /// attempt, or nullopt — passed to cache_journal via
  /// journal_options::torn_write_record.
  [[nodiscard]] std::optional<std::uint64_t> torn_write_record(
      std::size_t attempt) const;

 private:
  std::vector<fault_point> points_;
};

/// The accepted spec forms, one per line — appended verbatim to every
/// parse_fault_plan rejection.
[[nodiscard]] const std::string& fault_plan_grammar();

/// Parses a ';'-separated fault plan (grammar above).  Throws
/// std::invalid_argument with a 1-based position on any defect.
[[nodiscard]] fault_plan parse_fault_plan(const std::string& spec);

/// Environment variable through which the supervisor tells a worker
/// which attempt it is (1-based).  Absent → attempt 1.
inline constexpr const char* kWorkerAttemptEnv = "DLM_WORKER_ATTEMPT";

/// Reads kWorkerAttemptEnv; 1 when unset or unparsable.
[[nodiscard]] std::size_t worker_attempt_from_env();

/// Builds the runner_options::on_chunk_start hook that arms `plan`'s
/// crash/hang faults for shard `worker` at `attempt`: crash prints one
/// stderr line and calls std::abort() (so the supervisor's diagnostic
/// names SIGABRT); hang sleeps `hang_seconds` — long past any sane
/// per-shard timeout, finite so a forgotten timeout cannot wedge CI
/// forever.  Returns an empty function when the plan holds no
/// crash/hang fault for this worker (so callers can skip installing
/// the hook entirely).
[[nodiscard]] std::function<void(std::size_t)> make_fault_hook(
    fault_plan plan, std::size_t worker, std::size_t attempt,
    double hang_seconds = 600.0);

}  // namespace dlm::engine
