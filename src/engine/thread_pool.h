// Fixed-size worker pool for the scenario runner.
//
// Deliberately minimal: submit fire-and-forget tasks, wait for the queue
// to drain.  Determinism of sweep results does not come from the pool —
// it comes from the runner writing each result into a pre-assigned index
// — so the pool is free to schedule tasks in any order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dlm::engine {

class thread_pool {
 public:
  /// Spawns `threads` workers (0 → std::thread::hardware_concurrency,
  /// itself falling back to 1).
  explicit thread_pool(std::size_t threads = 0);

  /// Joins all workers; pending tasks are still executed first.
  ~thread_pool();

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task.  Throws std::invalid_argument for a null task.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait();

  /// Runs every task in `tasks` and returns once all have completed.
  /// The calling thread participates in execution, so this is safe to
  /// call from *inside* a pool worker (a nested batch cannot deadlock
  /// even when every worker is busy); idle workers join in to speed the
  /// batch up.  The first exception thrown by a task (lowest task index)
  /// is rethrown after the batch drains.  Throws std::invalid_argument
  /// for a null task.
  void run_batch(std::vector<std::function<void()>> tasks);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace dlm::engine
