// Aggregated sweep results: one row per scenario, CSV in and out.
//
// Rows carry the full scenario description (so a CSV line alone
// reproduces the run), the accuracy score, the calibration outcome when
// the scenario's rate spec was a "calibrate" form, and the wall time.
// CSV export omits timing and the cache hit/miss split by default: two
// runs of the same sweep — at any thread count, against a cold or a warm
// solve cache — must produce byte-identical CSV, and those are the
// nondeterministic columns.  String fields are quoted RFC-4180 style
// (comma / quote / CR / LF trigger quoting, embedded quotes double), so
// comma-bearing rate specs like "decay:1.4,1.5,0.25" — the exact form
// calibration emits — round-trip exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace dlm::engine {

/// One scored scenario.
struct result_row {
  std::size_t index = 0;      ///< position in the expanded sweep
  std::string model;
  std::string slice;          ///< slice name, e.g. "s1/hops"
  std::string story;
  std::string metric;         ///< "friendship_hops" / "shared_interests"
  std::string scheme;         ///< DL scheme, "-" when not applicable
  std::size_t points_per_unit = 0;  ///< 0 when not applicable
  double dt = 0.0;            ///< 0 when not applicable
  std::string rate;           ///< requested rate spec, "-" when n/a
  /// The concrete rate the model ran with: the canonical form of `rate`
  /// ("preset" resolves to the metric's paper rate) or, for calibrate
  /// specs, the fitted "decay:<a>,<b>,<c>".  "-" when the model has no
  /// rate axis.
  std::string resolved_rate = "-";
  /// Canonical label of the domain the model solved on (core::domain).
  /// "line" for every model without a domain axis.  Emitted as a CSV
  /// column only when some row is non-line, so line-only sweeps keep
  /// their historical byte-exact CSV.
  std::string domain = "line";
  double t0 = 0.0;
  double t_end = 0.0;
  std::size_t cells = 0;      ///< scored (distance, hour) cells
  double accuracy = 0.0;      ///< mean prediction accuracy over cells
  // Calibration outcome — all zero for rows without a calibrate spec.
  double fit_d = 0.0;         ///< fitted diffusion rate
  double fit_k = 0.0;         ///< fitted carrying capacity
  double fit_a = 0.0;         ///< fitted rate amplitude (0 if rate kept)
  double fit_b = 0.0;         ///< fitted rate decay (0 if rate kept)
  double fit_c = 0.0;         ///< fitted rate floor (0 if rate kept)
  /// Fitted per-group rate multipliers of a "calibrate-spatial" row
  /// (paper §V); empty otherwise.  Rendered in CSV as one comma-joined,
  /// RFC-4180-quoted field.
  std::vector<double> fit_m;
  double fit_sse = 0.0;       ///< objective at the optimum
  std::size_t fit_evals = 0;  ///< objective evaluations (deterministic)
  /// How fit_evals split between real PDE solves and solve-cache hits.
  /// Depends on cache warmth and scheduling — excluded from same_result
  /// and from CSV unless csv_options::include_cache_stats.
  std::size_t fit_solves = 0;
  std::size_t fit_hits = 0;
  /// Wall time of the scenario: solve + scoring, plus the whole
  /// calibration fit for calibrate rows (which dominates it there).
  double wall_ms = 0.0;

  /// Equality over everything except wall_ms and the fit_solves/fit_hits
  /// split (the nondeterministic fields).
  [[nodiscard]] bool same_result(const result_row& other) const;
};

/// Controls CSV rendering.
struct csv_options {
  bool include_timing = false;       ///< append the wall_ms column
  bool include_cache_stats = false;  ///< append fit_solves/fit_hits
};

class result_table {
 public:
  result_table() = default;
  explicit result_table(std::vector<result_row> rows);

  [[nodiscard]] const std::vector<result_row>& rows() const noexcept {
    return rows_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return rows_.size(); }
  [[nodiscard]] bool empty() const noexcept { return rows_.empty(); }
  [[nodiscard]] const result_row& row(std::size_t i) const;

  /// The row with the highest accuracy (ties: lowest index).
  /// Throws std::out_of_range on an empty table.
  [[nodiscard]] const result_row& best() const;

  /// Sum of per-row wall times (the serial cost of the sweep).
  [[nodiscard]] double total_wall_ms() const;

  /// Deterministic CSV: header line + one line per row in index order.
  /// Doubles are printed with %.17g and string fields are RFC-4180
  /// quoted, so from_csv round-trips exactly.
  [[nodiscard]] std::string to_csv(const csv_options& options = {}) const;
  void write_csv(std::ostream& out, const csv_options& options = {}) const;

  /// Parses CSV produced by to_csv (any column set).  Throws
  /// std::invalid_argument on an unknown header or a malformed line.
  [[nodiscard]] static result_table from_csv(std::string_view csv);

  /// Column-aligned human-readable rendering (accuracy as a percentage,
  /// calibration SSE/evaluations and timing included).
  [[nodiscard]] std::string to_text() const;

 private:
  std::vector<result_row> rows_;
};

/// Recombines the per-shard tables of one partitioned sweep
/// (engine/shard.h) into the unsharded table: rows are concatenated and
/// ordered by their global scenario index, so the merged table's CSV and
/// text renderings are byte-identical to the single-process run's —
/// regardless of shard count, policy, or the order the shard tables are
/// passed in.  Validates that the shards form an exact partition:
/// throws std::invalid_argument when a scenario index appears in more
/// than one shard or is missing entirely (a dropped or truncated shard
/// CSV must not merge into a silently smaller table).
[[nodiscard]] result_table merge_tables(std::span<const result_table> shards);

/// Outcome of merge_tables_partial.
struct partial_merge {
  /// The completed rows, ordered by global scenario index.  Each row's
  /// CSV line is byte-identical to the same row of the unsharded run
  /// (rows render independently, so a missing sibling changes nothing).
  result_table table;
  /// Global scenario indices with no row in any input shard, ascending
  /// — the machine-readable gap a degraded merge must report (the
  /// dl_shard --allow-partial manifest).  Empty iff the shards form an
  /// exact partition.
  std::vector<std::size_t> missing;
};

/// Like merge_tables, but for the surviving shards of a partially failed
/// run (dl_shard --allow-partial): rows are merged and sorted as usual,
/// and gaps are *reported* instead of rejected.  `total` is the full
/// sweep's scenario count.  Still throws std::invalid_argument on a
/// duplicated index or an index >= total — those are corruption, not
/// degradation.
[[nodiscard]] partial_merge merge_tables_partial(
    std::span<const result_table> shards, std::size_t total);

}  // namespace dlm::engine
