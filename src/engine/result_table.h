// Aggregated sweep results: one row per scenario, CSV in and out.
//
// Rows carry the full scenario description (so a CSV line alone
// reproduces the run), the accuracy score and the wall time.  CSV export
// omits timing by default: two runs of the same sweep — at any thread
// count — must produce byte-identical CSV, and wall time is the one
// nondeterministic column.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace dlm::engine {

/// One scored scenario.
struct result_row {
  std::size_t index = 0;      ///< position in the expanded sweep
  std::string model;
  std::string slice;          ///< slice name, e.g. "s1/hops"
  std::string story;
  std::string metric;         ///< "friendship_hops" / "shared_interests"
  std::string scheme;         ///< DL scheme, "-" when not applicable
  std::size_t points_per_unit = 0;  ///< 0 when not applicable
  double dt = 0.0;            ///< 0 when not applicable
  std::string rate;           ///< rate spec, "-" when not applicable
  double t0 = 0.0;
  double t_end = 0.0;
  std::size_t cells = 0;      ///< scored (distance, hour) cells
  double accuracy = 0.0;      ///< mean prediction accuracy over cells
  double wall_ms = 0.0;       ///< solve + scoring wall time

  /// Equality over everything except wall_ms (the nondeterministic field).
  [[nodiscard]] bool same_result(const result_row& other) const;
};

/// Controls CSV rendering.
struct csv_options {
  bool include_timing = false;  ///< append the wall_ms column
};

class result_table {
 public:
  result_table() = default;
  explicit result_table(std::vector<result_row> rows);

  [[nodiscard]] const std::vector<result_row>& rows() const noexcept {
    return rows_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return rows_.size(); }
  [[nodiscard]] bool empty() const noexcept { return rows_.empty(); }
  [[nodiscard]] const result_row& row(std::size_t i) const;

  /// The row with the highest accuracy (ties: lowest index).
  /// Throws std::out_of_range on an empty table.
  [[nodiscard]] const result_row& best() const;

  /// Sum of per-row wall times (the serial cost of the sweep).
  [[nodiscard]] double total_wall_ms() const;

  /// Deterministic CSV: header line + one line per row in index order.
  /// Doubles are printed with %.17g so from_csv round-trips exactly.
  [[nodiscard]] std::string to_csv(const csv_options& options = {}) const;
  void write_csv(std::ostream& out, const csv_options& options = {}) const;

  /// Parses CSV produced by to_csv (either column set).  Throws
  /// std::invalid_argument on an unknown header or a malformed line.
  [[nodiscard]] static result_table from_csv(std::string_view csv);

  /// Column-aligned human-readable rendering (accuracy as a percentage,
  /// timing included).
  [[nodiscard]] std::string to_text() const;

 private:
  std::vector<result_row> rows_;
};

}  // namespace dlm::engine
