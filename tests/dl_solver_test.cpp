#include "core/dl_solver.h"

#include <gtest/gtest.h>

#include <cmath>

#include "models/heat_model.h"
#include "models/logistic.h"

namespace {

using namespace dlm::core;

const std::vector<double> observed{1.9, 0.8, 1.1, 0.6, 0.4, 0.3};

dl_solver_options options_for(dl_scheme scheme) {
  dl_solver_options opts;
  opts.scheme = scheme;
  opts.points_per_unit = 20;
  opts.dt = scheme == dl_scheme::ftcs ? 0.01 : 0.02;
  return opts;
}

TEST(NeumannLaplacian, InteriorAndBoundaryStencils) {
  const std::vector<double> u{1.0, 2.0, 4.0, 2.0, 1.0};
  std::vector<double> lap(5);
  neumann_laplacian(u, 1.0, lap);
  EXPECT_DOUBLE_EQ(lap[0], 2.0 * (2.0 - 1.0));  // mirror ghost
  EXPECT_DOUBLE_EQ(lap[1], 1.0 - 4.0 + 4.0);    // u0 - 2u1 + u2
  EXPECT_DOUBLE_EQ(lap[2], 2.0 - 8.0 + 2.0);
  EXPECT_DOUBLE_EQ(lap[4], 2.0 * (2.0 - 1.0));
  std::vector<double> too_small(3);
  EXPECT_THROW(neumann_laplacian(u, 1.0, too_small), std::invalid_argument);
}

TEST(NeumannLaplacian, ZeroForConstantProfile) {
  const std::vector<double> u(9, 3.5);
  std::vector<double> lap(9);
  neumann_laplacian(u, 0.25, lap);
  for (double v : lap) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(DlSolver, AllSchemesAgree) {
  const dl_parameters params = dl_parameters::paper_hops(6.0);
  const initial_condition phi(observed);
  const dl_solution reference =
      solve_dl(params, phi, 1.0, 6.0, options_for(dl_scheme::mol_rk4));

  for (dl_scheme scheme : {dl_scheme::ftcs, dl_scheme::strang_cn,
                           dl_scheme::implicit_newton}) {
    const dl_solution sol =
        solve_dl(params, phi, 1.0, 6.0, options_for(scheme));
    for (int x = 1; x <= 6; ++x) {
      EXPECT_NEAR(sol.at(x, 6.0), reference.at(x, 6.0),
                  0.02 * reference.at(x, 6.0) + 0.02)
          << to_string(scheme) << " at x=" << x;
    }
  }
}

TEST(DlSolver, ZeroDiffusionMatchesClosedFormLogistic) {
  // With d = 0 every grid point follows the scalar logistic ODE exactly.
  dl_parameters params = dl_parameters::paper_hops(6.0);
  params.d = 0.0;
  params.r = growth_rate::constant(0.7);
  const initial_condition phi(observed);
  const dl_solution sol =
      solve_dl(params, phi, 1.0, 8.0, options_for(dl_scheme::strang_cn));
  for (int x = 1; x <= 6; ++x) {
    const double expected = dlm::models::logistic_solution(
        phi(x), 0.7, params.k, 1.0, 8.0);
    EXPECT_NEAR(sol.at(x, 8.0), expected, 1e-6) << "x=" << x;
  }
}

TEST(DlSolver, ZeroReactionMatchesHeatSeries) {
  // With r = 0 the DL equation is the Neumann heat equation.
  dl_parameters params = dl_parameters::paper_hops(6.0);
  params.r = growth_rate::constant(0.0);
  params.d = 0.05;
  const initial_condition phi(observed);

  dl_solver_options opts = options_for(dl_scheme::strang_cn);
  opts.points_per_unit = 40;
  opts.dt = 0.005;
  const dl_solution sol = solve_dl(params, phi, 1.0, 11.0, opts);

  const std::size_t n = sol.grid().points();
  const std::vector<double> phi_samples = phi.sample(1.0, 6.0, n);
  const std::vector<double> heat = dlm::models::heat_neumann_series(
      phi_samples, 1.0, 6.0, params.d, 10.0, 128);
  const std::vector<double> profile = sol.profile_at(11.0);
  for (std::size_t i = 0; i < n; i += 10)
    EXPECT_NEAR(profile[i], heat[i], 5e-3) << "node " << i;
}

TEST(DlSolver, EquilibriaAreFixedPoints) {
  const dl_parameters params = dl_parameters::paper_hops(6.0);
  // I = K stays K; I = 0 stays 0 (the two equilibria of §II.C).
  const std::vector<double> at_k(101, params.k);
  const dl_solution top = solve_dl_profile(params, at_k, 1.0, 10.0,
                                           options_for(dl_scheme::strang_cn));
  EXPECT_NEAR(top.at(3.0, 10.0), params.k, 1e-9);
  const std::vector<double> at_zero(101, 0.0);
  const dl_solution bottom = solve_dl_profile(
      params, at_zero, 1.0, 10.0, options_for(dl_scheme::strang_cn));
  EXPECT_NEAR(bottom.at(3.0, 10.0), 0.0, 1e-12);
}

TEST(DlSolver, SolutionStaysWithinUniqueBand) {
  // 0 ≤ I ≤ K for every scheme (paper's unique property).
  const dl_parameters params = dl_parameters::paper_hops(6.0);
  const initial_condition phi(observed);
  for (dl_scheme scheme : {dl_scheme::ftcs, dl_scheme::strang_cn,
                           dl_scheme::implicit_newton, dl_scheme::mol_rk4}) {
    const dl_solution sol =
        solve_dl(params, phi, 1.0, 50.0, options_for(scheme));
    for (const auto& state : sol.states()) {
      for (double v : state) {
        EXPECT_GE(v, -1e-9) << to_string(scheme);
        EXPECT_LE(v, params.k + 1e-6) << to_string(scheme);
      }
    }
  }
}

TEST(DlSolver, StrictlyIncreasingForLowerSolutionPhi) {
  // Paper §II.C: with φ a lower solution, I is strictly increasing in t.
  const dl_parameters params = dl_parameters::paper_hops(6.0);
  const initial_condition phi(observed);
  const dl_solution sol =
      solve_dl(params, phi, 1.0, 20.0, options_for(dl_scheme::strang_cn));
  const auto& states = sol.states();
  for (std::size_t s = 1; s < states.size(); ++s) {
    for (std::size_t i = 0; i < states[s].size(); ++i)
      EXPECT_GT(states[s][i], states[s - 1][i] - 1e-12);
  }
}

TEST(DlSolver, DiffusionTransportsAcrossDistance) {
  // A point mass spreads to neighbours with d > 0 but not with d = 0.
  std::vector<double> spike(101, 0.0);
  spike[50] = 10.0;
  dl_parameters params = dl_parameters::paper_hops(6.0);
  params.r = growth_rate::constant(0.0);
  params.d = 0.05;
  const dl_solution with_d = solve_dl_profile(
      params, spike, 1.0, 5.0, options_for(dl_scheme::strang_cn));
  EXPECT_GT(with_d.at(3.2, 5.0), 0.01);
  params.d = 0.0;
  const dl_solution without_d = solve_dl_profile(
      params, spike, 1.0, 5.0, options_for(dl_scheme::strang_cn));
  EXPECT_NEAR(without_d.at(3.2, 5.0), 0.0, 1e-9);
}

TEST(DlSolver, NeumannBoundariesConserveHeatMass) {
  // Pure diffusion: the spatial mean is invariant (no flux leaves).
  dl_parameters params = dl_parameters::paper_hops(6.0);
  params.r = growth_rate::constant(0.0);
  const initial_condition phi(observed);
  const dl_solution sol =
      solve_dl(params, phi, 1.0, 30.0, options_for(dl_scheme::strang_cn));
  const double before = dlm::models::profile_mean(sol.states().front());
  const double after = dlm::models::profile_mean(sol.states().back());
  EXPECT_NEAR(after, before, 1e-6);
}

TEST(DlSolver, FtcsInstabilityGuard) {
  const dl_parameters params = dl_parameters::paper_hops(6.0);
  const initial_condition phi(observed);
  dl_solver_options opts;
  opts.scheme = dl_scheme::ftcs;
  opts.points_per_unit = 100;  // dx = 0.01 → dt_max = 0.005
  opts.dt = 0.05;
  EXPECT_THROW((void)solve_dl(params, phi, 1.0, 2.0, opts),
               std::invalid_argument);
}

TEST(DlSolver, RecordsSnapshotsAtRequestedCadence) {
  const dl_parameters params = dl_parameters::paper_hops(6.0);
  const initial_condition phi(observed);
  dl_solver_options opts = options_for(dl_scheme::strang_cn);
  opts.record_dt = 1.0;
  const dl_solution sol = solve_dl(params, phi, 1.0, 6.0, opts);
  ASSERT_GE(sol.times().size(), 6u);
  EXPECT_DOUBLE_EQ(sol.times().front(), 1.0);
  EXPECT_DOUBLE_EQ(sol.times().back(), 6.0);
}

TEST(DlSolution, InterpolationAndRangeChecks) {
  const dl_parameters params = dl_parameters::paper_hops(6.0);
  const initial_condition phi(observed);
  const dl_solution sol =
      solve_dl(params, phi, 1.0, 6.0, options_for(dl_scheme::strang_cn));
  // t = t0 returns φ exactly at the nodes.
  EXPECT_NEAR(sol.at(1.0, 1.0), observed[0], 1e-9);
  EXPECT_NEAR(sol.at(4.0, 1.0), observed[3], 1e-9);
  // Interpolated values lie between snapshot values.
  const double lo = sol.at(2.0, 3.0);
  const double hi = sol.at(2.0, 4.0);
  const double mid = sol.at(2.0, 3.5);
  EXPECT_GT(mid, std::min(lo, hi) - 1e-12);
  EXPECT_LT(mid, std::max(lo, hi) + 1e-12);
  // Out-of-domain access throws.
  EXPECT_THROW((void)sol.at(0.5, 3.0), std::out_of_range);
  EXPECT_THROW((void)sol.at(3.0, 0.5), std::out_of_range);
  EXPECT_THROW((void)sol.at(3.0, 7.0), std::out_of_range);
}

TEST(DlSolution, IntegerDistanceExtraction) {
  const dl_parameters params = dl_parameters::paper_hops(6.0);
  const initial_condition phi(observed);
  const dl_solution sol =
      solve_dl(params, phi, 1.0, 6.0, options_for(dl_scheme::strang_cn));
  const std::vector<double> profile = sol.at_integer_distances(1.0, 1, 6);
  ASSERT_EQ(profile.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i)
    EXPECT_NEAR(profile[i], observed[i], 1e-9);
  EXPECT_THROW((void)sol.at_integer_distances(1.0, 4, 2),
               std::invalid_argument);
}

TEST(DlSolver, InvalidOptionsThrow) {
  const dl_parameters params = dl_parameters::paper_hops(6.0);
  const initial_condition phi(observed);
  dl_solver_options opts;
  opts.dt = 0.0;
  EXPECT_THROW((void)solve_dl(params, phi, 1.0, 2.0, opts),
               std::invalid_argument);
  EXPECT_THROW((void)solve_dl(params, phi, 2.0, 2.0, dl_solver_options{}),
               std::invalid_argument);
  EXPECT_THROW((void)solve_dl_profile(params, std::vector<double>{1.0, 2.0},
                                      1.0, 2.0, dl_solver_options{}),
               std::invalid_argument);
}

TEST(DlScheme, ToStringCoversAll) {
  EXPECT_EQ(to_string(dl_scheme::ftcs), "ftcs");
  EXPECT_EQ(to_string(dl_scheme::strang_cn), "strang-cn");
  EXPECT_EQ(to_string(dl_scheme::implicit_newton), "implicit-newton");
  EXPECT_EQ(to_string(dl_scheme::mol_rk4), "mol-rk4");
}

// Property sweep: every scheme stays within the unique band across a
// parameter lattice of (d, K).
struct band_case {
  dl_scheme scheme;
  double d;
  double k;
};

class UniqueBandSweep : public ::testing::TestWithParam<band_case> {};

TEST_P(UniqueBandSweep, BoundsHold) {
  const band_case c = GetParam();
  dl_parameters params;
  params.d = c.d;
  params.k = c.k;
  params.x_min = 1.0;
  params.x_max = 6.0;
  params.r = growth_rate::paper_hops();
  const initial_condition phi(observed);
  dl_solver_options opts = options_for(c.scheme);
  if (c.scheme == dl_scheme::ftcs && c.d > 0.0) {
    const double dx = 1.0 / static_cast<double>(opts.points_per_unit);
    opts.dt = std::min(opts.dt, 0.4 * dx * dx / c.d);
  }
  const dl_solution sol = solve_dl(params, phi, 1.0, 25.0, opts);
  for (const auto& state : sol.states()) {
    for (double v : state) {
      EXPECT_GE(v, -1e-8);
      EXPECT_LE(v, c.k * (1.0 + 1e-6) + 1e-8);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ParameterLattice, UniqueBandSweep,
    ::testing::Values(
        band_case{dl_scheme::strang_cn, 0.0, 25.0},
        band_case{dl_scheme::strang_cn, 0.01, 25.0},
        band_case{dl_scheme::strang_cn, 0.05, 60.0},
        band_case{dl_scheme::strang_cn, 0.5, 10.0},
        band_case{dl_scheme::implicit_newton, 0.01, 25.0},
        band_case{dl_scheme::implicit_newton, 0.2, 60.0},
        band_case{dl_scheme::ftcs, 0.01, 25.0},
        band_case{dl_scheme::mol_rk4, 0.05, 60.0}));

}  // namespace
