// The failure-domain suite (ctest label `fault`).
//
// Robustness code that only runs when hardware actually fails has never
// run.  Everything here *makes* the failures happen — deterministically
// — and pins the recovery the layer promises:
//
//  * the fault-plan grammar (engine/fault.h) parses, round-trips and
//    rejects with 1-based positions like every other spec parser;
//  * the supervisor (engine/supervisor.h) names signals, enforces
//    per-attempt timeouts, retries with the attempt number exported to
//    the child, and either fail-fasts siblings or lets them finish;
//  * a SIGKILLed journaled sweep replays from snapshot + WAL and
//    re-runs with zero PDE solves — the headline crash-safety claim;
//  * dl_shard end-to-end (via DLM_SHARD_BIN): an injected worker crash
//    under --allow-partial exits 0, merges the completed shards
//    byte-identically to the unsharded rows and names the missing
//    indices in the manifest; --retries turns the same crash into a
//    full-success run;
//  * the resident service answers "health", bounds wedged clients with
//    io_timeout_sec (counting them in stats dropped=), and
//    run_shard_remote reconnects through remote_options.

#include "engine/fault.h"

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/dl_model.h"
#include "engine/cache_io.h"
#include "engine/scenario_runner.h"
#include "engine/service.h"
#include "engine/shard.h"
#include "engine/supervisor.h"

namespace {

using namespace dlm;
using engine::fault_kind;
using engine::fault_plan;
using engine::fault_point;

std::filesystem::path temp_path(const std::string& leaf) {
  return std::filesystem::temp_directory_path() /
         ("dlm_fault_test_" + std::to_string(::getpid()) + "_" + leaf);
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

// ------------------------------------------------------ fault-plan grammar

TEST(FaultPlan, ParsesEveryAcceptedForm) {
  const fault_plan crash = engine::parse_fault_plan("crash:worker2@chunk3");
  ASSERT_EQ(crash.points().size(), 1u);
  EXPECT_EQ(crash.points()[0], (fault_point{fault_kind::crash, 2, 3, 0}));

  const fault_plan hang =
      engine::parse_fault_plan("hang:worker1@chunk0|tries=2");
  ASSERT_EQ(hang.points().size(), 1u);
  EXPECT_EQ(hang.points()[0], (fault_point{fault_kind::hang, 1, 0, 2}));

  const fault_plan torn = engine::parse_fault_plan("torn-write:journal@rec5");
  ASSERT_EQ(torn.points().size(), 1u);
  EXPECT_EQ(torn.points()[0].kind, fault_kind::torn_write);
  EXPECT_EQ(torn.points()[0].site, 5u);

  const fault_plan multi = engine::parse_fault_plan(
      "crash:worker0@chunk1;hang:worker1@chunk0|tries=2;"
      "torn-write:journal@rec5|tries=1");
  EXPECT_EQ(multi.points().size(), 3u);
}

TEST(FaultPlan, LabelRoundTripsThroughTheParser) {
  const std::string spec =
      "crash:worker0@chunk1;hang:worker1@chunk0|tries=2;"
      "torn-write:journal@rec5";
  const fault_plan plan = engine::parse_fault_plan(spec);
  EXPECT_EQ(plan.label(), spec);
  EXPECT_EQ(engine::parse_fault_plan(plan.label()).label(), spec);
  EXPECT_TRUE(fault_plan().empty());
  EXPECT_EQ(fault_plan().label(), "");
}

TEST(FaultPlan, TriesGatesTheAttemptsAFaultFiresOn) {
  const fault_plan plan =
      engine::parse_fault_plan("crash:worker1@chunk2|tries=2");
  EXPECT_TRUE(plan.should_crash(1, 2, 1));
  EXPECT_TRUE(plan.should_crash(1, 2, 2));
  EXPECT_FALSE(plan.should_crash(1, 2, 3)) << "tries=2 must disarm attempt 3";
  EXPECT_FALSE(plan.should_crash(0, 2, 1)) << "wrong worker";
  EXPECT_FALSE(plan.should_crash(1, 0, 1)) << "wrong chunk";
  EXPECT_FALSE(plan.should_hang(1, 2, 1)) << "crash is not hang";

  // tries omitted: armed on every attempt.
  const fault_plan always = engine::parse_fault_plan("hang:worker0@chunk0");
  EXPECT_TRUE(always.should_hang(0, 0, 1));
  EXPECT_TRUE(always.should_hang(0, 0, 99));

  const fault_plan torn =
      engine::parse_fault_plan("torn-write:journal@rec4|tries=1");
  EXPECT_EQ(torn.torn_write_record(1), std::optional<std::uint64_t>(4));
  EXPECT_EQ(torn.torn_write_record(2), std::nullopt);
}

TEST(FaultPlan, RejectionsNameThePositionSpecAndGrammar) {
  const struct {
    const char* spec;
    const char* fragment;
    const char* position;  // "at position N" — 1-based in the full plan
  } cases[] = {
      {"", "empty fault plan", "at position 1"},
      {"explode:worker0@chunk0", "unknown fault kind 'explode'",
       "at position 1"},
      {"crashworker0chunk0", "missing ':'", "at position 1"},
      {"crash:w0@chunk0", "fault subject must be 'worker<i>'",
       "at position 7"},
      {"crash:workerX@chunk0", "bad worker index 'X'", "at position 13"},
      {"crash:worker0chunk0", "missing '@'", "at position 7"},
      {"crash:worker0@lap0", "fault site must be 'chunk<j>'",
       "at position 15"},
      {"crash:worker0@chunk", "bad chunk index ''", "at position 20"},
      {"crash:worker0@chunk0|boom=2", "unknown fault option 'boom=2'",
       "at position 22"},
      {"crash:worker0@chunk0|tries=0", "tries count must be positive",
       "at position 28"},
      {"crash:worker0@chunk0;", "empty fault", "at position 22"},
      {"torn-write:disk@rec0", "torn-write subject must be 'journal'",
       "at position 12"},
      {"torn-write:journal@5", "torn-write site must be 'rec<k>'",
       "at position 20"},
  };
  for (const auto& c : cases) {
    try {
      (void)engine::parse_fault_plan(c.spec);
      FAIL() << "'" << c.spec << "' parsed";
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(c.fragment), std::string::npos)
          << c.spec << ": " << what;
      EXPECT_NE(what.find(c.position), std::string::npos)
          << c.spec << ": " << what;
      EXPECT_NE(what.find("'" + std::string(c.spec) + "'"), std::string::npos)
          << "spec not echoed verbatim: " << what;
      EXPECT_NE(what.find("accepted fault plan forms"), std::string::npos)
          << "grammar missing: " << what;
    }
  }
}

TEST(FaultPlan, WorkerAttemptComesFromTheSupervisorEnv) {
  ::unsetenv(engine::kWorkerAttemptEnv);
  EXPECT_EQ(engine::worker_attempt_from_env(), 1u);
  ::setenv(engine::kWorkerAttemptEnv, "3", 1);
  EXPECT_EQ(engine::worker_attempt_from_env(), 3u);
  ::setenv(engine::kWorkerAttemptEnv, "zebra", 1);
  EXPECT_EQ(engine::worker_attempt_from_env(), 1u);
  ::unsetenv(engine::kWorkerAttemptEnv);
}

TEST(FaultHook, IsEmptyUnlessAFaultIsArmedForThisWorkerAndAttempt) {
  const fault_plan plan =
      engine::parse_fault_plan("crash:worker1@chunk2|tries=1");
  EXPECT_FALSE(static_cast<bool>(engine::make_fault_hook(plan, 0, 1)))
      << "hook installed for an unaffected worker";
  EXPECT_FALSE(static_cast<bool>(engine::make_fault_hook(plan, 1, 2)))
      << "hook installed past the tries gate";
  EXPECT_TRUE(static_cast<bool>(engine::make_fault_hook(plan, 1, 1)));
  EXPECT_FALSE(static_cast<bool>(
      engine::make_fault_hook(engine::parse_fault_plan("torn-write:journal@rec0"),
                              0, 1)))
      << "torn-write is the journal's fault, not the runner hook's";

  // A hang hook with a tiny budget must return (the slice-sleeping loop
  // is what keeps a forgotten timeout from wedging CI forever).
  const auto hook = engine::make_fault_hook(
      engine::parse_fault_plan("hang:worker0@chunk1"), 0, 1,
      /*hang_seconds=*/0.05);
  ASSERT_TRUE(static_cast<bool>(hook));
  hook(0);  // unaffected chunk: no-op
  hook(1);  // the armed chunk: sleeps ~50 ms, then returns
}

// ------------------------------------------------------------- supervisor

engine::worker_command sh(const std::string& script,
                          const std::string& label) {
  return {"/bin/sh", {"-c", script}, {}, label};
}

TEST(Supervisor, AllWorkersSucceeding) {
  const std::vector<engine::worker_command> commands = {
      sh("exit 0", "worker 0/2"), sh("exit 0", "worker 1/2")};
  const engine::supervision_report report =
      engine::supervise(commands, engine::supervisor_options{});
  EXPECT_TRUE(report.all_succeeded());
  ASSERT_EQ(report.outcomes.size(), 2u);
  for (const engine::worker_outcome& o : report.outcomes) {
    EXPECT_EQ(o.attempts, 1u);
    EXPECT_FALSE(o.timed_out);
    EXPECT_TRUE(o.diagnostic.empty()) << o.diagnostic;
  }
  EXPECT_TRUE(report.failures().empty());
}

TEST(Supervisor, ExitStatusAndAttemptCountLandInTheDiagnostic) {
  const std::vector<engine::worker_command> commands = {
      sh("exit 3", "worker 0/1")};
  const engine::supervision_report report =
      engine::supervise(commands, engine::supervisor_options{});
  ASSERT_EQ(report.failures().size(), 1u);
  EXPECT_EQ(report.failures()[0].diagnostic,
            "exited with status 3 (attempt 1 of 1)");
}

TEST(Supervisor, SignalDeathIsNamedNotNumberedOnly) {
  const std::vector<engine::worker_command> commands = {
      sh("kill -ABRT $$", "worker 0/1")};
  const engine::supervision_report report =
      engine::supervise(commands, engine::supervisor_options{});
  ASSERT_EQ(report.failures().size(), 1u);
  const std::string diag = report.failures()[0].diagnostic;
  EXPECT_NE(diag.find("killed by signal 6"), std::string::npos) << diag;
  EXPECT_NE(diag.find("Abort"), std::string::npos)
      << "strsignal name missing: " << diag;
}

TEST(Supervisor, RetriesExportTheAttemptNumberToTheChild) {
  // The child consults DLM_WORKER_ATTEMPT — exactly how injected faults
  // disarm themselves via |tries=<n> — and succeeds on attempt 2.
  const std::vector<engine::worker_command> commands = {
      sh("test \"${DLM_WORKER_ATTEMPT}\" -ge 2", "worker 0/1")};
  engine::supervisor_options options;
  options.max_retries = 2;
  options.backoff_initial_ms = 10.0;
  const engine::supervision_report report =
      engine::supervise(commands, options);
  EXPECT_TRUE(report.all_succeeded());
  EXPECT_EQ(report.outcomes[0].attempts, 2u);
}

TEST(Supervisor, HungWorkerIsKilledByThePerAttemptTimeout) {
  const std::vector<engine::worker_command> commands = {
      sh("sleep 30", "worker 0/1")};
  engine::supervisor_options options;
  options.timeout_sec = 0.3;
  const auto start = std::chrono::steady_clock::now();
  const engine::supervision_report report =
      engine::supervise(commands, options);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_EQ(report.failures().size(), 1u);
  EXPECT_TRUE(report.failures()[0].timed_out);
  EXPECT_NE(report.failures()[0].diagnostic.find("timed out after"),
            std::string::npos)
      << report.failures()[0].diagnostic;
  EXPECT_LT(elapsed, 10.0) << "the 30 s sleep was waited out";
}

TEST(Supervisor, FailFastTerminatesSiblings) {
  const std::vector<engine::worker_command> commands = {
      sh("exit 1", "worker 0/2"), sh("sleep 30", "worker 1/2")};
  engine::supervisor_options options;  // fail_fast defaults on
  const auto start = std::chrono::steady_clock::now();
  const engine::supervision_report report =
      engine::supervise(commands, options);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_FALSE(report.all_succeeded());
  EXPECT_NE(report.outcomes[1].diagnostic.find(
                "terminated: sibling worker worker 0/2 failed"),
            std::string::npos)
      << report.outcomes[1].diagnostic;
  EXPECT_LT(elapsed, 10.0) << "fail-fast waited for the sleeping sibling";
}

TEST(Supervisor, WithoutFailFastSurvivorsFinish) {
  const std::vector<engine::worker_command> commands = {
      sh("exit 1", "worker 0/2"), sh("exit 0", "worker 1/2")};
  engine::supervisor_options options;
  options.fail_fast = false;
  const engine::supervision_report report =
      engine::supervise(commands, options);
  EXPECT_FALSE(report.outcomes[0].succeeded);
  EXPECT_TRUE(report.outcomes[1].succeeded)
      << report.outcomes[1].diagnostic;
}

// ------------------------------------------- SIGKILL → WAL replay → warm

/// The self-consistent synthetic DL surface the persistence suites use.
engine::scenario_context make_context(const std::string& name = "fault") {
  core::dl_parameters truth = core::dl_parameters::paper_hops(6.0);
  truth.d = 0.06;
  truth.k = 22.0;
  const std::vector<double> initial{1.9, 0.8, 1.1, 0.6, 0.4, 0.3};
  const core::dl_model model(truth, initial, 1.0, 6.0);
  std::vector<std::vector<double>> surface(initial.size());
  for (std::size_t i = 0; i < initial.size(); ++i) {
    surface[i].push_back(initial[i]);
    for (int t = 2; t <= 6; ++t)
      surface[i].push_back(model.predict(static_cast<int>(i) + 1, t));
  }
  return engine::scenario_context::from_surface(
      name, social::distance_metric::friendship_hops, std::move(surface),
      core::dl_parameters::paper_hops(6.0));
}

/// A pure-solve sweep (no calibrate rows): every row's trace lands in
/// the cache, so a fully warm repeat means stats().misses == 0.
engine::sweep_spec make_solve_spec() {
  engine::sweep_spec spec;
  spec.models = {"dl"};
  spec.schemes = {core::dl_scheme::strang_cn, core::dl_scheme::ftcs};
  spec.grid = {12};
  spec.rates = {"preset", "constant:0.5"};
  spec.domains = {"line", "grid2d:1,3"};
  return spec;
}

TEST(JournalCrashSafety, SigkilledSweepReplaysAndRerunsWithZeroSolves) {
  const std::filesystem::path snapshot = temp_path("sigkill.cache");
  const std::filesystem::path wal = engine::cache_journal_path(snapshot);
  std::filesystem::remove(snapshot);
  std::filesystem::remove(wal);

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // The victim: run the journaled sweep, then die the death no
    // destructor survives — no flush, no snapshot save.  The WAL is the
    // only durable copy of this process's work.
    engine::journal_options jopt;
    jopt.enabled = true;
    engine::persistent_cache persist(snapshot, 0, jopt);
    if (persist.journal() == nullptr) ::_exit(112);
    const engine::scenario_context ctx = make_context();
    engine::runner_options options;
    options.threads = 1;
    options.cache = &persist.cache();
    (void)engine::run_sweep(ctx, make_solve_spec(), options);
    ::raise(SIGKILL);
    ::_exit(113);  // unreachable
  }
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited instead of dying";
  ASSERT_EQ(WTERMSIG(status), SIGKILL);
  ASSERT_FALSE(std::filesystem::exists(snapshot))
      << "SIGKILL must preclude the snapshot save";
  ASSERT_TRUE(std::filesystem::exists(wal));

  // Replay: snapshot missing, WAL carries every insert.  The re-run
  // must be fully warm — zero PDE solves — and byte-identical to an
  // independent cold run.
  engine::journal_options jopt;
  jopt.enabled = true;
  engine::persistent_cache persist(snapshot, 0, jopt);
  EXPECT_TRUE(persist.startup_load().file_missing);
  EXPECT_TRUE(persist.startup_replay().replayed)
      << persist.startup_replay().error;
  EXPECT_GT(persist.startup_replay().traces, 0u)
      << "no trace records survived the SIGKILL";

  const engine::scenario_context ctx = make_context();
  engine::runner_options warm;
  warm.threads = 1;
  warm.cache = &persist.cache();
  const std::string warm_csv =
      engine::run_sweep(ctx, make_solve_spec(), warm).table.to_csv();
  EXPECT_EQ(persist.cache().stats().misses, 0u)
      << "the replayed WAL did not make the sweep fully warm";

  engine::runner_options cold;
  cold.threads = 1;
  const std::string cold_csv =
      engine::run_sweep(ctx, make_solve_spec(), cold).table.to_csv();
  EXPECT_EQ(warm_csv, cold_csv);

  std::filesystem::remove(snapshot);
  std::filesystem::remove(wal);
}

// --------------------------------------------------- service resilience

std::string fresh_socket_path(const std::string& tag) {
  return temp_path(tag + ".sock").string();
}

TEST(ServiceResilience, HealthVerbAnswersHealthy) {
  engine::service_options options;
  options.socket_path = fresh_socket_path("health");
  options.threads = 1;
  engine::dl_service service(make_context("svc"), options);
  engine::service_client client(service.socket_path());
  EXPECT_EQ(client.request("health"), "ok healthy");
  EXPECT_TRUE(client.request("health extra").starts_with("err verb"));
  service.stop();
}

TEST(ServiceResilience, WedgedClientIsDroppedByTheIoTimeoutAndCounted) {
  engine::service_options options;
  options.socket_path = fresh_socket_path("wedge");
  options.threads = 1;
  options.io_timeout_sec = 0.3;
  engine::dl_service service(make_context("svc"), options);

  // The wedge: connect, send half a frame header, go silent.  Without
  // SO_RCVTIMEO this connection would pin its server thread forever.
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                service.socket_path().c_str());
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  ASSERT_EQ(::send(fd, "\x02\x00", 2, 0), 2);

  // A healthy client keeps working while the wedged one times out, and
  // stats eventually reports the drop.
  engine::service_client client(service.socket_path());
  EXPECT_EQ(client.request("ping"), "ok pong");
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  std::string stats;
  while (std::chrono::steady_clock::now() < deadline) {
    stats = client.request("stats");
    if (stats.find(" dropped=1") != std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_NE(stats.find(" dropped=1"), std::string::npos) << stats;
  EXPECT_EQ(service.connections_dropped(), 1u);
  ::close(fd);
  service.stop();
}

TEST(ServiceResilience, RemoteShardReconnectsThroughRetries) {
  // The server comes up *after* the client starts asking: every connect
  // until then fails, and remote_options' retry/backoff bridges the gap
  // — the "service restarted mid-fleet" shape.
  const std::string socket_path = fresh_socket_path("lateserver");
  const engine::scenario_context ctx = make_context("svc");
  engine::sweep_spec spec;
  spec.models = {"dl"};
  spec.schemes = {core::dl_scheme::strang_cn};
  spec.grid = {12};
  spec.rates = {"preset", "constant:0.5"};
  const std::vector<engine::scenario> scenarios =
      engine::expand_sweep(spec, ctx);
  const std::vector<std::size_t> owned =
      engine::shard_scenarios(scenarios, engine::shard_spec{0, 1});

  engine::runner_options local_options;
  local_options.threads = 1;
  const std::string local_csv =
      engine::run_sweep(ctx, scenarios, local_options).table.to_csv();

  std::optional<engine::dl_service> service;
  std::thread late_starter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    engine::service_options options;
    options.socket_path = socket_path;
    options.threads = 1;
    service.emplace(make_context("svc"), std::move(options));
  });

  engine::remote_options remote;
  remote.retries = 20;
  remote.backoff_initial_ms = 50.0;
  remote.backoff_multiplier = 1.0;  // steady 50 ms probes
  const engine::result_table table =
      engine::run_shard_remote(ctx, scenarios, owned, socket_path,
                               engine::default_registry(), remote);
  late_starter.join();
  EXPECT_EQ(table.to_csv(), local_csv)
      << "reconnected rows diverged from the local run";

  // Zero retries keeps the historical fail-on-first-error contract.
  service->stop();
  EXPECT_THROW((void)engine::run_shard_remote(ctx, scenarios, owned,
                                              socket_path),
               std::runtime_error);
}

// ----------------------------------------------------- dl_shard end-to-end
//
// DLM_SHARD_BIN is the built dl_shard tool (wired in CMakeLists.txt).
// These drills run the real driver+workers: an injected crash under
// --allow-partial, the manifest contract, and retry-to-full-success.

#ifdef DLM_SHARD_BIN

int run_command(const std::string& command) {
  const int status = std::system(command.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::vector<std::string> csv_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::size_t csv_index(const std::string& row) {
  return static_cast<std::size_t>(
      std::stoul(row.substr(0, row.find(','))));
}

/// Pulls "missing_indices": [a, b, ...] out of the manifest.
std::vector<std::size_t> manifest_missing(const std::string& json) {
  const std::string key = "\"missing_indices\": [";
  const std::size_t at = json.find(key);
  EXPECT_NE(at, std::string::npos) << json;
  if (at == std::string::npos) return {};
  const std::size_t end = json.find(']', at);
  std::vector<std::size_t> out;
  std::istringstream in(json.substr(at + key.size(), end - at - key.size()));
  std::string token;
  while (std::getline(in, token, ','))
    if (token.find_first_of("0123456789") != std::string::npos)
      out.push_back(static_cast<std::size_t>(std::stoul(token)));
  return out;
}

TEST(ShardFaultDrill, CrashUnderAllowPartialMergesSurvivorsByteIdentically) {
  const std::string ref_csv = temp_path("drill_ref.csv").string();
  const std::string part_csv = temp_path("drill_part.csv").string();
  const std::string manifest_path = part_csv + ".manifest.json";
  const std::string bin = DLM_SHARD_BIN;

  ASSERT_EQ(run_command(bin + " --shards 1 --csv " + ref_csv +
                        " --bench-rates 6 >/dev/null 2>&1"),
            0);
  ASSERT_EQ(run_command(bin + " --shards 3 --csv " + part_csv +
                        " --bench-rates 6 --allow-partial"
                        " --fault crash:worker1@chunk0 >/dev/null 2>&1"),
            0)
      << "--allow-partial must exit 0 despite the crashed shard";

  const std::string manifest = read_file(manifest_path);
  EXPECT_NE(manifest.find("\"succeeded\": false"), std::string::npos)
      << manifest;
  EXPECT_NE(manifest.find("killed by signal 6"), std::string::npos)
      << "diagnostic must name SIGABRT: " << manifest;
  const std::vector<std::size_t> missing = manifest_missing(manifest);
  ASSERT_FALSE(missing.empty());

  const std::vector<std::string> ref = csv_lines(read_file(ref_csv));
  const std::vector<std::string> part = csv_lines(read_file(part_csv));
  ASSERT_GT(ref.size(), 1u);
  EXPECT_EQ(part[0], ref[0]) << "CSV header diverged";
  EXPECT_EQ(part.size() + missing.size(), ref.size())
      << "rows + missing must cover the whole sweep exactly";

  // The merged subset is byte-identical to the unsharded rows, and the
  // manifest's missing indices are exactly the complement.
  const std::set<std::size_t> gone(missing.begin(), missing.end());
  std::size_t next = 1;
  for (std::size_t i = 1; i < ref.size(); ++i) {
    if (gone.count(csv_index(ref[i])) != 0) continue;
    ASSERT_LT(next, part.size());
    EXPECT_EQ(part[next], ref[i]) << "row " << csv_index(ref[i]);
    ++next;
  }
  EXPECT_EQ(next, part.size()) << "partial CSV has rows the reference lacks";

  std::filesystem::remove(ref_csv);
  std::filesystem::remove(part_csv);
  std::filesystem::remove(manifest_path);
}

TEST(ShardFaultDrill, RetriesTurnACrashIntoFullSuccess) {
  const std::string ref_csv = temp_path("retry_ref.csv").string();
  const std::string out_csv = temp_path("retry_out.csv").string();
  const std::string bin = DLM_SHARD_BIN;

  ASSERT_EQ(run_command(bin + " --shards 1 --csv " + ref_csv +
                        " --bench-rates 4 >/dev/null 2>&1"),
            0);
  // The crash is armed on attempt 1 only; --retries 1 re-runs the
  // worker, whose attempt 2 completes — full success, full merge.
  ASSERT_EQ(run_command(bin + " --shards 3 --csv " + out_csv +
                        " --bench-rates 4 --retries 1 --backoff 20"
                        " --fault 'crash:worker1@chunk0|tries=1'"
                        " >/dev/null 2>&1"),
            0);
  EXPECT_EQ(read_file(out_csv), read_file(ref_csv))
      << "a retried run must merge byte-identically to the unsharded run";
  std::filesystem::remove(ref_csv);
  std::filesystem::remove(out_csv);
}

TEST(ShardFaultDrill, HangedWorkerIsTimedOutAndReportedInTheManifest) {
  const std::string out_csv = temp_path("hang_out.csv").string();
  const std::string manifest_path = out_csv + ".manifest.json";
  const std::string bin = DLM_SHARD_BIN;

  ASSERT_EQ(run_command(bin + " --shards 2 --csv " + out_csv +
                        " --bench-rates 4 --allow-partial --timeout 2"
                        " --fault hang:worker1@chunk0 >/dev/null 2>&1"),
            0);
  const std::string manifest = read_file(manifest_path);
  EXPECT_NE(manifest.find("\"timed_out\": true"), std::string::npos)
      << manifest;
  EXPECT_NE(manifest.find("timed out after"), std::string::npos) << manifest;
  EXPECT_FALSE(manifest_missing(manifest).empty());
  std::filesystem::remove(out_csv);
  std::filesystem::remove(manifest_path);
}

TEST(ShardFaultDrill, TornJournalWriteFailsTheWorkerAndRetrySucceeds) {
  const std::string ref_csv = temp_path("torn_ref.csv").string();
  const std::string out_csv = temp_path("torn_out.csv").string();
  const std::string cache = temp_path("torn.cache").string();
  const std::string bin = DLM_SHARD_BIN;

  ASSERT_EQ(run_command(bin + " --shards 1 --csv " + ref_csv +
                        " --bench-rates 4 >/dev/null 2>&1"),
            0);
  // Attempt 1 of every worker tears its first journal record and exits
  // nonzero (a latched journal error is a failed worker); attempt 2 is
  // fault-free and completes.
  ASSERT_EQ(run_command(bin + " --shards 2 --csv " + out_csv +
                        " --bench-rates 4 --cache-file " + cache +
                        " --journal --retries 1 --backoff 20"
                        " --fault 'torn-write:journal@rec0|tries=1'"
                        " >/dev/null 2>&1"),
            0);
  EXPECT_EQ(read_file(out_csv), read_file(ref_csv));
  std::filesystem::remove(ref_csv);
  std::filesystem::remove(out_csv);
  std::filesystem::remove(cache);
  std::filesystem::remove(engine::cache_journal_path(cache));
}

#endif  // DLM_SHARD_BIN

}  // namespace
