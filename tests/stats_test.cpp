#include "numerics/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace {

namespace num = dlm::num;

const std::vector<double> sample{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};

TEST(Stats, Mean) { EXPECT_DOUBLE_EQ(num::mean(sample), 5.0); }

TEST(Stats, VarianceUnbiased) {
  // Σ(x-5)^2 = 9+1+1+1+0+0+4+16 = 32; 32/7.
  EXPECT_NEAR(num::variance(sample), 32.0 / 7.0, 1e-12);
}

TEST(Stats, Stddev) {
  EXPECT_NEAR(num::stddev(sample), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, MedianEvenAndOdd) {
  EXPECT_DOUBLE_EQ(num::median(sample), 4.5);
  EXPECT_DOUBLE_EQ(num::median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
}

TEST(Stats, Percentiles) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(num::percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(num::percentile(xs, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(num::percentile(xs, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(num::percentile(xs, 25.0), 2.0);
  EXPECT_THROW((void)num::percentile(xs, 101.0), std::invalid_argument);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{2, 4, 6, 8};
  EXPECT_NEAR(num::pearson(x, y), 1.0, 1e-12);
  const std::vector<double> anti{8, 6, 4, 2};
  EXPECT_NEAR(num::pearson(x, anti), -1.0, 1e-12);
}

TEST(Stats, PearsonZeroForConstant) {
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> c{5, 5, 5};
  EXPECT_DOUBLE_EQ(num::pearson(x, c), 0.0);
}

TEST(Stats, FitLineRecoversCoefficients) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i - 7.0);
  }
  const num::linear_fit fit = num::fit_line(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 1e-12);
  EXPECT_NEAR(fit.intercept, -7.0, 1e-10);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Stats, ErrorMetrics) {
  const std::vector<double> pred{1.0, 2.0, 3.0};
  const std::vector<double> act{1.0, 4.0, 3.0};
  EXPECT_NEAR(num::rmse(pred, act), std::sqrt(4.0 / 3.0), 1e-12);
  EXPECT_NEAR(num::mae(pred, act), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(num::sse(pred, act), 4.0, 1e-12);
  EXPECT_NEAR(num::mape(pred, act), (0.0 + 0.5 + 0.0) / 3.0, 1e-12);
}

TEST(Stats, MapeSkipsZeroActuals) {
  const std::vector<double> pred{1.0, 5.0};
  const std::vector<double> act{0.0, 4.0};
  EXPECT_NEAR(num::mape(pred, act), 0.25, 1e-12);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_THROW((void)num::mape(pred, zeros), std::invalid_argument);
}

TEST(Stats, Extent) {
  const num::min_max mm = num::extent(sample);
  EXPECT_DOUBLE_EQ(mm.min, 2.0);
  EXPECT_DOUBLE_EQ(mm.max, 9.0);
}

TEST(Stats, EmptyInputsThrow) {
  const std::vector<double> empty;
  EXPECT_THROW((void)num::mean(empty), std::invalid_argument);
  EXPECT_THROW((void)num::median(empty), std::invalid_argument);
  EXPECT_THROW((void)num::variance(std::vector<double>{1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)num::extent(empty), std::invalid_argument);
  EXPECT_THROW((void)num::rmse(empty, empty), std::invalid_argument);
}

}  // namespace
