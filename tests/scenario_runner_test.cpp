#include "engine/scenario_runner.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "digg/simulator.h"
#include "engine/model_registry.h"

namespace {

using namespace dlm;
using namespace dlm::engine;

/// A small synthetic surface: logistic-ish growth, faster near the source.
scenario_context synthetic_context() {
  const int max_d = 5;
  const int horizon = 8;
  std::vector<std::vector<double>> actual(max_d);
  for (int x = 1; x <= max_d; ++x) {
    for (int t = 1; t <= horizon; ++t) {
      const double k = 25.0;
      const double n0 = 2.0 / x;
      const double grown =
          k / (1.0 + (k - n0) / n0 * std::exp(-0.8 * (t - 1.0)));
      actual[static_cast<std::size_t>(x - 1)].push_back(grown);
    }
  }
  return scenario_context::from_surface(
      "synthetic", social::distance_metric::friendship_hops, std::move(actual),
      core::dl_parameters::paper_hops(max_d));
}

sweep_spec synthetic_sweep() {
  sweep_spec spec;
  spec.models = {"dl", "heat", "logistic", "per_distance_logistic"};
  spec.schemes = {core::dl_scheme::ftcs, core::dl_scheme::strang_cn,
                  core::dl_scheme::implicit_newton, core::dl_scheme::mol_rk4};
  spec.grid = {10, 20};
  spec.rates = {"preset", "constant:0.8"};
  spec.t_end = 8.0;
  return spec;
}

TEST(ExpandSweep, CollapsesAxesAModelIgnores) {
  const scenario_context ctx = synthetic_context();
  const std::vector<scenario> scenarios =
      expand_sweep(synthetic_sweep(), ctx);
  // dl: 4 schemes × 2 grids × 2 rates = 16; heat: 2 grids; logistic: 2
  // rates; per_distance_logistic: 2 rates.
  EXPECT_EQ(scenarios.size(), 16u + 2u + 2u + 2u);
  std::size_t dl_count = 0;
  for (const scenario& sc : scenarios) {
    if (sc.model == "dl") ++dl_count;
  }
  EXPECT_EQ(dl_count, 16u);
}

TEST(ExpandSweep, RejectsBadInput) {
  const scenario_context ctx = synthetic_context();
  sweep_spec empty_models;
  EXPECT_THROW((void)expand_sweep(empty_models, ctx), std::invalid_argument);
  sweep_spec unknown_model;
  unknown_model.models = {"sir"};
  EXPECT_THROW((void)expand_sweep(unknown_model, ctx), std::invalid_argument);
  sweep_spec bad_slice;
  bad_slice.models = {"dl"};
  bad_slice.slices = {7};
  EXPECT_THROW((void)expand_sweep(bad_slice, ctx), std::out_of_range);
}

TEST(ScenarioRunner, SingleVsManyThreadsProduceIdenticalCsv) {
  const scenario_context ctx = synthetic_context();
  const std::vector<scenario> scenarios =
      expand_sweep(synthetic_sweep(), ctx);

  runner_options serial;
  serial.threads = 1;
  const sweep_result one = run_sweep(ctx, scenarios, serial);

  runner_options parallel;
  parallel.threads = 4;
  const sweep_result many = run_sweep(ctx, scenarios, parallel);

  ASSERT_EQ(one.table.size(), scenarios.size());
  EXPECT_EQ(one.table.to_csv(), many.table.to_csv());
  // Timing differs run to run, but the scored payload must not.
  for (std::size_t i = 0; i < one.table.size(); ++i)
    EXPECT_TRUE(one.table.row(i).same_result(many.table.row(i)));
}

TEST(ScenarioRunner, RowsAreIndexOrderedAndScored) {
  const scenario_context ctx = synthetic_context();
  const std::vector<scenario> scenarios =
      expand_sweep(synthetic_sweep(), ctx);
  runner_options options;
  options.threads = 4;
  const sweep_result result = run_sweep(ctx, scenarios, options);
  for (std::size_t i = 0; i < result.table.size(); ++i) {
    const result_row& row = result.table.row(i);
    EXPECT_EQ(row.index, i);
    EXPECT_EQ(row.model, scenarios[i].model);
    EXPECT_GT(row.cells, 0u);
    EXPECT_GE(row.accuracy, 0.0);
    EXPECT_LE(row.accuracy, 1.0);
    EXPECT_GE(row.wall_ms, 0.0);
  }
  // The synthetic surface is per-distance logistic growth with r = 0.8, so
  // that model under the matching rate must fit almost perfectly and the
  // mass-conserving heat baseline must not.
  double best_pdl = 0.0, best_heat = 0.0;
  for (const result_row& row : result.table.rows()) {
    if (row.model == "per_distance_logistic" && row.rate == "constant:0.8")
      best_pdl = std::max(best_pdl, row.accuracy);
    if (row.model == "heat") best_heat = std::max(best_heat, row.accuracy);
  }
  EXPECT_GT(best_pdl, 0.99);
  EXPECT_LT(best_heat, best_pdl);
}

TEST(ScenarioRunner, KeepTracesAlignsWithRows) {
  const scenario_context ctx = synthetic_context();
  sweep_spec spec;
  spec.models = {"dl"};
  spec.t_end = 8.0;
  runner_options options;
  options.keep_traces = true;
  const sweep_result result = run_sweep(ctx, spec, options);
  ASSERT_EQ(result.traces.size(), result.table.size());
  const model_trace& trace = result.traces[0];
  EXPECT_EQ(trace.distances.size(), 5u);
  EXPECT_EQ(trace.times.size(), 7u);  // hours 2..8
  EXPECT_EQ(trace.predicted.size(), trace.distances.size());
}

TEST(ScenarioRunner, ErrorsInWorkersPropagateWithScenarioContext) {
  const scenario_context ctx = synthetic_context();
  scenario ok;
  ok.model = "dl";
  ok.t_end = 8.0;
  scenario si;  // synthetic slice has no follower graph
  si.model = "si";
  si.t_end = 8.0;
  const std::vector<scenario> scenarios{ok, si};
  runner_options options;
  options.threads = 2;
  // The failure is wrapped with the scenario's index, model and slice so
  // a one-in-N sweep failure is diagnosable.
  try {
    (void)run_sweep(ctx, scenarios, options);
    FAIL() << "run_sweep should have thrown";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("scenario #1"), std::string::npos) << message;
    EXPECT_NE(message.find("model 'si'"), std::string::npos) << message;
    EXPECT_NE(message.find("slice 'synthetic'"), std::string::npos) << message;
    EXPECT_NE(message.find("follower graph"), std::string::npos) << message;
  }
}

TEST(ScenarioRunner, ErrorReportsLowestFailingIndex) {
  const scenario_context ctx = synthetic_context();
  scenario si;
  si.model = "si";
  si.t_end = 8.0;
  // Two failures: the wrapped error must name the lower index regardless
  // of thread scheduling.
  const std::vector<scenario> scenarios{si, si};
  runner_options options;
  options.threads = 4;
  try {
    (void)run_sweep(ctx, scenarios, options);
    FAIL() << "run_sweep should have thrown";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("scenario #0"), std::string::npos)
        << e.what();
  }
}

TEST(ScenarioRunner, SolveCacheKeepsCsvIdenticalAndSkipsResolves) {
  const scenario_context ctx = synthetic_context();
  const std::vector<scenario> scenarios =
      expand_sweep(synthetic_sweep(), ctx);

  const sweep_result plain = run_sweep(ctx, scenarios, {});

  solve_cache cache;
  runner_options cached;
  cached.cache = &cache;
  cached.threads = 4;
  const sweep_result cold = run_sweep(ctx, scenarios, cached);
  const cache_stats after_cold = cache.stats();
  EXPECT_GT(after_cold.misses, 0u);

  // Warm repeat: no new misses (zero additional solves), same CSV — at a
  // different thread count, too.
  runner_options warm_serial = cached;
  warm_serial.threads = 1;
  const sweep_result warm = run_sweep(ctx, scenarios, warm_serial);
  const cache_stats after_warm = cache.stats();
  EXPECT_EQ(after_warm.misses, after_cold.misses);
  EXPECT_EQ(after_warm.hits, after_cold.hits + scenarios.size());

  EXPECT_EQ(cold.table.to_csv(), plain.table.to_csv());
  EXPECT_EQ(warm.table.to_csv(), plain.table.to_csv());
}

TEST(ScenarioRunner, DatasetSweepCoversAllModelsDeterministically) {
  // Full five-family sweep (incl. the RNG-seeded SI model) on the small
  // calibrated dataset: the CSV must be identical at 1 and 4 threads.
  const scenario_context ctx = scenario_context::from_dataset(
      digg::make_dataset(digg::test_scale_scenario()));
  ASSERT_GE(ctx.slice_count(), 2u);

  sweep_spec spec;
  spec.models = default_registry().names();
  spec.slices = {0, 1};

  runner_options serial;
  serial.threads = 1;
  runner_options parallel;
  parallel.threads = 4;
  const sweep_result one = run_sweep(ctx, spec, serial);
  const sweep_result many = run_sweep(ctx, spec, parallel);
  EXPECT_EQ(one.table.to_csv(), many.table.to_csv());
  EXPECT_EQ(one.table.size(), 10u);  // 5 models × 2 slices, axes collapsed
}

TEST(MakeRate, ParsesEveryForm) {
  EXPECT_DOUBLE_EQ(
      make_rate("preset", social::distance_metric::friendship_hops)(1.0, 1.0),
      core::growth_rate::paper_hops()(1.0));
  EXPECT_DOUBLE_EQ(
      make_rate("preset", social::distance_metric::shared_interests)(1.0, 1.0),
      core::growth_rate::paper_interest()(1.0));
  EXPECT_DOUBLE_EQ(make_rate("constant:0.5",
                             social::distance_metric::friendship_hops)(1.0,
                                                                       9.0),
                   0.5);
  const core::rate_field decay =
      make_rate("decay:1.4,1.5,0.25", social::distance_metric::friendship_hops);
  EXPECT_NEAR(decay(1.0, 1.0), 1.65, 1e-12);
  EXPECT_THROW(
      (void)make_rate("bogus", social::distance_metric::friendship_hops),
      std::invalid_argument);
  EXPECT_THROW(
      (void)make_rate("constant:abc", social::distance_metric::friendship_hops),
      std::invalid_argument);
  EXPECT_THROW(
      (void)make_rate("decay:1.0", social::distance_metric::friendship_hops),
      std::invalid_argument);
}

TEST(ScenarioContext, SliceLookupAndValidation) {
  scenario_context ctx = synthetic_context();
  EXPECT_EQ(ctx.slice_count(), 1u);
  EXPECT_EQ(ctx.slice("synthetic").name, "synthetic");
  EXPECT_THROW((void)ctx.slice("nope"), std::invalid_argument);
  EXPECT_THROW((void)ctx.slice(3), std::out_of_range);

  dataset_slice empty;
  empty.name = "empty";
  EXPECT_THROW((void)ctx.add_slice(std::move(empty)), std::invalid_argument);

  dataset_slice ragged;
  ragged.name = "ragged";
  ragged.actual = {{1.0, 2.0}, {1.0}};
  EXPECT_THROW((void)ctx.add_slice(std::move(ragged)), std::invalid_argument);

  dataset_slice duplicate;
  duplicate.name = "synthetic";
  duplicate.actual = {{1.0}};
  EXPECT_THROW((void)ctx.add_slice(std::move(duplicate)),
               std::invalid_argument);
}

}  // namespace
