// Cross-module integration: the full paper pipeline end to end.
//
//   synthesize dataset → persist/reload CSV → rebuild density surfaces →
//   construct φ from hour 1 → solve the DL equation → verify accuracy and
//   the §II.C properties on the result.

#include <gtest/gtest.h>

#include "core/accuracy.h"
#include "core/dl_model.h"
#include "core/properties.h"
#include "digg/dataset.h"
#include "digg/simulator.h"
#include "eval/experiments.h"
#include "social/density.h"

namespace {

using namespace dlm;

TEST(Integration, DatasetSurvivesDiskRoundTripBitExactly) {
  const digg::digg_dataset data =
      digg::make_dataset(digg::test_scale_scenario());
  const std::string dir = ::testing::TempDir() + "/dlm_integration_dataset";
  digg::save_dataset(dir, data.network);
  const social::social_network loaded = digg::load_dataset(dir);

  // Density surfaces computed from the reloaded network are identical.
  const social::density_field before(data.network, data.flagship_ids[0],
                                     data.hop_partitions[0], 50);
  const social::density_field after(loaded, data.flagship_ids[0],
                                    data.hop_partitions[0], 50);
  for (int x = 1; x <= before.max_distance(); ++x) {
    for (int t = 1; t <= 50; t += 7)
      EXPECT_DOUBLE_EQ(before.at(x, t), after.at(x, t));
  }
}

TEST(Integration, FullPredictionPipeline) {
  const eval::experiment_context ctx =
      eval::experiment_context::make(digg::test_scale_scenario());
  const social::density_field field =
      ctx.density(0, social::distance_metric::friendship_hops);
  const int upper = std::min(5, field.max_distance());

  std::vector<double> hour1;
  for (int x = 1; x <= upper; ++x) hour1.push_back(field.at(x, 1));

  const core::dl_parameters params = core::dl_parameters::paper_hops(upper);
  const core::dl_model model(params, hour1, 1.0, 6.0);

  // §II.C properties hold on the solved trajectory.
  EXPECT_TRUE(core::check_bounds(model.solution(), params.k).within);
  EXPECT_TRUE(core::check_monotonicity(model.solution()).non_decreasing);

  // 6-hour forecasts stay within a loose small-scale band.
  double acc = 0.0;
  std::size_t cells = 0;
  for (int t = 2; t <= 6; ++t) {
    const std::vector<double> profile = model.predict_profile(t);
    for (int x = 1; x <= upper; ++x) {
      acc += core::prediction_accuracy(
          profile[static_cast<std::size_t>(x - 1)], field.at(x, t));
      ++cells;
    }
  }
  EXPECT_GT(acc / static_cast<double>(cells), 0.55);
}

TEST(Integration, MechanisticCascadeFeedsTheSamePipeline) {
  // Organic (uncalibrated) data flows through the identical machinery.
  num::rng rand(2024);
  graph::digg_graph_params gp;
  gp.users = 4000;
  const graph::digraph g = graph::digg_follower_graph(gp, rand);
  graph::node_id init = 0;
  for (graph::node_id v = 0; v < g.node_count(); ++v) {
    if (g.in_degree(v) > g.in_degree(init)) init = v;
  }
  digg::cascade_params cp;
  cp.horizon_hours = 8;
  const auto votes = digg::simulate_cascade(g, init, 0, 0, cp, rand);
  ASSERT_GT(votes.size(), 20u);

  social::social_network_builder builder(g, 1);
  for (const auto& v : votes) builder.add_vote(v.user, v.story, v.time);
  const social::social_network net = builder.build();
  const social::distance_partition hops =
      social::partition_by_hops(net, init, 6);
  const social::density_field field(net, 0, hops, cp.horizon_hours);
  EXPECT_TRUE(field.is_monotone());

  const int upper = std::min(4, field.max_distance());
  ASSERT_GE(upper, 2);
  std::vector<double> hour1;
  for (int x = 1; x <= upper; ++x) hour1.push_back(field.at(x, 1));
  // An organic cascade can exceed the paper's K = 25 at hop 1; a user of
  // the model picks K above the observed densities.
  core::dl_parameters params = core::dl_parameters::paper_hops(upper);
  for (double v : hour1) params.k = std::max(params.k, 2.0 * v);
  const core::dl_model model(params, hour1, 1.0, cp.horizon_hours);
  EXPECT_TRUE(core::check_bounds(model.solution(), params.k).within);
}

}  // namespace
