#include "numerics/integrate.h"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using dlm::num::integrate_fixed;
using dlm::num::integrate_rkf45;
using dlm::num::integrate_scalar;
using dlm::num::ode_rhs;
using dlm::num::ode_scheme;

const ode_rhs exponential_decay = [](double, std::span<const double> y,
                                     std::span<double> dydt) {
  dydt[0] = -y[0];
};

// Harmonic oscillator: y0' = y1, y1' = -y0.
const ode_rhs oscillator = [](double, std::span<const double> y,
                              std::span<double> dydt) {
  dydt[0] = y[1];
  dydt[1] = -y[0];
};

TEST(IntegrateFixed, ExponentialDecayRk4) {
  const double y0[1] = {1.0};
  const auto traj = integrate_fixed(exponential_decay, 0.0, y0, 1.0, 100);
  EXPECT_NEAR(traj.final_state()[0], std::exp(-1.0), 1e-8);
}

TEST(IntegrateFixed, RecordsRequestedStates) {
  const double y0[1] = {1.0};
  const auto traj =
      integrate_fixed(exponential_decay, 0.0, y0, 1.0, 10, ode_scheme::rk4, 2);
  // initial + every 2nd step (5 records; step 10 is also the last).
  EXPECT_EQ(traj.steps(), 6u);
  EXPECT_DOUBLE_EQ(traj.times.front(), 0.0);
  EXPECT_DOUBLE_EQ(traj.times.back(), 1.0);
}

TEST(IntegrateFixed, InvalidArgumentsThrow) {
  const double y0[1] = {1.0};
  EXPECT_THROW((void)integrate_fixed(exponential_decay, 1.0, y0, 0.5, 10),
               std::invalid_argument);
  EXPECT_THROW((void)integrate_fixed(exponential_decay, 0.0, y0, 1.0, 0),
               std::invalid_argument);
}

TEST(IntegrateFixed, OscillatorConservesEnergyApproximately) {
  const double y0[2] = {1.0, 0.0};
  const auto traj =
      integrate_fixed(oscillator, 0.0, y0, 20.0, 20000, ode_scheme::rk4, 20000);
  const auto& yf = traj.final_state();
  const double energy = yf[0] * yf[0] + yf[1] * yf[1];
  EXPECT_NEAR(energy, 1.0, 1e-6);
  EXPECT_NEAR(yf[0], std::cos(20.0), 1e-5);
}

// Order-of-convergence property: halving h divides the error by ~2^order.
class SchemeOrder
    : public ::testing::TestWithParam<std::pair<ode_scheme, double>> {};

TEST_P(SchemeOrder, ObservedOrderMatches) {
  const auto [scheme, expected_order] = GetParam();
  const double y0[1] = {1.0};
  const auto error_with = [&](std::size_t steps) {
    const auto traj =
        integrate_fixed(exponential_decay, 0.0, y0, 1.0, steps, scheme, steps);
    return std::abs(traj.final_state()[0] - std::exp(-1.0));
  };
  const double e1 = error_with(40);
  const double e2 = error_with(80);
  const double observed = std::log2(e1 / e2);
  EXPECT_NEAR(observed, expected_order, 0.35)
      << "e1=" << e1 << " e2=" << e2;
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeOrder,
    ::testing::Values(std::pair{ode_scheme::euler, 1.0},
                      std::pair{ode_scheme::heun, 2.0},
                      std::pair{ode_scheme::rk4, 4.0}));

TEST(IntegrateRkf45, MeetsTolerance) {
  const double y0[1] = {1.0};
  const auto res = integrate_rkf45(exponential_decay, 0.0, y0, 2.0, 1e-10, 1e-10);
  EXPECT_NEAR(res.y[0], std::exp(-2.0), 1e-8);
  EXPECT_GT(res.steps_taken, 0u);
}

TEST(IntegrateRkf45, AdaptsToStiffness) {
  // Fast transient then slow decay: λ switches from -50 to -0.1.
  const ode_rhs stiff = [](double t, std::span<const double> y,
                           std::span<double> dydt) {
    dydt[0] = (t < 0.1 ? -50.0 : -0.1) * y[0];
  };
  const double y0[1] = {1.0};
  const auto res = integrate_rkf45(stiff, 0.0, y0, 1.0, 1e-9, 1e-9);
  const double exact = std::exp(-50.0 * 0.1) * std::exp(-0.1 * 0.9);
  EXPECT_NEAR(res.y[0], exact, 1e-5);
}

TEST(IntegrateRkf45, InvalidRangeThrows) {
  const double y0[1] = {1.0};
  EXPECT_THROW((void)integrate_rkf45(exponential_decay, 1.0, y0, 1.0),
               std::invalid_argument);
}

TEST(IntegrateScalar, LogisticOde) {
  // y' = y (1 - y), y(0) = 0.5 → y(t) = 1 / (1 + e^{-t}).
  const double y1 = integrate_scalar(
      [](double, double y) { return y * (1.0 - y); }, 0.0, 0.5, 2.0, 400);
  EXPECT_NEAR(y1, 1.0 / (1.0 + std::exp(-2.0)), 1e-8);
}

TEST(StepFunctions, SizeMismatchThrows) {
  std::vector<double> y{1.0};
  std::vector<double> out(2);
  EXPECT_THROW(dlm::num::euler_step(exponential_decay, 0.0, y, 0.1, out),
               std::invalid_argument);
}

}  // namespace
