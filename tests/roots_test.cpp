#include "numerics/roots.h"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using dlm::num::bisect;
using dlm::num::newton;
using dlm::num::newton_bisect;

TEST(Bisect, FindsSqrtTwo) {
  const auto res = bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.x, std::sqrt(2.0), 1e-10);
}

TEST(Bisect, ExactEndpointRoot) {
  const auto res = bisect([](double x) { return x; }, 0.0, 1.0);
  EXPECT_TRUE(res.converged);
  EXPECT_DOUBLE_EQ(res.x, 0.0);
}

TEST(Bisect, NoSignChangeThrows) {
  EXPECT_THROW((void)bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0),
               std::invalid_argument);
}

TEST(Newton, QuadraticConvergence) {
  const auto res = newton([](double x) { return x * x - 2.0; },
                          [](double x) { return 2.0 * x; }, 1.0);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.x, std::sqrt(2.0), 1e-12);
  EXPECT_LT(res.iterations, 10);
}

TEST(Newton, TranscendentalRoot) {
  // x = cos(x) near 0.739.
  const auto res = newton([](double x) { return x - std::cos(x); },
                          [](double x) { return 1.0 + std::sin(x); }, 0.5);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.x, 0.7390851332151607, 1e-10);
}

TEST(Newton, ReportsNonConvergence) {
  // f(x) = x^(1/3) cycles for plain Newton from x=1.
  const auto res = newton(
      [](double x) { return std::cbrt(x); },
      [](double x) { return 1.0 / (3.0 * std::pow(std::abs(x), 2.0 / 3.0) + 1e-300); },
      1.0, 1e-14, 12);
  EXPECT_FALSE(res.converged);
}

TEST(NewtonBisect, RobustOnHardFunctions) {
  // Same pathological cube-root: the hybrid still converges.
  const auto res = newton_bisect(
      [](double x) { return std::cbrt(x); },
      [](double x) { return 1.0 / (3.0 * std::pow(std::abs(x), 2.0 / 3.0) + 1e-300); },
      -1.0, 2.0);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.x, 0.0, 1e-8);
}

TEST(NewtonBisect, RequiresSignChange) {
  EXPECT_THROW((void)newton_bisect([](double x) { return x * x + 1.0; },
                                   [](double x) { return 2.0 * x; }, -1.0, 1.0),
               std::invalid_argument);
}

TEST(NewtonBisect, LogisticSaturationTime) {
  // When does logistic growth from 1 to K=25 with r=0.5 reach 20?
  const auto value = [](double t) {
    return 25.0 / (1.0 + 24.0 * std::exp(-0.5 * t)) - 20.0;
  };
  const auto deriv = [&](double t) {
    const double e = 24.0 * std::exp(-0.5 * t);
    return 25.0 * 0.5 * e / ((1.0 + e) * (1.0 + e));
  };
  const auto res = newton_bisect(value, deriv, 0.0, 50.0);
  EXPECT_TRUE(res.converged);
  // Verify by substitution.
  EXPECT_NEAR(25.0 / (1.0 + 24.0 * std::exp(-0.5 * res.x)), 20.0, 1e-8);
}

}  // namespace
