#include "graph/bfs.h"

#include <gtest/gtest.h>

#include "graph/digraph.h"

namespace {

using namespace dlm::graph;

digraph path_graph(std::size_t n) {
  digraph_builder b(n);
  for (node_id v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

TEST(Bfs, PathGraphDistances) {
  const digraph g = path_graph(5);
  const auto dist = bfs_distances(g, 0);
  for (node_id v = 0; v < 5; ++v) EXPECT_EQ(dist[v], v);
}

TEST(Bfs, DirectionalityMatters) {
  const digraph g = path_graph(4);
  // Along successors, node 3 cannot reach anything.
  const auto fwd = bfs_distances(g, 3, bfs_direction::successors);
  EXPECT_EQ(fwd[0], unreachable);
  EXPECT_EQ(fwd[3], 0u);
  // Along predecessors it reaches everything.
  const auto back = bfs_distances(g, 3, bfs_direction::predecessors);
  EXPECT_EQ(back[0], 3u);
  // Treating edges as undirected reaches everything from anywhere.
  const auto both = bfs_distances(g, 1, bfs_direction::either);
  EXPECT_EQ(both[3], 2u);
  EXPECT_EQ(both[0], 1u);
}

TEST(Bfs, StarGraph) {
  digraph_builder b(5);
  for (node_id leaf = 1; leaf < 5; ++leaf) b.add_edge(0, leaf);
  const digraph g = b.build();
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[0], 0u);
  for (node_id leaf = 1; leaf < 5; ++leaf) EXPECT_EQ(dist[leaf], 1u);
}

TEST(Bfs, ShortestPathWins) {
  // Two routes 0→3: direct edge and 0→1→2→3.
  digraph_builder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(0, 3);
  const auto dist = bfs_distances(b.build(), 0);
  EXPECT_EQ(dist[3], 1u);
}

TEST(Bfs, MultiSourceTakesNearest) {
  const digraph g = path_graph(7);
  const auto dist = bfs_distances_multi(g, {0, 5});
  EXPECT_EQ(dist[4], 4u);  // from 0
  EXPECT_EQ(dist[6], 1u);  // from 5
  EXPECT_EQ(dist[5], 0u);
}

TEST(Bfs, MultiSourceDuplicatesHarmless) {
  const digraph g = path_graph(3);
  const auto dist = bfs_distances_multi(g, {0, 0, 0});
  EXPECT_EQ(dist[2], 2u);
}

TEST(Bfs, EmptySourcesThrow) {
  const digraph g = path_graph(3);
  EXPECT_THROW((void)bfs_distances_multi(g, {}), std::invalid_argument);
}

TEST(Bfs, BadSourceThrows) {
  const digraph g = path_graph(3);
  EXPECT_THROW((void)bfs_distances(g, 5), std::out_of_range);
}

TEST(NodesByDistance, GroupsCorrectly) {
  digraph_builder b(6);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 3);
  b.add_edge(2, 4);
  // node 5 unreachable
  const auto groups = nodes_by_distance(b.build(), 0);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0], std::vector<node_id>{0});
  EXPECT_EQ(groups[1], (std::vector<node_id>{1, 2}));
  EXPECT_EQ(groups[2], (std::vector<node_id>{3, 4}));
}

TEST(Eccentricity, PathAndIsolated) {
  const digraph g = path_graph(5);
  EXPECT_EQ(eccentricity(g, 0), 4u);
  EXPECT_EQ(eccentricity(g, 4), 0u);  // nothing reachable forward
}

}  // namespace
