#include "graph/components.h"

#include <gtest/gtest.h>

#include "graph/digraph.h"

namespace {

using namespace dlm::graph;

TEST(WeaklyConnected, TwoIslands) {
  digraph_builder b(5);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4);
  const component_partition part = weakly_connected_components(b.build());
  EXPECT_EQ(part.count(), 2u);
  EXPECT_EQ(part.component_of[0], part.component_of[2]);
  EXPECT_EQ(part.component_of[3], part.component_of[4]);
  EXPECT_NE(part.component_of[0], part.component_of[3]);
  EXPECT_EQ(part.sizes[part.giant()], 3u);
  EXPECT_DOUBLE_EQ(part.giant_fraction(), 0.6);
}

TEST(WeaklyConnected, DirectionIgnored) {
  digraph_builder b(3);
  b.add_edge(1, 0);
  b.add_edge(1, 2);
  const component_partition part = weakly_connected_components(b.build());
  EXPECT_EQ(part.count(), 1u);
}

TEST(WeaklyConnected, IsolatedNodesAreSingletons) {
  const component_partition part = weakly_connected_components(digraph(4));
  EXPECT_EQ(part.count(), 4u);
  EXPECT_DOUBLE_EQ(part.giant_fraction(), 0.25);
}

TEST(StronglyConnected, CycleIsOneComponent) {
  digraph_builder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(3, 0);
  const component_partition part = strongly_connected_components(b.build());
  EXPECT_EQ(part.count(), 1u);
  EXPECT_EQ(part.sizes[0], 4u);
}

TEST(StronglyConnected, DagIsAllSingletons) {
  digraph_builder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 3);
  const component_partition part = strongly_connected_components(b.build());
  EXPECT_EQ(part.count(), 4u);
}

TEST(StronglyConnected, MixedStructure) {
  // SCC {0,1,2} plus tail 3→4.
  digraph_builder b(5);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  const component_partition part = strongly_connected_components(b.build());
  EXPECT_EQ(part.count(), 3u);
  EXPECT_EQ(part.component_of[0], part.component_of[1]);
  EXPECT_EQ(part.component_of[1], part.component_of[2]);
  EXPECT_NE(part.component_of[2], part.component_of[3]);
  EXPECT_NE(part.component_of[3], part.component_of[4]);
}

TEST(StronglyConnected, DeepChainDoesNotOverflow) {
  // 60k-node path — the iterative Tarjan must not blow the stack.
  const std::size_t n = 60000;
  digraph_builder b(n);
  for (node_id v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  const component_partition part = strongly_connected_components(b.build());
  EXPECT_EQ(part.count(), n);
}

TEST(ComponentPartition, EmptyGraph) {
  const component_partition part = weakly_connected_components(digraph(0));
  EXPECT_EQ(part.count(), 0u);
  EXPECT_DOUBLE_EQ(part.giant_fraction(), 0.0);
}

}  // namespace
