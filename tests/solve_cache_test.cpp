#include "engine/solve_cache.h"

#include <gtest/gtest.h>

#include "engine/model_registry.h"

namespace {

using namespace dlm;
using namespace dlm::engine;

model_trace sample_trace(double value) {
  model_trace trace;
  trace.distances = {1, 2};
  trace.times = {2.0, 3.0};
  trace.predicted = {{value, value}, {value, value}};
  trace.effective_dt = 0.02;
  return trace;
}

TEST(SolveCache, TraceStoreAndLookupCountsStats) {
  solve_cache cache;
  EXPECT_EQ(cache.find_trace("k"), nullptr);
  cache.store_trace("k", sample_trace(1.5));
  const std::shared_ptr<const model_trace> hit = cache.find_trace("k");
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ(hit->predicted[0][0], 1.5);
  const cache_stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SolveCache, ValueStoreAndLookup) {
  solve_cache cache;
  EXPECT_FALSE(cache.find_value("v").has_value());
  cache.store_value("v", 42.0);
  const std::optional<double> hit = cache.find_value("v");
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(*hit, 42.0);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(SolveCache, FirstInsertWins) {
  solve_cache cache;
  cache.store_trace("k", sample_trace(1.0));
  cache.store_trace("k", sample_trace(2.0));
  EXPECT_DOUBLE_EQ(cache.find_trace("k")->predicted[0][0], 1.0);
  cache.store_value("v", 1.0);
  cache.store_value("v", 2.0);
  EXPECT_DOUBLE_EQ(*cache.find_value("v"), 1.0);
}

TEST(SolveCache, UnboundedByDefault) {
  solve_cache cache;
  EXPECT_EQ(cache.max_entries(), 0u);
  for (int i = 0; i < 100; ++i)
    cache.store_value("k" + std::to_string(i), static_cast<double>(i));
  EXPECT_EQ(cache.size(), 100u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(SolveCache, LruCapEvictsOldestAndCountsEvictions) {
  solve_cache cache(2);
  EXPECT_EQ(cache.max_entries(), 2u);
  cache.store_value("a", 1.0);
  cache.store_value("b", 2.0);
  cache.store_value("c", 3.0);  // overflows: "a" is least recently used
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_FALSE(cache.find_value("a").has_value());
  EXPECT_TRUE(cache.find_value("b").has_value());
  EXPECT_TRUE(cache.find_value("c").has_value());
}

TEST(SolveCache, FindRefreshesRecency) {
  solve_cache cache(2);
  cache.store_value("a", 1.0);
  cache.store_value("b", 2.0);
  EXPECT_TRUE(cache.find_value("a").has_value());  // "a" now most recent
  cache.store_value("c", 3.0);                     // evicts "b", not "a"
  EXPECT_TRUE(cache.find_value("a").has_value());
  EXPECT_FALSE(cache.find_value("b").has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(SolveCache, CapCountsTracesAndValuesTogether) {
  solve_cache cache(2);
  cache.store_trace("t1", sample_trace(1.0));
  cache.store_value("v1", 1.0);
  cache.store_trace("t2", sample_trace(2.0));  // evicts the "t1" trace
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.find_trace("t1"), nullptr);
  EXPECT_TRUE(cache.find_value("v1").has_value());
  EXPECT_NE(cache.find_trace("t2"), nullptr);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.max_entries(), 2u);  // the cap survives clear()
}

TEST(ResolveRateSpec, PresetResolvesPerMetricOthersPassThrough) {
  EXPECT_EQ(
      resolve_rate_spec("preset", social::distance_metric::friendship_hops),
      "paper_hops");
  EXPECT_EQ(
      resolve_rate_spec("preset", social::distance_metric::shared_interests),
      "paper_interest");
  EXPECT_EQ(resolve_rate_spec("paper_hops",
                              social::distance_metric::shared_interests),
            "paper_hops");
  EXPECT_EQ(resolve_rate_spec("decay:1.4,1.5,0.25",
                              social::distance_metric::friendship_hops),
            "decay:1.4,1.5,0.25");
  EXPECT_EQ(resolve_rate_spec("-", social::distance_metric::friendship_hops),
            "-");
}

TEST(ScenarioCacheKey, PresetAndExplicitPaperRateShareOneEntry) {
  dataset_slice slice;
  slice.name = "s1/hops";
  slice.metric = social::distance_metric::friendship_hops;
  const std::unique_ptr<diffusion_model> dl = default_registry().make("dl");

  scenario preset;
  preset.model = "dl";
  scenario explicit_rate = preset;
  explicit_rate.rate = "paper_hops";
  EXPECT_EQ(scenario_cache_key(preset, slice, *dl),
            scenario_cache_key(explicit_rate, slice, *dl));

  scenario other_rate = preset;
  other_rate.rate = "constant:0.5";
  EXPECT_NE(scenario_cache_key(preset, slice, *dl),
            scenario_cache_key(other_rate, slice, *dl));
}

TEST(ScenarioCacheKey, CollapsesAxesTheModelIgnores) {
  dataset_slice slice;
  slice.name = "s1/hops";
  const std::unique_ptr<diffusion_model> heat =
      default_registry().make("heat");

  // Heat has no scheme, dt or rate axis: those fields must not split the
  // cache.
  scenario a;
  a.model = "heat";
  a.scheme = core::dl_scheme::ftcs;
  a.dt = 0.5;
  a.rate = "constant:0.9";
  scenario b;
  b.model = "heat";
  b.scheme = core::dl_scheme::mol_rk4;
  b.dt = 0.001;
  b.rate = "preset";
  EXPECT_EQ(scenario_cache_key(a, slice, *heat),
            scenario_cache_key(b, slice, *heat));

  // But the grid axis (which heat does consume) must.
  scenario c = a;
  c.points_per_unit = 40;
  EXPECT_NE(scenario_cache_key(a, slice, *heat),
            scenario_cache_key(c, slice, *heat));
}

TEST(ScenarioCacheKey, SameNameDifferentContentNeverAliases) {
  // Sharing one cache across contexts is the documented pattern; a slice
  // *name* reused for different data must still split the cache.
  const auto make_ctx = [](double value) {
    std::vector<std::vector<double>> surface{{value, value + 1.0},
                                             {value, value + 0.5}};
    return scenario_context::from_surface(
        "dup", social::distance_metric::friendship_hops, std::move(surface),
        core::dl_parameters::paper_hops(2.0));
  };
  const scenario_context a = make_ctx(1.0);
  const scenario_context b = make_ctx(2.0);
  const scenario_context same_as_a = make_ctx(1.0);
  const std::unique_ptr<diffusion_model> dl = default_registry().make("dl");
  scenario sc;
  sc.model = "dl";
  EXPECT_NE(scenario_cache_key(sc, a.slice(0), *dl),
            scenario_cache_key(sc, b.slice(0), *dl));
  EXPECT_EQ(scenario_cache_key(sc, a.slice(0), *dl),
            scenario_cache_key(sc, same_as_a.slice(0), *dl));
}

TEST(ScenarioCacheKey, ParameterOverridesSplitTheKey) {
  dataset_slice slice;
  slice.name = "s1/hops";
  const std::unique_ptr<diffusion_model> dl = default_registry().make("dl");

  // A calibrated solve (fitted d/K overrides + concrete decay rate) must
  // not collide with a plain scenario using the same resolved rate but
  // the slice's base parameters.
  scenario plain;
  plain.model = "dl";
  plain.rate = "decay:1.4,1.5,0.25";
  scenario fitted = plain;
  fitted.d_override = 0.08;
  fitted.k_override = 21.5;
  EXPECT_NE(scenario_cache_key(plain, slice, *dl),
            scenario_cache_key(fitted, slice, *dl));
  scenario refitted = fitted;
  refitted.k_override = 22.0;
  EXPECT_NE(scenario_cache_key(fitted, slice, *dl),
            scenario_cache_key(refitted, slice, *dl));
}

}  // namespace
