#include "models/si_epidemic.h"

#include <gtest/gtest.h>

#include "graph/bfs.h"
#include "graph/digraph.h"
#include "social/distance.h"
#include "social/network.h"

namespace {

using namespace dlm::models;
using dlm::num::rng;
namespace graph = dlm::graph;
namespace social = dlm::social;

// Chain: 1 follows 0, 2 follows 1, 3 follows 2.
graph::digraph chain() {
  graph::digraph_builder b(4);
  b.add_edge(1, 0);
  b.add_edge(2, 1);
  b.add_edge(3, 2);
  return b.build();
}

TEST(SiEpidemic, CertainInfectionFollowsBfsWavefront) {
  si_params params;
  params.beta = 1.0;
  params.steps = 5;
  rng r(1);
  const si_trace trace = run_si(chain(), 0, params, r);
  EXPECT_EQ(trace.infected_at[0], 0);
  EXPECT_EQ(trace.infected_at[1], 1);
  EXPECT_EQ(trace.infected_at[2], 2);
  EXPECT_EQ(trace.infected_at[3], 3);
  EXPECT_EQ(trace.total_infected.back(), 4u);
}

TEST(SiEpidemic, ZeroBetaNeverSpreads) {
  si_params params;
  params.beta = 0.0;
  params.steps = 10;
  rng r(2);
  const si_trace trace = run_si(chain(), 0, params, r);
  EXPECT_EQ(trace.total_infected.back(), 1u);
  EXPECT_EQ(trace.infected_at[1], -1);
}

TEST(SiEpidemic, CumulativeCountsNonDecreasing) {
  si_params params;
  params.beta = 0.4;
  params.steps = 8;
  rng r(3);
  const si_trace trace = run_si(chain(), 0, params, r);
  for (std::size_t t = 1; t < trace.total_infected.size(); ++t)
    EXPECT_GE(trace.total_infected[t], trace.total_infected[t - 1]);
}

TEST(SiEpidemic, SisRecoveryStopsSpread) {
  // With instant recovery the seed infects at most once.
  si_params params;
  params.beta = 1.0;
  params.recovery = 1.0;
  params.steps = 6;
  rng r(4);
  const si_trace trace = run_si(chain(), 0, params, r);
  // Seed infects node 1 in step 1 while still active, then both recover;
  // node 1 infects node 2 in step 2, and so on — "ever infected" keeps
  // counting but recovered nodes stop spreading further than one step.
  EXPECT_GE(trace.total_infected.back(), 2u);
}

TEST(SiEpidemic, InvalidArgumentsThrow) {
  si_params params;
  rng r(5);
  EXPECT_THROW((void)run_si(chain(), 9, params, r), std::out_of_range);
  params.steps = 0;
  EXPECT_THROW((void)run_si(chain(), 0, params, r), std::invalid_argument);
  params.steps = 5;
  params.beta = 1.5;
  EXPECT_THROW((void)run_si(chain(), 0, params, r), std::invalid_argument);
}

TEST(SiDensityByDistance, MatchesTraceCounts) {
  const graph::digraph g = chain();
  const social::social_network net =
      social::social_network_builder(g, 1).build();
  const social::distance_partition part = social::partition_by_hops(net, 0);

  si_params params;
  params.beta = 1.0;
  params.steps = 4;
  rng r(6);
  const si_trace trace = run_si(g, 0, params, r);
  const auto density = si_density_by_distance(trace, part, params.steps);

  // Groups 1..3 each hold exactly one node; infected at steps 1..3.
  ASSERT_EQ(density.size(), 3u);
  EXPECT_DOUBLE_EQ(density[0][0], 100.0);  // hop 1 infected by step 1
  EXPECT_DOUBLE_EQ(density[1][0], 0.0);
  EXPECT_DOUBLE_EQ(density[1][1], 100.0);  // hop 2 by step 2
  EXPECT_DOUBLE_EQ(density[2][2], 100.0);  // hop 3 by step 3
}

TEST(SiDensityByDistance, SizeMismatchThrows) {
  const si_trace trace{{0, 1}, {1, 2}};
  social::distance_partition part;
  part.group_of = {0, 1, 1};
  part.sizes = {1, 2};
  EXPECT_THROW((void)si_density_by_distance(trace, part, 2),
               std::invalid_argument);
}

}  // namespace
