#include "core/dl_variable.h"

#include <gtest/gtest.h>

#include <cmath>
#include <span>

#include "models/logistic.h"

namespace {

using namespace dlm::core;

const std::vector<double> observed{1.9, 0.8, 1.1, 0.6, 0.4, 0.3};

TEST(DlVariable, ConstantCoefficientsMatchPlainSolver) {
  const dl_parameters plain = dl_parameters::paper_hops(6.0);
  const initial_condition phi(observed);
  const dl_solution reference = solve_dl(plain, phi, 1.0, 6.0);

  const dl_variable_parameters lifted =
      dl_variable_parameters::from_constant(plain);
  const dl_solution variable = solve_dl_variable(lifted, phi, 1.0, 6.0);

  for (int x = 1; x <= 6; ++x) {
    EXPECT_NEAR(variable.at(x, 6.0), reference.at(x, 6.0),
                0.01 * reference.at(x, 6.0) + 0.01)
        << "x=" << x;
  }
}

TEST(DlVariable, SpatiallyVaryingRateSlowsTargetRegion) {
  // r is halved on the right half of the domain: the right side must grow
  // visibly slower than under the uniform rate.
  dl_variable_parameters params =
      dl_variable_parameters::from_constant(dl_parameters::paper_hops(6.0));
  const growth_rate base = growth_rate::paper_hops();
  params.r = [base](double x, double t) {
    return (x > 3.5 ? 0.5 : 1.0) * base(t);
  };
  const initial_condition phi(observed);
  const dl_solution slowed = solve_dl_variable(params, phi, 1.0, 6.0);

  const dl_solution uniform = solve_dl_variable(
      dl_variable_parameters::from_constant(dl_parameters::paper_hops(6.0)),
      phi, 1.0, 6.0);
  EXPECT_LT(slowed.at(5.0, 6.0), 0.8 * uniform.at(5.0, 6.0));
  // The untouched left side barely changes.
  EXPECT_NEAR(slowed.at(1.0, 6.0), uniform.at(1.0, 6.0),
              0.05 * uniform.at(1.0, 6.0));
}

TEST(DlVariable, SpatiallyVaryingCapacityCapsDensity) {
  dl_variable_parameters params =
      dl_variable_parameters::from_constant(dl_parameters::paper_hops(6.0));
  params.k = [](double x) { return x < 3.0 ? 25.0 : 5.0; };
  const initial_condition phi(observed);
  const dl_solution sol = solve_dl_variable(params, phi, 1.0, 40.0);
  // Right half saturates near its local capacity, not the global 25.
  EXPECT_LT(sol.at(5.0, 40.0), 6.5);
  EXPECT_GT(sol.at(1.0, 40.0), 15.0);
}

TEST(DlVariable, ConservativeFluxConservesMassWithVaryingD) {
  // r = 0, d(x) varying: Neumann boundaries must still conserve the mean.
  dl_variable_parameters params =
      dl_variable_parameters::from_constant(dl_parameters::paper_hops(6.0));
  params.r = [](double, double) { return 0.0; };
  params.d = [](double x) { return 0.01 + 0.05 * (x - 1.0); };
  const initial_condition phi(observed);
  dl_variable_options opts;
  opts.dt = 0.004;  // within the explicit stability limit for max d = 0.26
  const dl_solution sol = solve_dl_variable(params, phi, 1.0, 30.0, opts);

  // The flux-form discretization telescopes: with no-flux boundaries the
  // plain nodal sum is the exactly conserved discrete quantity.
  const auto sum_of = [](std::span<const double> v) {
    double acc = 0.0;
    for (double x : v) acc += x;
    return acc;
  };
  EXPECT_NEAR(sum_of(sol.states().back()), sum_of(sol.states().front()),
              1e-8);
}

TEST(DlVariable, ValidationErrors) {
  dl_variable_parameters params;  // all fields empty
  params.x_min = 1.0;
  params.x_max = 5.0;
  const initial_condition phi(observed);
  EXPECT_THROW((void)solve_dl_variable(params, phi, 1.0, 2.0),
               std::invalid_argument);

  dl_variable_parameters bad_k =
      dl_variable_parameters::from_constant(dl_parameters::paper_hops(6.0));
  bad_k.k = [](double) { return -1.0; };
  EXPECT_THROW((void)solve_dl_variable(bad_k, phi, 1.0, 2.0),
               std::invalid_argument);

  dl_variable_parameters bad_domain =
      dl_variable_parameters::from_constant(dl_parameters::paper_hops(6.0));
  bad_domain.x_min = 9.0;
  EXPECT_THROW(bad_domain.validate(), std::invalid_argument);
}

TEST(FitRateProfile, RecoversKnownMultipliers) {
  // Generate per-distance growth with known multipliers via the exact
  // logistic propagator, then recover them.
  const growth_rate base = growth_rate::paper_hops();
  const double k = 25.0;
  const std::vector<double> truth{1.0, 0.9, 1.1, 0.5};
  const std::vector<double> initial{1.9, 0.8, 1.1, 0.6};
  std::vector<double> at_t4(4);
  for (std::size_t i = 0; i < 4; ++i) {
    at_t4[i] = dlm::models::logistic_step(
        initial[i], truth[i] * base.integral(1.0, 4.0), k);
  }
  const std::vector<double> fitted =
      fit_rate_profile(initial, at_t4, base, k, 1.0, 4.0);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(fitted[i], truth[i], 0.08) << "distance " << i + 1;
}

TEST(FitRateProfile, DegenerateObservationsDefaultToUnity) {
  const growth_rate base = growth_rate::paper_hops();
  const std::vector<double> initial{0.0, 2.0};
  const std::vector<double> later{1.0, 1.5};  // no growth for index 1
  const std::vector<double> fitted =
      fit_rate_profile(initial, later, base, 25.0, 1.0, 4.0);
  EXPECT_DOUBLE_EQ(fitted[0], 1.0);
  EXPECT_DOUBLE_EQ(fitted[1], 1.0);
}

TEST(ScaledRateField, InterpolatesMultipliers) {
  const auto field = scaled_rate_field({1.0, 2.0, 4.0},
                                       growth_rate::constant(0.5), 1.0);
  EXPECT_DOUBLE_EQ(field(1.0, 0.0), 0.5);
  EXPECT_DOUBLE_EQ(field(2.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(field(1.5, 0.0), 0.75);
  EXPECT_DOUBLE_EQ(field(3.0, 0.0), 2.0);
  // Clamped beyond the profile.
  EXPECT_DOUBLE_EQ(field(9.0, 0.0), 2.0);
  EXPECT_THROW((void)scaled_rate_field({}, growth_rate::constant(0.5), 1.0),
               std::invalid_argument);
}

}  // namespace
