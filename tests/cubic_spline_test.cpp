#include "numerics/cubic_spline.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace {

using dlm::num::cubic_spline;
using dlm::num::spline_extrapolation;

TEST(CubicSpline, InterpolatesKnotsExactly) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{1.9, 0.8, 1.1, 0.6, 0.4};
  const cubic_spline s = cubic_spline::natural(x, y);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(s(x[i]), y[i], 1e-12);
}

TEST(CubicSpline, NaturalEndsHaveZeroSecondDerivative) {
  const std::vector<double> x{0, 1, 2, 3};
  const std::vector<double> y{0.0, 2.0, 1.0, 3.0};
  const cubic_spline s = cubic_spline::natural(x, y);
  EXPECT_NEAR(s.second_derivative(0.0), 0.0, 1e-10);
  EXPECT_NEAR(s.second_derivative(3.0), 0.0, 1e-10);
}

TEST(CubicSpline, ClampedEndsMatchPrescribedSlopes) {
  const std::vector<double> x{0, 1, 2, 3};
  const std::vector<double> y{1.0, 2.0, 0.5, 1.5};
  const cubic_spline s = cubic_spline::clamped(x, y, 0.7, -0.3);
  EXPECT_NEAR(s.derivative(0.0), 0.7, 1e-10);
  EXPECT_NEAR(s.derivative(3.0), -0.3, 1e-10);
}

TEST(CubicSpline, FlatEndsHaveZeroSlope) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{1.9, 0.8, 1.1, 0.6, 0.4};
  const cubic_spline s = cubic_spline::flat_ends(x, y);
  EXPECT_NEAR(s.derivative(1.0), 0.0, 1e-10);
  EXPECT_NEAR(s.derivative(5.0), 0.0, 1e-10);
}

TEST(CubicSpline, ReproducesCubicPolynomialWithClampedEnds) {
  // p(x) = x^3 - 2x^2 + 3 on dense knots with exact end slopes is
  // reproduced exactly by a clamped cubic spline.
  const auto p = [](double x) { return x * x * x - 2.0 * x * x + 3.0; };
  const auto dp = [](double x) { return 3.0 * x * x - 4.0 * x; };
  std::vector<double> x, y;
  for (int i = 0; i <= 10; ++i) {
    x.push_back(0.3 * i);
    y.push_back(p(x.back()));
  }
  cubic_spline s = cubic_spline::clamped(x, y, dp(x.front()), dp(x.back()));
  s.set_extrapolation(spline_extrapolation::cubic);
  for (double t = 0.0; t <= 3.0; t += 0.05) {
    EXPECT_NEAR(s(t), p(t), 1e-9) << "at x=" << t;
    EXPECT_NEAR(s.derivative(t), dp(t), 1e-8) << "at x=" << t;
  }
}

TEST(CubicSpline, FirstDerivativeContinuousAtKnots) {
  const std::vector<double> x{1, 2, 3, 4, 5, 6};
  const std::vector<double> y{2.0, 0.5, 1.5, 0.2, 0.9, 0.4};
  const cubic_spline s = cubic_spline::flat_ends(x, y);
  const double h = 1e-7;
  for (std::size_t i = 1; i + 1 < x.size(); ++i) {
    const double left = s.derivative(x[i] - h);
    const double right = s.derivative(x[i] + h);
    EXPECT_NEAR(left, right, 1e-5) << "knot " << x[i];
  }
}

TEST(CubicSpline, SecondDerivativeContinuousAtKnots) {
  const std::vector<double> x{1, 2, 3, 4, 5, 6};
  const std::vector<double> y{2.0, 0.5, 1.5, 0.2, 0.9, 0.4};
  const cubic_spline s = cubic_spline::flat_ends(x, y);
  const double h = 1e-7;
  for (std::size_t i = 1; i + 1 < x.size(); ++i) {
    const double left = s.second_derivative(x[i] - h);
    const double right = s.second_derivative(x[i] + h);
    EXPECT_NEAR(left, right, 1e-4) << "knot " << x[i];
  }
}

TEST(CubicSpline, ClampFlatExtrapolationHoldsBoundaryValues) {
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> y{4.0, 2.0, 1.0};
  cubic_spline s = cubic_spline::flat_ends(x, y);
  EXPECT_DOUBLE_EQ(s(0.0), 4.0);
  EXPECT_DOUBLE_EQ(s(-7.0), 4.0);
  EXPECT_DOUBLE_EQ(s(5.0), 1.0);
  EXPECT_DOUBLE_EQ(s.derivative(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.second_derivative(3.5), 0.0);
}

TEST(CubicSpline, CubicExtrapolationContinuesPolynomial) {
  const std::vector<double> x{0, 1, 2};
  const std::vector<double> y{0.0, 1.0, 2.0};  // straight line
  cubic_spline s = cubic_spline::natural(x, y);
  s.set_extrapolation(spline_extrapolation::cubic);
  EXPECT_NEAR(s(3.0), 3.0, 1e-10);
  EXPECT_NEAR(s(-1.0), -1.0, 1e-10);
}

TEST(CubicSpline, TwoKnotsDegradeToLine) {
  const std::vector<double> x{0, 2};
  const std::vector<double> y{1.0, 5.0};
  const cubic_spline s = cubic_spline::natural(x, y);
  EXPECT_NEAR(s(1.0), 3.0, 1e-12);
}

TEST(CubicSpline, MinValueFindsInteriorDip) {
  const std::vector<double> x{0, 1, 2};
  const std::vector<double> y{1.0, 0.0, 1.0};
  const cubic_spline s = cubic_spline::natural(x, y);
  EXPECT_LE(s.min_value(), 0.0 + 1e-9);
}

TEST(CubicSpline, AccessorsReportConstruction) {
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> y{1.0, 2.0, 3.0};
  const cubic_spline s = cubic_spline::flat_ends(x, y);
  EXPECT_DOUBLE_EQ(s.x_min(), 1.0);
  EXPECT_DOUBLE_EQ(s.x_max(), 3.0);
  EXPECT_EQ(s.knot_count(), 3u);
  EXPECT_EQ(s.boundary(), dlm::num::spline_boundary::clamped);
}

TEST(CubicSpline, SampleEvaluatesAllPoints) {
  const std::vector<double> x{0, 1, 2};
  const std::vector<double> y{0.0, 1.0, 4.0};
  const cubic_spline s = cubic_spline::natural(x, y);
  const std::vector<double> out = s.sample(std::vector<double>{0.0, 1.0, 2.0});
  EXPECT_NEAR(out[0], 0.0, 1e-12);
  EXPECT_NEAR(out[1], 1.0, 1e-12);
  EXPECT_NEAR(out[2], 4.0, 1e-12);
}

TEST(CubicSpline, InvalidInputsThrow) {
  const std::vector<double> one{1.0};
  EXPECT_THROW((void)cubic_spline::natural(one, one), std::invalid_argument);
  const std::vector<double> x{1.0, 1.0};  // not strictly increasing
  const std::vector<double> y{1.0, 2.0};
  EXPECT_THROW((void)cubic_spline::natural(x, y), std::invalid_argument);
  const std::vector<double> x2{1.0, 2.0, 3.0};
  EXPECT_THROW((void)cubic_spline::natural(x2, y), std::invalid_argument);
}

// Property sweep: interpolation error of smooth functions shrinks ~h^4.
class SplineConvergence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SplineConvergence, SinInterpolationError) {
  const std::size_t n = GetParam();
  std::vector<double> x, y;
  for (std::size_t i = 0; i <= n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n) * 3.14159;
    x.push_back(t);
    y.push_back(std::sin(t));
  }
  const cubic_spline s =
      cubic_spline::clamped(x, y, std::cos(x.front()), std::cos(x.back()));
  double worst = 0.0;
  for (double t = x.front(); t <= x.back(); t += 0.001)
    worst = std::max(worst, std::abs(s(t) - std::sin(t)));
  const double h = x[1] - x[0];
  // C = worst / h^4 should be O(1) for cubic splines.
  EXPECT_LT(worst, 0.05 * h * h * h * h + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(KnotCounts, SplineConvergence,
                         ::testing::Values(4, 8, 16, 32, 64));

}  // namespace
