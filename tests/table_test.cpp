#include "eval/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace {

using dlm::eval::text_table;

TEST(TextTable, AlignsColumns) {
  text_table table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "23456"});
  const std::string out = table.str();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("alpha  1"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TextTable, RowCountTracked) {
  text_table table({"a"});
  EXPECT_EQ(table.rows(), 0u);
  table.add_row({"x"});
  EXPECT_EQ(table.rows(), 1u);
}

TEST(TextTable, CellCountMismatchThrows) {
  text_table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, EmptyHeaderThrows) {
  EXPECT_THROW(text_table({}), std::invalid_argument);
}

TEST(TextTable, StreamInsertion) {
  text_table table({"h"});
  table.add_row({"v"});
  std::ostringstream out;
  out << table;
  EXPECT_FALSE(out.str().empty());
}

TEST(TextTableFormat, Percent) {
  EXPECT_EQ(text_table::pct(0.9281), "92.81%");
  EXPECT_EQ(text_table::pct(1.0, 0), "100%");
  EXPECT_EQ(text_table::pct(0.005, 1), "0.5%");
}

TEST(TextTableFormat, FixedNumber) {
  EXPECT_EQ(text_table::num(3.14159, 2), "3.14");
  EXPECT_EQ(text_table::num(2.0, 0), "2");
}

TEST(TextTableFormat, ThousandsSeparatedCount) {
  EXPECT_EQ(text_table::count(0), "0");
  EXPECT_EQ(text_table::count(999), "999");
  EXPECT_EQ(text_table::count(1000), "1,000");
  EXPECT_EQ(text_table::count(24099), "24,099");
  EXPECT_EQ(text_table::count(1234567), "1,234,567");
}

}  // namespace
