// Regression guards on the story presets and scenario configurations: the
// figure/table benches depend on these calibrated constants, so changes
// must be deliberate.

#include "digg/presets.h"

#include <gtest/gtest.h>

namespace {

using namespace dlm::digg;

TEST(Presets, FourStoriesInPaperOrder) {
  const std::vector<story_preset> stories = paper_stories();
  ASSERT_EQ(stories.size(), 4u);
  EXPECT_EQ(stories[0].name, "s1");
  EXPECT_EQ(stories[3].name, "s4");
  EXPECT_EQ(stories[0].paper_votes, 24099u);
  EXPECT_EQ(stories[1].paper_votes, 8521u);
  EXPECT_EQ(stories[2].paper_votes, 5988u);
  EXPECT_EQ(stories[3].paper_votes, 1618u);
}

TEST(Presets, S1EncodesPaperSurfaces) {
  const story_preset s1 = story_s1();
  ASSERT_EQ(s1.hop_groups.size(), 10u);  // distances 1..10 (Fig. 2)
  // Fig. 3a plateau levels.
  EXPECT_NEAR(s1.hop_groups[0].saturation, 18.5, 1e-9);
  // The hop-3 > hop-2 inversion is in the targets.
  EXPECT_GT(s1.hop_groups[2].saturation, s1.hop_groups[1].saturation);
  // Paper Eq. 7 rate family.
  EXPECT_NEAR(s1.hop_surface.rate.a, 1.4, 1e-12);
  EXPECT_NEAR(s1.hop_surface.rate.b, 1.5, 1e-12);
  EXPECT_NEAR(s1.hop_surface.rate.c, 0.25, 1e-12);
  EXPECT_NEAR(s1.hop_surface.k_model, 25.0, 1e-12);
  // Interest side: Fig. 5a plateau + the group-5 anomaly.
  ASSERT_EQ(s1.interest_groups.size(), 5u);
  EXPECT_NEAR(s1.interest_groups[0].saturation, 60.0, 1e-9);
  EXPECT_LT(s1.interest_groups[4].clock_power, 0.9);
  EXPECT_NEAR(s1.interest_surface.k_model, 60.0, 1e-12);
}

TEST(Presets, StoryOrderingEncoded) {
  const std::vector<story_preset> stories = paper_stories();
  // Popularity ordering: plateau densities strictly decrease s1..s4.
  for (std::size_t s = 1; s < stories.size(); ++s) {
    EXPECT_GT(stories[s - 1].hop_groups[0].saturation,
              stories[s].hop_groups[0].saturation);
  }
  // Slower stories have slower clocks (smaller rate floor c).
  EXPECT_GT(stories[0].hop_surface.rate.c, stories[3].hop_surface.rate.c);
}

TEST(Presets, S4DecreasesMonotonicallyWithHops) {
  // Fig. 3d: the least popular story shows no inversion.
  const story_preset s4 = story_s4();
  for (std::size_t x = 1; x < 5; ++x) {
    EXPECT_LT(s4.hop_groups[x].saturation, s4.hop_groups[x - 1].saturation);
  }
}

TEST(Presets, HopTailsDecayGeometrically) {
  for (const story_preset& preset : paper_stories()) {
    for (std::size_t x = 5; x < preset.hop_groups.size(); ++x) {
      EXPECT_LT(preset.hop_groups[x].saturation,
                preset.hop_groups[x - 1].saturation);
    }
  }
}

TEST(Scenarios, DefaultsAreConsistent) {
  const scenario_config def;
  EXPECT_EQ(def.horizon_hours, 50);       // the paper tracks 50 hours
  EXPECT_EQ(def.interest_groups, 5u);     // five interest bins
  EXPECT_EQ(def.max_hops, 10);            // Fig. 2 reaches hop 10
  EXPECT_EQ(def.stories.size(), 4u);
  EXPECT_EQ(def.seed, 20090601u);         // June 2009 collection month

  const scenario_config test = test_scale_scenario();
  EXPECT_LT(test.graph.users, def.graph.users);
  const scenario_config paper = paper_scale_scenario();
  EXPECT_EQ(paper.graph.users, 139409u);  // the crawl's voter population
}

TEST(Scenarios, InitiatorRanksInsideCelebrityPool) {
  // Every flagship initiator must sit inside the elite clique at every
  // scenario scale, or its Fig. 2 hop distribution loses the hop-3 peak.
  for (const scenario_config& cfg :
       {scenario_config{}, test_scale_scenario(), paper_scale_scenario()}) {
    for (const story_preset& preset : cfg.stories) {
      EXPECT_LT(preset.initiator_rank, cfg.graph.celebrity_count)
          << preset.name;
    }
  }
}

}  // namespace
